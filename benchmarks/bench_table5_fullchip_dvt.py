"""Benchmark: regenerate the paper's table5 -- full-chip dual-Vth comparison (the paper's headline -20.3%)."""

from benchmarks.conftest import run_and_check


def test_table5(benchmark, save_result, process):
    """full-chip dual-Vth comparison (the paper's headline -20.3%)."""
    run_and_check(benchmark, save_result, process, "table5")
