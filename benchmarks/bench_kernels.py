"""Kernel performance benchmarks.

Unlike the paper-artifact benches (single-shot regeneration), these time
the library's hot kernels with repeated rounds so performance
regressions in the placer, router, STA or power engine show up in
pytest-benchmark's statistics.
"""

import pytest

from repro.designgen import block_type_by_name, generate_block
from repro.place import PlacementConfig, fm_bipartition, place_block_2d
from repro.power import analyze_power
from repro.route import route_block, route_block_detailed
from repro.timing import TimingConfig, run_sta


@pytest.fixture(scope="module")
def placed_l2t(process):
    gb = generate_block(block_type_by_name("l2t"), process.library,
                        seed=1)
    outline = place_block_2d(gb.netlist, PlacementConfig(seed=1)).outline
    routing = route_block(gb.netlist, process.metal_stack)
    return gb, outline, routing


def test_kernel_generate(benchmark, process):
    """Netlist generation throughput (l2t, ~1k cells)."""
    benchmark(generate_block, block_type_by_name("l2t"),
              process.library, 1)


def test_kernel_place(benchmark, process):
    """Quadratic place + spread + legalize (l2t)."""
    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_route_estimate(benchmark, process, placed_l2t):
    """Trunk-tree routing estimation over ~1.1k nets."""
    gb, _, _ = placed_l2t
    benchmark(route_block, gb.netlist, process.metal_stack)


def test_kernel_route_detailed(benchmark, process, placed_l2t):
    """Capacity-tracked global routing over ~1.1k nets."""
    gb, outline, _ = placed_l2t
    benchmark.pedantic(
        lambda: route_block_detailed(gb.netlist, process.metal_stack,
                                     outline),
        rounds=3, iterations=1)


def test_kernel_sta(benchmark, process, placed_l2t):
    """Forward/backward STA over the routed block (levelized array
    engine; the first call builds and caches the TimingGraph)."""
    gb, _, routing = placed_l2t
    benchmark(run_sta, gb.netlist, routing, process,
              TimingConfig("cpu_clk"))


def test_kernel_sta_scalar(benchmark, process, placed_l2t, monkeypatch):
    """Same STA via the scalar reference walk (the baseline the
    sta-smoke CI step asserts >=4x against, see sta_smoke.py)."""
    from repro.timing.scalar import SCALAR_ENV
    monkeypatch.setenv(SCALAR_ENV, "1")
    gb, _, routing = placed_l2t
    benchmark(run_sta, gb.netlist, routing, process,
              TimingConfig("cpu_clk"))


def test_kernel_route_extract(benchmark, process, placed_l2t):
    """Batched parasitic extraction (one flat net gather + vectorized
    trunk/Elmore math) over ~1.1k nets."""
    gb, _, _ = placed_l2t
    benchmark(route_block, gb.netlist, process.metal_stack)


def test_kernel_route_extract_scalar(benchmark, process, placed_l2t,
                                     monkeypatch):
    """Same extraction via the legacy per-net loop."""
    from repro.timing.scalar import SCALAR_ENV
    monkeypatch.setenv(SCALAR_ENV, "1")
    gb, _, _ = placed_l2t
    benchmark(route_block, gb.netlist, process.metal_stack)


def test_kernel_power(benchmark, process, placed_l2t):
    """Power rollup over the routed block."""
    gb, _, routing = placed_l2t
    benchmark(analyze_power, gb.netlist, routing, process, "cpu_clk")


def test_kernel_partition(benchmark, process):
    """FM min-cut bipartitioning (l2t)."""
    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        return fm_bipartition(gb.netlist, seed=0)
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_optimize(benchmark, process):
    """Staged optimization loop on l2t (incremental timing core)."""
    from repro.opt.flow import OptimizeConfig, optimize_block

    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
        return optimize_block(
            gb.netlist, process, TimingConfig("cpu_clk"),
            lambda nl: route_block(nl, process.metal_stack),
            OptimizeConfig(dual_vth=True))
    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.downsized > 0 and res.hvt_swaps > 0
    # the incremental loop re-routes only at start + buffer insertion
    assert res.full_reroutes <= 4


def test_kernel_optimize_full_recompute(benchmark, process):
    """Same loop with the incremental core disabled (the baseline the
    opt-smoke CI step asserts >=2x against)."""
    from repro.opt.flow import OptimizeConfig, optimize_block

    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
        return optimize_block(
            gb.netlist, process, TimingConfig("cpu_clk"),
            lambda nl: route_block(nl, process.metal_stack),
            OptimizeConfig(dual_vth=True, full_recompute=True))
    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.full_reroutes > 4


def test_kernel_incremental_sta(benchmark, process):
    """Batched ECO re-timing: ~1k master swaps per frontier walk."""
    from repro.timing.incremental import IncrementalSTA
    gb = generate_block(block_type_by_name("l2t"), process.library,
                        seed=1)
    place_block_2d(gb.netlist, PlacementConfig(seed=1))
    routing = route_block(gb.netlist, process.metal_stack)
    inc = IncrementalSTA(gb.netlist, routing, process,
                         TimingConfig("cpu_clk"))
    lib = process.library
    cells = [c for c in gb.netlist.cells if not c.is_sequential]

    def run():
        # each call flips ~1k cells between adjacent sizes, so every
        # round re-times a comparable batch
        moves = []
        for c in cells:
            new = lib.downsize(c.master) or lib.upsize(c.master)
            if new is not None:
                moves.append((c.id, new))
            if len(moves) >= 1000:
                break
        return inc.swap_masters(moves)
    applied = benchmark(run)
    assert applied >= 500


def test_kernel_place_scalar(benchmark, process, monkeypatch):
    """Same placement via the legacy scalar kernels (the baseline the
    place-smoke CI step asserts >=5x against, see place_smoke.py)."""
    from repro.place.scalar import SCALAR_ENV
    monkeypatch.setenv(SCALAR_ENV, "1")

    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_place_fold3d(benchmark, process):
    """Two-tier fold placement incl. partitioning and via assignment."""
    from repro.place import fm_bipartition, fold_place_3d

    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        part = fm_bipartition(gb.netlist, seed=0)
        return fold_place_3d(gb.netlist, process, part.assignment,
                             "F2B", PlacementConfig(seed=1))
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_place_bistratal(benchmark, process):
    """Fold placement with the analytical die-to-die z refinement."""
    from repro.place import fm_bipartition, fold_place_3d

    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        part = fm_bipartition(gb.netlist, seed=0)
        return fold_place_3d(gb.netlist, process, part.assignment,
                             "F2B", PlacementConfig(seed=1),
                             mode="bistratal")
    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.hpwl_um > 0
