"""Kernel performance benchmarks.

Unlike the paper-artifact benches (single-shot regeneration), these time
the library's hot kernels with repeated rounds so performance
regressions in the placer, router, STA or power engine show up in
pytest-benchmark's statistics.
"""

import pytest

from repro.designgen import block_type_by_name, generate_block
from repro.place import PlacementConfig, fm_bipartition, place_block_2d
from repro.power import analyze_power
from repro.route import route_block, route_block_detailed
from repro.timing import TimingConfig, run_sta


@pytest.fixture(scope="module")
def placed_l2t(process):
    gb = generate_block(block_type_by_name("l2t"), process.library,
                        seed=1)
    outline = place_block_2d(gb.netlist, PlacementConfig(seed=1)).outline
    routing = route_block(gb.netlist, process.metal_stack)
    return gb, outline, routing


def test_kernel_generate(benchmark, process):
    """Netlist generation throughput (l2t, ~1k cells)."""
    benchmark(generate_block, block_type_by_name("l2t"),
              process.library, 1)


def test_kernel_place(benchmark, process):
    """Quadratic place + spread + legalize (l2t)."""
    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_route_estimate(benchmark, process, placed_l2t):
    """Trunk-tree routing estimation over ~1.1k nets."""
    gb, _, _ = placed_l2t
    benchmark(route_block, gb.netlist, process.metal_stack)


def test_kernel_route_detailed(benchmark, process, placed_l2t):
    """Capacity-tracked global routing over ~1.1k nets."""
    gb, outline, _ = placed_l2t
    benchmark.pedantic(
        lambda: route_block_detailed(gb.netlist, process.metal_stack,
                                     outline),
        rounds=3, iterations=1)


def test_kernel_sta(benchmark, process, placed_l2t):
    """Forward/backward STA over the routed block."""
    gb, _, routing = placed_l2t
    benchmark(run_sta, gb.netlist, routing, process,
              TimingConfig("cpu_clk"))


def test_kernel_power(benchmark, process, placed_l2t):
    """Power rollup over the routed block."""
    gb, _, routing = placed_l2t
    benchmark(analyze_power, gb.netlist, routing, process, "cpu_clk")


def test_kernel_partition(benchmark, process):
    """FM min-cut bipartitioning (l2t)."""
    def run():
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        return fm_bipartition(gb.netlist, seed=0)
    benchmark.pedantic(run, rounds=3, iterations=1)
