"""Ablation benchmarks: macro holes, TSV pitch, folding criteria."""

import pathlib

from repro.analysis.ablations import (ablate_folding_criteria,
                                      ablate_macro_holes, sweep_tsv_pitch)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_macro_hole_ablation(benchmark, process):
    """Section 4.2: the supply/demand hole keeps cells off the macros."""
    res = benchmark.pedantic(lambda: ablate_macro_holes(process),
                             rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_macro_holes.txt").write_text(
        f"cells overlapping macros: with holes {res.overlap_cells_with_holes},"
        f" without {res.overlap_cells_without_holes}\n"
        f"hpwl: with holes {res.hpwl_with_holes:.0f} um, without "
        f"{res.hpwl_without_holes:.0f} um\n")
    assert res.overlap_cells_with_holes < \
        res.overlap_cells_without_holes / 4


def test_tsv_pitch_sweep(benchmark, process):
    """Coarser TSVs inflate the folded footprint (the Fig. 7 mechanism)."""
    points = benchmark.pedantic(lambda: sweep_tsv_pitch(process),
                                rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_tsv_pitch.txt").write_text("\n".join(
        f"pitch {p.pitch_um:4.1f} um: footprint {p.footprint_um2:9.0f} "
        f"um^2 power {p.power_uw:8.0f} uW ({p.n_vias} TSVs)"
        for p in points) + "\n")
    footprints = [p.footprint_um2 for p in points]
    assert footprints == sorted(footprints)


def test_folding_criteria_ablation(benchmark, process):
    """Section 4.1: folding a non-qualifying block buys ~nothing."""
    res = benchmark.pedantic(lambda: ablate_folding_criteria(process),
                             rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_folding_criteria.txt").write_text(
        f"{res.qualifying_block}: {res.qualifying_gain:+.1%}\n"
        f"{res.disqualified_block}: {res.disqualified_gain:+.1%}\n")
    assert res.qualifying_gain < res.disqualified_gain - 0.03


def test_estimate_vs_detailed_routing(benchmark, process):
    """The trunk estimator tracks the capacity-aware router closely."""
    from repro.core.flow import FlowConfig, run_block_flow

    def run():
        est = run_block_flow("l2t", FlowConfig(seed=2), process)
        routed = run_block_flow(
            "l2t", FlowConfig(seed=2, detailed_route=True), process)
        return est, routed

    est, routed = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    ratio = routed.wirelength_um / est.wirelength_um
    (RESULTS_DIR / "ablation_routing_model.txt").write_text(
        f"estimated WL {est.wirelength_um / 1e6:.3f} m, detailed "
        f"{routed.wirelength_um / 1e6:.3f} m (x{ratio:.2f})\n"
        f"congestion overflow "
        f"{routed.congestion.overflow_fraction:.2%}, max utilization "
        f"{routed.congestion.max_utilization:.2f}\n")
    assert 0.9 < ratio < 1.7
    assert routed.sta.wns_ps >= -20.0
