"""Extension benchmarks: the paper's future work, implemented.

The paper's conclusion defers thermal analysis of the bonding styles and
TSV parasitic coupling to future work; this repository implements both
(:mod:`repro.thermal`, :mod:`repro.analysis.coupling`) plus the chip-
level timing sign-off loop.  These benchmarks regenerate their results.
"""

import pathlib

from repro.analysis.coupling import coupling_study
from repro.core.chip_sta import build_signed_off_chip
from repro.core.fullchip import ChipConfig, build_chip
from repro.thermal import analyze_chip_thermal

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_thermal_tradeoff(benchmark, process):
    """3D saves power but runs hotter; TSV farms cool the far tier."""
    def run():
        out = {}
        for style in ("2d", "core_cache", "fold_f2b", "fold_f2f"):
            chip = build_chip(ChipConfig(style=style, scale=0.7), process)
            out[style] = (chip, analyze_chip_thermal(chip))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = []
    for style, (chip, thermal) in results.items():
        lines.append(f"{style:11s}: {chip.power.total_uw / 1e3:7.1f} mW, "
                     f"max {thermal.max_c:5.1f} C")
    (RESULTS_DIR / "extension_thermal.txt").write_text(
        "\n".join(lines) + "\n")
    t2d = results["2d"][1].max_c
    for style in ("core_cache", "fold_f2b", "fold_f2f"):
        chip, thermal = results[style]
        assert chip.power.total_uw < results["2d"][0].power.total_uw
        assert thermal.max_c > t2d  # the stacking thermal penalty


def test_tsv_coupling_penalty(benchmark, process):
    """TSV-to-wire coupling costs power; tiny F2F vias barely couple."""
    res = benchmark.pedantic(lambda: coupling_study("l2t", process),
                             rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "extension_coupling.txt").write_text(
        "\n".join(f"{b}: {r.n_vias} vias, {r.coupling_per_via_ff:.2f} "
                  f"fF/via, +{r.power_penalty:.2%} power"
                  for b, r in res.items()) + "\n")
    assert res["F2B"].power_penalty > res["F2F"].power_penalty


def test_chip_signoff_convergence(benchmark, process):
    """The Section 2.2 loop closes cross-block timing (with pipelining)."""
    chip, sta = benchmark.pedantic(
        lambda: build_signed_off_chip(
            ChipConfig(style="core_cache", scale=0.7), process,
            max_iterations=2),
        rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "extension_signoff.txt").write_text(
        sta.report(6) + "\n")
    assert sta.wns_ps >= -30.0
    assert sta.block_wns_ps >= -30.0


def test_frequency_trend(benchmark, process):
    """Section 7: the 3D power benefit grows with clock frequency."""
    from repro.analysis.frequency import (benefit_trend, format_sweep,
                                          frequency_sweep)
    from repro.core.folding import FoldSpec

    points = benchmark.pedantic(
        lambda: frequency_sweep(
            "ccx", FoldSpec(mode="regions", die1_regions=("cpx",)),
            process, freqs_ghz=(0.5, 0.7, 0.85)),
        rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "extension_frequency.txt").write_text(
        format_sweep(points) + f"\ntrend {benefit_trend(points):+.1%}\n")
    assert all(p.benefit < -0.05 for p in points)
    assert benefit_trend(points) < 0.01  # benefit grows (or holds)


def test_seed_stability(benchmark, process):
    """Key claims hold their sign across generator seeds."""
    from repro.analysis.stability import fold_stability
    from repro.core.folding import FoldSpec

    def run():
        return {
            "ccx power": fold_stability(
                "ccx", FoldSpec(mode="regions", die1_regions=("cpx",)),
                process, metric="power", seeds=(1, 2, 3)),
            "l2t footprint": fold_stability(
                "l2t", FoldSpec(mode="mincut"), process,
                metric="footprint", seeds=(1, 2, 3), bonding="F2F"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "extension_stability.txt").write_text(
        "\n".join(r.summary() for r in results.values()) + "\n")
    for r in results.values():
        assert r.sign_stable
        assert r.mean < -0.05
