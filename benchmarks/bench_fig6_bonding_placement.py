"""Benchmark: regenerate the paper's fig6 -- bonding-style impact on folded-block placement."""

from benchmarks.conftest import run_and_check


def test_fig6(benchmark, save_result, process):
    """bonding-style impact on folded-block placement."""
    run_and_check(benchmark, save_result, process, "fig6")
