"""ECO scenario-derivation smoke check (CI gate).

Runs the flow once on a base l2t scenario, then obtains the
neighboring fig8-style scenario (I/O budget 60 -> 90 ps, +dual-Vth)
two ways: deriving it with the incremental ECO engine
(:func:`repro.eco.derive_design`) and restarting the full flow from
scratch.  The gate asserts the derivation is at least ``--min-speedup``
times faster than the restart, reuses at least ``--min-reuse`` of the
base scenario's routing work with zero from-scratch STA builds, and --
the parity anchor -- is byte-equal to the same derivation with every
incremental path disabled (``EcoConfig(full_recompute=True)``).

Thresholds default to the committed baseline
``benchmarks/results/BENCH_eco_baseline.json``; CI re-measures all
paths live, so the gate tracks the actual machine rather than a stale
baseline.

Usage::

    PYTHONPATH=src python benchmarks/eco_smoke.py \
        --out eco_smoke_timing.json
"""

import argparse
import json
import os
import sys
import time
from dataclasses import replace

from repro.analysis.export_json import block_to_dict
from repro.core.flow import FlowConfig, run_block_flow
from repro.eco import EcoConfig, derive_design
from repro.obs.metrics import metrics
from repro.obs.names import (CTR_ECO_DERIVED_DESIGNS,
                             CTR_ECO_MOVES_APPLIED,
                             CTR_ROUTE_NETS_REROUTED)
from repro.tech import make_process

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "results", "BENCH_eco_baseline.json")


def read_threshold(path: str, key: str) -> float:
    """The committed gate threshold (hard error when unreadable)."""
    with open(path) as f:
        return float(json.load(f)[key])


def time_paths(process, config, neighbor, repeats: int) -> dict:
    """Best-of-N wall clocks for derive / restart / full-recompute."""
    base = run_block_flow("l2t", config, process)
    # warm-up: the first derivation pays lazy imports and cold caches
    derive_design(base, replace(neighbor, eco=EcoConfig()), process)
    walls = {"derive": float("inf"), "restart": float("inf"),
             "derive_full_recompute": float("inf")}
    derived = restarted = full = None
    rep_inc = rep_full = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        derived, rep_inc = derive_design(
            base, replace(neighbor, eco=EcoConfig()), process)
        walls["derive"] = min(walls["derive"],
                              time.perf_counter() - t0)
        t0 = time.perf_counter()
        restarted = run_block_flow(
            "l2t", replace(neighbor, eco=None), process)
        walls["restart"] = min(walls["restart"],
                               time.perf_counter() - t0)
        t0 = time.perf_counter()
        full, rep_full = derive_design(
            base, replace(neighbor,
                          eco=EcoConfig(full_recompute=True)), process)
        walls["derive_full_recompute"] = min(
            walls["derive_full_recompute"], time.perf_counter() - t0)
    return {"walls": walls, "base": base, "derived": derived,
            "restarted": restarted, "full": full,
            "rep_inc": rep_inc, "rep_full": rep_full}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="write timing JSON here")
    ap.add_argument("--baseline", default=BASELINE, metavar="FILE",
                    help="committed baseline holding the gate "
                         "thresholds")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="override the baseline's min_speedup")
    ap.add_argument("--min-reuse", type=float, default=None,
                    help="override the baseline's min_reuse")
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--repeats", type=int, default=5)
    args = ap.parse_args(argv)
    min_speedup = (args.min_speedup if args.min_speedup is not None
                   else read_threshold(args.baseline, "min_speedup"))
    min_reuse = (args.min_reuse if args.min_reuse is not None
                 else read_threshold(args.baseline, "min_reuse"))

    process = make_process()
    config = FlowConfig(scale=args.scale, seed=1, io_budget_ps=60.0)
    neighbor = replace(config, io_budget_ps=90.0, dual_vth=True)
    run = time_paths(process, config, neighbor, args.repeats)
    walls = run["walls"]
    speedup = walls["restart"] / walls["derive"]

    stats_inc = run["rep_inc"].session_stats
    stats_full = run["rep_full"].session_stats
    inc_rr = stats_inc.get("nets_rerouted", 0)
    full_rr = stats_full.get("nets_rerouted", 0)
    reuse = 1.0 - inc_rr / full_rr if full_rr else 1.0
    parity = (
        json.dumps(block_to_dict(run["derived"]), sort_keys=True) ==
        json.dumps(block_to_dict(run["full"]), sort_keys=True))

    snap = metrics().snapshot()
    counters = {k: v for k, v in sorted(snap.get("counters", {}).items())
                if k.startswith(("eco.", "route.", "sta."))}
    # the registry constants CI asserts on must be present in the report
    for gate in (CTR_ECO_DERIVED_DESIGNS, CTR_ECO_MOVES_APPLIED,
                 CTR_ROUTE_NETS_REROUTED):
        counters.setdefault(gate, 0.0)
    report = {"block": "l2t", "scale": args.scale, "seed": 1,
              "scenario": "io_budget 60->90 ps, +dual_vth",
              "wall_s": {k: round(v, 6) for k, v in walls.items()},
              "speedup": round(speedup, 2),
              "min_speedup": min_speedup,
              "route_reuse": round(reuse, 4),
              "min_reuse": min_reuse,
              "parity": parity,
              "session_stats": {"incremental": stats_inc,
                                "full_recompute": stats_full},
              "counters": counters}
    print(f"derive {walls['derive'] * 1e3:.1f}ms vs restart "
          f"{walls['restart'] * 1e3:.1f}ms -> {speedup:.2f}x "
          f"(floor {min_speedup:.1f}x)")
    print(f"route reuse {reuse:.1%} ({inc_rr} vs {full_rr} nets "
          f"rerouted, floor {min_reuse:.0%}), "
          f"{stats_inc.get('sta_full_rebuilds', 0)} full STA rebuilds")
    for k, v in counters.items():
        print(f"  {k} = {v:.0f}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    if not parity:
        print("FAIL: incremental derivation and full recompute differ",
              file=sys.stderr)
        return 1
    if stats_inc.get("sta_full_rebuilds", 0) != 0:
        print("FAIL: incremental derivation rebuilt STA from scratch",
              file=sys.stderr)
        return 1
    if reuse < min_reuse:
        print(f"FAIL: route reuse {reuse:.1%} below floor "
              f"{min_reuse:.0%}", file=sys.stderr)
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below floor "
              f"{min_speedup:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
