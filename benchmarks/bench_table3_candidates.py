"""Benchmark: regenerate the paper's table3 -- folding-candidate selection over all block types."""

from benchmarks.conftest import run_and_check


def test_table3(benchmark, save_result, process):
    """folding-candidate selection over all block types."""
    run_and_check(benchmark, save_result, process, "table3")
