"""Placement kernel speedup smoke check (CI gate).

Times the five batched placement kernels against their scalar
references (:mod:`repro.place.scalar`) on the spc block at ``scale=1``
-- the largest standard block, ~2.6k cells / ~2.9k nets -- and asserts
the flow-weighted composite is at least ``--min-speedup`` times faster.

The composite weighs each kernel by how often one ``place_block_2d``
call invokes it: 6x quadratic assembly (2 axes x 3 solves), 2x
spreading (``iterations=2``), 1x legalization, 1x overlap scan, 1x row
snap.  The shared SuperLU factorization is deliberately outside the
timed region (both paths call the same ``spsolve``), which is why the
assembly seam (``assemble_axis``) exists.

The committed reference timings live in
``benchmarks/results/BENCH_place_baseline.json``; CI re-measures both
paths live, so the gate tracks the actual machine rather than a stale
baseline.

Usage::

    PYTHONPATH=src python benchmarks/place_smoke.py \
        --out place_smoke_timing.json --min-speedup 5.0
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.designgen import block_type_by_name, generate_block
from repro.obs.metrics import metrics
from repro.obs.names import (CTR_PLACE_CELLS_LEGALIZED,
                             CTR_PLACE_QP_SOLVES, CTR_PLACE_SPREAD_CALLS)
from repro.place import (PlacementConfig, compute_outline, place_macros,
                         place_ports)
from repro.place import scalar
from repro.place.grid import DensityGrid
from repro.place.legalize import legalize_cells, overlapping_pairs
from repro.place.placer2d import (_build_qp_nets, run_global_place,
                                  snap_to_rows)
from repro.place.quadratic import QuadraticPlacer
from repro.place.spreading import spread
from repro.tech import make_process

#: per-placement kernel invocation counts (the composite weights)
WEIGHTS = {"assembly": 6, "spread": 2, "legalize": 1, "pairs": 1,
           "snap": 1}


def build_workload(block: str = "spc", seed: int = 1):
    """One placed-block workload providing realistic kernel inputs."""
    process = make_process()
    gb = generate_block(block_type_by_name(block), process.library,
                        seed=seed)
    netlist = gb.netlist
    config = PlacementConfig(seed=seed)
    rng = np.random.default_rng(seed)
    outline = compute_outline(netlist, config)
    macro_rects = place_macros(netlist, outline)
    place_ports(netlist, outline)
    movable = [i for i in netlist.instances.values()
               if not i.is_macro and not i.fixed]
    grid = DensityGrid(outline, target_bins=int(np.clip(
        len(movable) // 3, 64, 4096)),
        utilization=min(1.0, config.utilization + 0.15))
    for rect in macro_rects:
        grid.add_obstruction(rect)
    index_of = {inst.id: k for k, inst in enumerate(movable)}
    placer = QuadraticPlacer(len(movable),
                             _build_qp_nets(netlist, index_of, config))
    xs, ys = run_global_place(
        netlist, movable, outline, config, rng,
        lambda x, y, a: spread(grid, x, y, a, rng))
    areas = np.array([inst.area_um2 for inst in movable])
    snap_to_rows(movable, xs, ys, outline)
    snapped = [(inst.x, inst.y) for inst in movable]
    return {"netlist": netlist, "movable": movable, "outline": outline,
            "grid": grid, "macro_rects": macro_rects, "placer": placer,
            "xs": xs, "ys": ys, "areas": areas, "snapped": snapped,
            "block": block, "seed": seed}


def _restore(wl) -> None:
    for inst, (x, y) in zip(wl["movable"], wl["snapped"]):
        inst.x, inst.y = x, y


def kernel_runners(wl):
    """name -> {path: zero-arg kernel callable, "pre": untimed setup}.

    Mutating kernels get a ``pre`` hook restoring the snapped
    coordinates so every repeat sees identical input without the
    restore loop polluting the measurement.
    """
    placer, grid = wl["placer"], wl["grid"]
    xs, ys, areas = wl["xs"], wl["ys"], wl["areas"]
    movable, outline = wl["movable"], wl["outline"]
    rng = np.random.default_rng(wl["seed"])

    # assembly goes through the explicit seam, not the dispatcher, so
    # both paths skip the shared spsolve
    return {
        "assembly": {
            "vec": lambda: placer._assemble_axis(xs, 0, None),
            "scalar": lambda: scalar.assemble_axis(placer, xs, 0, None),
        },
        "spread": {
            "vec": lambda: spread(grid, xs, ys, areas, rng),
            "scalar": lambda: scalar.spread(grid, xs, ys, areas, rng),
        },
        "legalize": {
            "pre": lambda: _restore(wl),
            "vec": lambda: legalize_cells(movable, outline,
                                          wl["macro_rects"]),
            "scalar": lambda: scalar.legalize_cells(
                movable, outline, wl["macro_rects"]),
        },
        "pairs": {
            "pre": lambda: _restore(wl),
            "vec": lambda: overlapping_pairs(movable),
            "scalar": lambda: scalar.overlapping_pairs(movable),
        },
        "snap": {
            "vec": lambda: snap_to_rows(movable, xs, ys, outline),
            "scalar": lambda: scalar.snap_to_rows(movable, xs, ys,
                                                  outline),
        },
    }


def time_kernels(wl, repeats: int) -> dict:
    """Best-of-N wall clock per kernel and path, in milliseconds."""
    out = {}
    for name, paths in kernel_runners(wl).items():
        pre = paths.get("pre", lambda: None)
        out[name] = {}
        for path in ("vec", "scalar"):
            fn = paths[path]
            pre()
            fn()  # warm-up (first _assemble_axis call builds _FlatNets)
            best = float("inf")
            for _ in range(repeats):
                pre()
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            out[name][path] = best * 1e3
    _restore(wl)
    return out


def composite(times: dict, path: str) -> float:
    """Flow-weighted total for one path (ms per placement)."""
    return sum(WEIGHTS[k] * times[k][path] for k in WEIGHTS)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="write timing JSON here")
    ap.add_argument("--min-speedup", type=float, default=5.0)
    ap.add_argument("--repeats", type=int, default=7)
    args = ap.parse_args(argv)

    # the dispatchers must take their default (vectorized) branch
    os.environ.pop(scalar.SCALAR_ENV, None)

    wl = build_workload()
    times = time_kernels(wl, args.repeats)
    vec_ms = composite(times, "vec")
    scalar_ms = composite(times, "scalar")
    speedup = scalar_ms / vec_ms

    snap = metrics().snapshot()
    counters = {k: v for k, v in sorted(snap.get("counters", {}).items())
                if k.startswith("place.")}
    for gate in (CTR_PLACE_QP_SOLVES, CTR_PLACE_SPREAD_CALLS,
                 CTR_PLACE_CELLS_LEGALIZED):
        counters.setdefault(gate, 0.0)

    report = {"block": wl["block"], "scale": 1, "seed": wl["seed"],
              "weights": WEIGHTS,
              "kernels_ms": {k: {p: round(v, 4)
                                 for p, v in paths.items()}
                             for k, paths in times.items()},
              "composite_ms": {"vec": round(vec_ms, 3),
                               "scalar": round(scalar_ms, 3)},
              "speedup": round(speedup, 2),
              "min_speedup": args.min_speedup,
              "counters": counters}
    for k in WEIGHTS:
        s, v = times[k]["scalar"], times[k]["vec"]
        print(f"  {k:9s} x{WEIGHTS[k]}: scalar {s:8.2f}ms  "
              f"vec {v:8.2f}ms  ({s / v:5.1f}x)")
    print(f"composite: scalar {scalar_ms:.1f}ms vs vec {vec_ms:.1f}ms "
          f"-> {speedup:.2f}x (floor {args.min_speedup:.1f}x)")
    for k, v in counters.items():
        print(f"  {k} = {v:.0f}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below floor "
              f"{args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
