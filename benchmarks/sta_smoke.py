"""STA + parasitic-extraction speedup smoke check (CI gate).

Times the levelized array timing engine against its scalar reference
(:mod:`repro.timing.scalar`) on the l2t block -- ~1k cells / ~1.1k
nets -- and asserts the flow-weighted composite is at least
``--min-speedup`` times faster.

Two kernels are timed:

* ``extract`` -- one full :func:`repro.route.route_block` pass (batched
  net gather, trunk-tree stats and Elmore math vs the per-net loop);
* ``sta`` -- one full analysis sweep over a fixed routing:
  :func:`run_sta` + :func:`run_hold_analysis` + :func:`io_path_delays`.

The ``sta`` kernel is timed *warm*: the optimizer calls the analysis
sweep many times per routing snapshot, so the one-shot ``NetArrays`` /
``TimingGraph`` build (paid on the untimed warm-up call, and cached on
the :class:`RoutingResult`) is amortized in production exactly as it is
here.  The composite weighs ``sta`` 3x against ``extract`` 1x to match
that call ratio in ``optimize_block``.

The speedup floor defaults to the ``min_speedup`` recorded in the
committed baseline ``benchmarks/results/BENCH_sta_baseline.json`` --
regenerating the baseline (``--out`` to that path) refreshes the gate
without editing this script or the CI workflow.

Usage::

    PYTHONPATH=src python benchmarks/sta_smoke.py \
        --out sta_smoke_timing.json
"""

import argparse
import json
import os
import sys
import time

from repro.designgen import block_type_by_name, generate_block
from repro.obs.metrics import metrics
from repro.obs.names import (CTR_ROUTE_NETS_EXTRACTED_BATCH,
                             CTR_STA_LEVELS, CTR_STA_SCALAR_FALLBACKS,
                             CTR_STA_VECTOR_PASSES)
from repro.place import PlacementConfig, place_block_2d
from repro.route import route_block
from repro.tech import make_process
from repro.timing import TimingConfig, run_sta
from repro.timing import scalar
from repro.timing.hold import run_hold_analysis
from repro.timing.paths import io_path_delays

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "results", "BENCH_sta_baseline.json")

#: analysis sweeps per extraction in the optimizer loop (the weights)
WEIGHTS = {"sta": 3, "extract": 1}


def read_threshold(path: str, key: str) -> float:
    """The committed gate threshold (hard error when unreadable)."""
    with open(path) as f:
        return float(json.load(f)[key])


def build_workload(block: str = "l2t", seed: int = 1):
    """One placed-and-routed block providing realistic kernel inputs."""
    process = make_process()
    gb = generate_block(block_type_by_name(block), process.library,
                        seed=seed)
    place_block_2d(gb.netlist, PlacementConfig(seed=seed))
    routing = route_block(gb.netlist, process.metal_stack)
    return {"netlist": gb.netlist, "process": process,
            "routing": routing, "config": TimingConfig("cpu_clk"),
            "block": block, "seed": seed}


def kernel_runners(wl):
    """name -> {path: zero-arg kernel callable}."""
    nl, proc = wl["netlist"], wl["process"]
    routing, cfg = wl["routing"], wl["config"]

    def sweep_vec():
        run_sta(nl, routing, proc, cfg)
        run_hold_analysis(nl, routing, proc, cfg)
        io_path_delays(nl, routing, proc, cfg)

    def sweep_scalar():
        scalar.run_sta(nl, routing, proc, cfg)
        scalar.run_hold_analysis(nl, routing, proc, cfg)
        scalar.io_path_delays(nl, routing, proc, cfg)

    return {
        "sta": {"vec": sweep_vec, "scalar": sweep_scalar},
        "extract": {
            "vec": lambda: route_block(nl, proc.metal_stack),
            "scalar": lambda: scalar.route_block(nl, proc.metal_stack),
        },
    }


def time_kernels(wl, repeats: int) -> dict:
    """Best-of-N wall clock per kernel and path, in milliseconds."""
    out = {}
    for name, paths in kernel_runners(wl).items():
        out[name] = {}
        for path in ("vec", "scalar"):
            fn = paths[path]
            fn()  # warm-up (first vec sweep builds NetArrays + graph)
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            out[name][path] = best * 1e3
    return out


def composite(times: dict, path: str) -> float:
    """Flow-weighted total for one path (ms per optimizer round)."""
    return sum(WEIGHTS[k] * times[k][path] for k in WEIGHTS)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="write timing JSON here")
    ap.add_argument("--baseline", default=BASELINE, metavar="FILE",
                    help="committed baseline holding the gate "
                         "threshold")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="override the baseline's min_speedup")
    ap.add_argument("--repeats", type=int, default=7)
    args = ap.parse_args(argv)
    if args.min_speedup is None:
        args.min_speedup = read_threshold(args.baseline, "min_speedup")

    # the dispatchers must take their default (vectorized) branch
    os.environ.pop(scalar.SCALAR_ENV, None)

    wl = build_workload()
    times = time_kernels(wl, args.repeats)
    vec_ms = composite(times, "vec")
    scalar_ms = composite(times, "scalar")
    speedup = scalar_ms / vec_ms

    snap = metrics().snapshot()
    counters = {k: v for k, v in sorted(snap.get("counters", {}).items())
                if k.startswith(("sta.", "route."))}
    # the registry constants CI asserts on must be present in the report
    for gate in (CTR_STA_LEVELS, CTR_STA_VECTOR_PASSES,
                 CTR_ROUTE_NETS_EXTRACTED_BATCH,
                 CTR_STA_SCALAR_FALLBACKS):
        counters.setdefault(gate, 0.0)

    report = {"block": wl["block"], "seed": wl["seed"],
              "weights": WEIGHTS,
              "kernels_ms": {k: {p: round(v, 4)
                                 for p, v in paths.items()}
                             for k, paths in times.items()},
              "composite_ms": {"vec": round(vec_ms, 3),
                               "scalar": round(scalar_ms, 3)},
              "speedup": round(speedup, 2),
              "min_speedup": args.min_speedup,
              "counters": counters}
    for k in WEIGHTS:
        s, v = times[k]["scalar"], times[k]["vec"]
        print(f"  {k:8s} x{WEIGHTS[k]}: scalar {s:8.2f}ms  "
              f"vec {v:8.2f}ms  ({s / v:5.1f}x)")
    print(f"composite: scalar {scalar_ms:.1f}ms vs vec {vec_ms:.1f}ms "
          f"-> {speedup:.2f}x (floor {args.min_speedup:.1f}x)")
    for k, v in counters.items():
        print(f"  {k} = {v:.0f}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    if counters.get(CTR_STA_SCALAR_FALLBACKS, 0.0):
        print("FAIL: vectorized engine fell back to the scalar walk",
              file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below floor "
              f"{args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
