"""Optimizer speedup smoke check (CI gate).

Times ``optimize_block`` on the l2t block with the incremental
timing/parasitic core against the ``full_recompute=True`` escape hatch
(same moves, same result -- see ``tests/test_opt_flow.py``), asserts the
incremental loop is at least ``--min-speedup`` times faster, and writes
a timing JSON (wall clocks, speedup, reuse counters) for the CI
artifact trail.

The speedup floor defaults to the ``min_speedup`` recorded in the
committed baseline ``benchmarks/results/BENCH_opt_baseline.json`` --
regenerating the baseline (``--out`` to that path) refreshes the gate
without editing this script or the CI workflow.

Usage::

    PYTHONPATH=src python benchmarks/opt_smoke.py \
        --out opt_smoke_timing.json
"""

import argparse
import json
import os
import sys
import time

from repro.designgen import block_type_by_name, generate_block
from repro.obs.metrics import metrics
from repro.obs.names import (CTR_OPT_FULL_REROUTES,
                             CTR_ROUTE_NETS_REEXTRACTED,
                             CTR_STA_INCREMENTAL_NODES)
from repro.opt.flow import OptimizeConfig, optimize_block
from repro.place import PlacementConfig, place_block_2d
from repro.route import route_block
from repro.tech import make_process
from repro.timing import TimingConfig

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "results", "BENCH_opt_baseline.json")


def read_threshold(path: str, key: str) -> float:
    """The committed gate threshold (hard error when unreadable)."""
    with open(path) as f:
        return float(json.load(f)[key])


def time_mode(process, full_recompute: bool, repeats: int) -> dict:
    """Best-of-N wall clock for one optimizer mode (fresh block each)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
        t0 = time.perf_counter()
        result = optimize_block(
            gb.netlist, process, TimingConfig("cpu_clk"),
            lambda nl: route_block(nl, process.metal_stack),
            OptimizeConfig(dual_vth=True,
                           full_recompute=full_recompute))
        best = min(best, time.perf_counter() - t0)
    return {"wall_s": best,
            "full_reroutes": result.full_reroutes,
            "moves": {"buffers": result.buffers_added,
                      "upsized": result.upsized,
                      "downsized": result.downsized,
                      "hvt_swaps": result.hvt_swaps}}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="write timing JSON here")
    ap.add_argument("--baseline", default=BASELINE, metavar="FILE",
                    help="committed baseline holding the gate "
                         "threshold")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="override the baseline's min_speedup")
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    if args.min_speedup is None:
        args.min_speedup = read_threshold(args.baseline, "min_speedup")

    process = make_process()
    inc = time_mode(process, full_recompute=False, repeats=args.repeats)
    full = time_mode(process, full_recompute=True, repeats=args.repeats)
    speedup = full["wall_s"] / inc["wall_s"]
    snap = metrics().snapshot()
    counters = {k: v for k, v in sorted(snap.get("counters", {}).items())
                if k.startswith(("sta.", "route.", "opt."))}
    # the registry constants CI asserts on must be present in the report
    for gate in (CTR_STA_INCREMENTAL_NODES, CTR_ROUTE_NETS_REEXTRACTED,
                 CTR_OPT_FULL_REROUTES):
        counters.setdefault(gate, 0.0)
    report = {"block": "l2t", "incremental": inc, "full_recompute": full,
              "speedup": speedup, "min_speedup": args.min_speedup,
              "counters": counters}
    print(f"incremental {inc['wall_s']:.3f}s vs full "
          f"{full['wall_s']:.3f}s -> {speedup:.2f}x "
          f"(floor {args.min_speedup:.1f}x)")
    for k, v in counters.items():
        print(f"  {k} = {v:.0f}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    if inc["moves"] != full["moves"]:
        print("FAIL: incremental and full_recompute move counts differ",
              file=sys.stderr)
        return 1
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below floor "
              f"{args.min_speedup:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
