"""Benchmark: regenerate the paper's dvt -- Section 6.2 dual-Vth benefit vs RVT-only twins."""

from benchmarks.conftest import run_and_check


def test_dvt(benchmark, save_result, process):
    """Section 6.2 dual-Vth benefit vs RVT-only twins."""
    run_and_check(benchmark, save_result, process, "dvt")
