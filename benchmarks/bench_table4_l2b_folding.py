"""Benchmark: regenerate the paper's table4 -- folding the memory-dominated L2 data bank."""

from benchmarks.conftest import run_and_check


def test_table4(benchmark, save_result, process):
    """folding the memory-dominated L2 data bank."""
    run_and_check(benchmark, save_result, process, "table4")
