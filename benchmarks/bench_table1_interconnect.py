"""Benchmark: regenerate the paper's table1 -- 3D interconnect settings (TSV vs F2F via, Katti model)."""

from benchmarks.conftest import run_and_check


def test_table1(benchmark, save_result, process):
    """3D interconnect settings (TSV vs F2F via, Katti model)."""
    run_and_check(benchmark, save_result, process, "table1")
