"""Benchmark: regenerate the paper's fig7 -- bonding-style power sweep over five partitions."""

from benchmarks.conftest import run_and_check


def test_fig7(benchmark, save_result, process):
    """bonding-style power sweep over five partitions."""
    run_and_check(benchmark, save_result, process, "fig7")
