"""Benchmark: regenerate the paper's fig8 -- the five full-chip design styles."""

from benchmarks.conftest import run_and_check


def test_fig8(benchmark, save_result, process):
    """the five full-chip design styles."""
    run_and_check(benchmark, save_result, process, "fig8")
