"""Benchmark: regenerate the paper's fig2 -- CCX folding - natural PCX/CPX fold vs TSV-heavy fold."""

from benchmarks.conftest import run_and_check


def test_fig2(benchmark, save_result, process):
    """CCX folding - natural PCX/CPX fold vs TSV-heavy fold."""
    run_and_check(benchmark, save_result, process, "fig2")
