"""Concurrent-client load check for the experiment service (CI gate).

Starts an in-process broker, drives it with ``--clients`` threads all
submitting the *same* overlapping sweep, and verifies the service
contract under load:

* every client gets a complete, all-ok sweep back;
* every streamed result is byte-identical (canonical JSON) to a serial
  control run of the same point -- cache tier, coalescing and
  work-stealing must never change the numbers;
* overlapping submissions are deduplicated: the coalescing hit rate
  ``(service.coalesced + service.result_hits) / service.points`` must
  be positive (with N identical sweeps, roughly ``(N-1)/N``).

Writes a JSON artifact (throughput, hit rate, p50/p99 per-point
latency, the ``service.*`` counter deltas) for the CI artifact trail.

Usage::

    PYTHONPATH=src python benchmarks/serve_load.py \
        --clients 4 --quick --out serve_load.json
"""

import argparse
import json
import sys
import threading
import time

from repro.core.cache import DesignCache
from repro.obs.metrics import metrics
from repro.parallel.engine import run_serial_experiment
from repro.service import Client, ServiceConfig, serve_background
from repro.service.schema import PointResult, PointSpec, SweepRequest
from repro.tech import make_process

QUICK_IDS = ("table1", "fig2", "fig6")
FULL_IDS = ("table1", "table2", "fig2", "fig6")


def percentile(values, q):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def drive_client(port, request, slot):
    """One client thread: submit, stream, record per-point latency."""
    latencies = []
    results = {}
    with Client(port=port, timeout=600.0) as client:
        t0 = time.perf_counter()
        rid = client.submit(request)
        for index, result in client.stream(rid):
            latencies.append(time.perf_counter() - t0)
            results[index] = result
    slot["latencies"] = latencies
    slot["results"] = results


def serial_control(points):
    """Ground truth: each unique point run serially in this process."""
    process = make_process()
    cache = DesignCache()
    control = {}
    for point in points:
        run = run_serial_experiment(point, process=process, cache=cache)
        control[point] = PointResult.from_run(run, point,
                                              point.key(process))
    return control


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--clients", type=int, default=4,
                    help="concurrent client threads (default 4)")
    ap.add_argument("--shards", type=int, default=2)
    ap.add_argument("--shard-mode", default="inline",
                    choices=("inline", "process"))
    ap.add_argument("--quick", action="store_true",
                    help="small sweep at scale 0.4 (the CI smoke)")
    ap.add_argument("--ids", default=None,
                    help="comma-separated experiment ids (overrides "
                         "the quick/full presets)")
    ap.add_argument("--scale", type=float, default=None)
    ap.add_argument("--seeds", default="1,2",
                    help="comma-separated seeds; the sweep is the "
                         "cross product ids x seeds")
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="write the JSON artifact here")
    args = ap.parse_args(argv)

    if args.ids is not None:
        ids = tuple(s for s in args.ids.split(",") if s)
    else:
        ids = QUICK_IDS if args.quick else FULL_IDS
    scale = args.scale if args.scale is not None else \
        (0.4 if args.quick else 0.7)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    points = tuple(PointSpec(eid, scale, seed)
                   for seed in seeds for eid in ids)
    request = SweepRequest(points=points)

    print(f"serve_load: {args.clients} clients x {len(points)} points "
          f"({len(ids)} ids x {len(seeds)} seeds, scale {scale}), "
          f"{args.shards} {args.shard_mode} shards")
    before = dict(metrics().snapshot()["counters"])
    config = ServiceConfig(port=0, shards=args.shards,
                           shard_mode=args.shard_mode)
    slots = [{} for _ in range(args.clients)]
    t0 = time.perf_counter()
    with serve_background(config) as handle:
        threads = [threading.Thread(target=drive_client,
                                    args=(handle.port, request, slot))
                   for slot in slots]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    wall_s = time.perf_counter() - t0
    after = dict(metrics().snapshot()["counters"])
    deltas = {k: after.get(k, 0) - before.get(k, 0)
              for k in sorted(after)
              if k.startswith("service.")
              and after.get(k, 0) != before.get(k, 0)}

    failures = []
    latencies = []
    for i, slot in enumerate(slots):
        if "results" not in slot:
            failures.append(f"client {i} died without results")
            continue
        latencies.extend(slot["latencies"])
        if sorted(slot["results"]) != list(range(len(points))):
            failures.append(f"client {i} is missing point results")
            continue
        bad = [points[j].experiment_id
               for j, r in slot["results"].items() if not r.ok]
        if bad:
            failures.append(f"client {i} got failed points: {bad}")

    print("running the serial control ...")
    control = serial_control(points)
    mismatches = 0
    for slot in slots:
        for j, result in slot.get("results", {}).items():
            if result.canonical_json() != \
                    control[points[j]].canonical_json():
                mismatches += 1
    if mismatches:
        failures.append(f"{mismatches} streamed results differ from "
                        f"the serial control")

    n_points = deltas.get("service.points", 0)
    saved = (deltas.get("service.coalesced", 0)
             + deltas.get("service.result_hits", 0))
    hit_rate = saved / n_points if n_points else 0.0
    if args.clients > 1 and hit_rate <= 0.0:
        failures.append("no coalescing under overlapping clients")

    done = args.clients * len(points)
    report = {
        "clients": args.clients,
        "shards": args.shards,
        "shard_mode": args.shard_mode,
        "ids": list(ids),
        "scale": scale,
        "seeds": list(seeds),
        "points_per_client": len(points),
        "wall_s": wall_s,
        "throughput_points_per_s": done / wall_s if wall_s else 0.0,
        "coalescing_hit_rate": hit_rate,
        "latency_p50_s": percentile(latencies, 50) if latencies else None,
        "latency_p99_s": percentile(latencies, 99) if latencies else None,
        "counters": deltas,
        "byte_equal_vs_serial": mismatches == 0,
        "ok": not failures,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"artifact -> {args.out}")

    print(f"  wall {wall_s:.2f}s, "
          f"{report['throughput_points_per_s']:.1f} points/s, "
          f"hit rate {hit_rate:.0%}, "
          f"p50 {report['latency_p50_s']:.3f}s / "
          f"p99 {report['latency_p99_s']:.3f}s"
          if latencies else "  no latencies recorded")
    for key, value in deltas.items():
        print(f"  {key}: {value}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"serve_load OK: {done} results, one execution per unique "
          f"point, byte-equal to serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
