"""Benchmark fixtures: shared process node and result artifacts.

Each benchmark regenerates one paper table/figure through the experiment
registry, times it with pytest-benchmark, asserts the paper's shape
claims, and writes the rendered table (plus the check list) into
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.

Set ``REPRO_BENCH_CACHE_DIR`` to a directory to run the benchmarks
against a persistent design cache: the first session pays full price and
later sessions measure the warm path (cache hits never change the
numbers -- see ``tests/test_determinism.py``).
"""

import os
import pathlib

import pytest

from repro.analysis.experiments import run_experiment
from repro.core.cache import DesignCache
from repro.tech import make_process

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def process():
    return make_process()


#: session cache shared by every benchmark (filled by the autouse
#: fixture below; persistent when REPRO_BENCH_CACHE_DIR is set)
_CACHE = None


@pytest.fixture(scope="session", autouse=True)
def design_cache():
    """Session-wide design cache, persistent when the env var is set."""
    global _CACHE
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    _CACHE = DesignCache(cache_dir=cache_dir)
    yield _CACHE
    if cache_dir:
        stats = _CACHE.stats
        print(f"\n[design cache] {stats.hits} memory hits, "
              f"{stats.disk_hits} disk hits, {stats.misses} misses "
              f"({stats.hit_rate:.0%} hit rate) in {cache_dir}")
    _CACHE = None


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.summary() + "\n")

    return _save


def run_and_check(benchmark, save_result, process, experiment_id,
                  scale=1.0, cache=None):
    """Common benchmark body: run, save, assert the shape claims."""
    if cache is None:
        cache = _CACHE
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, process=process,
                               scale=scale, cache=cache),
        rounds=1, iterations=1)
    save_result(result)
    failed = [c for c in result.checks if not c.passed]
    assert not failed, "shape checks failed: " + "; ".join(
        f"{c.name} (measured {c.measured}, paper {c.paper})"
        for c in failed)
    return result
