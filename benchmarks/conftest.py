"""Benchmark fixtures: shared process node and result artifacts.

Each benchmark regenerates one paper table/figure through the experiment
registry, times it with pytest-benchmark, asserts the paper's shape
claims, and writes the rendered table (plus the check list) into
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

from repro.analysis.experiments import run_experiment
from repro.tech import make_process

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def process():
    return make_process()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.summary() + "\n")

    return _save


def run_and_check(benchmark, save_result, process, experiment_id,
                  scale=1.0):
    """Common benchmark body: run, save, assert the shape claims."""
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, process=process, scale=scale),
        rounds=1, iterations=1)
    save_result(result)
    failed = [c for c in result.checks if not c.passed]
    assert not failed, "shape checks failed: " + "; ".join(
        f"{c.name} (measured {c.measured}, paper {c.paper})"
        for c in failed)
    return result
