"""Benchmark: regenerate the paper's fig3 -- SPC second-level (FUB) folding study."""

from benchmarks.conftest import run_and_check


def test_fig3(benchmark, save_result, process):
    """SPC second-level (FUB) folding study."""
    run_and_check(benchmark, save_result, process, "fig3")
