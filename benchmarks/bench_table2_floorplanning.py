"""Benchmark: regenerate the paper's table2 -- 2D vs core/cache vs core/core stacking at 46 blocks (RVT)."""

from benchmarks.conftest import run_and_check


def test_table2(benchmark, save_result, process):
    """2D vs core/cache vs core/core stacking at 46 blocks (RVT)."""
    run_and_check(benchmark, save_result, process, "table2")
