"""Parity harness: levelized array timing engine vs the scalar reference.

The vectorized STA/hold/SI/extraction kernels are gated by this suite:
the legacy per-net / per-instance walks live on verbatim in
:mod:`repro.timing.scalar` behind ``REPRO_STA_SCALAR=1``, and every
case here runs both paths on the same placed design and demands
*bit-exact* equality -- not just the float values but the emission
order of every result dict (``arrival`` / ``required`` / hold ``slack``
are ordered the way the legacy Kahn walk produced them, and downstream
consumers iterate them).

Coverage: the five standard blocks in 2D, both bonding styles on a
folded block (F2B via TSV sites, F2F via the via planner), SI derating
from a detailed router's usage maps, the cache-invalidation seams
(``rev`` / ``mrev``), and hypothesis properties over timing configs and
master swaps.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.folding import FoldSpec, make_partition
from repro.place import PlacementConfig, fold_place_3d, place_block_2d
from repro.route import route_block
from repro.route.block_router import route_block_with_router
from repro.timing import TimingConfig, run_sta
from repro.timing import scalar
from repro.timing.graph import graph_for, run_sta_array
from repro.timing.hold import run_hold_analysis
from repro.timing.paths import io_path_delays
from repro.timing.scalar import SCALAR_ENV
from repro.timing.si import derate_routing
from tests.conftest import fresh_block

BLOCKS = ["spc", "l2d", "l2t", "l2b", "ccx"]


def assert_sta_equal(vec, ref):
    """Values AND dict emission order must match the scalar walk."""
    assert vec.period_ps == ref.period_ps
    for fld in ("arrival", "required", "slack"):
        va, ra = getattr(vec, fld), getattr(ref, fld)
        assert list(va.items()) == list(ra.items()), fld
    assert vec.wns_ps == ref.wns_ps
    assert vec.tns_ps == ref.tns_ps


def assert_routing_equal(vec, ref):
    assert list(vec.nets.keys()) == list(ref.nets.keys())
    for nid, routed in vec.nets.items():
        assert routed == ref.nets[nid], f"net {nid}"


def analysis_sweep(nl, routing, process, cfg, hold_ps=15.0):
    sta = run_sta(nl, routing, process, cfg)
    hold = run_hold_analysis(nl, routing, process, cfg, hold_ps=hold_ps)
    io = io_path_delays(nl, routing, process, cfg)
    return sta, hold, io


def assert_both_paths_match(nl, process, cfg, monkeypatch,
                            max_metal=7, via=None, via_sites=None):
    """Route + full analysis sweep through both paths, bit-exact."""
    monkeypatch.delenv(SCALAR_ENV, raising=False)
    r_vec = route_block(nl, process.metal_stack, max_metal=max_metal,
                        via=via, via_sites=via_sites)
    sweep_vec = analysis_sweep(nl, r_vec, process, cfg)
    monkeypatch.setenv(SCALAR_ENV, "1")
    r_ref = route_block(nl, process.metal_stack, max_metal=max_metal,
                        via=via, via_sites=via_sites)
    sweep_ref = analysis_sweep(nl, r_ref, process, cfg)
    monkeypatch.delenv(SCALAR_ENV, raising=False)

    assert_routing_equal(r_vec, r_ref)
    assert_sta_equal(sweep_vec[0], sweep_ref[0])
    assert (list(sweep_vec[1].slack.items()) ==
            list(sweep_ref[1].slack.items()))
    assert sweep_vec[1].whs_ps == sweep_ref[1].whs_ps
    assert sweep_vec[1].violations == sweep_ref[1].violations
    assert sweep_vec[2] == sweep_ref[2]


class TestFlatBlockParity:
    @pytest.mark.parametrize("name", BLOCKS)
    def test_route_sta_hold_io_bit_exact(self, library, process,
                                         monkeypatch, name):
        gb = fresh_block(name, library, seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
        cfg = TimingConfig("cpu_clk")
        assert_both_paths_match(gb.netlist, process, cfg, monkeypatch)

    def test_io_delays_and_false_paths(self, library, process,
                                       monkeypatch):
        gb = fresh_block("ccx", library, seed=2)
        nl = gb.netlist
        place_block_2d(nl, PlacementConfig(seed=2))
        ports = list(nl.ports.values())
        inp = next(p for p in ports if p.direction == "in")
        out = next(p for p in ports if p.direction == "out")
        out.false_path = True
        cfg = TimingConfig("cpu_clk", io_delays={inp.name: 120.0},
                           default_io_delay_ps=35.0)
        assert_both_paths_match(nl, process, cfg, monkeypatch)

    def test_scalar_env_reaches_scalar_path(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV, "1")
        assert scalar.use_scalar()
        monkeypatch.setenv(SCALAR_ENV, "0")
        assert not scalar.use_scalar()


class TestFoldedBlockParity:
    def folded(self, library, process, bonding):
        gb = fresh_block("ccx", library, seed=1)
        assignment = make_partition(gb, FoldSpec(mode="mincut"))
        fres = fold_place_3d(gb.netlist, process, assignment, bonding,
                             PlacementConfig(seed=1))
        via = process.via_for(bonding)
        if bonding == "F2F":
            from repro.route.route3d import place_f2f_vias
            plan = place_f2f_vias(gb.netlist, fres.outline, process)
            sites, max_metal = dict(plan.sites), 9
        else:
            sites = {v.net_id: (v.x, v.y) for v in fres.vias}
            max_metal = 7
        return gb.netlist, via, sites, max_metal

    @pytest.mark.parametrize("bonding", ["F2B", "F2F"])
    def test_bonding_style_bit_exact(self, library, process,
                                     monkeypatch, bonding):
        nl, via, sites, max_metal = self.folded(library, process,
                                                bonding)
        cfg = TimingConfig("cpu_clk")
        assert_both_paths_match(nl, process, cfg, monkeypatch,
                                max_metal=max_metal, via=via,
                                via_sites=sites)


class TestSiParity:
    def test_derate_bit_exact(self, library, process, monkeypatch):
        gb = fresh_block("ncu", library, seed=1)
        nl = gb.netlist
        outline = place_block_2d(nl, PlacementConfig(seed=1)).outline
        routing, _, router = route_block_with_router(
            nl, process.metal_stack, outline)
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        d_vec, rep_vec = derate_routing(nl, routing, router)
        monkeypatch.setenv(SCALAR_ENV, "1")
        d_ref, rep_ref = derate_routing(nl, routing, router)
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        assert_routing_equal(d_vec, d_ref)
        assert rep_vec == rep_ref


class TestCopyAndCaches:
    def routed_ncu(self, library, process):
        gb = fresh_block("ncu", library, seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
        return gb.netlist, route_block(gb.netlist, process.metal_stack)

    def test_routed_net_copy_covers_every_field(self, library, process):
        nl, routing = self.routed_ncu(library, process)
        routed = next(iter(routing.nets.values()))
        dup = routed.copy()
        assert dup == routed and dup is not routed
        assert dup.sinks is not routed.sinks
        # dataclass equality walks every field, but guard the deep part:
        # sink mutations must not leak back into the original
        if dup.sinks:
            assert dup.sinks[0] is not routed.sinks[0]
            dup.sinks[0].path_len_um += 1.0
            assert dup.sinks[0] != routed.sinks[0]
        assert {f.name for f in dataclasses.fields(dup)} == \
               {f.name for f in dataclasses.fields(routed)}

    def test_net_arrays_cached_until_netlist_rev_bumps(self, library,
                                                       process):
        nl, routing = self.routed_ncu(library, process)
        a1 = routing.net_arrays(nl)
        assert routing.net_arrays(nl) is a1
        buf = process.library.master("BUF_X1")
        nl.add_instance("parity_pad", buf, x=1.0, y=1.0)
        assert routing.net_arrays(nl) is not a1

    def test_refresh_invalidates_net_arrays(self, library, process):
        nl, routing = self.routed_ncu(library, process)
        a1 = routing.net_arrays(nl)
        some_inst = next(i.id for i in nl.cells)
        routing.update_instances(nl, [some_inst])
        assert routing.net_arrays(nl) is not a1

    def test_graph_cached_until_master_rev_bumps(self, library,
                                                 process):
        nl, routing = self.routed_ncu(library, process)
        g1 = graph_for(nl, routing)
        assert g1 is not None and graph_for(nl, routing) is g1
        cell = next(c for c in nl.cells if not c.is_sequential)
        swap = (process.library.downsize(cell.master) or
                process.library.upsize(cell.master))
        assert swap is not None
        nl.replace_master(cell.id, swap)
        g2 = graph_for(nl, routing)
        assert g2 is not g1
        # and the rebuilt graph still matches the scalar walk
        cfg = TimingConfig("cpu_clk")
        assert_sta_equal(run_sta_array(nl, routing, process, cfg),
                         scalar.run_sta(nl, routing, process, cfg))


@pytest.fixture(scope="module")
def ncu_workload(library, process):
    gb = fresh_block("ncu", library, seed=1)
    place_block_2d(gb.netlist, PlacementConfig(seed=1))
    routing = route_block(gb.netlist, process.metal_stack)
    return gb.netlist, routing


class TestProperties:
    """Hypothesis sweeps; both engines called directly (no env)."""

    @settings(max_examples=20, deadline=None)
    @given(default_io=st.floats(0.0, 400.0),
           io_delay=st.floats(0.0, 400.0),
           hold_ps=st.floats(0.0, 60.0),
           port_pick=st.integers(0, 31))
    def test_config_sweep_bit_exact(self, ncu_workload, process,
                                    default_io, io_delay, hold_ps,
                                    port_pick):
        nl, routing = ncu_workload
        ports = list(nl.ports.values())
        port = ports[port_pick % len(ports)]
        cfg = TimingConfig("cpu_clk",
                           io_delays={port.name: io_delay},
                           default_io_delay_ps=default_io)
        assert_sta_equal(run_sta_array(nl, routing, process, cfg),
                         scalar.run_sta(nl, routing, process, cfg))
        from repro.timing.graph import io_path_array, run_hold_array
        hv = run_hold_array(nl, routing, process, cfg, hold_ps=hold_ps)
        hr = scalar.run_hold_analysis(nl, routing, process, cfg,
                                      hold_ps=hold_ps)
        assert list(hv.slack.items()) == list(hr.slack.items())
        assert (hv.whs_ps, hv.violations) == (hr.whs_ps, hr.violations)
        assert (io_path_array(nl, routing, process, cfg) ==
                scalar.io_path_delays(nl, routing, process, cfg))

    @settings(max_examples=15, deadline=None)
    @given(picks=st.lists(st.integers(0, 10_000), min_size=1,
                          max_size=40))
    def test_master_swaps_stay_bit_exact(self, ncu_workload, process,
                                         picks):
        # cumulative sizing swaps: every mrev bump must rebuild the
        # cached graph into something that still mirrors the scalar walk
        nl, routing = ncu_workload
        lib = process.library
        cells = [c for c in nl.cells if not c.is_sequential]
        for p in picks:
            cell = cells[p % len(cells)]
            swap = lib.downsize(cell.master) or lib.upsize(cell.master)
            if swap is not None:
                nl.replace_master(cell.id, swap)
        cfg = TimingConfig("cpu_clk")
        assert_sta_equal(run_sta_array(nl, routing, process, cfg),
                         scalar.run_sta(nl, routing, process, cfg))
