"""Tests for FM bipartitioning."""

import pytest

from repro.place.partition import (count_cut, fm_bipartition,
                                   partition_by_clusters)
from tests.conftest import fresh_block


def test_balance_within_tolerance(library):
    gb = fresh_block("l2t", library, seed=5)
    res = fm_bipartition(gb.netlist, balance_tol=0.10)
    assert res.balance <= 0.62


def test_assignment_covers_all_instances(library):
    gb = fresh_block("ncu", library, seed=5)
    res = fm_bipartition(gb.netlist)
    assert set(res.assignment) == set(gb.netlist.instances)
    assert set(res.assignment.values()) <= {0, 1}


def test_cut_matches_count_cut(library):
    gb = fresh_block("ncu", library, seed=5)
    res = fm_bipartition(gb.netlist)
    assert res.cut_nets == count_cut(gb.netlist, res.assignment)


def test_fm_improves_over_random_split(library):
    import numpy as np
    gb = fresh_block("l2t", library, seed=6)
    nl = gb.netlist
    rng = np.random.default_rng(0)
    random_assign = {i: int(rng.integers(0, 2)) for i in nl.instances}
    random_cut = count_cut(nl, random_assign)
    res = fm_bipartition(nl, initial=random_assign)
    assert res.cut_nets < random_cut


def test_locked_instances_stay(library):
    gb = fresh_block("ncu", library, seed=7)
    nl = gb.netlist
    some = list(nl.instances)[:20]
    initial = {i: 1 for i in some}
    res = fm_bipartition(nl, initial=initial, locked=set(some))
    for i in some:
        assert res.assignment[i] == 1


def test_ccx_natural_split_is_near_zero_cut(library):
    gb = fresh_block("ccx", library, seed=1)
    cpx = gb.clusters_of_regions(("cpx",))
    assignment = partition_by_clusters(gb.netlist, cpx)
    # PCX and CPX share only the few test-bridge signals
    assert count_cut(gb.netlist, assignment) <= 4


def test_partition_by_clusters_assignment(library):
    gb = fresh_block("l2d", library, seed=1)
    clusters = gb.clusters_of_regions(("subbank3",))
    assignment = partition_by_clusters(gb.netlist, clusters)
    for inst in gb.netlist.instances.values():
        expected = 1 if inst.cluster in clusters else 0
        assert assignment[inst.id] == expected


def test_fm_deterministic(library):
    a = fresh_block("l2t", library, seed=8)
    b = fresh_block("l2t", library, seed=8)
    ra = fm_bipartition(a.netlist, seed=3)
    rb = fm_bipartition(b.netlist, seed=3)
    assert ra.cut_nets == rb.cut_nets
    assert ra.assignment == rb.assignment
