"""Tests for the staged optimization loop."""

import pytest

from repro.opt.flow import OptimizeConfig, optimize_block
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.route.estimate import route_block
from repro.timing.sta import TimingConfig, run_sta
from repro.power.analysis import analyze_power
from repro.tech.process import CPU_CLOCK
from tests.conftest import fresh_block


def prepared(library, name="ncu", seed=21):
    gb = fresh_block(name, library, seed=seed)
    place_block_2d(gb.netlist, PlacementConfig(seed=seed))
    return gb


def route_fn_for(process, max_metal=7):
    def route_fn(nl):
        return route_block(nl, process.metal_stack, max_metal=max_metal)
    return route_fn


def test_optimization_closes_timing(library, process):
    gb = prepared(library)
    route_fn = route_fn_for(process)
    timing = TimingConfig(CPU_CLOCK)
    res = optimize_block(gb.netlist, process, timing, route_fn)
    assert res.sta.wns_ps >= -20.0  # at worst a rounding sliver
    assert gb.netlist.validate() == []


def test_power_recovery_beats_timing_only_flow(library, process):
    from repro.opt.flow import OptimizeConfig
    from repro.opt.sizing import SizingConfig
    route_fn = route_fn_for(process)
    # a flow whose power stage is disabled (downsizing margin too high
    # to ever fire) vs the default staged flow on the same block
    timing_only = prepared(library, "l2t", seed=22)
    res_t = optimize_block(
        timing_only.netlist, process, TimingConfig(CPU_CLOCK), route_fn,
        OptimizeConfig(sizing=SizingConfig(downsize_margin_ps=1e9)))
    full = prepared(library, "l2t", seed=22)
    res_f = optimize_block(full.netlist, process, TimingConfig(CPU_CLOCK),
                           route_fn)
    p_t = analyze_power(timing_only.netlist, res_t.routing, process,
                        CPU_CLOCK, cts=res_t.cts)
    p_f = analyze_power(full.netlist, res_f.routing, process, CPU_CLOCK,
                        cts=res_f.cts)
    assert res_t.downsized == 0 and res_f.downsized > 0
    assert p_f.total_uw < p_t.total_uw


def test_counters_populated(library, process):
    gb = prepared(library, "l2t", seed=23)
    res = optimize_block(gb.netlist, process, TimingConfig(CPU_CLOCK),
                         route_fn_for(process))
    assert res.downsized > 0
    assert res.buffers_added >= 0
    assert res.cts.n_sinks > 0


def test_dual_vth_flag(library, process):
    gb = prepared(library, seed=24)
    res = optimize_block(gb.netlist, process, TimingConfig(CPU_CLOCK),
                         route_fn_for(process),
                         OptimizeConfig(dual_vth=True))
    from repro.opt.dualvth import hvt_fraction
    assert res.hvt_swaps > 0
    assert hvt_fraction(gb.netlist) > 0.5
    assert res.sta.wns_ps >= -20.0


def test_rvt_only_run_has_no_swaps(library, process):
    gb = prepared(library, seed=25)
    res = optimize_block(gb.netlist, process, TimingConfig(CPU_CLOCK),
                         route_fn_for(process),
                         OptimizeConfig(dual_vth=False))
    assert res.hvt_swaps == 0
    from repro.opt.dualvth import hvt_fraction
    assert hvt_fraction(gb.netlist) == 0.0


def test_tight_budget_raises_power(library, process):
    loose = prepared(library, "l2t", seed=26)
    res_loose = optimize_block(loose.netlist, process,
                               TimingConfig(CPU_CLOCK),
                               route_fn_for(process))
    tight = prepared(library, "l2t", seed=26)
    res_tight = optimize_block(
        tight.netlist, process,
        TimingConfig(CPU_CLOCK, default_io_delay_ps=300.0),
        route_fn_for(process))
    p_loose = analyze_power(loose.netlist, res_loose.routing, process,
                            CPU_CLOCK, cts=res_loose.cts)
    p_tight = analyze_power(tight.netlist, res_tight.routing, process,
                            CPU_CLOCK, cts=res_tight.cts)
    # the paper's mechanism: tighter I/O budgets block downsizing
    assert p_tight.total_uw > p_loose.total_uw * 0.98

# --- incremental core: parity, counters, true-slack mode --------------


def masters_equal(a, b):
    """Same master (by value) on every instance of two same-shape nets."""
    if set(a.instances) != set(b.instances):
        return False
    for iid, inst in a.instances.items():
        ma, mb = inst.master, b.instances[iid].master
        if ma is not mb and (ma.name, getattr(ma, "size", None),
                             getattr(ma, "vth", None)) != \
                (mb.name, getattr(mb, "size", None),
                 getattr(mb, "vth", None)):
            return False
    return True


def test_incremental_matches_full_recompute(library, process):
    """The escape hatch and the incremental core agree bit-for-bit."""
    route_fn = route_fn_for(process)
    timing = TimingConfig(CPU_CLOCK)
    inc = prepared(library, "l2t", seed=27)
    res_i = optimize_block(inc.netlist, process, timing, route_fn,
                           OptimizeConfig(dual_vth=True))
    full = prepared(library, "l2t", seed=27)
    res_f = optimize_block(full.netlist, process, timing, route_fn,
                           OptimizeConfig(dual_vth=True,
                                          full_recompute=True))
    assert (res_i.buffers_added, res_i.upsized, res_i.downsized,
            res_i.hvt_swaps) == (res_f.buffers_added, res_f.upsized,
                                 res_f.downsized, res_f.hvt_swaps)
    assert masters_equal(inc.netlist, full.netlist)
    assert res_i.sta.arrival == res_f.sta.arrival
    assert res_i.sta.required == res_f.sta.required
    assert res_i.sta.slack == res_f.sta.slack
    assert res_i.sta.wns_ps == res_f.sta.wns_ps
    assert res_i.sta.tns_ps == res_f.sta.tns_ps
    wl_i = sum(n.length_um for n in res_i.routing.nets.values())
    wl_f = sum(n.length_um for n in res_f.routing.nets.values())
    assert wl_i == wl_f
    # the whole point: the incremental loop barely ever re-routes
    assert res_i.full_reroutes < res_f.full_reroutes


def test_incremental_reuse_counters_visible(library, process):
    from repro.obs.metrics import metrics
    from repro.obs.names import (CTR_OPT_FULL_REROUTES,
                                 CTR_ROUTE_NETS_REEXTRACTED,
                                 CTR_STA_INCREMENTAL_NODES)
    m = metrics()
    before_nodes = m.counter(CTR_STA_INCREMENTAL_NODES).value
    before_nets = m.counter(CTR_ROUTE_NETS_REEXTRACTED).value
    gb = prepared(library, seed=28)
    res = optimize_block(gb.netlist, process, TimingConfig(CPU_CLOCK),
                         route_fn_for(process))
    assert m.counter(CTR_STA_INCREMENTAL_NODES).value > before_nodes
    assert m.counter(CTR_ROUTE_NETS_REEXTRACTED).value > before_nets
    assert m.counter(CTR_OPT_FULL_REROUTES).value >= res.full_reroutes > 0


def test_true_slack_mode_downsizes_and_stays_met(library, process):
    """Exact per-move acceptance still recovers power, never ships a
    violating move, and is a genuinely different policy from the
    path-sharing heuristic (not silently the same code path)."""
    route_fn = route_fn_for(process)
    timing = TimingConfig(CPU_CLOCK)
    heur = prepared(library, seed=29)
    res_h = optimize_block(heur.netlist, process, timing, route_fn,
                           OptimizeConfig(dual_vth=True))
    true = prepared(library, seed=29)
    res_t = optimize_block(true.netlist, process, timing, route_fn,
                           OptimizeConfig(dual_vth=True,
                                          true_slack=True))
    assert res_t.downsized > 0
    assert res_t.hvt_swaps > 0
    assert res_t.sta.wns_ps >= -20.0
    assert (res_t.downsized, res_t.hvt_swaps) != \
        (res_h.downsized, res_h.hvt_swaps)
    p_h = analyze_power(heur.netlist, res_h.routing, process, CPU_CLOCK,
                        cts=res_h.cts)
    p_t = analyze_power(true.netlist, res_t.routing, process, CPU_CLOCK,
                        cts=res_t.cts)
    # same ballpark: exact acceptance trades a few optimistic moves for
    # the guarantee that every accepted move kept its margin
    assert p_t.total_uw <= p_h.total_uw * 1.10
