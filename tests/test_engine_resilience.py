"""Chaos tests for the resilient experiment engine.

The matrix: fault kind (raise / hang / slow / crash / corrupt) x
execution mode (serial / supervised workers) x attempt number
(recoverable ``attempt=1`` vs unrecoverable ``attempt=0``).  Plus the
regression the engine was hardened for in the first place: a hung or
crashed worker must never block result collection forever.
"""

import time

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.parallel.engine import (EngineError, explore_points,
                                   run_experiments)

IDS = ["fig6", "table4"]
SCALE = 0.5


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial reference for byte-equality checks."""
    return run_experiments(ids=IDS, scale=SCALE)


def _chaos_counters(report):
    counters = (report.metrics or {}).get("counters", {})
    return {k: v for k, v in counters.items()
            if k.startswith(("faults.", "tasks."))}


# ---------------------------------------------------------------------------
# Serial fault matrix
# ---------------------------------------------------------------------------

class TestSerialFaults:
    @pytest.mark.parametrize("kind", ["raise", "crash"])
    def test_recoverable_fault_retries_to_byte_equality(self, kind,
                                                        baseline):
        plan = FaultPlan.parse(f"{kind} task=fig6 stage=task attempt=1")
        report = run_experiments(ids=IDS, scale=SCALE, retries=1,
                                 fault_plan=plan)
        assert report.completed()
        by_id = {r.experiment_id: r for r in report.runs}
        assert by_id["fig6"].attempts == 2
        assert by_id["table4"].attempts == 1
        assert report.results_json() == baseline.results_json()
        counters = _chaos_counters(report)
        assert counters["faults.injected"] == 1.0
        assert counters["tasks.retried"] == 1.0
        assert "tasks.failed" not in counters

    def test_slow_fault_changes_nothing_but_time(self, baseline):
        plan = FaultPlan.parse(
            "slow task=* stage=optimize attempt=1 seconds=0.01")
        report = run_experiments(ids=IDS, scale=SCALE, fault_plan=plan)
        assert report.completed()
        assert all(r.attempts == 1 for r in report.runs)
        assert report.results_json() == baseline.results_json()
        assert _chaos_counters(report)["faults.injected"] >= 1.0

    def test_hang_is_cut_at_the_cooperative_deadline(self, baseline):
        plan = FaultPlan.parse(
            "hang task=fig6 stage=place attempt=1 seconds=60")
        t0 = time.monotonic()
        report = run_experiments(ids=IDS, scale=SCALE, timeout_s=1.0,
                                 retries=1, fault_plan=plan)
        assert time.monotonic() - t0 < 30
        assert report.completed()
        assert {r.experiment_id: r.attempts
                for r in report.runs} == {"fig6": 2, "table4": 1}
        counters = _chaos_counters(report)
        assert counters["tasks.timed_out"] == 1.0
        assert counters["tasks.retried"] == 1.0
        assert report.results_json() == baseline.results_json()

    def test_unrecoverable_fault_degrades_to_partial(self, baseline):
        plan = FaultPlan.parse("raise task=fig6 stage=task attempt=0")
        report = run_experiments(ids=IDS, scale=SCALE, retries=2,
                                 fault_plan=plan)
        assert not report.completed()
        assert not report.all_passed
        by_id = {r.experiment_id: r for r in report.runs}
        assert by_id["fig6"].status == "failed"
        assert by_id["fig6"].attempts == 3
        assert "InjectedFault" in by_id["fig6"].error
        assert by_id["fig6"].result == {}
        assert by_id["table4"].status == "ok"
        # the surviving results are the uninjected results, bit for bit
        want = dict(baseline.results_dict())
        del want["fig6"]
        assert report.results_dict() == want
        counters = _chaos_counters(report)
        assert counters["faults.injected"] == 3.0
        assert counters["tasks.retried"] == 2.0
        assert counters["tasks.failed"] == 1.0
        assert "degraded: 1 of 2" in report.summary()
        assert report.timing_dict()["resilience"]["fig6"]["attempts"] == 3

    def test_deterministic_replay_of_a_seeded_plan(self):
        plan = FaultPlan.seeded(9, tasks=IDS)
        reports = [run_experiments(ids=IDS, scale=SCALE, retries=1,
                                   fault_plan=plan) for _ in range(2)]
        a, b = reports
        assert a.results_json() == b.results_json()
        assert [(r.experiment_id, r.status, r.attempts, r.error)
                for r in a.runs] == \
               [(r.experiment_id, r.status, r.attempts, r.error)
                for r in b.runs]
        assert _chaos_counters(a) == _chaos_counters(b)

    def test_fault_free_reruns_are_byte_identical(self, baseline):
        again = run_experiments(ids=IDS, scale=SCALE)
        assert again.results_json() == baseline.results_json()
        assert _chaos_counters(again) == {}


# ---------------------------------------------------------------------------
# Supervised workers
# ---------------------------------------------------------------------------

class TestParallelResilience:
    def test_hung_worker_never_blocks_collection(self, baseline):
        """Satellite regression: the old pool's unbounded ``.get()``
        would wait on this worker forever; the supervisor must kill it
        at the deadline and recover on the retry."""
        plan = FaultPlan.parse(
            "hang task=fig6 stage=place attempt=1 seconds=300")
        t0 = time.monotonic()
        report = run_experiments(ids=IDS, scale=SCALE, parallel=2,
                                 timeout_s=8, retries=1,
                                 fault_plan=plan)
        wall = time.monotonic() - t0
        assert wall < 120, f"collection blocked for {wall:.0f}s"
        assert report.completed()
        assert {r.experiment_id: r.attempts
                for r in report.runs} == {"fig6": 2, "table4": 1}
        counters = _chaos_counters(report)
        assert counters["tasks.timed_out"] == 1.0
        assert counters["tasks.retried"] == 1.0
        assert report.results_json() == baseline.results_json()

    def test_crashed_worker_is_replaced(self, baseline):
        plan = FaultPlan.parse("crash task=fig6 stage=task attempt=1")
        report = run_experiments(ids=IDS, scale=SCALE, parallel=2,
                                 retries=1, fault_plan=plan)
        assert report.completed()
        assert {r.experiment_id: r.attempts
                for r in report.runs} == {"fig6": 2, "table4": 1}
        counters = _chaos_counters(report)
        assert counters["tasks.crashed"] == 1.0
        assert counters["tasks.retried"] == 1.0
        assert report.results_json() == baseline.results_json()

    def test_combined_hang_crash_corruption_plan(self, tmp_path,
                                                 baseline):
        """The acceptance scenario: a plan that hangs one task forever,
        crashes another on every attempt, and corrupts cache entries --
        the parallel run must come back within the timeout budget with
        partial results, and the same plan must replay identically."""
        plan = FaultPlan.parse(
            "hang task=fig6 stage=place attempt=0 seconds=300; "
            "crash task=table4 stage=task attempt=0; "
            "corrupt task=* stage=cache.load attempt=1", seed=4)

        def chaos_run():
            t0 = time.monotonic()
            report = run_experiments(
                ids=IDS, scale=SCALE, parallel=2,
                cache_dir=str(tmp_path / "cache"),
                timeout_s=5, retries=1, fault_plan=plan)
            return report, time.monotonic() - t0

        first, wall = chaos_run()
        # budget: 2 attempts x 5s deadline for the hang, plus overhead
        assert wall < 120, f"run took {wall:.0f}s"
        by_id = {r.experiment_id: r for r in first.runs}
        assert by_id["fig6"].status == "timeout"
        assert by_id["table4"].status == "failed"
        assert "crashed" in by_id["table4"].error
        assert all(r.attempts == 2 for r in first.runs)
        assert first.results_dict() == {}
        assert not first.completed()

        replay, _ = chaos_run()
        assert [(r.experiment_id, r.status, r.attempts)
                for r in replay.runs] == \
               [(r.experiment_id, r.status, r.attempts)
                for r in first.runs]

    def test_unrecoverable_crash_yields_partial_results(self, baseline):
        plan = FaultPlan.parse("crash task=fig6 stage=task attempt=0")
        report = run_experiments(ids=IDS, scale=SCALE, parallel=2,
                                 retries=1, fault_plan=plan)
        by_id = {r.experiment_id: r for r in report.runs}
        assert by_id["fig6"].status == "failed"
        assert "crashed" in by_id["fig6"].error
        assert by_id["table4"].status == "ok"
        want = dict(baseline.results_dict())
        del want["fig6"]
        assert report.results_dict() == want
        assert _chaos_counters(report)["tasks.crashed"] == 2.0


# ---------------------------------------------------------------------------
# Cache corruption under the engine
# ---------------------------------------------------------------------------

class TestCacheChaos:
    def test_corruption_mid_suite_recomputes_and_heals(self, tmp_path,
                                                       baseline):
        cache_dir = str(tmp_path / "cache")
        warm = run_experiments(ids=IDS, scale=SCALE,
                               cache_dir=cache_dir)
        assert warm.cache_stats["stores"] > 0
        assert warm.results_json() == baseline.results_json()

        plan = FaultPlan.parse("corrupt task=* stage=cache.load attempt=1")
        chaos = run_experiments(ids=IDS, scale=SCALE,
                                cache_dir=cache_dir, fault_plan=plan)
        # the garbled entries were dropped, recomputed and re-stored;
        # the numbers never moved
        assert chaos.cache_stats["corrupt_drops"] >= 1
        assert chaos.completed()
        assert chaos.results_json() == baseline.results_json()
        counters = (chaos.metrics or {}).get("counters", {})
        assert counters["cache.corrupt_drops"] >= 1.0
        assert counters["faults.injected.corrupt"] >= 1.0

        # the atomic rewrite healed the disk tier: a fault-free rerun
        # disk-hits and stays byte-identical
        healed = run_experiments(ids=IDS, scale=SCALE,
                                 cache_dir=cache_dir)
        assert healed.cache_stats["disk_hits"] > 0
        assert healed.cache_stats["corrupt_drops"] == 0
        assert healed.results_json() == baseline.results_json()


# ---------------------------------------------------------------------------
# Exploration fan-out
# ---------------------------------------------------------------------------

class TestExploreResilience:
    GRID = [("2d", False), ("2d", True)]

    def test_partial_exploration_opt_in(self, tmp_path):
        plan = FaultPlan.parse("crash task=2d/rvt stage=task attempt=0")
        cache_dir = str(tmp_path / "cache")
        points = explore_points(self.GRID, scale=0.5, parallel=2,
                                cache_dir=cache_dir, retries=1,
                                fault_plan=plan, allow_partial=True)
        assert points[0] is None
        assert points[1] is not None

        with pytest.raises(EngineError, match="2d/rvt"):
            explore_points(self.GRID, scale=0.5, parallel=2,
                           cache_dir=cache_dir, retries=0,
                           fault_plan=plan)
