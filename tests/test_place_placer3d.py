"""Tests for the two-tier fold placer."""

import pytest

from repro.place.grid import Rect
from repro.place.partition import fm_bipartition, partition_by_clusters
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.place.placer3d import (clock_crossings, crossing_nets,
                                  fold_place_3d)
from tests.conftest import fresh_block


@pytest.fixture()
def folded_l2t(process, library):
    gb = fresh_block("l2t", library, seed=2)
    part = fm_bipartition(gb.netlist, seed=0)
    res = fold_place_3d(gb.netlist, process, part.assignment, "F2B",
                        PlacementConfig(seed=2))
    return gb, res


def test_die_assignment_applied(folded_l2t):
    gb, res = folded_l2t
    dies = {i.die for i in gb.netlist.instances.values()}
    assert dies == {0, 1}


def test_one_via_per_crossing_net(folded_l2t):
    gb, res = folded_l2t
    crossing = crossing_nets(gb.netlist)
    assert len(res.vias) == len(crossing)
    via_nets = {v.net_id for v in res.vias}
    assert via_nets == {n.id for n in crossing}


def test_vias_inside_outline(folded_l2t):
    gb, res = folded_l2t
    for v in res.vias:
        assert res.outline.contains(v.x, v.y)


def test_f2b_vias_avoid_macros(folded_l2t):
    gb, res = folded_l2t
    keepouts = [r for die in (0, 1) for r in res.grids[die].obstructions]
    for v in res.vias:
        for k in keepouts:
            assert not k.contains(v.x, v.y), (v, k)


def test_f2b_vias_respect_pitch(folded_l2t, process):
    gb, res = folded_l2t
    pitch = process.tsv.pitch_um
    sites = [(v.x, v.y) for v in res.vias]
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            assert max(abs(a[0] - b[0]), abs(a[1] - b[1])) >= pitch * 0.99


def test_f2f_vias_may_sit_over_macros(process, library):
    gb = fresh_block("l2d", library, seed=2)
    clusters = gb.clusters_of_regions(("subbank2", "subbank3"))
    res = fold_place_3d(gb.netlist, process,
                        partition_by_clusters(gb.netlist, clusters),
                        "F2F", PlacementConfig(seed=2))
    assert res.tsv_area_um2 == 0.0
    # at least the legalizer imposed no macro keepouts: displacement tiny
    assert all(v.displacement_um < 4 * process.f2f_via.pitch_um
               for v in res.vias)


def test_f2b_reserves_tsv_area(process, library):
    gb = fresh_block("l2t", library, seed=4)
    part = fm_bipartition(gb.netlist, seed=0)
    f2b = fold_place_3d(gb.netlist, process, part.assignment, "F2B",
                        PlacementConfig(seed=4))
    gb2 = fresh_block("l2t", library, seed=4)
    part2 = fm_bipartition(gb2.netlist, seed=0)
    f2f = fold_place_3d(gb2.netlist, process, part2.assignment, "F2F",
                        PlacementConfig(seed=4))
    assert f2b.tsv_area_um2 > 0
    assert f2b.footprint_um2 > f2f.footprint_um2


def test_folded_footprint_much_smaller_than_2d(process, library):
    gb2d = fresh_block("l2t", library, seed=5)
    r2d = place_block_2d(gb2d.netlist, PlacementConfig(seed=5))
    gb3d = fresh_block("l2t", library, seed=5)
    part = fm_bipartition(gb3d.netlist, seed=0)
    r3d = fold_place_3d(gb3d.netlist, process, part.assignment, "F2B",
                        PlacementConfig(seed=5))
    ratio = r3d.footprint_um2 / r2d.footprint_um2
    assert 0.45 < ratio < 0.75


def test_ports_get_die_of_majority(folded_l2t):
    gb, _ = folded_l2t
    nl = gb.netlist
    for name, port in list(nl.ports.items())[:40]:
        votes = {0: 0, 1: 0}
        for net in nl.nets_of_port(name):
            for ref in net.endpoints():
                if not ref.is_port:
                    votes[nl.instances[ref.inst].die] += 1
        if votes[0] != votes[1]:
            assert port.die == (0 if votes[0] > votes[1] else 1)


def test_ccx_natural_fold_has_four_connections(process, library):
    gb = fresh_block("ccx", library, seed=1)
    cpx = gb.clusters_of_regions(("cpx",))
    res = fold_place_3d(gb.netlist, process,
                        partition_by_clusters(gb.netlist, cpx), "F2B",
                        PlacementConfig(seed=1))
    # 3 test bridges cross; the clock adds its crossing during CTS
    assert res.n_vias == 3
    assert clock_crossings(gb.netlist) == 0  # per-half clock ports
