"""Tests for the detailed-route flow option and its ablation."""

import pytest

from repro.core.flow import FlowConfig, run_block_flow


@pytest.fixture(scope="module")
def pair(process):
    estimated = run_block_flow("l2t", FlowConfig(seed=5), process)
    detailed = run_block_flow("l2t", FlowConfig(seed=5,
                                                detailed_route=True),
                              process)
    return estimated, detailed


def test_detailed_flow_closes_timing(pair):
    _, detailed = pair
    assert detailed.sta.wns_ps >= -20.0


def test_congestion_attached_only_when_requested(pair):
    estimated, detailed = pair
    assert estimated.congestion is None
    assert detailed.congestion is not None
    assert detailed.congestion.overflow_fraction < 0.10


def test_routed_wirelength_reasonable_vs_estimate(pair):
    estimated, detailed = pair
    ratio = detailed.wirelength_um / estimated.wirelength_um
    assert 0.9 < ratio < 1.7


def test_power_reflects_measured_wires(pair):
    estimated, detailed = pair
    # detours make measured routing slightly more expensive
    assert detailed.power.total_uw >= 0.95 * estimated.power.total_uw


def test_detailed_route_on_folded_block(process):
    from repro.core.folding import FoldSpec
    d = run_block_flow("l2t", FlowConfig(
        seed=5, fold=FoldSpec(mode="mincut"), bonding="F2F",
        detailed_route=True), process)
    assert d.congestion is not None
    assert d.sta.wns_ps >= -20.0
    assert d.n_vias > 0
