"""Tests for design-space exploration."""

import pytest

from repro.core.explore import (DesignPoint, ExplorationResult,
                                explore_design_space, pareto_front)


def point(style="2d", dvt=False, p=100.0, f=10.0, t=50.0):
    return DesignPoint(style=style, dual_vth=dvt, power_mw=p,
                       footprint_mm2=f, max_temp_c=t,
                       n_3d_connections=0, wns_ps=0.0)


class TestPareto:
    def test_dominated_point_excluded(self):
        good = point(p=80, f=8, t=49)
        bad = point(p=100, f=10, t=50)
        front = pareto_front([good, bad])
        assert front == [good]

    def test_tradeoff_points_both_kept(self):
        cool = point(p=120, f=12, t=45)
        frugal = point(p=80, f=8, t=55)
        front = pareto_front([cool, frugal])
        assert len(front) == 2

    def test_identical_points_both_survive(self):
        a, b = point(), point()
        assert len(pareto_front([a, b])) == 2

    def test_dominates_strictness(self):
        a = point(p=100, f=10, t=50)
        b = point(p=100, f=10, t=50)
        assert not a.dominates(b)
        assert point(p=99, f=10, t=50).dominates(a)


class TestExploration:
    @pytest.fixture(scope="class")
    def result(self, process):
        grid = (("2d", False), ("core_cache", False),
                ("fold_f2f", True))
        return explore_design_space(process, grid=grid, scale=0.35)

    def test_every_config_evaluated(self, result):
        assert len(result.points) == 3
        assert {p.label for p in result.points} == \
            {"2d/rvt", "core_cache/rvt", "fold_f2f/dvt"}

    def test_pareto_front_nonempty(self, result):
        assert result.pareto
        assert all(p in result.points for p in result.pareto)

    def test_2d_not_power_optimal(self, result):
        assert result.best("power").style != "2d"
        assert result.best("temperature").style == "2d"

    def test_table_renders(self, result):
        text = result.table()
        assert "pareto" in text
        assert "fold_f2f/dvt" in text
        assert "*" in text
