"""Shared fixtures for the test suite."""

import pytest

from repro.designgen import block_type_by_name, generate_block
from repro.tech import make_process


@pytest.fixture(scope="session")
def process():
    """One process node for the whole session (immutable technology)."""
    return make_process()


@pytest.fixture(scope="session")
def library(process):
    return process.library


def fresh_block(name: str, library, seed: int = 1, scale: float = 1.0):
    """A newly generated block (never share: flows mutate netlists)."""
    return generate_block(block_type_by_name(name), library, seed=seed,
                          scale=scale)


@pytest.fixture()
def small_block(library):
    """A small, fast block for flow-level tests."""
    return fresh_block("ncu", library)


@pytest.fixture()
def ccx_block(library):
    return fresh_block("ccx", library)
