"""End-to-end checker tests: the five Fig. 8 chip styles lint clean,
the flow gates work, and the CLI / report card surface the results."""

import json

import pytest

from repro.__main__ import main
from repro.core import FlowConfig, FoldSpec, run_block_flow
from repro.core.fullchip import ChipConfig, build_chip
from repro.lint import LintConfig, lint_block, lint_chip
from repro.floorplan.t2_floorplans import STYLES

SCALE = 0.3


@pytest.fixture(scope="module", params=sorted(STYLES))
def styled_chip(request, process):
    config = ChipConfig(style=request.param, scale=SCALE)
    return build_chip(config, process)


def test_every_style_lints_clean(styled_chip, process):
    report = lint_chip(styled_chip, config=LintConfig())
    assert report.clean, (
        f"{styled_chip.style}: {report.summary()}\n" +
        "\n".join(str(v) for v in report.errors))
    # the chip context plus one per unique block design was checked
    assert f"chip/{styled_chip.style}" in report.contexts
    assert len(report.contexts) == 1 + len(styled_chip.block_designs)


def test_block_flows_lint_clean(process):
    for fold, bonding in ((None, "F2B"),
                          (FoldSpec(mode="mincut"), "F2B"),
                          (FoldSpec(mode="mincut"), "F2F")):
        config = FlowConfig(scale=0.4, fold=fold, bonding=bonding)
        design = run_block_flow("ncu", config, process)
        report = lint_block(design)
        assert report.clean, f"{fold}/{bonding}: {report.summary()}"


def test_flow_gate_accepts_clean_block(process):
    config = FlowConfig(scale=0.4, assert_clean=True)
    design = run_block_flow("ncu", config, process)
    assert design.n_cells > 0


def test_chip_gate_accepts_clean_chip(process):
    config = ChipConfig(style="fold_f2b", scale=SCALE, assert_clean=True)
    chip = build_chip(config, process)
    assert chip.router_overflow  # populated for the CHP003 rule


def test_cli_lint_block_clean(capsys):
    rc = main(["lint", "ncu", "--scale", "0.4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "lint CLEAN" in out


def test_cli_lint_json_and_waive(capsys):
    rc = main(["lint", "ncu", "--fold", "--scale", "0.4",
               "--waive", "PHY001", "--json"])
    data = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert data["clean"] is True
    waived = [v for v in data["violations"] if v.get("waived")]
    assert all(v["rule"] == "PHY001" for v in waived)


def test_report_card_embeds_lint_summary(styled_chip, process):
    if styled_chip.style != "2d":
        pytest.skip("one style is enough for the report card")
    from repro.analysis.report_card import chip_report_card
    text = chip_report_card(styled_chip, process,
                            include_integrity=False)
    assert "## Static checks (lint)" in text
    assert "lint CLEAN" in text
