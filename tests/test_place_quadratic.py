"""Tests for the quadratic (B2B) placement solver."""

import numpy as np
import pytest

from repro.place.quadratic import QPNet, QuadraticPlacer


def test_two_fixed_points_pull_between():
    # HPWL is flat anywhere between two anchors, so B2B must land the
    # cell strictly between them (not collapse to either end)
    nets = [
        QPNet(movable=[0], fixed=[(0.0, 0.0)]),
        QPNet(movable=[0], fixed=[(10.0, 10.0)]),
    ]
    placer = QuadraticPlacer(1, nets)
    x, y = placer.solve(np.array([3.0]), np.array([3.0]))
    assert 0.5 < x[0] < 9.5
    assert 0.5 < y[0] < 9.5


def test_equal_weights_from_center_stay_centered():
    nets = [
        QPNet(movable=[0], fixed=[(0.0, 0.0)]),
        QPNet(movable=[0], fixed=[(10.0, 10.0)]),
    ]
    placer = QuadraticPlacer(1, nets)
    x, y = placer.solve(np.array([5.0]), np.array([5.0]))
    assert x[0] == pytest.approx(5.0, abs=0.5)


def test_chain_orders_monotonically():
    # fixed(0) - a - b - c - fixed(30): solution must be ordered
    nets = [
        QPNet(movable=[0], fixed=[(0.0, 0.0)]),
        QPNet(movable=[0, 1], fixed=[]),
        QPNet(movable=[1, 2], fixed=[]),
        QPNet(movable=[2], fixed=[(30.0, 0.0)]),
    ]
    placer = QuadraticPlacer(3, nets)
    x0 = np.array([1.0, 2.0, 3.0])
    x, y = placer.solve(x0, np.zeros(3))
    assert 0 < x[0] < x[1] < x[2] < 30


def test_anchor_pulls_toward_target():
    nets = [QPNet(movable=[0], fixed=[(0.0, 0.0)])]
    placer = QuadraticPlacer(1, nets)
    ax = np.array([100.0])
    ay = np.array([0.0])
    x_weak, _ = placer.solve(np.array([0.0]), np.array([0.0]),
                             anchors=(ax, ay, 1e-6))
    x_strong, _ = placer.solve(np.array([0.0]), np.array([0.0]),
                               anchors=(ax, ay, 10.0))
    assert x_strong[0] > x_weak[0]
    assert x_strong[0] > 90


def test_isolated_cell_stays_finite():
    placer = QuadraticPlacer(2, [QPNet(movable=[0], fixed=[(5.0, 5.0)])])
    x, y = placer.solve(np.array([0.0, 42.0]), np.array([0.0, 7.0]))
    assert np.isfinite(x).all() and np.isfinite(y).all()


def test_net_weight_strengthens_pull():
    nets_light = [
        QPNet(movable=[0], fixed=[(0.0, 0.0)], weight=1.0),
        QPNet(movable=[0], fixed=[(10.0, 0.0)], weight=1.0),
    ]
    nets_heavy = [
        QPNet(movable=[0], fixed=[(0.0, 0.0)], weight=1.0),
        QPNet(movable=[0], fixed=[(10.0, 0.0)], weight=9.0),
    ]
    x_light, _ = QuadraticPlacer(1, nets_light).solve(
        np.array([5.0]), np.array([0.0]))
    x_heavy, _ = QuadraticPlacer(1, nets_heavy).solve(
        np.array([5.0]), np.array([0.0]))
    assert x_heavy[0] > x_light[0]


def test_multi_pin_net_collapses_without_fixed():
    nets = [QPNet(movable=[0, 1, 2], fixed=[])]
    placer = QuadraticPlacer(3, nets)
    x, y = placer.solve(np.array([0.0, 5.0, 10.0]),
                        np.array([0.0, 0.0, 0.0]), rounds=3)
    assert np.ptp(x) < 5.0  # pulled together


def test_degenerate_nets_skipped():
    placer = QuadraticPlacer(1, [
        QPNet(movable=[], fixed=[(0, 0), (1, 1)]),
        QPNet(movable=[0], fixed=[]),
    ])
    assert placer.nets == []
