"""Tests for the global router and the F2F via placement flow."""

import pytest

from repro.place.grid import Rect
from repro.place.partition import fm_bipartition
from repro.place.placer2d import PlacementConfig
from repro.place.placer3d import crossing_nets, fold_place_3d
from repro.route.global_router import GlobalRouter
from repro.route.route3d import export_merged_view, place_f2f_vias
from tests.conftest import fresh_block


class TestGlobalRouter:
    def setup_method(self):
        self.region = Rect(0, 0, 3200, 3200)

    def test_straight_route_length(self):
        gr = GlobalRouter(self.region, n_gcells=32)
        path = gr.route((100, 100), (3100, 100))
        manhattan = 3000
        assert path.length_um == pytest.approx(manhattan, rel=0.15)
        assert path.detour_um < 0.2 * manhattan

    def test_usage_committed(self):
        gr = GlobalRouter(self.region, n_gcells=32)
        gr.route((100, 1600), (3100, 1600), n_wires=50)
        assert gr.usage.sum() >= 50

    def test_blockage_forces_detour(self):
        gr = GlobalRouter(self.region, n_gcells=32,
                          capacity_per_gcell=100)
        gr.add_blockage(Rect(1200, 0, 2000, 3100), remaining_fraction=0.0)
        path = gr.route((100, 1600), (3100, 1600))
        assert path.detour_um > 500

    def test_partial_blockage_cheaper_than_full(self):
        full = GlobalRouter(self.region, n_gcells=32, capacity_per_gcell=100)
        full.add_blockage(Rect(1200, 0, 2000, 3100), 0.0)
        part = GlobalRouter(self.region, n_gcells=32, capacity_per_gcell=100)
        part.add_blockage(Rect(1200, 0, 2000, 3100), 0.8)
        p_full = full.route((100, 1600), (3100, 1600))
        p_part = part.route((100, 1600), (3100, 1600))
        assert p_part.length_um <= p_full.length_um

    def test_congestion_spreads_bundles(self):
        gr = GlobalRouter(self.region, n_gcells=16, capacity_per_gcell=60)
        for _ in range(6):
            gr.route((100, 1600), (3100, 1600), n_wires=50)
        assert gr.overflow() < 0.5  # later bundles detoured around

    def test_same_gcell_route(self):
        gr = GlobalRouter(self.region, n_gcells=8)
        path = gr.route((10, 10), (20, 20))
        assert path.length_um >= 0.0


class TestF2FViaPlacement:
    @pytest.fixture()
    def folded(self, process, library):
        gb = fresh_block("l2t", library, seed=3)
        part = fm_bipartition(gb.netlist, seed=0)
        res = fold_place_3d(gb.netlist, process, part.assignment, "F2F",
                            PlacementConfig(seed=3))
        return gb, res

    def test_one_site_per_crossing_net(self, folded, process):
        gb, res = folded
        plan = place_f2f_vias(gb.netlist, res.outline, process)
        crossing = {n.id for n in crossing_nets(gb.netlist)}
        assert set(plan.sites) == crossing

    def test_sites_inside_outline(self, folded, process):
        gb, res = folded
        plan = place_f2f_vias(gb.netlist, res.outline, process)
        for x, y in plan.sites.values():
            assert res.outline.contains(x, y)

    def test_sites_respect_pitch(self, folded, process):
        gb, res = folded
        plan = place_f2f_vias(gb.netlist, res.outline, process)
        pitch = process.f2f_via.pitch_um
        pts = list(plan.sites.values())
        for i, a in enumerate(pts):
            for b in pts[i + 1:]:
                assert max(abs(a[0] - b[0]),
                           abs(a[1] - b[1])) >= pitch * 0.99

    def test_displacement_small(self, folded, process):
        gb, res = folded
        plan = place_f2f_vias(gb.netlist, res.outline, process)
        if plan.n_vias:
            assert plan.total_displacement_um / plan.n_vias < \
                10 * process.f2f_via.pitch_um

    def test_merged_view_export(self, folded, process):
        gb, res = folded
        text = export_merged_view(gb.netlist, res.outline, max_nets=200)
        assert "DESIGN l2t_3dview ;" in text
        assert "M1_die_top" in text and "M9_die_bot" in text
        assert "3DNET" in text
        assert "TIED_TO_GROUND" in text  # 2D nets excluded from routing
        assert text.count("END") >= 3
