"""Tests for gate sizing and dual-Vth assignment."""

import pytest

from repro.netlist.core import INPUT, Netlist, PinRef
from repro.opt.dualvth import (DualVthConfig, assign_hvt, hvt_fraction,
                               restore_rvt_on_violations)
from repro.opt.sizing import SizingConfig, fix_timing, recover_power
from repro.route.estimate import route_block
from repro.tech.cells import VTH_HVT, VTH_RVT, make_28nm_library
from repro.tech.process import CPU_CLOCK, make_process
from repro.timing.sta import TimingConfig, run_sta


@pytest.fixture(scope="module")
def proc():
    return make_process()


@pytest.fixture(scope="module")
def lib(proc):
    return proc.library


def pipeline(lib, n_stages, spacing=50.0, drive=2):
    nl = Netlist("pipe")
    dff = lib.master("DFF_X1")
    inv = lib.master(f"INV_X{drive}")
    prev = nl.add_instance("ff0", dff, x=0, y=0)
    for i in range(n_stages):
        c = nl.add_instance(f"i{i}", inv, x=(i + 1) * spacing, y=0)
        nl.add_net(f"n{i}", PinRef(inst=prev.id),
                   [PinRef(inst=c.id, pin=0)])
        prev = c
    ff1 = nl.add_instance("ff1", dff, x=(n_stages + 1) * spacing, y=0)
    nl.add_net("nD", PinRef(inst=prev.id), [PinRef(inst=ff1.id, pin=0)])
    nl.add_port("clk", INPUT)
    nl.add_net("clk", PinRef(port="clk"),
               [PinRef(inst=nl.instances[0].id, pin=1),
                PinRef(inst=ff1.id, pin=1)], is_clock=True)
    return nl


def analyze(nl, proc):
    routing = route_block(nl, proc.metal_stack)
    sta = run_sta(nl, routing, proc, TimingConfig(CPU_CLOCK))
    return routing, sta


class TestFixTiming:
    def test_upsizes_violating_cells(self, proc, lib):
        nl = pipeline(lib, n_stages=30, spacing=120.0, drive=1)
        routing, sta = analyze(nl, proc)
        assert sta.wns_ps < 0
        moves = fix_timing(nl, routing, sta, lib)
        assert moves > 0
        drives = {c.master.drive for c in nl.cells if not c.is_sequential}
        assert max(drives) > 1

    def test_improves_wns(self, proc, lib):
        nl = pipeline(lib, n_stages=30, spacing=120.0, drive=1)
        routing, sta = analyze(nl, proc)
        before = sta.wns_ps
        for _ in range(3):
            moves = fix_timing(nl, routing, sta, lib)
            routing, sta = analyze(nl, proc)
            if not moves:
                break
        assert sta.wns_ps > before

    def test_no_moves_when_met(self, proc, lib):
        nl = pipeline(lib, n_stages=2)
        routing, sta = analyze(nl, proc)
        assert sta.wns_ps > 0
        assert fix_timing(nl, routing, sta, lib) == 0


class TestRecoverPower:
    def test_downsizes_slack_rich_cells(self, proc, lib):
        nl = pipeline(lib, n_stages=3, drive=8)
        routing, sta = analyze(nl, proc)
        moves = recover_power(nl, routing, sta, lib)
        assert moves > 0
        drives = [c.master.drive for c in nl.cells if not c.is_sequential]
        assert min(drives) < 8

    def test_keeps_timing_met(self, proc, lib):
        nl = pipeline(lib, n_stages=6, drive=8)
        for _ in range(4):
            routing, sta = analyze(nl, proc)
            if not recover_power(nl, routing, sta, lib):
                break
        _, sta = analyze(nl, proc)
        assert sta.wns_ps >= 0

    def test_margin_limits_moves(self, proc, lib):
        nl = pipeline(lib, n_stages=3, drive=2)
        routing, sta = analyze(nl, proc)
        huge_margin = SizingConfig(downsize_margin_ps=10000.0)
        assert recover_power(nl, routing, sta, lib, huge_margin) == 0


class TestDualVth:
    def test_swaps_when_slack_allows(self, proc, lib):
        nl = pipeline(lib, n_stages=3)
        routing, sta = analyze(nl, proc)
        moves = assign_hvt(nl, routing, sta, lib)
        assert moves > 0
        assert hvt_fraction(nl) > 0.5

    def test_no_swap_without_slack(self, proc, lib):
        nl = pipeline(lib, n_stages=30, spacing=150.0, drive=1)
        routing, sta = analyze(nl, proc)
        assert sta.wns_ps < 0
        # critical cells (negative slack) must stay RVT
        assign_hvt(nl, routing, sta, lib)
        for c in nl.cells:
            if sta.slack.get(c.id, 1e9) < 0:
                assert c.master.vth == VTH_RVT

    def test_restore_reverts_violators(self, proc, lib):
        nl = pipeline(lib, n_stages=10, spacing=100.0)
        routing, sta = analyze(nl, proc)
        # force-swap everything, even illegally
        for c in nl.cells:
            if not c.is_sequential:
                nl.replace_master(c.id, lib.variant(c.master,
                                                    vth=VTH_HVT))
        routing, sta = analyze(nl, proc)
        if sta.wns_ps < 0:
            reverted = restore_rvt_on_violations(nl, sta, lib)
            assert reverted > 0

    def test_timing_met_after_swaps(self, proc, lib):
        nl = pipeline(lib, n_stages=4)
        routing, sta = analyze(nl, proc)
        assign_hvt(nl, routing, sta, lib)
        _, sta = analyze(nl, proc)
        assert sta.wns_ps >= 0

    def test_hvt_fraction_empty(self, lib):
        assert hvt_fraction(Netlist("e")) == 0.0
