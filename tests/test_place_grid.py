"""Tests for rectangles and the supply/demand density grid."""

import numpy as np
import pytest

from repro.place.grid import DensityGrid, Rect


class TestRect:
    def test_dimensions(self):
        r = Rect(1, 2, 4, 7)
        assert r.width == 3
        assert r.height == 5
        assert r.area == 15

    def test_contains(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(5, 5)
        assert r.contains(0, 10)
        assert not r.contains(-1, 5)
        assert not r.contains(5, 11)

    def test_clamp(self):
        r = Rect(0, 0, 10, 10)
        assert r.clamp(-5, 5) == (0, 5)
        assert r.clamp(20, 20) == (10, 10)
        assert r.clamp(3, 4) == (3, 4)
        assert r.clamp(-5, 5, margin=1) == (1, 5)

    def test_overlaps(self):
        a = Rect(0, 0, 10, 10)
        assert a.overlaps(Rect(5, 5, 15, 15))
        assert not a.overlaps(Rect(10, 0, 20, 10))  # touching edges
        assert not a.overlaps(Rect(11, 11, 20, 20))

    def test_negative_area_clamped(self):
        assert Rect(5, 5, 1, 1).area == 0.0


class TestDensityGrid:
    def test_rejects_empty_region(self):
        with pytest.raises(ValueError):
            DensityGrid(Rect(0, 0, 0, 10))

    def test_total_supply_matches_region(self):
        g = DensityGrid(Rect(0, 0, 100, 100), target_bins=100,
                        utilization=1.0)
        assert g.total_supply() == pytest.approx(100 * 100)

    def test_utilization_scales_supply(self):
        g = DensityGrid(Rect(0, 0, 100, 100), utilization=0.5)
        assert g.total_supply() == pytest.approx(5000)

    def test_obstruction_carves_hole(self):
        g = DensityGrid(Rect(0, 0, 100, 100), target_bins=100,
                        utilization=1.0)
        g.add_obstruction(Rect(0, 0, 50, 50))
        assert g.total_supply() == pytest.approx(100 * 100 - 50 * 50,
                                                 rel=0.01)

    def test_overlapping_obstructions_never_negative(self):
        g = DensityGrid(Rect(0, 0, 100, 100), utilization=1.0)
        g.add_obstruction(Rect(0, 0, 60, 60))
        g.add_obstruction(Rect(0, 0, 60, 60))
        assert g.supply.min() >= 0.0

    def test_bin_of_clamps(self):
        g = DensityGrid(Rect(0, 0, 100, 100), target_bins=100)
        assert g.bin_of(-10, -10) == (0, 0)
        i, j = g.bin_of(200, 200)
        assert i == g.nx - 1 and j == g.ny - 1

    def test_bin_center_roundtrip(self):
        g = DensityGrid(Rect(0, 0, 100, 100), target_bins=64)
        cx, cy = g.bin_center(3, 4)
        assert g.bin_of(cx, cy) == (3, 4)

    def test_in_obstruction(self):
        g = DensityGrid(Rect(0, 0, 100, 100))
        g.add_obstruction(Rect(10, 10, 20, 20))
        assert g.in_obstruction(15, 15)
        assert not g.in_obstruction(50, 50)

    def test_demand_map_accumulates(self):
        g = DensityGrid(Rect(0, 0, 100, 100), target_bins=100)
        xs = np.array([5.0, 5.0, 95.0])
        ys = np.array([5.0, 5.0, 95.0])
        areas = np.array([10.0, 20.0, 5.0])
        demand = g.demand_map(xs, ys, areas)
        assert demand.sum() == pytest.approx(35.0)
        assert demand[g.bin_of(5, 5)] == pytest.approx(30.0)

    def test_overflow_zero_when_spread(self):
        g = DensityGrid(Rect(0, 0, 100, 100), target_bins=25,
                        utilization=1.0)
        rng = np.random.default_rng(0)
        xs = rng.uniform(0, 100, 200)
        ys = rng.uniform(0, 100, 200)
        areas = np.full(200, 1.0)
        assert g.overflow(xs, ys, areas) == pytest.approx(0.0)

    def test_overflow_when_piled_up(self):
        g = DensityGrid(Rect(0, 0, 100, 100), target_bins=25,
                        utilization=0.5)
        xs = np.full(100, 50.0)
        ys = np.full(100, 50.0)
        areas = np.full(100, 50.0)
        assert g.overflow(xs, ys, areas) > 0.5

    def test_nonsquare_region_aspect(self):
        g = DensityGrid(Rect(0, 0, 400, 100), target_bins=64)
        assert g.nx > g.ny
