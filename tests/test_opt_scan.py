"""Tests for scan-chain insertion."""

import pytest

from repro.opt.scan import (insert_scan_chains, scan_order_quality)
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.place.partition import fm_bipartition
from repro.place.placer3d import fold_place_3d
from tests.conftest import fresh_block


@pytest.fixture()
def placed(library):
    gb = fresh_block("l2t", library, seed=8)
    place_block_2d(gb.netlist, PlacementConfig(seed=8))
    return gb


def test_all_flops_stitched_once(placed):
    nl = placed.netlist
    flops = {i.id for i in nl.instances.values() if i.is_sequential}
    res = insert_scan_chains(nl, n_chains=4)
    stitched = [f for c in res.chains for f in c.flops]
    assert sorted(stitched) == sorted(flops)
    assert res.n_flops == len(flops)
    assert nl.validate() == []


def test_ports_created_per_chain(placed):
    nl = placed.netlist
    res = insert_scan_chains(nl, n_chains=3)
    for c in res.chains:
        assert f"scan_in_{c.index}" in nl.ports
        assert f"scan_out_{c.index}" in nl.ports
        assert nl.ports[f"scan_in_{c.index}"].false_path


def test_scan_nets_low_activity(placed):
    nl = placed.netlist
    insert_scan_chains(nl)
    scan_nets = [n for n in nl.nets.values()
                 if n.name.startswith("scan_")]
    assert scan_nets
    assert all(n.activity == pytest.approx(0.01) for n in scan_nets)


def test_reorder_beats_random(placed):
    nl = placed.netlist
    res = insert_scan_chains(nl, n_chains=2)
    big = max(res.chains, key=lambda c: len(c.flops))
    assert scan_order_quality(nl, big) < 0.8


def test_folded_chains_stay_per_tier(library, process):
    gb = fresh_block("l2t", library, seed=8)
    part = fm_bipartition(gb.netlist, seed=0)
    fold_place_3d(gb.netlist, process, part.assignment, "F2F",
                  PlacementConfig(seed=8))
    res = insert_scan_chains(gb.netlist, n_chains=2)
    for chain in res.chains:
        dies = {gb.netlist.instances[f].die for f in chain.flops}
        assert dies == {chain.die}


def test_timing_unaffected_by_scan(placed, process):
    from repro.route.estimate import route_block
    from repro.timing.sta import TimingConfig, run_sta
    nl = placed.netlist
    routing = route_block(nl, process.metal_stack)
    before = run_sta(nl, routing, process, TimingConfig("cpu_clk"))
    insert_scan_chains(nl)
    routing = route_block(nl, process.metal_stack)
    after = run_sta(nl, routing, process, TimingConfig("cpu_clk"))
    # scan ports are false paths; functional slack must not regress
    assert after.wns_ps >= before.wns_ps - 1.0
