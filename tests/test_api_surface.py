"""API-surface hygiene: exports resolve, and public items are documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro", "repro.tech", "repro.netlist", "repro.designgen",
    "repro.floorplan", "repro.place", "repro.route", "repro.timing",
    "repro.power", "repro.opt", "repro.cts", "repro.core",
    "repro.thermal", "repro.analysis", "repro.obs", "repro.parallel",
    "repro.service",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), package
    for name in mod.__all__:
        assert getattr(mod, name, None) is not None, \
            f"{package}.{name} in __all__ but unresolvable"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_classes_and_functions_documented(package):
    mod = importlib.import_module(package)
    undocumented = []
    for name in mod.__all__:
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{package}.{name}")
    assert not undocumented, undocumented


@pytest.mark.parametrize("package", PACKAGES)
def test_modules_have_docstrings(package):
    mod = importlib.import_module(package)
    assert (mod.__doc__ or "").strip(), package


def test_top_level_lazy_exports():
    import repro
    assert repro.FlowConfig is not None
    assert repro.build_chip is not None
    assert callable(repro.run_experiment)
    with pytest.raises(AttributeError):
        repro.definitely_not_a_symbol


def test_service_surface_is_pinned():
    """The service package's public request surface: the frozen wire
    schema plus broker/client entry points, loaded lazily."""
    import repro.service as service

    expected = {
        "SCHEMA_VERSION", "PointSpec", "PointResult", "SchemaError",
        "SweepRequest", "decode_line", "encode_line",
        "Broker", "BrokerHandle", "ServiceConfig", "serve",
        "serve_background", "Client", "ServiceError",
    }
    assert set(service.__all__) == expected
    for name in expected:
        assert getattr(service, name, None) is not None, name


def test_service_import_is_lazy():
    """Importing ``repro.service`` must not drag in the broker or
    client (checked in a fresh interpreter -- this process has long
    since imported them)."""
    import subprocess
    import sys

    code = ("import sys; import repro.service; "
            "assert 'repro.service.broker' not in sys.modules; "
            "assert 'repro.service.client' not in sys.modules; "
            "print('lazy ok')")
    out = subprocess.run([sys.executable, "-c", code],
                         capture_output=True, text=True)
    assert out.returncode == 0, out.stderr
    assert "lazy ok" in out.stdout
