"""Tests for clock-gating insertion."""

import pytest

from repro.cts.tree import synthesize_clock_tree
from repro.opt.clockgate import (flop_input_activity, insert_clock_gates)
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.power.activity import apply_activity, propagate_activity
from repro.power.analysis import analyze_power
from repro.route.estimate import route_block
from repro.tech.process import CPU_CLOCK
from tests.conftest import fresh_block


@pytest.fixture()
def placed(library):
    gb = fresh_block("l2t", library, seed=19)
    place_block_2d(gb.netlist, PlacementConfig(seed=19))
    return gb


def test_flop_activity_extraction(placed):
    nl = placed.netlist
    signals = propagate_activity(nl)
    acts = flop_input_activity(nl, signals)
    flops = [i for i in nl.instances.values() if i.is_sequential]
    assert len(acts) == len(flops)
    assert all(0.0 <= a <= 1.0 for a in acts.values())


def test_gating_annotates_candidates(placed, process):
    nl = placed.netlist
    signals = propagate_activity(nl)
    res = insert_clock_gates(nl, process, signals,
                             activity_threshold=0.15)
    assert res.n_gates > 0
    assert res.gated_flops >= 4 * res.n_gates
    gated = [i for i in nl.instances.values()
             if i.gated_activity is not None]
    assert len(gated) == res.gated_flops
    assert all(0.0 < g.gated_activity <= 1.0 for g in gated)
    # ICG cells were added
    icgs = [i for i in nl.instances.values()
            if i.name.startswith("icg_")]
    assert len(icgs) == res.n_gates


def test_gating_saves_power(placed, process):
    nl = placed.netlist
    routing = route_block(nl, process.metal_stack)
    signals = propagate_activity(nl)
    apply_activity(nl, signals)
    cts0 = synthesize_clock_tree(nl, process)
    before = analyze_power(nl, routing, process, CPU_CLOCK, cts=cts0)
    res = insert_clock_gates(nl, process, signals,
                             activity_threshold=0.2)
    assert res.gated_flops > 0
    routing = route_block(nl, process.metal_stack)
    cts1 = synthesize_clock_tree(nl, process)
    after = analyze_power(nl, routing, process, CPU_CLOCK, cts=cts1)
    assert after.total_uw < before.total_uw
    # clock pin capacitance seen by the tree shrank
    assert cts1.sink_pin_cap_ff < cts0.sink_pin_cap_ff


def test_high_threshold_gates_more(placed, process):
    nl = placed.netlist
    signals = propagate_activity(nl)
    low = insert_clock_gates(nl, process, signals,
                             activity_threshold=0.02)
    # fresh netlist for the generous threshold
    gb2 = fresh_block("l2t", process.library, seed=19)
    place_block_2d(gb2.netlist, PlacementConfig(seed=19))
    signals2 = propagate_activity(gb2.netlist)
    high = insert_clock_gates(gb2.netlist, process, signals2,
                              activity_threshold=0.5)
    assert high.gated_flops >= low.gated_flops


def test_already_gated_flops_skipped(placed, process):
    nl = placed.netlist
    signals = propagate_activity(nl)
    first = insert_clock_gates(nl, process, signals,
                               activity_threshold=0.2)
    second = insert_clock_gates(nl, process, signals,
                                activity_threshold=0.2)
    assert second.gated_flops == 0 or \
        second.gated_flops < first.gated_flops
