"""Tests for timing path extraction and chip-level sign-off."""

import pytest

from repro.core.chip_sta import (CrossPath, build_signed_off_chip,
                                 pipeline_failing_bundles, run_chip_sta)
from repro.core.flow import FlowConfig, run_block_flow
from repro.core.fullchip import ChipConfig, build_chip
from repro.timing.paths import extract_worst_paths, io_path_delays
from repro.timing.sta import TimingConfig


@pytest.fixture(scope="module")
def l2t_design(process):
    return run_block_flow("l2t", FlowConfig(seed=2), process)


def _cfg(design):
    domain = design.generated.block_type.logic.clock_domain
    return TimingConfig(domain,
                        default_io_delay_ps=design.config.io_budget_ps)


class TestWorstPaths:
    def test_paths_extracted(self, l2t_design, process):
        d = l2t_design
        paths = extract_worst_paths(d.netlist, d.routing, process,
                                    _cfg(d), n_paths=3, sta=d.sta)
        assert 1 <= len(paths) <= 3

    def test_path_slacks_match_sta(self, l2t_design, process):
        d = l2t_design
        paths = extract_worst_paths(d.netlist, d.routing, process,
                                    _cfg(d), n_paths=3, sta=d.sta)
        assert paths[0].slack_ps == pytest.approx(d.sta.wns_ps)
        slacks = [p.slack_ps for p in paths]
        assert slacks == sorted(slacks)

    def test_path_arrivals_monotonic(self, l2t_design, process):
        d = l2t_design
        for path in extract_worst_paths(d.netlist, d.routing, process,
                                        _cfg(d), n_paths=2, sta=d.sta):
            arr = [s.arrival_ps for s in path.stages]
            assert arr == sorted(arr)

    def test_report_renders(self, l2t_design, process):
        d = l2t_design
        path = extract_worst_paths(d.netlist, d.routing, process,
                                   _cfg(d), n_paths=1, sta=d.sta)[0]
        text = path.report()
        assert "startpoint" in text and "slack" in text
        assert path.stages[0].instance in text


class TestIoPathDelays:
    def test_delays_positive(self, l2t_design, process):
        d = l2t_design
        t_in, t_out = io_path_delays(d.netlist, d.routing, process,
                                     _cfg(d), sta=d.sta)
        assert t_in > 0 and t_out > 0

    def test_io_paths_fit_budgeted_period(self, l2t_design, process):
        d = l2t_design
        period = d.sta.period_ps
        budget = d.config.io_budget_ps
        t_in, t_out = io_path_delays(d.netlist, d.routing, process,
                                     _cfg(d), sta=d.sta)
        # the block met timing, so budgeted port paths fit the period
        assert t_in <= period - budget + 30.0
        assert t_out <= period - budget + 30.0


class TestCrossPath:
    def test_slack_arithmetic(self):
        p = CrossPath("a", "b", t_out_ps=300, wire_ps=200, t_in_ps=400,
                      period_ps=1000)
        assert p.delay_ps == 900
        assert p.slack_ps == 100
        assert p.latency_cycles == 1

    def test_pipelining_splits_wire(self):
        p = CrossPath("a", "b", t_out_ps=300, wire_ps=2000, t_in_ps=400,
                      period_ps=1000)
        assert p.slack_ps < 0
        piped = CrossPath("a", "b", 300, 2000, 400, 1000,
                          pipeline_stages=3)
        assert piped.slack_ps > p.slack_ps
        assert piped.latency_cycles == 4

    def test_pipeline_failing_bundles(self):
        from repro.core.chip_sta import ChipSTAResult
        bad = CrossPath("a", "b", 200, 3000, 200, 1000)
        ok = CrossPath("c", "d", 100, 100, 100, 1000)
        sta = ChipSTAResult(paths=[bad, ok],
                            wns_ps=bad.slack_ps, block_wns_ps=0.0)
        fixed = pipeline_failing_bundles(sta)
        assert fixed.pipelined_bundles == 1
        assert fixed.wns_ps > sta.wns_ps
        assert fixed.paths[1].pipeline_stages == 0


class TestChipSignOff:
    @pytest.fixture(scope="class")
    def signed(self, process):
        return build_signed_off_chip(
            ChipConfig(style="core_cache", scale=0.4), process,
            max_iterations=2)

    def test_converges(self, signed):
        chip, sta = signed
        assert sta.wns_ps >= -30.0

    def test_report(self, signed):
        _, sta = signed
        text = sta.report(3)
        assert "chip-level sign-off" in text
        assert "WNS" in text

    def test_paths_cover_both_directions(self, signed):
        chip, sta = signed
        assert len(sta.paths) == 2 * len(chip.routed_bundles)

    def test_run_chip_sta_standalone(self, process):
        chip = build_chip(ChipConfig(style="2d", scale=0.4), process)
        sta = run_chip_sta(chip, process)
        assert sta.paths
        assert sta.block_wns_ps == chip.wns_ps
