"""Tests for full-chip assembly (reduced scale for speed)."""

import pytest

from repro.core.fullchip import (DEFAULT_FOLDS, ChipConfig, ChipDesign,
                                 build_chip)
from repro.floorplan.t2_floorplans import FOLDED_TYPES

SCALE = 0.5


@pytest.fixture(scope="module")
def chip_2d(process):
    return build_chip(ChipConfig(style="2d", scale=SCALE), process)


@pytest.fixture(scope="module")
def chip_cc(process):
    return build_chip(ChipConfig(style="core_cache", scale=SCALE), process)


@pytest.fixture(scope="module")
def chip_fold(process):
    return build_chip(ChipConfig(style="fold_f2f", scale=SCALE), process)


def test_config_validation():
    with pytest.raises(ValueError):
        ChipConfig(style="mobius")
    cfg = ChipConfig(style="fold_f2b")
    assert cfg.is_3d and cfg.is_folded and cfg.bonding == "F2B"
    assert ChipConfig(style="fold_f2f").bonding == "F2F"
    assert not ChipConfig(style="2d").is_3d


def test_default_folds_cover_folded_types():
    assert set(DEFAULT_FOLDS) == set(FOLDED_TYPES)


def test_chip_2d_sane(chip_2d):
    c = chip_2d
    assert c.footprint_um2 > 0
    assert c.n_cells > 10000
    assert c.n_buffers > 0
    assert c.n_3d_connections == 0
    assert c.power.total_uw > 0
    assert c.interblock_wl_um > 0
    assert len(c.routed_bundles) > 30
    assert c.floorplan.n_dies == 1


def test_block_of_lookup(chip_2d):
    assert chip_2d.block_of("spc3").name == "spc"
    assert chip_2d.block_of("ccx").name == "ccx"


def test_3d_halves_footprint(chip_2d, chip_cc):
    ratio = chip_cc.footprint_um2 / chip_2d.footprint_um2
    assert 0.45 < ratio < 0.75


def test_3d_has_tsvs(chip_cc):
    assert chip_cc.n_3d_connections > 100
    assert chip_cc.floorplan.n_dies == 2


def test_3d_saves_power(chip_2d, chip_cc):
    assert chip_cc.power.total_uw < 0.97 * chip_2d.power.total_uw


def test_3d_cuts_buffers_and_wirelength(chip_2d, chip_cc):
    assert chip_cc.n_buffers < chip_2d.n_buffers
    assert chip_cc.wirelength_um < chip_2d.wirelength_um


def test_folding_competitive_with_plain_stacking(chip_cc, chip_fold):
    # folding's edge shrinks at reduced model scale (fewer long wires);
    # at full scale the fig8/table5 benches show the clear win
    assert chip_fold.power.total_uw < 1.07 * chip_cc.power.total_uw
    assert chip_fold.n_3d_connections > chip_cc.n_3d_connections


def test_folded_blocks_in_floorplan(chip_fold):
    from repro.floorplan.t2_floorplans import BOTH_DIES
    folded = [n for n, d in chip_fold.floorplan.die_of.items()
              if d == BOTH_DIES]
    bases = {n.rstrip("0123456789") for n in folded}
    assert bases == set(FOLDED_TYPES)


def test_chip_timing_met(chip_2d, chip_cc, chip_fold):
    for chip in (chip_2d, chip_cc, chip_fold):
        assert chip.wns_ps >= -25.0


def test_power_breakdown_consistent(chip_2d):
    p = chip_2d.power
    assert p.total_uw == pytest.approx(
        p.cell_uw + p.net_uw + p.leakage_uw, rel=1e-9)


def test_crossing_bundles_only_in_3d(chip_2d, chip_cc):
    assert not any(rb.crosses_dies for rb in chip_2d.routed_bundles)
    assert any(rb.crosses_dies for rb in chip_cc.routed_bundles)


def test_dual_vth_chip(process):
    chip = build_chip(ChipConfig(style="2d", scale=SCALE, dual_vth=True),
                      process)
    assert chip.hvt_fraction > 0.6
