"""Property harness: the ECO engine is bit-exact, atomic and stable.

The central invariant: applying any random move batch through the
incremental session produces *byte-identical* state -- netlist,
routing (values and dict order), STA (values and dict order, TNS) and
clock tree -- to (a) the same batch through a full-recompute session
and (b) a from-scratch re-route + re-STA of the mutated netlist.
Hypothesis drives random batches over the whole move vocabulary;
dedicated properties cover idempotent re-apply, the oscillation
detector and validation atomicity.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.flow import FlowConfig, run_block_flow
from repro.eco import (BufferInsert, BufferRemove, Displace, EcoConfig,
                       EcoError, EcoSession, Resize, VthSwap,
                       close_timing)
from repro.tech.cells import VTH_HVT, VTH_RVT
from repro.timing.sta import run_sta

pytestmark = pytest.mark.filterwarnings(
    "ignore::hypothesis.errors.NonInteractiveExampleWarning")


@pytest.fixture(scope="module")
def base(process):
    """One finished block design shared (read-only!) by every example.

    Sessions are opened with ``clone=True``, so examples never mutate
    this design -- which is itself an invariant the atomicity test
    checks explicitly.
    """
    return run_block_flow(
        "l2t", FlowConfig(scale=0.12, seed=7, io_budget_ps=60.0),
        process)


def removable_buffers(netlist):
    """Buffers whose removal the session accepts (sorted, det.)."""
    out = []
    for inst in netlist.cells:
        if not inst.is_buffer:
            continue
        drives = netlist.output_net_of(inst.id)
        if drives is None or drives.is_clock:
            continue
        ins = [n for n in netlist.nets_of(inst.id)
               if n.id != drives.id]
        if len(ins) != 1 or ins[0].is_clock:
            continue
        sinks = ins[0].sinks
        if len(sinks) != 1 or sinks[0].is_port or \
                sinks[0].inst != inst.id:
            continue
        out.append(inst.id)
    return sorted(out)


def draw_batch(data, design, process):
    """A random, always-valid move batch against the base design."""
    nl = design.netlist
    cells = sorted(c.id for c in nl.cells)
    drives = [m.drive for m in process.library.sizes_of("BUF")]
    nets = sorted(design.routing.nets)
    removable = removable_buffers(nl)
    removed = set()
    moves = []
    for _ in range(data.draw(st.integers(1, 6), label="batch size")):
        kind = data.draw(st.sampled_from(
            ["resize", "vth", "displace", "buf_ins", "buf_rm"]),
            label="kind")
        if kind == "buf_rm":
            avail = [b for b in removable if b not in removed]
            if not avail:
                continue
            iid = data.draw(st.sampled_from(avail), label="buffer")
            removed.add(iid)
            moves.append(BufferRemove(inst_id=iid))
            continue
        if kind == "buf_ins":
            moves.append(BufferInsert(
                net_id=data.draw(st.sampled_from(nets), label="net"),
                drive=data.draw(st.sampled_from(drives), label="drive")))
            continue
        iid = data.draw(st.sampled_from(cells), label="cell")
        if iid in removed:
            continue
        if kind == "resize":
            moves.append(Resize(inst_id=iid, drive=data.draw(
                st.sampled_from(drives), label="drive")))
        elif kind == "vth":
            moves.append(VthSwap(inst_id=iid, vth=data.draw(
                st.sampled_from([VTH_RVT, VTH_HVT]), label="vth")))
        else:
            inst = nl.instances[iid]
            dx = data.draw(st.floats(-40.0, 40.0, allow_nan=False,
                                     allow_infinity=False), label="dx")
            dy = data.draw(st.floats(-40.0, 40.0, allow_nan=False,
                                     allow_infinity=False), label="dy")
            moves.append(Displace(inst_id=iid, x=inst.x + dx,
                                  y=inst.y + dy))
    return moves


def routing_fp(routing):
    """Byte-level fingerprint of a routing view, order included."""
    return [
        (nid, r.length_um, r.r_per_um, r.c_per_um, r.wire_cap_ff,
         r.is_long, r.via is None,
         tuple((s.ref.key(), s.path_len_um, s.through_via,
                s.pin_cap_ff) for s in r.sinks))
        for nid, r in routing.nets.items()
    ]


def netlist_fp(netlist):
    return (
        {i: inst.master.name for i, inst in netlist.instances.items()},
        {i: (inst.x, inst.y) for i, inst in netlist.instances.items()},
        {nid: (net.driver.key(), tuple(s.key() for s in net.sinks))
         for nid, net in netlist.nets.items()},
    )


def assert_sta_equal(a, b):
    assert list(a.arrival) == list(b.arrival)
    assert a.arrival == b.arrival
    assert a.required == b.required
    assert a.slack == b.slack
    assert a.wns_ps == b.wns_ps
    assert a.tns_ps == b.tns_ps


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture,
                                 HealthCheck.too_slow])
@given(data=st.data())
def test_random_batch_incremental_equals_full_and_scratch(
        data, base, process):
    """The tentpole invariant, over the full move vocabulary."""
    batch = draw_batch(data, base, process)
    inc = EcoSession.from_design(base, process)
    full = EcoSession.from_design(base, process, full_recompute=True)
    rep_i = inc.apply(batch)
    rep_f = full.apply(batch)

    assert (rep_i.applied, rep_i.swaps, rep_i.buffers_added,
            rep_i.buffers_removed, rep_i.displaced) == \
           (rep_f.applied, rep_f.swaps, rep_f.buffers_added,
            rep_f.buffers_removed, rep_f.displaced)
    # the two modes converged on byte-identical designs
    assert netlist_fp(inc.netlist) == netlist_fp(full.netlist)
    assert routing_fp(inc.routing) == routing_fp(full.routing)
    assert_sta_equal(inc.sta(), full.sta())
    assert inc.cts_result() == full.cts_result()

    # ... and both equal a from-scratch rebuild of the mutated design
    scratch_routing = base.route_ctx.route_block(inc.netlist)
    assert routing_fp(scratch_routing) == routing_fp(inc.routing)
    scratch_sta = run_sta(inc.netlist, scratch_routing, process,
                          inc.timing)
    assert_sta_equal(scratch_sta, inc.sta())

    # the incremental engine did strictly less routing work
    assert inc.stats["full_reroutes"] == 0
    assert inc.stats["sta_full_rebuilds"] == 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_reapplying_a_swap_batch_is_idempotent(data, base, process):
    """Master swaps already in effect re-apply as no-ops."""
    session = EcoSession.from_design(base, process)
    cells = sorted(c.id for c in session.netlist.cells)
    drives = [m.drive for m in process.library.sizes_of("BUF")]
    # distinct targets: a batch that resizes one cell twice is *not*
    # idempotent (the second apply legitimately redoes the first swap)
    targets = data.draw(st.lists(st.sampled_from(cells), min_size=1,
                                 max_size=4, unique=True))
    batch = [
        Resize(inst_id=iid, drive=data.draw(st.sampled_from(drives)))
        for iid in targets
    ]
    session.apply(batch)
    before = session.sta()
    again = session.apply(batch)
    assert again.applied == 0
    assert_sta_equal(before, session.sta())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(pick=st.integers(0, 10 ** 6))
def test_oscillation_detector_fires_on_repeated_plans(pick, base,
                                                      process):
    """A planner that re-plans the same batch is caught, not looped."""
    session = EcoSession.from_design(base, process)
    lib = process.library
    cands = [c for c in session.netlist.cells
             if lib.upsize(c.master) is not None]
    inst = sorted(cands, key=lambda c: c.id)[pick % len(cands)]
    batch = [Resize(inst_id=inst.id,
                    drive=lib.upsize(inst.master).drive)]
    report = close_timing(
        session, EcoConfig(target_wns_ps=1e9, max_rounds=6),
        planner=lambda s, sta, cfg: list(batch))
    assert report.status == "oscillating"
    # applied once, detected on the second plan -- not six rounds deep
    assert len(report.rounds) == 1


def test_planner_with_nothing_left_reports_exhausted(base, process):
    session = EcoSession.from_design(base, process)
    inst = next(iter(session.netlist.cells))
    noop = [Resize(inst_id=inst.id, drive=inst.master.drive)]
    report = close_timing(
        session, EcoConfig(target_wns_ps=1e9, max_rounds=4),
        planner=lambda s, sta, cfg: list(noop))
    assert report.status == "exhausted"


def test_invalid_batch_is_rejected_atomically(base, process):
    """EcoError before any mutation: the session state is untouched."""
    session = EcoSession.from_design(base, process)
    victim = next(c for c in session.netlist.cells if not c.is_buffer)
    before_master = session.netlist.instances[victim.id].master
    before_sta = session.sta()
    before_fp = routing_fp(session.routing)
    up = process.library.upsize(victim.master)
    bad = [
        Resize(inst_id=victim.id,
               drive=(up or victim.master).drive),
        BufferRemove(inst_id=victim.id),  # not a buffer -> invalid
    ]
    with pytest.raises(EcoError):
        session.apply(bad)
    assert session.netlist.instances[victim.id].master is before_master
    assert routing_fp(session.routing) == before_fp
    assert_sta_equal(before_sta, session.sta())
    assert session.stats["moves_applied"] == 0


def test_sessions_clone_leaves_the_base_design_untouched(base, process):
    """What-if sessions must never leak mutations into the base."""
    fp_netlist = netlist_fp(base.netlist)
    fp_routing = routing_fp(base.routing)
    session = EcoSession.from_design(base, process)
    cand = next(c for c in session.netlist.cells
                if process.library.upsize(c.master) is not None)
    session.apply([
        Resize(inst_id=cand.id,
               drive=process.library.upsize(cand.master).drive),
        Displace(inst_id=cand.id, x=cand.x + 5.0, y=cand.y),
    ])
    assert netlist_fp(base.netlist) == fp_netlist
    assert routing_fp(base.routing) == fp_routing
