"""Tests for whitespace-aware spreading."""

import numpy as np
import pytest

from repro.place.grid import DensityGrid, Rect
from repro.place.spreading import _nearest_free, _supply_in, spread


@pytest.fixture()
def grid():
    return DensityGrid(Rect(0, 0, 100, 100), target_bins=100,
                       utilization=1.0)


def test_supply_in_full_region(grid):
    assert _supply_in(grid, grid.region) == pytest.approx(10000, rel=0.01)


def test_supply_in_half_region(grid):
    assert _supply_in(grid, Rect(0, 0, 50, 100)) == pytest.approx(
        5000, rel=0.02)


def test_supply_in_respects_holes(grid):
    grid.add_obstruction(Rect(0, 0, 50, 100))
    assert _supply_in(grid, Rect(0, 0, 50, 100)) == pytest.approx(
        0.0, abs=50.0)


def test_spread_relieves_pileup(grid):
    rng = np.random.default_rng(0)
    n = 400
    xs = np.full(n, 50.0) + rng.normal(0, 0.5, n)
    ys = np.full(n, 50.0) + rng.normal(0, 0.5, n)
    areas = np.full(n, 20.0)  # total 8000 of 10000 supply
    before = grid.overflow(xs, ys, areas)
    sx, sy = spread(grid, xs, ys, areas, rng)
    after = grid.overflow(sx, sy, areas)
    assert after < before / 3


def test_spread_keeps_cells_inside(grid):
    rng = np.random.default_rng(1)
    xs = rng.uniform(0, 100, 200)
    ys = rng.uniform(0, 100, 200)
    areas = np.full(200, 10.0)
    sx, sy = spread(grid, xs, ys, areas, rng)
    assert (sx >= 0).all() and (sx <= 100).all()
    assert (sy >= 0).all() and (sy <= 100).all()


def test_spread_avoids_macro_holes(grid):
    hole = Rect(40, 40, 60, 60)
    grid.add_obstruction(hole)
    rng = np.random.default_rng(2)
    n = 300
    xs = np.full(n, 50.0) + rng.normal(0, 2.0, n)
    ys = np.full(n, 50.0) + rng.normal(0, 2.0, n)
    areas = np.full(n, 15.0)
    sx, sy = spread(grid, xs, ys, areas, rng)
    inside = sum(1 for x, y in zip(sx, sy)
                 if hole.contains(x, y))
    assert inside < 0.05 * n


def test_spread_preserves_relative_order_roughly(grid):
    rng = np.random.default_rng(3)
    xs = np.linspace(45, 55, 100)
    ys = np.full(100, 50.0)
    areas = np.full(100, 30.0)
    sx, sy = spread(grid, xs, ys, areas, rng)
    # left half should stay mostly left of the right half
    assert np.median(sx[:50]) < np.median(sx[50:])


def test_spread_empty_input(grid):
    rng = np.random.default_rng(0)
    sx, sy = spread(grid, np.array([]), np.array([]), np.array([]), rng)
    assert len(sx) == 0


def test_nearest_free_escapes_hole(grid):
    grid.add_obstruction(Rect(40, 40, 60, 60))
    x, y = _nearest_free(grid, 50.0, 50.0)
    assert not grid.in_obstruction(x, y)
