"""Tests for the capacity-tracked block router."""

import pytest

from repro.netlist.core import Netlist, PinRef
from repro.place.grid import Rect
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.route.block_router import (BlockRouter, _mst_edges,
                                      route_block_detailed)
from repro.route.estimate import route_block
from repro.tech.cells import make_28nm_library
from repro.tech.layers import make_28nm_stack
from tests.conftest import fresh_block


@pytest.fixture(scope="module")
def stack():
    return make_28nm_stack()


@pytest.fixture(scope="module")
def lib():
    return make_28nm_library()


class TestMst:
    def test_star(self):
        pins = [(0, 0), (10, 0), (0, 10), (-10, 0)]
        edges = _mst_edges(pins)
        assert len(edges) == 3
        touched = {i for e in edges for i in e}
        assert touched == {0, 1, 2, 3}

    def test_degenerate(self):
        assert _mst_edges([(0, 0)]) == []
        assert _mst_edges([]) == []


class TestBlockRouter:
    def test_capacity_from_stack(self, stack):
        r = BlockRouter(Rect(0, 0, 480, 480), stack, max_metal=9)
        assert r.capacity[0] > 0
        assert r.capacity[2] > 0
        r7 = BlockRouter(Rect(0, 0, 480, 480), stack, max_metal=7)
        assert r7.capacity[2] < r.capacity[2]

    def test_straight_segment_length(self, stack):
        r = BlockRouter(Rect(0, 0, 480, 480), stack)
        length = r.route_segment((10, 10), (250, 10), cls=1)
        assert length == pytest.approx(240.0, rel=0.2)

    def test_usage_committed(self, stack):
        r = BlockRouter(Rect(0, 0, 480, 480), stack)
        r.route_segment((10, 240), (470, 240), cls=1)
        assert r.usage[1].sum() > 0
        assert r.usage[0].sum() == 0  # other classes untouched

    def test_congestion_forces_detours(self, stack):
        r = BlockRouter(Rect(0, 0, 480, 480), stack, gcell_um=24.0)
        # hammer one horizontal corridor way past capacity
        for _ in range(int(r.capacity[1] * 3) + 20):
            r.route_segment((10, 240), (470, 240), cls=1)
        rep = r.congestion()
        assert rep.max_utilization > 1.0 or rep.detoured_segments > 0
        assert rep.total_segments > 0

    def test_maze_usable(self, stack):
        r = BlockRouter(Rect(0, 0, 480, 480), stack)
        path = r._maze(r.gcell(10, 10), r.gcell(400, 400), cls=1)
        assert path is not None
        assert path[0] == r.gcell(10, 10)
        assert path[-1] == r.gcell(400, 400)


class TestRouteBlockDetailed:
    @pytest.fixture(scope="class")
    def routed(self, library, process):
        gb = fresh_block("l2t", library, seed=4)
        result = place_block_2d(gb.netlist, PlacementConfig(seed=4))
        est = route_block(gb.netlist, process.metal_stack)
        detailed, congestion = route_block_detailed(
            gb.netlist, process.metal_stack, result.outline)
        return gb, est, detailed, congestion

    def test_all_nets_routed(self, routed):
        gb, est, detailed, _ = routed
        assert set(detailed.nets) == set(est.nets)

    def test_routed_lengths_close_to_estimates(self, routed):
        _, est, detailed, _ = routed
        ratio = detailed.total_wirelength_um / est.total_wirelength_um
        # global routing detours a little, never shrinks dramatically
        assert 0.9 < ratio < 1.6

    def test_sink_paths_populated(self, routed):
        gb, _, detailed, _ = routed
        for routed_net in list(detailed.nets.values())[:50]:
            net = gb.netlist.nets[routed_net.net_id]
            assert len(routed_net.sinks) == len(net.sinks)
            for s in routed_net.sinks:
                assert s.path_len_um >= 0

    def test_congestion_report(self, routed):
        _, _, _, congestion = routed
        assert congestion.total_segments > 500
        assert 0 <= congestion.overflow_fraction < 0.3
        assert congestion.max_utilization >= 0

    def test_sta_runs_on_detailed_routing(self, routed, process):
        from repro.timing.sta import TimingConfig, run_sta
        gb, _, detailed, _ = routed
        sta = run_sta(gb.netlist, detailed, process,
                      TimingConfig("cpu_clk"))
        assert sta.slack
