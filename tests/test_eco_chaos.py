"""Chaos tests for the ECO engine's fault seams.

Mirrors the ``tests/test_engine_resilience.py`` matrix at the new
``eco`` fault point (hit once per closure round and once by the flow's
``flow.eco`` stage): recoverable faults retry to byte-equality,
unrecoverable faults degrade to a failed run recorded in the report,
hangs are cut at the cooperative deadline -- and a fault mid-closure
never leaks a partially mutated design into the base it derives from.
"""

import time
from dataclasses import replace

import pytest

from repro import faults
from repro.core.flow import FlowConfig, run_block_flow
from repro.eco import EcoConfig, derive_design
from repro.faults import FaultPlan, InjectedFault
from repro.parallel.engine import run_experiments

IDS = ["eco", "table4"]
SCALE = 0.3


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial reference for byte-equality checks."""
    return run_experiments(ids=IDS, scale=SCALE)


def _chaos_counters(report):
    counters = (report.metrics or {}).get("counters", {})
    return {k: v for k, v in counters.items()
            if k.startswith(("faults.", "tasks."))}


class TestEcoFaultMatrix:
    def test_recoverable_eco_fault_retries_to_byte_equality(
            self, baseline):
        plan = FaultPlan.parse("raise task=eco stage=eco attempt=1")
        report = run_experiments(ids=IDS, scale=SCALE, retries=1,
                                 fault_plan=plan)
        assert report.completed()
        by_id = {r.experiment_id: r for r in report.runs}
        assert by_id["eco"].attempts == 2
        assert by_id["table4"].attempts == 1
        assert report.results_json() == baseline.results_json()
        counters = _chaos_counters(report)
        assert counters["faults.injected"] == 1.0
        assert counters["tasks.retried"] == 1.0
        assert "tasks.failed" not in counters

    def test_unrecoverable_eco_fault_degrades_to_partial(
            self, baseline):
        plan = FaultPlan.parse("raise task=eco stage=eco attempt=0")
        report = run_experiments(ids=IDS, scale=SCALE, retries=1,
                                 fault_plan=plan)
        assert not report.completed()
        assert not report.all_passed
        by_id = {r.experiment_id: r for r in report.runs}
        assert by_id["eco"].status == "failed"
        assert by_id["eco"].attempts == 2
        assert "InjectedFault" in by_id["eco"].error
        assert by_id["eco"].result == {}
        assert by_id["table4"].status == "ok"
        # the surviving results are the uninjected ones, bit for bit
        want = dict(baseline.results_dict())
        del want["eco"]
        assert report.results_dict() == want
        counters = _chaos_counters(report)
        assert counters["tasks.failed"] == 1.0
        assert "degraded: 1 of 2" in report.summary()

    def test_eco_hang_is_cut_at_the_cooperative_deadline(
            self, baseline):
        plan = FaultPlan.parse(
            "hang task=eco stage=eco attempt=1 seconds=60")
        t0 = time.monotonic()
        report = run_experiments(ids=IDS, scale=SCALE, timeout_s=5.0,
                                 retries=1, fault_plan=plan)
        assert time.monotonic() - t0 < 60
        assert report.completed()
        assert {r.experiment_id: r.attempts
                for r in report.runs} == {"eco": 2, "table4": 1}
        counters = _chaos_counters(report)
        assert counters["tasks.timed_out"] == 1.0
        assert counters["tasks.retried"] == 1.0
        assert report.results_json() == baseline.results_json()

    def test_fault_free_reruns_are_byte_identical(self, baseline):
        again = run_experiments(ids=IDS, scale=SCALE)
        assert again.results_json() == baseline.results_json()
        assert _chaos_counters(again) == {}


class TestNoPartialMutationLeaks:
    def test_fault_mid_closure_leaves_the_base_design_intact(
            self, process):
        """A raise inside ``close_timing`` aborts the derivation --
        the base design it was cloned from must not have moved."""
        base = run_block_flow(
            "l2t", FlowConfig(scale=0.12, seed=7, io_budget_ps=60.0),
            process)
        masters = {i: inst.master.name
                   for i, inst in base.netlist.instances.items()}
        routing = [(nid, r.length_um, r.wire_cap_ff)
                   for nid, r in base.routing.nets.items()]
        wns = base.sta.wns_ps
        neighbor = replace(base.config, io_budget_ps=90.0,
                           dual_vth=True, eco=EcoConfig())
        with faults.installed(
                FaultPlan.parse("raise task=* stage=eco attempt=0")):
            with pytest.raises(InjectedFault):
                derive_design(base, neighbor, process)
        assert {i: inst.master.name
                for i, inst in base.netlist.instances.items()} == masters
        assert [(nid, r.length_um, r.wire_cap_ff)
                for nid, r in base.routing.nets.items()] == routing
        assert base.sta.wns_ps == wns
