"""Tests for probabilistic activity propagation."""

import pytest

from repro.netlist.core import INPUT, Netlist, PinRef
from repro.power.activity import (_gate_output, apply_activity,
                                  propagate_activity)
from repro.power.analysis import analyze_power
from repro.route.estimate import route_block
from repro.tech.cells import make_28nm_library
from repro.tech.process import CPU_CLOCK, make_process


@pytest.fixture(scope="module")
def proc():
    return make_process()


@pytest.fixture(scope="module")
def lib(proc):
    return proc.library


class TestGateFunctions:
    def test_inverter_preserves_activity(self):
        prob, act = _gate_output("INV", [(0.3, 0.2)])
        assert prob == pytest.approx(0.7)
        assert act == pytest.approx(0.2)

    def test_and_probability(self):
        prob, act = _gate_output("AND2", [(0.5, 0.2), (0.5, 0.2)])
        assert prob == pytest.approx(0.25)
        # each input sensitized with probability of the other being 1
        assert act == pytest.approx(0.2 * 0.5 + 0.2 * 0.5)

    def test_nand_complements_and(self):
        p_and, a_and = _gate_output("AND2", [(0.4, 0.1), (0.6, 0.3)])
        p_nand, a_nand = _gate_output("NAND2", [(0.4, 0.1), (0.6, 0.3)])
        assert p_nand == pytest.approx(1 - p_and)
        assert a_nand == pytest.approx(a_and)

    def test_xor_toggle_composition(self):
        prob, act = _gate_output("XOR2", [(0.5, 0.1), (0.5, 0.2)])
        assert prob == pytest.approx(0.5)
        # exactly-one-input-toggles: 0.1*0.8 + 0.2*0.9
        assert act == pytest.approx(0.26)

    def test_mux_select_mixing(self):
        prob, _ = _gate_output("MUX2", [(1.0, 0.0), (0.0, 0.0),
                                        (0.5, 0.0)])
        assert prob == pytest.approx(0.5)

    def test_xor_zero_delay_toggle(self):
        _, act = _gate_output("XOR2", [(0.5, 0.9), (0.5, 0.9)])
        # both inputs flipping cancels: 0.9*0.1 + 0.9*0.1
        assert act == pytest.approx(0.18)


class TestPropagation:
    def chain(self, lib, n, function="INV"):
        nl = Netlist("chain")
        nl.add_port("in", INPUT)
        prev = PinRef(port="in")
        last = None
        for i in range(n):
            c = nl.add_instance(f"c{i}", lib.master(f"{function}_X1"))
            nl.add_net(f"n{i}", prev, [PinRef(inst=c.id, pin=0)])
            prev = PinRef(inst=c.id)
            last = c
        f = nl.add_instance("f", lib.master("DFF_X1"))
        nl.add_net("nD", prev, [PinRef(inst=f.id, pin=0)])
        nl.add_port("clk", INPUT)
        nl.add_net("clk", PinRef(port="clk"), [PinRef(inst=f.id, pin=1)],
                   is_clock=True)
        return nl

    def test_inverter_chain_keeps_activity(self, lib):
        nl = self.chain(lib, 5)
        sig = propagate_activity(nl, input_activity=0.25)
        acts = {nl.nets[n].name: s[1] for n, s in sig.items()}
        assert acts["nD"] == pytest.approx(0.25)

    def test_and_tree_attenuates_activity(self, lib):
        nl = Netlist("tree")
        refs = []
        for i in range(4):
            nl.add_port(f"in{i}", INPUT)
            refs.append(PinRef(port=f"in{i}"))
        g1 = nl.add_instance("g1", lib.master("AND2_X1"))
        g2 = nl.add_instance("g2", lib.master("AND2_X1"))
        g3 = nl.add_instance("g3", lib.master("AND2_X1"))
        nl.add_net("a", refs[0], [PinRef(inst=g1.id, pin=0)])
        nl.add_net("b", refs[1], [PinRef(inst=g1.id, pin=1)])
        nl.add_net("c", refs[2], [PinRef(inst=g2.id, pin=0)])
        nl.add_net("d", refs[3], [PinRef(inst=g2.id, pin=1)])
        nl.add_net("e", PinRef(inst=g1.id), [PinRef(inst=g3.id, pin=0)])
        nl.add_net("f", PinRef(inst=g2.id), [PinRef(inst=g3.id, pin=1)])
        out = nl.add_instance("cap", lib.master("DFF_X1"))
        nl.add_net("y", PinRef(inst=g3.id), [PinRef(inst=out.id, pin=0)])
        sig = propagate_activity(nl, input_activity=0.3)
        by_name = {nl.nets[n].name: s for n, s in sig.items()}
        assert by_name["y"][0] == pytest.approx(0.5 ** 4)
        assert by_name["y"][1] < 0.3

    def test_generated_block_converges(self, lib):
        from tests.conftest import fresh_block
        gb = fresh_block("ncu", lib, seed=30)
        sig = propagate_activity(gb.netlist)
        non_clock = [n for n in gb.netlist.nets.values()
                     if not n.is_clock]
        assert len(sig) == len(non_clock)
        for prob, act in sig.values():
            assert 0.0 <= prob <= 1.0
            assert 0.0 <= act <= 1.0

    def test_apply_activity_and_power_shift(self, lib, proc):
        from tests.conftest import fresh_block
        from repro.place.placer2d import PlacementConfig, place_block_2d
        gb = fresh_block("ncu", lib, seed=31)
        place_block_2d(gb.netlist, PlacementConfig(seed=31))
        routing = route_block(gb.netlist, proc.metal_stack)
        flat = analyze_power(gb.netlist, routing, proc, CPU_CLOCK)
        sig = propagate_activity(gb.netlist, input_activity=0.15)
        updated = apply_activity(gb.netlist, sig)
        assert updated == len(sig)
        propagated = analyze_power(gb.netlist, routing, proc, CPU_CLOCK)
        # function-dependent activities shift net power away from the
        # flat assumption but stay in a physical band
        assert propagated.net_uw != pytest.approx(flat.net_uw, rel=0.02)
        assert 0.3 * flat.net_uw < propagated.net_uw < 3.0 * flat.net_uw
        per_net = [n.activity for n in gb.netlist.nets.values()
                   if n.activity is not None]
        assert min(per_net) < 0.05  # attenuated control cones exist
        assert max(per_net) > 0.3   # XOR datapath nets switch more
