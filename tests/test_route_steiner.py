"""Tests for the trunk Steiner tree."""

import pytest

from repro.route.steiner import (hpwl_length, steiner_length, trunk_tree)


def test_two_pin_net_exact():
    # for 2 pins the trunk tree equals the Manhattan distance
    assert steiner_length([(0, 0), (3, 4)]) == pytest.approx(7.0)


def test_collinear_pins():
    pins = [(0, 0), (5, 0), (10, 0)]
    assert steiner_length(pins) == pytest.approx(10.0)


def test_l_shape():
    pins = [(0, 0), (10, 0), (10, 10)]
    t = trunk_tree(pins)
    # trunk at median y=0 spanning x 0..10 plus one stub of 10
    assert t.length_um == pytest.approx(20.0)


def test_star_topology():
    pins = [(0, 0), (10, 0), (5, 5), (5, -5)]
    length = steiner_length(pins)
    assert length == pytest.approx(10 + 5 + 5)


def test_degenerate_pins():
    assert steiner_length([]) == 0.0
    assert steiner_length([(3, 3)]) == 0.0
    assert steiner_length([(3, 3), (3, 3)]) == 0.0


def test_tree_at_least_hpwl():
    import numpy as np
    rng = np.random.default_rng(0)
    for _ in range(50):
        n = int(rng.integers(2, 12))
        pins = [(float(x), float(y))
                for x, y in rng.uniform(0, 100, size=(n, 2))]
        assert steiner_length(pins) >= hpwl_length(pins) - 1e-9


def test_tree_at_most_star():
    import numpy as np
    rng = np.random.default_rng(1)
    for _ in range(50):
        n = int(rng.integers(2, 12))
        pins = [(float(x), float(y))
                for x, y in rng.uniform(0, 100, size=(n, 2))]
        cx = sum(p[0] for p in pins) / n
        cy = sum(p[1] for p in pins) / n
        star = sum(abs(p[0] - cx) + abs(p[1] - cy) for p in pins) * 2
        assert steiner_length(pins) <= star + 1e-9


def test_path_length_between_pins():
    pins = [(0, 0), (10, 0), (5, 8)]
    t = trunk_tree(pins)
    # trunk at y=0: path (0,0)->(5,8) = 5 horizontal + 8 stub
    assert t.path_length((0, 0), (5, 8)) == pytest.approx(13.0)


def test_tap_point_clamped_to_trunk():
    t = trunk_tree([(0, 0), (10, 0)])
    assert t.tap_point((-5, 3)) == (0.0, 0.0)
    assert t.tap_point((20, 3)) == (10.0, 0.0)


def test_hpwl_length():
    assert hpwl_length([(0, 0), (3, 4), (1, 1)]) == pytest.approx(7.0)
    assert hpwl_length([(0, 0)]) == 0.0
