"""The docs walkthrough must actually run, block by block."""

import contextlib
import io
import pathlib
import re

import pytest

DOC = pathlib.Path(__file__).parent.parent / "docs" / "walkthrough.md"


@pytest.mark.slow
def test_walkthrough_executes_end_to_end():
    text = DOC.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 10
    namespace = {}
    for i, block in enumerate(blocks):
        # shrink the chip-level steps so the doc test stays fast
        block = block.replace(
            'ChipConfig(style="fold_f2f", dual_vth=True)',
            'ChipConfig(style="fold_f2f", dual_vth=True, scale=0.25)')
        block = block.replace(
            'ChipConfig(style="core_cache", scale=0.6)',
            'ChipConfig(style="core_cache", scale=0.25)')
        with contextlib.redirect_stdout(io.StringIO()):
            exec(compile(block, f"walkthrough-block-{i}", "exec"),
                 namespace)


def test_readme_code_snippets_parse():
    readme = (pathlib.Path(__file__).parent.parent /
              "README.md").read_text()
    for i, block in enumerate(
            re.findall(r"```python\n(.*?)```", readme, re.S)):
        compile(block, f"readme-block-{i}", "exec")
