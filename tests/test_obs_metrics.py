"""Tests for the metrics registry: snapshot/diff/merge semantics."""

from repro.obs.metrics import (MetricsRegistry, format_snapshot,
                               merge_snapshots, metrics, use_registry)


class TestInstruments:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        r.counter("cache.misses").inc()
        r.counter("cache.misses").inc(4)
        assert r.snapshot()["counters"]["cache.misses"] == 5

    def test_gauge_last_value_wins(self):
        r = MetricsRegistry()
        r.gauge("bench.parallel").set(2)
        r.gauge("bench.parallel").set(8)
        assert r.snapshot()["gauges"]["bench.parallel"] == 8.0

    def test_histogram_summary(self):
        r = MetricsRegistry()
        h = r.histogram("opt.buffers_per_block")
        for v in (10, 30, 20):
            h.observe(v)
        s = r.snapshot()["histograms"]["opt.buffers_per_block"]
        assert s == {"count": 3, "sum": 60.0, "min": 10.0, "max": 30.0}
        assert h.mean == 20.0

    def test_reset_drops_everything(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.reset()
        assert r.snapshot() == {"counters": {}, "gauges": {},
                                "histograms": {}}


class TestSnapshotDelta:
    def test_diff_ships_only_the_window(self):
        """The worker pattern: snapshot before, diff after a task."""
        r = MetricsRegistry()
        r.counter("cache.misses").inc(10)  # earlier tasks
        before = r.snapshot()
        r.counter("cache.misses").inc(3)
        r.counter("cache.hits").inc(2)
        delta = r.diff(before)
        assert delta["counters"] == {"cache.misses": 3, "cache.hits": 2}

    def test_diff_histograms_subtract_count_and_sum(self):
        r = MetricsRegistry()
        r.histogram("h").observe(5)
        before = r.snapshot()
        r.histogram("h").observe(7)
        delta = r.diff(before)
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == 7.0

    def test_merge_across_workers_never_double_counts(self):
        """Cumulative worker state summed naively would double-count;
        per-task deltas merge to the exact total."""
        worker = MetricsRegistry()
        deltas = []
        for task_misses in (2, 3):
            before = worker.snapshot()
            worker.counter("cache.misses").inc(task_misses)
            deltas.append(worker.diff(before))
        total = merge_snapshots(deltas)
        assert total["counters"]["cache.misses"] == 5

    def test_merge_histograms_min_max(self):
        a = MetricsRegistry()
        a.histogram("h").observe(1)
        b = MetricsRegistry()
        b.histogram("h").observe(9)
        total = merge_snapshots([a.snapshot(), b.snapshot()])
        assert total["histograms"]["h"] == {"count": 2, "sum": 10.0,
                                            "min": 1.0, "max": 9.0}


class TestGlobalRegistry:
    def test_use_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        with use_registry(mine):
            metrics().counter("only.here").inc()
        assert mine.snapshot()["counters"]["only.here"] == 1
        assert "only.here" not in metrics().snapshot()["counters"]


def test_format_snapshot_lists_counters_and_histograms():
    r = MetricsRegistry()
    r.counter("cache.misses").inc(12)
    r.histogram("opt.buffers_per_block").observe(40)
    text = format_snapshot(r.snapshot())
    assert "cache.misses" in text
    assert "opt.buffers_per_block" in text
    assert "12" in text


def test_format_snapshot_empty_is_empty():
    assert format_snapshot(MetricsRegistry().snapshot()) == ""
