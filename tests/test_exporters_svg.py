"""Tests for the Liberty/LEF exporters and the SVG renderers."""

import pytest

from repro.analysis.layout_svg import render_block_svg, render_chip_svg
from repro.designgen.t2 import t2_instances
from repro.floorplan.t2_floorplans import t2_floorplan
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.tech.export import write_lef, write_liberty
from repro.tech.macros import sram_macro
from tests.conftest import fresh_block


class TestLiberty:
    @pytest.fixture(scope="class")
    def lib_text(self, process):
        return write_liberty(process)

    def test_header(self, lib_text):
        assert lib_text.startswith("library (repro28) {")
        assert lib_text.rstrip().endswith("}")

    def test_all_masters_present(self, process, lib_text):
        for master in process.library.masters:
            assert f"cell ({master.name})" in lib_text

    def test_flop_has_ff_group(self, lib_text):
        assert 'ff (IQ, IQN)' in lib_text
        assert 'clock : true;' in lib_text

    def test_delay_coefficients_match_model(self, process, lib_text):
        m = process.library.master("INV_X4")
        idx = lib_text.index("cell (INV_X4)")
        block = lib_text[idx:idx + 900]
        assert f"rise_resistance : {m.drive_res_kohm:.4f};" in block
        assert f"intrinsic_rise : {m.intrinsic_delay_ps:.2f};" in block

    def test_balanced_braces(self, lib_text):
        assert lib_text.count("{") == lib_text.count("}")


class TestLef:
    @pytest.fixture(scope="class")
    def lef_text(self, process):
        return write_lef(process, macros=[sram_macro(4)])

    def test_layers_emitted(self, lef_text):
        for i in range(1, 10):
            assert f"LAYER M{i}" in lef_text

    def test_via_definitions(self, lef_text):
        assert "VIA TSV3D DEFAULT" in lef_text
        assert "VIA F2FVIA DEFAULT" in lef_text

    def test_cells_and_macros(self, process, lef_text):
        assert "MACRO INV_X1" in lef_text
        assert "MACRO SRAM_4KB" in lef_text
        assert "CLASS BLOCK ;" in lef_text
        assert lef_text.rstrip().endswith("END LIBRARY")

    def test_macro_size_matches_master(self, lef_text):
        m = sram_macro(4)
        assert f"SIZE {m.width_um:.3f} BY {m.height_um:.3f} ;" in lef_text


class TestSvg:
    def test_block_svg(self, library, process):
        gb = fresh_block("l2t", library, seed=7)
        result = place_block_2d(gb.netlist, PlacementConfig(seed=7))
        svg = render_block_svg(gb.netlist, result.outline)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") > 100  # cells + macros drawn

    def test_block_svg_with_vias(self, library, process):
        from repro.place.partition import fm_bipartition
        from repro.place.placer3d import fold_place_3d
        gb = fresh_block("l2t", library, seed=7)
        part = fm_bipartition(gb.netlist, seed=0)
        res = fold_place_3d(gb.netlist, process, part.assignment, "F2F",
                            PlacementConfig(seed=7))
        sites = {v.net_id: (v.x, v.y) for v in res.vias}
        svg = render_block_svg(gb.netlist, res.outline, via_sites=sites)
        assert svg.count("<circle") == len(sites)

    def test_chip_svg_labels_all_blocks(self):
        dims = {name: (300.0, 300.0) for name, _ in t2_instances()}
        fp = t2_floorplan("fold_f2f", dims)
        svg = render_chip_svg(fp)
        for name, _ in t2_instances():
            assert f">{name}</text>" in svg
        # folded blocks draw the double (both-tier) fill
        assert "(both tiers)" in svg


def test_chip_svg_with_tsv_plan(process):
    from repro.floorplan.tsv_planning import plan_tsv_arrays
    dims = {name: (300.0, 300.0) for name, _ in t2_instances()}
    fp = t2_floorplan("core_cache", dims, gap=40.0)
    plan = plan_tsv_arrays(fp, [("spc0", "l2d0", 60)], process.tsv)
    svg = render_chip_svg(fp, tsv_plan=plan)
    used = sum(1 for s in plan.sites if s.used > 0)
    assert svg.count("<circle") == used
    assert used > 0
