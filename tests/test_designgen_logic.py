"""Tests for the synthetic logic generator."""

from collections import defaultdict

import numpy as np
import pytest

from repro.designgen.logic import LogicSpec, generate_logic
from repro.netlist.core import Netlist
from repro.tech.cells import make_28nm_library
from repro.tech.macros import sram_macro
from repro.tech.process import CPU_CLOCK, IO_CLOCK


@pytest.fixture(scope="module")
def lib():
    return make_28nm_library()


def gen(lib, seed=7, **kw):
    defaults = {"n_cells": 400, "n_inputs": 30, "n_outputs": 30}
    defaults.update(kw)
    spec = LogicSpec(**defaults)
    rng = np.random.default_rng(seed)
    return generate_logic("blk", spec, lib, rng), spec


def test_structural_validity(lib):
    nl, _ = gen(lib)
    assert nl.validate() == []


def test_cell_count_close_to_spec(lib):
    nl, spec = gen(lib)
    assert abs(nl.num_cells - spec.n_cells) <= spec.n_cells * 0.02


def test_register_outputs_adds_port_flops(lib):
    nl, spec = gen(lib, register_outputs=True)
    expected = spec.n_cells + spec.n_outputs
    assert abs(nl.num_cells - expected) <= spec.n_cells * 0.02
    offs = [i for i in nl.instances.values()
            if i.name.startswith("off_")]
    assert len(offs) == spec.n_outputs
    assert all(i.is_sequential for i in offs)


def test_false_path_spares_flagged(lib):
    nl, _ = gen(lib, false_path_spares=True)
    spares = [p for n, p in nl.ports.items() if "spare" in n]
    assert spares
    assert all(p.false_path for p in spares)
    nl2, _ = gen(lib)
    assert all(not p.false_path for n, p in nl2.ports.items())


def test_deterministic_given_seed(lib):
    a, _ = gen(lib, seed=13)
    b, _ = gen(lib, seed=13)
    assert a.num_cells == b.num_cells
    assert len(a.nets) == len(b.nets)
    assert sorted(n.name for n in a.nets.values()) == \
        sorted(n.name for n in b.nets.values())
    assert [i.master.name for i in a.instances.values()] == \
        [i.master.name for i in b.instances.values()]


def test_different_seeds_differ(lib):
    a, _ = gen(lib, seed=1)
    b, _ = gen(lib, seed=2)
    assert [i.master.name for i in a.instances.values()] != \
        [i.master.name for i in b.instances.values()]


def test_single_driver_per_net(lib):
    nl, _ = gen(lib)
    for net in nl.nets.values():
        drivers = [net.driver]
        assert len(drivers) == 1


def test_no_combinational_cycles(lib):
    """Each comb cell's fanin must come from strictly earlier sources."""
    nl, _ = gen(lib)
    # build dependency edges between combinational cells
    order = {}
    deps = defaultdict(set)
    for net in nl.nets.values():
        if net.is_clock or net.driver.is_port:
            continue
        drv = nl.instances[net.driver.inst]
        if drv.is_macro or drv.is_sequential:
            continue
        for s in net.sinks:
            if s.is_port:
                continue
            sink = nl.instances[s.inst]
            if sink.is_macro or sink.is_sequential:
                continue
            deps[s.inst].add(net.driver.inst)
    # Kahn: the comb graph must fully drain
    from collections import deque
    comb = [i.id for i in nl.instances.values()
            if not i.is_macro and not i.is_sequential]
    indeg = {c: len(deps[c]) for c in comb}
    q = deque(c for c in comb if indeg[c] == 0)
    seen = 0
    succ = defaultdict(list)
    for c, ds in deps.items():
        for d in ds:
            succ[d].append(c)
    while q:
        n = q.popleft()
        seen += 1
        for s in succ[n]:
            indeg[s] -= 1
            if indeg[s] == 0:
                q.append(s)
    assert seen == len(comb), "combinational cycle detected"


def test_clock_net_reaches_all_flops(lib):
    nl, _ = gen(lib)
    clock_nets = [n for n in nl.nets.values() if n.is_clock]
    assert len(clock_nets) == 1
    clocked = {s.inst for s in clock_nets[0].sinks if not s.is_port}
    flops = {i.id for i in nl.instances.values() if i.is_sequential}
    assert flops <= clocked


def test_flop_fraction_respected(lib):
    nl, spec = gen(lib, flop_fraction=0.3)
    flops = sum(1 for i in nl.instances.values() if i.is_sequential)
    assert flops == pytest.approx(spec.n_cells * 0.3, rel=0.05)


def test_port_counts(lib):
    nl, spec = gen(lib)
    ins = [p for p in nl.ports.values() if p.direction == "in"]
    outs = [p for p in nl.ports.values() if p.direction == "out"]
    assert len(ins) == spec.n_inputs + 1  # + clock
    assert len(outs) >= spec.n_outputs  # + spare observation ports


def test_spare_outputs_are_minority(lib):
    nl, spec = gen(lib)
    spares = sum(1 for p in nl.ports if "spare" in p)
    assert spares < 0.25 * nl.num_cells


def test_macros_wired_like_sequentials(lib):
    nl, _ = gen(lib, macros=[(sram_macro(2), 2)])
    macros = nl.macros
    assert len(macros) == 2
    for m in macros:
        nets = nl.nets_of(m.id)
        drives = [n for n in nets if not n.driver.is_port
                  and n.driver.inst == m.id]
        sinks = [n for n in nets
                 for s in n.sinks
                 if not s.is_port and s.inst == m.id and not n.is_clock]
        assert drives, "macro outputs must launch paths"
        assert sinks, "macro inputs must capture paths"


def test_clock_domain_propagates(lib):
    nl, _ = gen(lib, clock_domain=IO_CLOCK)
    domains = {n.clock_domain for n in nl.nets.values()}
    assert domains == {IO_CLOCK}


def test_broadcast_creates_high_fanout(lib):
    nl, _ = gen(lib, n_cells=600, broadcast_pick=0.15)
    max_deg = max(n.degree for n in nl.nets.values() if not n.is_clock)
    assert max_deg > 20


def test_locality_reduces_cross_cluster_edges(lib):
    def cross_fraction(locality):
        nl, _ = gen(lib, n_cells=800, locality=locality, seed=3)
        cross = total = 0
        for net in nl.nets.values():
            if net.is_clock or net.driver.is_port:
                continue
            dc = nl.instances[net.driver.inst].cluster
            for s in net.sinks:
                if s.is_port:
                    continue
                total += 1
                if abs(nl.instances[s.inst].cluster - dc) > 2:
                    cross += 1
        return cross / max(total, 1)

    assert cross_fraction(0.95) < cross_fraction(0.45)


def test_cluster_tags_offset_by_base(lib):
    spec = LogicSpec(n_cells=100, n_inputs=5, n_outputs=5)
    rng = np.random.default_rng(0)
    nl = Netlist("two")
    generate_logic("a", spec, lib, rng, netlist=nl, cluster_base=0,
                   port_prefix="a_")
    first_max = max(i.cluster for i in nl.instances.values())
    generate_logic("b", spec, lib, rng, netlist=nl,
                   cluster_base=first_max + 1, port_prefix="b_")
    b_clusters = {i.cluster for i in nl.instances.values()
                  if i.name.startswith("b_")}
    assert min(b_clusters) > first_max
    assert nl.validate() == []
