"""Tests for full-chip assembly internals."""

import pytest

from repro.core.fullchip import (_bundle_wire_stats, _estimate_dims,
                                 _fold_for, ChipConfig)
from repro.designgen.t2 import t2_instances
from repro.tech.process import CPU_CLOCK, IO_CLOCK


class TestEstimateDims:
    def test_all_instances_estimated(self, process):
        dims = _estimate_dims(process, ChipConfig(style="2d"))
        assert set(dims) == {n for n, _ in t2_instances()}
        for w, h in dims.values():
            assert w > 0 and h > 0

    def test_folded_estimates_smaller(self, process):
        flat = _estimate_dims(process, ChipConfig(style="2d"))
        folded = _estimate_dims(process, ChipConfig(style="fold_f2f"))
        assert folded["spc0"][0] < flat["spc0"][0]
        # unfolded control blocks keep their size
        assert folded["ncu"][0] == pytest.approx(flat["ncu"][0])

    def test_scale_shrinks_estimates(self, process):
        full = _estimate_dims(process, ChipConfig(style="2d", scale=1.0))
        half = _estimate_dims(process, ChipConfig(style="2d", scale=0.5))
        assert half["spc0"][0] < full["spc0"][0]


class TestBundleWireStats:
    def test_longer_wire_slower_and_more_repeaters(self, process):
        r1, d1 = _bundle_wire_stats(process, 500.0, CPU_CLOCK, False)
        r2, d2 = _bundle_wire_stats(process, 3000.0, CPU_CLOCK, False)
        assert d2 > d1
        assert r2 > r1

    def test_crossing_adds_tsv_delay(self, process):
        _, flat = _bundle_wire_stats(process, 1000.0, CPU_CLOCK, False)
        _, cross = _bundle_wire_stats(process, 1000.0, CPU_CLOCK, True)
        assert cross > flat

    def test_short_wire_no_repeaters(self, process):
        reps, _ = _bundle_wire_stats(process, 100.0, CPU_CLOCK, False)
        assert reps == 0


class TestFoldFor:
    def test_2d_never_folds(self):
        cfg = ChipConfig(style="2d")
        assert _fold_for(cfg, "spc") is None

    def test_folded_style_folds_listed_types(self):
        cfg = ChipConfig(style="fold_f2f")
        assert _fold_for(cfg, "spc") is not None
        assert _fold_for(cfg, "ncu") is None

    def test_custom_folded_types(self):
        cfg = ChipConfig(style="fold_f2b", folded_types=("ccx",))
        assert _fold_for(cfg, "ccx") is not None
        assert _fold_for(cfg, "spc") is None

    def test_budget_floor_applied(self, process):
        from repro.core.fullchip import build_chip
        base = build_chip(ChipConfig(style="2d", scale=0.3), process)
        floored = build_chip(
            ChipConfig(style="2d", scale=0.3,
                       budget_floor_ps=(("ncu", 400.0),)), process)
        assert floored.block_designs["ncu"].config.io_budget_ps >= 400.0
        assert base.block_designs["ncu"].config.io_budget_ps < 400.0
