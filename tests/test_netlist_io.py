"""Tests for the Verilog / DEF exporters."""

import re

import pytest

from repro.netlist.io import write_def, write_verilog
from repro.place.grid import Rect
from repro.place.placer2d import PlacementConfig, place_block_2d
from tests.conftest import fresh_block


@pytest.fixture(scope="module")
def placed(library):
    gb = fresh_block("ncu", library, seed=6)
    result = place_block_2d(gb.netlist, PlacementConfig(seed=6))
    return gb, result


class TestVerilog:
    def test_module_header_and_footer(self, placed):
        gb, _ = placed
        text = write_verilog(gb.netlist)
        assert text.startswith("module ncu (")
        assert text.rstrip().endswith("endmodule")

    def test_all_ports_declared(self, placed):
        gb, _ = placed
        text = write_verilog(gb.netlist)
        for name, port in gb.netlist.ports.items():
            kind = "input" if port.direction == "in" else "output"
            assert f"{kind} {name};" in text, name

    def test_all_instances_emitted(self, placed):
        gb, _ = placed
        text = write_verilog(gb.netlist)
        for inst in list(gb.netlist.instances.values())[:40]:
            assert re.search(
                rf"^\s+{re.escape(inst.master.name)} "
                rf"{re.escape(inst.name)} \(", text, re.M), inst.name

    def test_flop_pins_named(self, placed):
        gb, _ = placed
        text = write_verilog(gb.netlist)
        assert ".D(" in text and ".CK(" in text and ".Q(" in text

    def test_every_connection_named(self, placed):
        gb, _ = placed
        text = write_verilog(gb.netlist)
        # no dangling pin syntax
        assert ".()" not in text
        assert "(, " not in text

    def test_macro_pins(self, library):
        gb = fresh_block("l2t", library, seed=6)
        text = write_verilog(gb.netlist)
        assert ".Q0(" in text
        assert re.search(r"\.D\d+\(", text)


class TestDef:
    def test_structure(self, placed):
        gb, result = placed
        text = write_def(gb.netlist, result.outline)
        assert "VERSION 5.8 ;" in text
        assert "DIEAREA" in text
        assert f"COMPONENTS {len(gb.netlist.instances)} ;" in text
        assert f"PINS {len(gb.netlist.ports)} ;" in text
        assert f"NETS {len(gb.netlist.nets)} ;" in text
        assert text.rstrip().endswith("END DESIGN")

    def test_coordinates_in_dbu(self, placed):
        gb, result = placed
        text = write_def(gb.netlist, result.outline, units_per_um=1000)
        inst = next(iter(gb.netlist.instances.values()))
        expected = f"( {int(round(inst.x * 1000))} " \
                   f"{int(round(inst.y * 1000))} )"
        assert expected in text

    def test_fixed_macros_marked(self, library):
        gb = fresh_block("l2t", library, seed=6)
        result = place_block_2d(gb.netlist, PlacementConfig(seed=6))
        text = write_def(gb.netlist, result.outline)
        assert "+ FIXED (" in text
        assert "+ PLACED (" in text

    def test_net_endpoints_listed(self, placed):
        gb, result = placed
        text = write_def(gb.netlist, result.outline)
        some_net = next(iter(gb.netlist.nets.values()))
        line = next(l for l in text.splitlines()
                    if l.strip().startswith(f"- {some_net.name} "))
        assert line.count("(") == some_net.degree
