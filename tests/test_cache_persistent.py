"""Tests for the persistent disk tier of the design cache."""

import dataclasses
import pickle

import pytest

from repro.core.cache import (CODE_VERSION, CacheStats, DesignCache,
                              design_key, process_fingerprint)
from repro.core.flow import FlowConfig
from repro.core.folding import FoldSpec


def test_cold_then_warm_disk_parity(process, tmp_path):
    """A fresh cache over the same directory serves the stored design."""
    cfg = FlowConfig(scale=0.4)
    cold = DesignCache(cache_dir=tmp_path)
    a = cold.get_or_run("ncu", cfg, process)
    assert cold.stats.misses == 1
    assert cold.stats.stores == 1
    assert cold.disk_entries() == 1

    warm = DesignCache(cache_dir=tmp_path)
    b = warm.get_or_run("ncu", cfg, process)
    assert warm.stats.disk_hits == 1
    assert warm.stats.misses == 0
    assert b.power.total_uw == a.power.total_uw
    assert b.footprint_um2 == a.footprint_um2
    assert b.sta.wns_ps == a.sta.wns_ps


def test_disk_hit_promotes_to_memory(process, tmp_path):
    cfg = FlowConfig(scale=0.4)
    DesignCache(cache_dir=tmp_path).get_or_run("ncu", cfg, process)
    warm = DesignCache(cache_dir=tmp_path)
    first = warm.get_or_run("ncu", cfg, process)
    second = warm.get_or_run("ncu", cfg, process)
    assert first is second
    assert warm.stats.disk_hits == 1
    assert warm.stats.hits == 1


def test_corrupted_entry_falls_back_to_recompute(process, tmp_path):
    cfg = FlowConfig(scale=0.4)
    cold = DesignCache(cache_dir=tmp_path)
    good = cold.get_or_run("ncu", cfg, process)
    key = design_key("ncu", cfg, process)
    path = tmp_path / f"{key}.pkl"
    path.write_bytes(b"not a pickle at all")

    warm = DesignCache(cache_dir=tmp_path)
    redone = warm.get_or_run("ncu", cfg, process)
    assert warm.stats.corrupt_drops == 1
    assert warm.stats.misses == 1
    assert warm.stats.disk_hits == 0
    assert redone.power.total_uw == good.power.total_uw
    # the recompute re-stored a healthy entry
    assert warm.disk_entries() == 1


def test_wrong_type_pickle_counts_as_corrupt(process, tmp_path):
    cfg = FlowConfig(scale=0.4)
    key = design_key("ncu", cfg, process)
    (tmp_path / f"{key}.pkl").write_bytes(
        pickle.dumps({"not": "a BlockDesign"}))
    cache = DesignCache(cache_dir=tmp_path)
    cache.get_or_run("ncu", cfg, process)
    assert cache.stats.corrupt_drops == 1
    assert cache.stats.misses == 1


def test_disk_eviction_cap(process, tmp_path):
    cache = DesignCache(cache_dir=tmp_path, max_disk_entries=2)
    for scale in (0.3, 0.35, 0.4):
        cache.get_or_run("ncu", FlowConfig(scale=scale), process)
    assert cache.disk_entries() == 2
    assert cache.stats.evictions >= 1


def test_clear_keeps_disk_clear_disk_removes(process, tmp_path):
    cfg = FlowConfig(scale=0.4)
    cache = DesignCache(cache_dir=tmp_path)
    cache.get_or_run("ncu", cfg, process)
    cache.clear()
    assert len(cache) == 0
    assert cache.disk_entries() == 1
    cache.clear_disk()
    assert cache.disk_entries() == 0


def test_unwritable_cache_dir_degrades_to_memory(process, tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the cache dir should go")
    cache = DesignCache(cache_dir=blocker / "sub")
    design = cache.get_or_run("ncu", FlowConfig(scale=0.4), process)
    assert design.power.total_uw > 0
    assert cache.stats.misses == 1
    assert cache.disk_entries() == 0


# ---- cache-key coverage ------------------------------------------------


def test_key_includes_process_node(process):
    """Regression: two process nodes must never share cache entries."""
    cfg = FlowConfig(scale=0.4)
    other = dataclasses.replace(process, vdd=process.vdd * 0.9)
    assert design_key("ncu", cfg, process) != \
        design_key("ncu", cfg, other)


def test_key_includes_fold_spec(process):
    base = FlowConfig(scale=0.4)
    keys = {
        design_key("ncu", base, process),
        design_key("ncu", dataclasses.replace(
            base, fold=FoldSpec(mode="mincut")), process),
        design_key("ncu", dataclasses.replace(
            base, fold=FoldSpec(mode="interleave")), process),
        design_key("ncu", dataclasses.replace(
            base, fold=FoldSpec(mode="mincut", balance_tol=0.2)),
            process),
    }
    assert len(keys) == 4


def test_key_includes_every_flow_config_field(process):
    """Any FlowConfig field change must change the key."""
    base = FlowConfig(scale=0.4)
    seen = {design_key("ncu", base, process)}
    for name, value in [("seed", 2), ("scale", 0.41),
                        ("bonding", "F2F"), ("dual_vth", True)]:
        key = design_key("ncu", dataclasses.replace(
            base, **{name: value}), process)
        assert key not in seen, f"field {name} not hashed"
        seen.add(key)


def test_key_includes_block_name_and_version(process, monkeypatch):
    cfg = FlowConfig(scale=0.4)
    assert design_key("ncu", cfg, process) != \
        design_key("ccu", cfg, process)
    before = design_key("ncu", cfg, process)
    monkeypatch.setattr("repro.core.cache.CODE_VERSION",
                        CODE_VERSION + ".test")
    assert design_key("ncu", cfg, process) != before


def test_process_fingerprint_covers_3d_vias(process):
    fp = process_fingerprint(process)
    assert set(fp) >= {"name", "vdd", "clock_freq_ghz", "tsv",
                       "f2f_via", "n_metal_layers"}
    assert fp["tsv"]["style"] != fp["f2f_via"]["style"]


def test_cache_stats_hit_rate_counts_both_tiers():
    stats = CacheStats(hits=2, disk_hits=1, misses=1)
    assert stats.hit_rate == pytest.approx(0.75)
    d = stats.as_dict()
    assert d["hit_rate"] == pytest.approx(0.75)
    assert d["disk_hits"] == 1
    assert CacheStats().hit_rate == 0.0
