"""Tests for crosstalk (SI) guardbanding."""

import pytest

from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.route.block_router import route_block_with_router
from repro.timing.si import SiConfig, coupling_factor, derate_routing
from repro.timing.sta import TimingConfig, run_sta
from tests.conftest import fresh_block


class TestCouplingFactor:
    def test_quiet_corridor_no_penalty(self):
        assert coupling_factor(0.0, SiConfig()) == pytest.approx(1.0)

    def test_monotone_in_utilization(self):
        cfg = SiConfig()
        assert coupling_factor(0.2, cfg) < coupling_factor(0.8, cfg) < \
            coupling_factor(1.2, cfg)

    def test_clipped_above(self):
        cfg = SiConfig()
        assert coupling_factor(5.0, cfg) == coupling_factor(1.5, cfg)

    def test_worst_case_bound(self):
        # full coupling, always-switching aggressors, Miller 2.0
        cfg = SiConfig(coupling_fraction=1.0, miller_factor=2.0,
                       aggressor_activity=1.0)
        assert coupling_factor(1.0, cfg) == pytest.approx(2.0)


class TestDerateRouting:
    @pytest.fixture(scope="class")
    def routed(self, library, process):
        gb = fresh_block("l2t", library, seed=6)
        result = place_block_2d(gb.netlist, PlacementConfig(seed=6))
        routing, congestion, router = route_block_with_router(
            gb.netlist, process.metal_stack, result.outline)
        return gb, routing, router

    def test_all_nets_derated(self, routed):
        gb, routing, router = routed
        si_routing, report = derate_routing(gb.netlist, routing, router)
        assert report.nets_derated == len(routing.nets)
        assert set(si_routing.nets) == set(routing.nets)

    def test_factors_physical(self, routed):
        gb, routing, router = routed
        _, report = derate_routing(gb.netlist, routing, router)
        assert 1.0 <= report.mean_factor <= report.worst_factor < 2.0

    def test_caps_never_shrink(self, routed):
        gb, routing, router = routed
        si_routing, _ = derate_routing(gb.netlist, routing, router)
        for nid, base in routing.nets.items():
            assert si_routing.nets[nid].wire_cap_ff >= \
                base.wire_cap_ff - 1e-9

    def test_si_sta_pessimistic(self, routed, process):
        gb, routing, router = routed
        si_routing, _ = derate_routing(gb.netlist, routing, router)
        cfg = TimingConfig("cpu_clk")
        base = run_sta(gb.netlist, routing, process, cfg)
        si = run_sta(gb.netlist, si_routing, process, cfg)
        assert si.wns_ps <= base.wns_ps + 1e-9
