"""Determinism guarantees: same request, same bytes.

The parallel engine and the persistent cache are only trustworthy if
equality is testable at the byte level, so every experiment result is
serialized with key-sorted JSON (timings excluded) and compared across
fresh runs, seeds, serial/parallel execution and cold/warm caches.
"""

import pytest

from repro.analysis.experiments import experiment_json, run_experiment
from repro.core.cache import DesignCache
from repro.parallel.engine import run_experiments


def test_same_seed_same_bytes(process):
    """Two fresh runs of one experiment serialize identically."""
    a = run_experiment("table4", process=process, scale=0.5, seed=1)
    b = run_experiment("table4", process=process, scale=0.5, seed=1)
    assert experiment_json(a) == experiment_json(b)


def test_different_seed_different_bytes(process):
    a = run_experiment("table4", process=process, scale=0.5, seed=1)
    b = run_experiment("table4", process=process, scale=0.5, seed=7)
    assert experiment_json(a) != experiment_json(b)


def test_cached_run_matches_uncached(process, tmp_path):
    """The cache may change *when* work happens, never the numbers."""
    plain = run_experiment("table4", process=process, scale=0.5)
    cached = run_experiment("table4", process=process, scale=0.5,
                            cache=DesignCache(cache_dir=tmp_path))
    warm = run_experiment("table4", process=process, scale=0.5,
                          cache=DesignCache(cache_dir=tmp_path))
    assert experiment_json(cached) == experiment_json(plain)
    assert experiment_json(warm) == experiment_json(plain)


def test_bench_serial_rerun_byte_equal(process):
    ids = ["table1", "table4"]
    a = run_experiments(ids=ids, scale=0.5, process=process)
    b = run_experiments(ids=ids, scale=0.5, process=process)
    assert a.results_json() == b.results_json()


@pytest.mark.slow
def test_bench_serial_vs_parallel_byte_equal(process, tmp_path):
    """Fanning across spawn workers must not change a single byte."""
    ids = ["table1", "table4"]
    serial = run_experiments(ids=ids, scale=0.5, process=process)
    par = run_experiments(ids=ids, scale=0.5, parallel=2,
                          cache_dir=tmp_path)
    assert serial.results_json() == par.results_json()
    # the warm parallel rerun hits the shared disk cache and still
    # produces the same bytes
    warm = run_experiments(ids=ids, scale=0.5, parallel=2,
                           cache_dir=tmp_path)
    assert warm.results_json() == serial.results_json()


def test_timing_excluded_from_results_json(process):
    report = run_experiments(ids=["table1"], scale=0.5, process=process)
    assert "wall_s" not in report.results_json()
    assert "stage_times_ms" not in report.results_json()
    assert report.timing_dict()["experiments"]["table1"] >= 0.0
