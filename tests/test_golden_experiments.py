"""Golden regression tests for the reproduced headline numbers.

``tests/golden/golden.json`` freezes the metrics the paper reproduction
headlines -- the CCX folding savings (Fig. 2), the F2F-vs-F2B bonding
gap (Fig. 6) and the full-chip folding + dual-Vth savings (Table 5).
These tests recompute them at the frozen scale/seed and fail when any
metric drifts past its tolerance, so perf work (parallel engine,
caching, future kernels) cannot silently move the physics.

To refresh intentionally after a model change::

    PYTHONPATH=src python -m repro bench --ids fig2,fig6,table5 \
        --write-golden tests/golden/golden.json
"""

from pathlib import Path

import pytest

from repro.analysis.golden import (DEFAULT_ATOL, GOLDEN_IDS,
                                   GOLDEN_SCALE, GOLDEN_SEED,
                                   compare_to_golden, golden_metrics,
                                   load_golden, make_golden_payload,
                                   save_golden)
from repro.parallel.engine import run_experiments

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden.json"


@pytest.fixture(scope="module")
def golden_run(process):
    """One serial run of the golden experiment set at the frozen
    configuration (module-scoped: this is the expensive part)."""
    report = run_experiments(ids=list(GOLDEN_IDS), scale=GOLDEN_SCALE,
                             seed=GOLDEN_SEED, process=process)
    return report


@pytest.mark.slow
def test_golden_experiments_pass_their_own_checks(golden_run):
    failed = [r.experiment_id for r in golden_run.runs
              if not r.all_passed]
    assert not failed, f"experiment self-checks failed: {failed}"


@pytest.mark.slow
def test_headline_metrics_match_golden(golden_run):
    golden = load_golden(GOLDEN_PATH)
    measured = golden_metrics(golden_run.results_dict())
    problems = compare_to_golden(measured, golden)
    assert not problems, "golden regression:\n  " + "\n  ".join(problems)


@pytest.mark.slow
def test_headline_directions(golden_run):
    """The signs the paper's story rests on, independent of the frozen
    magnitudes: folding saves power and area, F2F beats F2B, and the
    folded dual-Vth chip beats the unfolded one."""
    m = golden_metrics(golden_run.results_dict())
    assert m["ccx_fold_power_rel"] < -0.05
    assert m["ccx_fold_footprint_rel"] < -0.3
    assert m["l2t_f2f_vs_f2b_power_rel"] < 0.0
    assert m["l2d_f2f_vs_f2b_power_rel"] < 0.0
    assert m["chip_dvt_fold_f2f_power_rel"] < \
        m["chip_dvt_nofold_power_rel"] < 0.0
    assert 0.5 < m["chip_dvt_fold_hvt_fraction"] <= 1.0


def test_golden_file_is_frozen_at_the_declared_config():
    golden = load_golden(GOLDEN_PATH)
    assert golden["scale"] == GOLDEN_SCALE
    assert golden["seed"] == GOLDEN_SEED
    assert golden["atol"] == DEFAULT_ATOL
    assert golden["metrics"], "fixture has no metrics"
    assert list(golden["metrics"]) == sorted(golden["metrics"])


def test_compare_to_golden_flags_drift_and_coverage():
    golden = make_golden_payload({"a": -0.30, "b": 0.10}, atol=0.02)
    assert compare_to_golden({"a": -0.31, "b": 0.11}, golden) == []
    drift = compare_to_golden({"a": -0.36, "b": 0.10}, golden)
    assert len(drift) == 1 and "a" in drift[0]
    missing = compare_to_golden({"a": -0.30}, golden)
    assert any("no longer measured" in p for p in missing)
    extra = compare_to_golden({"a": -0.30, "b": 0.10, "c": 1.0}, golden)
    assert any("not frozen" in p for p in extra)


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "golden.json"
    save_golden(path, {"x": -0.5}, atol=0.01)
    loaded = load_golden(path)
    assert loaded["metrics"] == {"x": -0.5}
    assert loaded["atol"] == 0.01
    assert path.read_text().endswith("\n")
