"""ECO-engine regressions: reroute scope, counters, the flow stage.

The headline regression (ISSUE 9): buffer insertion used to trigger a
full block reroute and a from-scratch STA.  These tests pin the new
behavior through the *generated* observability name registry --
``opt.full_reroutes`` stays flat while ``route.nets_reextracted``
advances -- at every level: the ECO session, the optimizer's surgery
path, and the flow's ``eco`` stage.
"""

import json
from dataclasses import replace

import pytest

from repro.analysis.export_json import block_to_dict
from repro.core.flow import FlowConfig, run_block_flow
from repro.designgen import block_type_by_name, generate_block
from repro.eco import BufferInsert, Displace, EcoConfig, EcoSession
from repro.obs.metrics import metrics
from repro.obs.names import (CTR_OPT_FULL_REROUTES,
                             CTR_ROUTE_NETS_REEXTRACTED)
from repro.opt.buffering import BufferingConfig, plan_net_buffering
from repro.opt.flow import OptimizeConfig, optimize_block
from repro.place import PlacementConfig, place_block_2d
from repro.route.estimate import RouteContext
from repro.timing import TimingConfig


@pytest.fixture(scope="module")
def base(process):
    return run_block_flow(
        "l2t", FlowConfig(scale=0.12, seed=7, io_budget_ps=60.0),
        process)


def _bufferable_nets(session, process, drive=4):
    cfg = BufferingConfig(buffer_drive=drive)
    return [nid for nid, routed in session.routing.nets.items()
            if not session.netlist.nets[nid].is_clock and
            plan_net_buffering(session.netlist, routed,
                               process.library, cfg) is not None]


class TestBufferInsertionStaysIncremental:
    """Satellite regression: a buffer insert re-extracts only the
    touched nets on l2t -- the full-reroute counter must not move."""

    def test_session_buffer_insert_never_full_reroutes(self, base,
                                                       process):
        session = EcoSession.from_design(base, process)
        # the optimizer already buffered every long net, so stretch one
        # net far past the long-wire threshold to create fresh demand
        inst = next(c for c in session.netlist.cells
                    if not c.is_macro and not c.fixed)
        session.apply([Displace(inst_id=inst.id, x=inst.x + 400.0,
                                y=inst.y)])
        nets = _bufferable_nets(session, process)
        assert nets, "stretch produced no bufferable net"

        m = metrics()
        full_before = m.counter(CTR_OPT_FULL_REROUTES).value
        extracted_before = m.counter(CTR_ROUTE_NETS_REEXTRACTED).value
        report = session.apply([BufferInsert(net_id=nets[0])])

        assert report.buffers_added > 0
        assert m.counter(CTR_OPT_FULL_REROUTES).value == full_before
        assert m.counter(CTR_ROUTE_NETS_REEXTRACTED).value > \
            extracted_before
        assert session.stats["full_reroutes"] == 0
        assert session.stats["sta_full_rebuilds"] == 0

    def test_optimizer_buffering_pays_one_initial_route_only(
            self, process):
        gb = generate_block(block_type_by_name("l2t"), process.library,
                            seed=1)
        place_block_2d(gb.netlist, PlacementConfig(seed=1))
        ctx = RouteContext(stack=process.metal_stack)
        m = metrics()
        full_before = m.counter(CTR_OPT_FULL_REROUTES).value
        extracted_before = m.counter(CTR_ROUTE_NETS_REEXTRACTED).value
        result = optimize_block(
            gb.netlist, process, TimingConfig("cpu_clk"),
            ctx.route_block, OptimizeConfig(dual_vth=True),
            route_net_fn=ctx.route_net)
        assert result.buffers_added > 0
        # exactly the initial route: buffer surgery patches per net now
        assert result.full_reroutes == 1
        assert m.counter(CTR_OPT_FULL_REROUTES).value - full_before == 1
        assert m.counter(CTR_ROUTE_NETS_REEXTRACTED).value > \
            extracted_before


class TestFlowEcoStage:
    def test_flow_eco_stage_is_bit_exact_vs_full_recompute(
            self, process):
        cfg = FlowConfig(scale=0.12, seed=7, io_budget_ps=30.0,
                         eco=EcoConfig(target_wns_ps=305.0))
        inc = run_block_flow("l2t", cfg, process)
        full = run_block_flow(
            "l2t",
            replace(cfg, eco=EcoConfig(target_wns_ps=305.0,
                                       full_recompute=True)),
            process)
        assert inc.eco_report is not None
        assert inc.eco_report.status == "met"
        assert inc.eco_report.moves_applied > 0
        assert inc.eco_report.status == full.eco_report.status
        assert json.dumps(block_to_dict(inc), sort_keys=True) == \
            json.dumps(block_to_dict(full), sort_keys=True)
        stats = inc.eco_report.session_stats
        assert stats["full_reroutes"] == 0
        assert stats["sta_full_rebuilds"] == 0

    def test_flow_rejects_eco_with_detailed_route(self, process):
        cfg = FlowConfig(scale=0.12, seed=7, detailed_route=True,
                         eco=EcoConfig())
        with pytest.raises(ValueError, match="detailed_route"):
            run_block_flow("l2t", cfg, process)
