"""Tests for seed-stability analysis and JSON export."""

import json

import pytest

from repro.analysis.export_json import (block_to_dict, chip_to_dict,
                                        dump_json)
from repro.analysis.stability import (StabilityResult, compare_stability,
                                      fold_stability)
from repro.core.flow import FlowConfig, run_block_flow
from repro.core.folding import FoldSpec


class TestStabilityResult:
    def test_statistics(self):
        r = StabilityResult("x", [-0.10, -0.14, -0.12])
        assert r.mean == pytest.approx(-0.12)
        assert r.std > 0
        assert r.sign_stable
        assert "sign-stable" in r.summary()

    def test_mixed_sign_flagged(self):
        r = StabilityResult("x", [-0.05, 0.03])
        assert not r.sign_stable
        assert "MIXED SIGN" in r.summary()

    def test_empty(self):
        r = StabilityResult("x", [])
        assert r.mean == 0.0 and not r.sign_stable


def test_ccx_fold_power_sign_stable(process):
    res = fold_stability(
        "ccx", FoldSpec(mode="regions", die1_regions=("cpx",)),
        process, metric="power", seeds=(1, 2))
    assert res.n == 2
    assert res.sign_stable
    assert res.mean < -0.05


def test_compare_stability_footprint(process):
    res = compare_stability(
        "l2t", FlowConfig(),
        FlowConfig(fold=FoldSpec(mode="mincut"), bonding="F2F"),
        process, metric="footprint", seeds=(1, 2), label="l2t foot")
    assert res.label == "l2t foot"
    assert res.sign_stable and res.mean < -0.3


class TestJsonExport:
    @pytest.fixture(scope="class")
    def design(self, process):
        return run_block_flow("ncu", FlowConfig(
            fold=FoldSpec(mode="mincut"), bonding="F2F",
            detailed_route=True), process)

    def test_block_dict_complete(self, design):
        d = block_to_dict(design)
        assert d["name"] == "ncu"
        assert d["config"]["folded"] is True
        assert d["config"]["bonding"] == "F2F"
        assert d["power"]["total_uw"] == pytest.approx(
            design.power.total_uw)
        assert d["n_vias"] == design.n_vias
        assert "congestion" in d

    def test_json_round_trips(self, design, tmp_path):
        path = tmp_path / "design.json"
        text = dump_json(design, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(text)
        assert loaded["clock_tree"]["sinks"] > 0

    def test_chip_dict(self, process):
        from repro.core import ChipConfig, build_chip
        chip = build_chip(ChipConfig(style="core_cache", scale=0.3),
                          process)
        d = chip_to_dict(chip)
        assert d["style"] == "core_cache"
        assert d["n_dies"] == 2
        assert set(d["blocks"]) == set(chip.block_designs)
        json.dumps(d)  # fully serializable
