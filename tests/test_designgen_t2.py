"""Tests for the T2 design model and block generation."""

import pytest

from repro.designgen.generate import generate_block
from repro.designgen.t2 import (SPC_FOLDED_FUBS, SPC_FUBS, Bundle,
                                block_type_by_name, scaled_logic,
                                t2_block_types, t2_bundles, t2_instances)
from repro.tech.cells import make_28nm_library
from repro.tech.process import CPU_CLOCK, IO_CLOCK


@pytest.fixture(scope="module")
def lib():
    return make_28nm_library()


def test_forty_six_instances():
    assert len(t2_instances()) == 46


def test_instance_multiplicities():
    counts = {}
    for _, t in t2_instances():
        counts[t] = counts.get(t, 0) + 1
    assert counts["spc"] == 8
    assert counts["l2d"] == 8
    assert counts["l2t"] == 8
    assert counts["l2b"] == 8
    assert counts["ccx"] == 1
    assert counts["mcu"] == 3


def test_block_type_lookup():
    assert block_type_by_name("ccx").count == 1
    with pytest.raises(KeyError):
        block_type_by_name("gpu")


def test_spc_has_fourteen_fubs():
    assert len(SPC_FUBS) == 14
    assert abs(sum(f.fraction for f in SPC_FUBS) - 1.0) < 1e-9
    assert set(SPC_FOLDED_FUBS) <= {f.name for f in SPC_FUBS}
    assert len(SPC_FOLDED_FUBS) == 6


def test_clock_domains():
    io_blocks = {"rtx", "mac", "tds", "rdp"}
    for bt in t2_block_types():
        expected = IO_CLOCK if bt.name in io_blocks else CPU_CLOCK
        assert bt.logic.clock_domain == expected, bt.name


def test_l2d_is_memory_dominated():
    bt = block_type_by_name("l2d")
    macro_area = sum(m.area_um2 * c for m, c in bt.logic.macros)
    cell_area = bt.logic.n_cells * 110.0
    assert macro_area > cell_area


def test_ccx_regions_and_bridges():
    bt = block_type_by_name("ccx")
    names = [n for n, _ in bt.regions]
    assert names == ["pcx", "cpx"]
    assert bt.cross_region_nets == 3  # + clock = the paper's 4 TSVs


def test_only_spc_gets_nine_metals():
    for bt in t2_block_types():
        if bt.name == "spc":
            assert bt.max_metal == 9
        else:
            assert bt.max_metal == 7


def test_bundles_reference_real_instances():
    instances = {name for name, _ in t2_instances()}
    for b in t2_bundles():
        assert b.a in instances, b
        assert b.b in instances, b
        assert b.n_wires > 0


def test_niu_bundles_on_io_clock():
    for b in t2_bundles():
        if {"rtx", "mac", "tds", "rdp"} & {b.a, b.b} and \
                b.a != "dmu" and b.b != "dmu":
            assert b.clock_domain == IO_CLOCK, b


def test_every_instance_connected():
    touched = set()
    for b in t2_bundles():
        touched.add(b.a)
        touched.add(b.b)
    assert {name for name, _ in t2_instances()} == touched


def test_scaled_logic_scales_counts():
    spec = block_type_by_name("spc").logic
    half = scaled_logic(spec, 0.5)
    assert half.n_cells == pytest.approx(spec.n_cells * 0.5, abs=1)
    assert half.n_inputs == pytest.approx(spec.n_inputs * 0.5, abs=1)
    assert half.macros[0][1] >= 1


def test_scaled_logic_rejects_nonpositive():
    with pytest.raises(ValueError):
        scaled_logic(block_type_by_name("ccx").logic, 0.0)


class TestGenerateBlock:
    def test_regions_cover_all_clusters(self, lib):
        gb = generate_block(block_type_by_name("spc"), lib, seed=2)
        covered = set()
        for lo, hi in gb.regions.values():
            covered.update(range(lo, hi))
        clusters = {i.cluster for i in gb.netlist.instances.values()}
        assert clusters <= covered

    def test_regions_disjoint(self, lib):
        gb = generate_block(block_type_by_name("spc"), lib, seed=2)
        seen = set()
        for lo, hi in gb.regions.values():
            span = set(range(lo, hi))
            assert not (span & seen)
            seen |= span

    def test_region_of_cluster(self, lib):
        gb = generate_block(block_type_by_name("l2d"), lib, seed=2)
        lo, hi = gb.regions["subbank1"]
        assert gb.region_of_cluster(lo) == "subbank1"
        assert gb.region_of_cluster(10 ** 9) is None

    def test_ccx_halves_nearly_disconnected(self, lib):
        gb = generate_block(block_type_by_name("ccx"), lib, seed=2)
        nl = gb.netlist
        pcx = gb.clusters_of_regions(("pcx",))
        cross = 0
        for net in nl.nets.values():
            if net.is_clock:
                continue
            sides = {nl.instances[r.inst].cluster in pcx
                     for r in net.endpoints() if not r.is_port}
            if len(sides) > 1:
                cross += 1
        bt = block_type_by_name("ccx")
        assert cross == bt.cross_region_nets

    def test_generated_block_validates(self, lib):
        for name in ("ccx", "l2t", "mcu"):
            gb = generate_block(block_type_by_name(name), lib, seed=5)
            assert gb.netlist.validate() == []

    def test_scale_parameter(self, lib):
        full = generate_block(block_type_by_name("l2t"), lib, seed=1,
                              scale=1.0)
        half = generate_block(block_type_by_name("l2t"), lib, seed=1,
                              scale=0.5)
        assert half.netlist.num_cells < 0.6 * full.netlist.num_cells
