"""Tests for the netlist data model."""

import pytest

from repro.netlist.core import INPUT, OUTPUT, Netlist, PinRef
from repro.tech.cells import make_28nm_library
from repro.tech.macros import sram_macro


@pytest.fixture()
def lib():
    return make_28nm_library()


@pytest.fixture()
def simple(lib):
    """in -> inv1 -> inv2 -> out, plus a flop hanging off inv1."""
    nl = Netlist("simple")
    inv = lib.master("INV_X1")
    dff = lib.master("DFF_X1")
    i1 = nl.add_instance("inv1", inv)
    i2 = nl.add_instance("inv2", inv)
    ff = nl.add_instance("ff", dff)
    nl.add_port("in", INPUT)
    nl.add_port("out", OUTPUT)
    nl.add_port("clk", INPUT)
    nl.add_net("n_in", PinRef(port="in"), [PinRef(inst=i1.id, pin=0)])
    nl.add_net("n_mid", PinRef(inst=i1.id),
               [PinRef(inst=i2.id, pin=0), PinRef(inst=ff.id, pin=0)])
    nl.add_net("n_out", PinRef(inst=i2.id), [PinRef(port="out")])
    nl.add_net("clk", PinRef(port="clk"), [PinRef(inst=ff.id, pin=1)],
               is_clock=True)
    return nl, i1, i2, ff


def test_validate_clean(simple):
    nl, *_ = simple
    assert nl.validate() == []


def test_counts(simple):
    nl, *_ = simple
    assert nl.num_cells == 3
    assert nl.num_buffers == 2  # the two inverters count as repeaters
    assert len(nl.nets) == 4
    assert len(nl.ports) == 3


def test_nets_of_instance(simple):
    nl, i1, i2, ff = simple
    names = {n.name for n in nl.nets_of(i1.id)}
    assert names == {"n_in", "n_mid"}
    assert {n.name for n in nl.nets_of(ff.id)} == {"n_mid", "clk"}


def test_output_net_of(simple):
    nl, i1, i2, ff = simple
    assert nl.output_net_of(i1.id).name == "n_mid"
    assert nl.output_net_of(ff.id) is None  # flop Q unused here


def test_endpoint_position_and_cap(simple):
    nl, i1, *_ = simple
    i1.x, i1.y, i1.die = 10.0, 20.0, 1
    assert nl.endpoint_position(PinRef(inst=i1.id)) == (10.0, 20.0, 1)
    p = nl.ports["in"]
    p.x = 5.0
    assert nl.endpoint_position(PinRef(port="in"))[0] == 5.0
    assert nl.endpoint_cap_ff(PinRef(inst=i1.id, pin=0)) == \
        i1.master.input_cap_ff
    assert nl.endpoint_cap_ff(PinRef(port="out")) > 0


def test_3d_net_detection(simple):
    nl, i1, i2, ff = simple
    net = nl.output_net_of(i1.id)
    assert not nl.is_3d_net(net)
    i2.die = 1
    assert nl.is_3d_net(net)
    # n_mid crosses (i1 on die 0, i2 on die 1) and n_out crosses too
    # (i2 on die 1, the "out" port on die 0)
    assert nl.count_3d_nets() == 2
    nl.ports["out"].die = 1
    assert nl.count_3d_nets() == 1


def test_rewire_driver(simple, lib):
    nl, i1, i2, ff = simple
    buf = nl.add_instance("buf", lib.master("BUF_X4"))
    net = nl.output_net_of(i2.id)
    nl.rewire_driver(net.id, PinRef(inst=buf.id))
    assert net.driver.inst == buf.id
    assert net in nl.nets_of(buf.id)
    assert net not in nl.nets_of(i2.id)


def test_add_remove_sink(simple, lib):
    nl, i1, i2, ff = simple
    extra = nl.add_instance("extra", lib.master("INV_X1"))
    net = nl.output_net_of(i1.id)
    ref = PinRef(inst=extra.id, pin=0)
    nl.add_sink(net.id, ref)
    assert net.degree == 4
    assert net in nl.nets_of(extra.id)
    nl.remove_sink(net.id, ref)
    assert net.degree == 3
    assert net not in nl.nets_of(extra.id)


def test_remove_missing_sink_raises(simple):
    nl, i1, *_ = simple
    net = nl.output_net_of(i1.id)
    with pytest.raises(ValueError):
        nl.remove_sink(net.id, PinRef(inst=999, pin=0))


def test_remove_net_and_instance(simple):
    nl, i1, i2, ff = simple
    net = nl.output_net_of(i2.id)
    nl.remove_net(net.id)
    assert net.id not in nl.nets
    # i2 still connected through n_mid
    with pytest.raises(ValueError):
        nl.remove_instance(i2.id)
    mid = nl.output_net_of(i1.id)
    nl.remove_sink(mid.id, PinRef(inst=i2.id, pin=0))
    nl.remove_instance(i2.id)
    assert i2.id not in nl.instances


def test_duplicate_port_rejected(simple):
    nl, *_ = simple
    with pytest.raises(ValueError):
        nl.add_port("in", INPUT)


def test_bad_port_direction_rejected(lib):
    nl = Netlist("x")
    with pytest.raises(ValueError):
        nl.add_port("p", "inout")


def test_validate_catches_direction_misuse(lib):
    nl = Netlist("bad")
    inv = nl.add_instance("i", lib.master("INV_X1"))
    nl.add_port("o", OUTPUT)
    # an output port may not drive a net
    nl.add_net("n", PinRef(port="o"), [PinRef(inst=inv.id, pin=0)])
    problems = nl.validate()
    assert any("non-input port" in p for p in problems)


def test_validate_catches_sinkless_net(lib):
    nl = Netlist("bad2")
    inv = nl.add_instance("i", lib.master("INV_X1"))
    nl.add_net("n", PinRef(inst=inv.id), [])
    assert any("no sinks" in p for p in nl.validate())


def test_macro_instance_properties(lib):
    nl = Netlist("m")
    m = nl.add_instance("ram", sram_macro(4))
    assert m.is_macro
    assert not m.is_sequential
    assert m.width_um == pytest.approx(m.master.width_um)
    assert m.area_um2 > 1000


def test_cell_width_from_area(lib):
    from repro.tech.cells import CELL_HEIGHT_UM
    nl = Netlist("w")
    c = nl.add_instance("c", lib.master("NAND2_X4"))
    assert c.width_um == pytest.approx(c.area_um2 / CELL_HEIGHT_UM)
    assert c.height_um == CELL_HEIGHT_UM


class TestClone:
    def test_clone_matches_original(self, simple):
        nl, i1, i2, ff = simple
        i1.x, i1.die = 12.5, 1
        copy = nl.clone()
        assert copy.num_cells == nl.num_cells
        assert len(copy.nets) == len(nl.nets)
        assert copy.instances[i1.id].x == 12.5
        assert copy.instances[i1.id].die == 1
        assert copy.validate() == []

    def test_clone_is_independent(self, simple, lib):
        nl, i1, i2, ff = simple
        copy = nl.clone()
        copy.replace_master(i1.id, lib.master("INV_X8"))
        copy.instances[i2.id].x = 999.0
        extra = copy.add_instance("extra", lib.master("BUF_X2"))
        assert nl.instances[i1.id].master.drive == 1
        assert nl.instances[i2.id].x != 999.0
        assert extra.id not in nl.instances

    def test_clone_shares_masters(self, simple):
        nl, i1, *_ = simple
        copy = nl.clone()
        assert copy.instances[i1.id].master is nl.instances[i1.id].master

    def test_clone_then_edit_keeps_indexes_consistent(self, simple, lib):
        nl, i1, i2, ff = simple
        copy = nl.clone()
        net = copy.output_net_of(i1.id)
        buf = copy.add_instance("b", lib.master("BUF_X2"))
        copy.rewire_driver(net.id, PinRef(inst=buf.id))
        assert net in copy.nets_of(buf.id)
        # the original still has i1 as the driver
        assert nl.output_net_of(i1.id) is not None
