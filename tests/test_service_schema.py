"""Tests for the service wire schema and the result store."""

import json

import pytest

from repro.service.schema import (SCHEMA_VERSION, PointResult, PointSpec,
                                  SchemaError, SweepRequest, decode_line,
                                  encode_line)
from repro.service.store import ResultStore


def _result(point=None, key="k" * 64, status="ok", **kw):
    point = point or PointSpec("table1", 0.5, 1)
    defaults = dict(all_passed=True, result={"x": 1}, attempts=1,
                    wall_s=0.25, source="computed", error=None)
    defaults.update(kw)
    return PointResult(point=point, key=key, status=status, **defaults)


class TestWireLines:
    def test_encode_is_key_sorted_compact_newline(self):
        line = encode_line({"b": 1, "a": [2, 3]})
        assert line == b'{"a":[2,3],"b":1}\n'

    def test_decode_round_trip(self):
        assert decode_line(encode_line({"a": 1})) == {"a": 1}

    def test_decode_rejects_junk_and_non_objects(self):
        with pytest.raises(SchemaError):
            decode_line(b"{not json\n")
        with pytest.raises(SchemaError):
            decode_line(b"[1, 2]\n")


class TestPointSpec:
    def test_wire_round_trip(self):
        spec = PointSpec("fig6", scale=0.7, seed=3)
        assert PointSpec.from_wire(spec.to_wire()) == spec

    def test_key_is_stable_and_content_sensitive(self, process):
        a = PointSpec("table1", 0.5, 1)
        assert a.key(process) == a.key(process)
        assert a.key(process) != PointSpec("table1", 0.5, 2).key(process)
        assert a.key(process) != PointSpec("table1", 0.6, 1).key(process)
        assert a.key(process) != PointSpec("table2", 0.5, 1).key(process)

    def test_to_options_threads_the_point(self, process):
        opts = PointSpec("fig2", 0.7, 9).to_options(process=process)
        assert opts.scale == 0.7
        assert opts.seed == 9
        assert opts.process is process

    def test_bad_wire_spec_raises(self):
        with pytest.raises(SchemaError):
            PointSpec.from_wire({"scale": 1.0})


class TestSweepRequest:
    def test_wire_round_trip(self):
        req = SweepRequest.from_ids(["table1", "fig2"], scale=0.7,
                                    seed=2, timeout_s=30.0, retries=1)
        back = SweepRequest.from_wire(req.to_wire())
        assert back == req
        assert back.to_wire()["schema_version"] == SCHEMA_VERSION

    def test_from_ids_defaults_to_whole_registry(self):
        req = SweepRequest.from_ids()
        assert len(req.points) >= 11
        assert "table1" in req.experiment_ids()

    def test_version_mismatch_rejected(self):
        wire = SweepRequest.from_ids(["table1"]).to_wire()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema version"):
            SweepRequest.from_wire(wire)

    def test_validate_rejects_empty_unknown_and_duplicates(self):
        with pytest.raises(SchemaError, match="empty"):
            SweepRequest(points=()).validate()
        with pytest.raises(SchemaError, match="unknown experiment ids"):
            SweepRequest.from_ids(["nope"]).validate(known=["table1"])
        with pytest.raises(SchemaError, match="duplicate"):
            SweepRequest.from_ids(["table1", "table1"]).validate()

    def test_distinct_seeds_are_not_duplicates(self):
        req = SweepRequest(points=(PointSpec("table1", 1.0, 1),
                                   PointSpec("table1", 1.0, 2)))
        req.validate(known=["table1"])


class TestPointResult:
    def test_wire_round_trip(self):
        res = _result(attempts=2, source="cache")
        assert PointResult.from_wire(res.to_wire()) == res

    def test_canonical_excludes_timing_and_provenance(self):
        computed = _result(wall_s=1.5, attempts=3, source="computed")
        cached = _result(wall_s=0.0, attempts=1, source="cache")
        assert computed.canonical_json() == cached.canonical_json()
        doc = json.loads(computed.canonical_json())
        assert "wall_s" not in doc
        assert "attempts" not in doc
        assert "source" not in doc

    def test_bad_status_and_source_rejected(self):
        wire = _result().to_wire()
        wire["status"] = "exploded"
        with pytest.raises(SchemaError, match="status"):
            PointResult.from_wire(wire)
        wire = _result().to_wire()
        wire["source"] = "guesswork"
        with pytest.raises(SchemaError, match="source"):
            PointResult.from_wire(wire)


class TestResultStore:
    def test_memory_round_trip(self):
        store = ResultStore()
        res = _result()
        store.put(res)
        assert store.get(res.key) == res
        assert store.get("f" * 64) is None

    def test_disk_tier_survives_a_fresh_store(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        res = _result()
        store.put(res)
        fresh = ResultStore(cache_dir=tmp_path)
        assert fresh.get(res.key) == res

    def test_failures_are_never_stored(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        store.put(_result(status="failed", all_passed=False, result={},
                          error="boom"))
        assert len(store) == 0
        assert ResultStore(cache_dir=tmp_path).get("k" * 64) is None

    def test_corrupt_disk_entry_is_a_miss_and_dropped(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        res = _result()
        store.put(res)
        path = store._path(res.key)
        path.write_bytes(b"{torn write")
        fresh = ResultStore(cache_dir=tmp_path)
        assert fresh.get(res.key) is None
        assert not path.exists()

    def test_wrong_key_entry_is_dropped(self, tmp_path):
        store = ResultStore(cache_dir=tmp_path)
        res = _result()
        store.put(res)
        # file moved under a different key: content no longer matches
        other = "a" * 64
        store._path(res.key).rename(store._path(other))
        fresh = ResultStore(cache_dir=tmp_path)
        assert fresh.get(other) is None

    def test_memory_tier_is_fifo_capped(self):
        store = ResultStore(max_entries=2)
        results = [_result(key=str(i) * 64) for i in range(3)]
        for res in results:
            store.put(res)
        assert len(store) == 2
        assert store.get(results[0].key) is None
        assert store.get(results[2].key) == results[2]
