"""Parity/QoR harness: batched placement kernels vs the scalar reference.

The vectorized kernels in ``repro.place`` are gated by this suite: the
legacy per-pin/per-cell loops live on in :mod:`repro.place.scalar`
behind ``REPRO_PLACE_SCALAR=1``, and every case here runs a fresh block
through both paths and compares the outcomes.

Tolerance policy (see docs/placement.md): the quadratic assembly is
bit-identical by construction, but the O(1) prefix-sum supply queries
reorder float additions, so a spreading bisection split can flip at ULP
level.  QoR comparisons therefore use a 2% HPWL band rather than exact
coordinates; structural invariants (overlap-freedom, die assignment,
determinism) are exact.
"""

import numpy as np
import pytest

from repro.place import (PlacementConfig, check_overlaps, fm_bipartition,
                         fold_place_3d, hpwl, place_block_2d)
from repro.place.legalize import overlapping_pairs
from repro.place.scalar import SCALAR_ENV
from repro.place import scalar
from tests.conftest import fresh_block

#: HPWL may drift this much between the two paths (ULP-level split flips)
HPWL_TOL = 1.02


def place_both(library, name, seed, monkeypatch, **cfg):
    """Place one block twice (vectorized, then scalar) from scratch."""
    monkeypatch.delenv(SCALAR_ENV, raising=False)
    vec = fresh_block(name, library, seed=seed)
    place_block_2d(vec.netlist, PlacementConfig(seed=seed, **cfg))
    monkeypatch.setenv(SCALAR_ENV, "1")
    ref = fresh_block(name, library, seed=seed)
    place_block_2d(ref.netlist, PlacementConfig(seed=seed, **cfg))
    monkeypatch.delenv(SCALAR_ENV, raising=False)
    return vec.netlist, ref.netlist


class TestGlobalPlaceParity:
    @pytest.mark.parametrize("name,seed", [("ncu", 1), ("l2t", 1)])
    def test_hpwl_within_band(self, library, monkeypatch, name, seed):
        vec, ref = place_both(library, name, seed, monkeypatch)
        wl_vec, wl_ref = hpwl(vec), hpwl(ref)
        assert wl_vec <= HPWL_TOL * wl_ref
        assert wl_ref <= HPWL_TOL * wl_vec

    def test_legalized_hpwl_within_band(self, library, monkeypatch):
        vec, ref = place_both(library, "ncu", 2, monkeypatch,
                              full_legalize=True, utilization=0.45)
        wl_vec, wl_ref = hpwl(vec), hpwl(ref)
        assert wl_vec <= HPWL_TOL * wl_ref
        assert wl_ref <= HPWL_TOL * wl_vec

    def test_scalar_env_reaches_scalar_path(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV, "1")
        assert scalar.use_scalar()
        monkeypatch.setenv(SCALAR_ENV, "0")
        assert not scalar.use_scalar()


class TestLegalizeParity:
    def test_vectorized_legalization_overlap_free(self, library,
                                                  monkeypatch):
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        gb = fresh_block("ncu", library, seed=3)
        place_block_2d(gb.netlist,
                       PlacementConfig(seed=3, full_legalize=True,
                                       utilization=0.45))
        movable = [c for c in gb.netlist.cells if not c.fixed]
        assert check_overlaps(movable) == 0

    def test_pair_set_unchanged_on_golden_block(self, library,
                                                monkeypatch):
        # the global sweep fixes the adjacent-only scan's wide-cell
        # blindness; on a legalized (overlap-free) block both report
        # the same -- empty -- pair set
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        gb = fresh_block("ncu", library, seed=4)
        place_block_2d(gb.netlist,
                       PlacementConfig(seed=4, full_legalize=True,
                                       utilization=0.45))
        movable = [c for c in gb.netlist.cells if not c.fixed]
        vec_pairs = overlapping_pairs(movable)
        ref_pairs = scalar.overlapping_pairs(movable)
        key = lambda p: tuple(sorted((p[0].id, p[1].id)))  # noqa: E731
        assert {key(p) for p in vec_pairs} == {key(p) for p in ref_pairs}
        assert vec_pairs == []


class TestFold3DParity:
    def test_identical_die_assignment(self, library, monkeypatch,
                                      process):
        dies = {}
        for env in ("vec", "scalar"):
            if env == "scalar":
                monkeypatch.setenv(SCALAR_ENV, "1")
            else:
                monkeypatch.delenv(SCALAR_ENV, raising=False)
            gb = fresh_block("ccx", library, seed=1)
            part = fm_bipartition(gb.netlist, seed=0)
            fold_place_3d(gb.netlist, process, part.assignment, "F2B",
                          PlacementConfig(seed=1), mode="fold")
            dies[env] = {i.id: i.die
                         for i in gb.netlist.instances.values()}
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        assert dies["vec"] == dies["scalar"]


class TestBistratalMode:
    def run(self, library, process, bonding="F2B"):
        gb = fresh_block("ccx", library, seed=1)
        part = fm_bipartition(gb.netlist, seed=0)
        res = fold_place_3d(gb.netlist, process, part.assignment,
                            bonding, PlacementConfig(seed=1),
                            mode="bistratal")
        return res, gb.netlist

    def test_valid_balanced_assignment(self, library, process):
        res, nl = self.run(library, process)
        area = {0: 0.0, 1: 0.0}
        for inst in nl.instances.values():
            assert inst.die in (0, 1)
            area[inst.die] += inst.area_um2
        balance = max(area.values()) / (area[0] + area[1])
        assert balance <= 0.55
        assert res.hpwl_um > 0

    def test_deterministic(self, library, process):
        _, nl1 = self.run(library, process)
        _, nl2 = self.run(library, process)
        d1 = {i.id: i.die for i in nl1.instances.values()}
        d2 = {i.id: i.die for i in nl2.instances.values()}
        assert d1 == d2

    def test_f2f_admits_more_crossings(self, library, process):
        # F2F bond points cost no silicon, so the z objective's weaker
        # via penalty should tolerate at least as many crossings
        res_f2b, _ = self.run(library, process, "F2B")
        res_f2f, _ = self.run(library, process, "F2F")
        assert len(res_f2f.vias) >= len(res_f2b.vias)

    def test_unknown_mode_rejected(self, library, process):
        gb = fresh_block("ncu", library, seed=1)
        part = fm_bipartition(gb.netlist, seed=0)
        with pytest.raises(ValueError, match="mode"):
            fold_place_3d(gb.netlist, process, part.assignment, "F2B",
                          PlacementConfig(seed=1), mode="stacked")
