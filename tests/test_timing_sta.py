"""Tests for the STA engine, mostly against hand-computed netlists."""

import pytest

from repro.netlist.core import INPUT, OUTPUT, Netlist, PinRef
from repro.route.estimate import route_block
from repro.tech.cells import make_28nm_library
from repro.tech.process import CPU_CLOCK, make_process
from repro.timing.sta import (MACRO_SETUP_PS, SETUP_PS, TimingConfig,
                              run_sta)


@pytest.fixture(scope="module")
def lib():
    return make_process().library


def build_pipeline(lib, n_stages=3, spacing=50.0):
    """ff0 -> inv x n_stages -> ff1, all at known positions."""
    nl = Netlist("pipe")
    dff = lib.master("DFF_X1")
    inv = lib.master("INV_X2")
    ff0 = nl.add_instance("ff0", dff, x=0.0, y=0.0)
    prev = ff0
    insts = [ff0]
    for i in range(n_stages):
        c = nl.add_instance(f"i{i}", inv, x=(i + 1) * spacing, y=0.0)
        nl.add_net(f"n{i}", PinRef(inst=prev.id), [PinRef(inst=c.id, pin=0)])
        insts.append(c)
        prev = c
    ff1 = nl.add_instance("ff1", dff, x=(n_stages + 1) * spacing, y=0.0)
    nl.add_net("nD", PinRef(inst=prev.id), [PinRef(inst=ff1.id, pin=0)])
    nl.add_port("clk", INPUT)
    nl.add_net("clk", PinRef(port="clk"),
               [PinRef(inst=ff0.id, pin=1), PinRef(inst=ff1.id, pin=1)],
               is_clock=True)
    insts.append(ff1)
    return nl, insts


def run(nl, process, **cfg):
    routing = route_block(nl, process.metal_stack)
    timing = TimingConfig(clock_domain=CPU_CLOCK, **cfg)
    return run_sta(nl, routing, process, timing), routing


def test_pipeline_arrival_is_sum_of_stage_delays(lib, process):
    nl, insts = build_pipeline(lib, n_stages=2)
    sta, routing = run(nl, process)
    # recompute by hand
    expected = 0.0
    for inst in insts[:-1]:
        net = nl.output_net_of(inst.id)
        routed = routing.of(net.id)
        load = routed.total_cap_ff
        expected += inst.master.delay_ps(load)
        expected += routed.sink_wire_delay_ps(routed.sinks[0])
    last_driver = insts[-2]
    assert sta.arrival[last_driver.id] + \
        routing.of(nl.output_net_of(last_driver.id).id).sink_wire_delay_ps(
            routing.of(nl.output_net_of(last_driver.id).id).sinks[0]) == \
        pytest.approx(expected)


def test_slack_equals_period_minus_setup_minus_arrival(lib, process):
    nl, insts = build_pipeline(lib, n_stages=2)
    sta, routing = run(nl, process)
    last = insts[-2]  # drives ff1's D pin
    net = nl.output_net_of(last.id)
    wire = routing.of(net.id).sink_wire_delay_ps(routing.of(net.id).sinks[0])
    period = process.clock_period_ps(CPU_CLOCK)
    expected_slack = (period - SETUP_PS - wire) - sta.arrival[last.id]
    assert sta.slack[last.id] == pytest.approx(expected_slack)


def test_deeper_pipeline_has_less_slack(lib, process):
    nl3, _ = build_pipeline(lib, n_stages=3)
    nl8, _ = build_pipeline(lib, n_stages=8)
    s3, _ = run(nl3, process)
    s8, _ = run(nl8, process)
    assert s8.wns_ps < s3.wns_ps


def test_longer_wires_reduce_slack(lib, process):
    near, _ = build_pipeline(lib, spacing=20.0)
    far, _ = build_pipeline(lib, spacing=400.0)
    s_near, _ = run(near, process)
    s_far, _ = run(far, process)
    assert s_far.wns_ps < s_near.wns_ps


def test_io_budget_tightens_output_paths(lib, process):
    nl = Netlist("io")
    inv = lib.master("INV_X2")
    a = nl.add_instance("a", inv, x=0, y=0)
    f = nl.add_instance("f", lib.master("DFF_X1"), x=0, y=0)
    nl.add_port("out", OUTPUT)
    nl.add_port("clk", INPUT)
    nl.add_net("q", PinRef(inst=f.id), [PinRef(inst=a.id, pin=0)])
    nl.add_net("o", PinRef(inst=a.id), [PinRef(port="out")])
    nl.add_net("clk", PinRef(port="clk"), [PinRef(inst=f.id, pin=1)],
               is_clock=True)
    loose, _ = run(nl, process, default_io_delay_ps=0.0)
    tight, _ = run(nl, process, default_io_delay_ps=400.0)
    assert tight.slack[a.id] == pytest.approx(
        loose.slack[a.id] - 400.0)


def test_io_budget_delays_input_arrivals(lib, process):
    nl = Netlist("io2")
    a = nl.add_instance("a", lib.master("INV_X2"), x=0, y=0)
    f = nl.add_instance("f", lib.master("DFF_X1"), x=0, y=0)
    nl.add_port("in", INPUT)
    nl.add_port("clk", INPUT)
    nl.add_net("i", PinRef(port="in"), [PinRef(inst=a.id, pin=0)])
    nl.add_net("d", PinRef(inst=a.id), [PinRef(inst=f.id, pin=0)])
    nl.add_net("clk", PinRef(port="clk"), [PinRef(inst=f.id, pin=1)],
               is_clock=True)
    loose, _ = run(nl, process, default_io_delay_ps=0.0)
    tight, _ = run(nl, process, default_io_delay_ps=300.0)
    assert tight.arrival[a.id] == pytest.approx(
        loose.arrival[a.id] + 300.0)


def test_per_port_io_delays_override_default(lib, process):
    nl = Netlist("io3")
    a = nl.add_instance("a", lib.master("INV_X2"))
    f = nl.add_instance("f", lib.master("DFF_X1"))
    nl.add_port("in", INPUT)
    nl.add_port("clk", INPUT)
    nl.add_net("i", PinRef(port="in"), [PinRef(inst=a.id, pin=0)])
    nl.add_net("d", PinRef(inst=a.id), [PinRef(inst=f.id, pin=0)])
    nl.add_net("clk", PinRef(port="clk"), [PinRef(inst=f.id, pin=1)],
               is_clock=True)
    routing = route_block(nl, process.metal_stack)
    base = run_sta(nl, routing, process,
                   TimingConfig(CPU_CLOCK, io_delays={"in": 0.0},
                                default_io_delay_ps=500.0))
    assert base.arrival[a.id] < 500.0


def test_macro_launches_at_access_time(lib, process):
    from repro.tech.macros import sram_macro
    nl = Netlist("mac")
    ram = sram_macro(2)
    m = nl.add_instance("ram", ram, x=0, y=0)
    a = nl.add_instance("a", lib.master("INV_X2"), x=10, y=0)
    f = nl.add_instance("f", lib.master("DFF_X1"), x=20, y=0)
    nl.add_port("clk", INPUT)
    nl.add_net("q", PinRef(inst=m.id, pin=0), [PinRef(inst=a.id, pin=0)])
    nl.add_net("d", PinRef(inst=a.id), [PinRef(inst=f.id, pin=0)])
    nl.add_net("clk", PinRef(port="clk"),
               [PinRef(inst=f.id, pin=1), PinRef(inst=m.id, pin=ram.n_io)],
               is_clock=True)
    sta, _ = run(nl, process)
    assert sta.arrival[m.id] == pytest.approx(ram.intrinsic_delay_ps)
    assert sta.arrival[a.id] > ram.intrinsic_delay_ps


def test_macro_input_capture_uses_macro_setup(lib, process):
    from repro.tech.macros import sram_macro
    nl = Netlist("mac2")
    ram = sram_macro(2)
    m = nl.add_instance("ram", ram, x=0, y=0)
    a = nl.add_instance("a", lib.master("INV_X2"), x=0, y=0)
    f = nl.add_instance("f", lib.master("DFF_X1"), x=0, y=0)
    nl.add_port("clk", INPUT)
    nl.add_net("q", PinRef(inst=f.id), [PinRef(inst=a.id, pin=0)])
    nl.add_net("w", PinRef(inst=a.id), [PinRef(inst=m.id, pin=1000)])
    nl.add_net("clk", PinRef(port="clk"),
               [PinRef(inst=f.id, pin=1), PinRef(inst=m.id, pin=ram.n_io)],
               is_clock=True)
    sta, routing = run(nl, process)
    period = process.clock_period_ps(CPU_CLOCK)
    net = nl.output_net_of(a.id)
    wire = routing.of(net.id).sink_wire_delay_ps(routing.of(net.id).sinks[0])
    assert sta.required[a.id] == pytest.approx(
        period - MACRO_SETUP_PS - wire)


def test_met_property(lib, process):
    nl, _ = build_pipeline(lib, n_stages=1)
    sta, _ = run(nl, process)
    assert sta.met
    assert sta.tns_ps == 0.0


def test_generated_block_sta_runs(library, process):
    from tests.conftest import fresh_block
    from repro.place.placer2d import PlacementConfig, place_block_2d
    gb = fresh_block("ncu", library, seed=11)
    place_block_2d(gb.netlist, PlacementConfig(seed=11))
    routing = route_block(gb.netlist, process.metal_stack)
    sta = run_sta(gb.netlist, routing, process, TimingConfig(CPU_CLOCK))
    assert sta.slack  # nonempty
    assert all(s > -10000 for s in sta.slack.values())
