"""Tests for folding criteria and fold partitions."""

import pytest

from repro.core.flow import FlowConfig, run_block_flow
from repro.core.folding import (FoldSpec, assign_regions_balanced,
                                folding_candidates, make_partition,
                                partition_case_sweep)
from repro.designgen.t2 import SPC_FOLDED_FUBS
from tests.conftest import fresh_block


def test_fold_spec_validates_mode():
    with pytest.raises(ValueError):
        FoldSpec(mode="diagonal")


class TestMakePartition:
    def test_mincut(self, library):
        gb = fresh_block("l2t", library, seed=1)
        part = make_partition(gb, FoldSpec(mode="mincut"))
        assert set(part.values()) == {0, 1}

    def test_regions(self, library):
        gb = fresh_block("ccx", library, seed=1)
        part = make_partition(gb, FoldSpec(mode="regions",
                                           die1_regions=("cpx",)))
        cpx = gb.clusters_of_regions(("cpx",))
        for inst in gb.netlist.instances.values():
            assert part[inst.id] == (1 if inst.cluster in cpx else 0)

    def test_regions_requires_names(self, library):
        gb = fresh_block("ccx", library, seed=1)
        with pytest.raises(ValueError):
            make_partition(gb, FoldSpec(mode="regions"))

    def test_interleave_periods(self, library):
        gb = fresh_block("l2t", library, seed=1)
        fine = make_partition(gb, FoldSpec(mode="interleave",
                                           interleave_period=4))
        coarse = make_partition(gb, FoldSpec(mode="interleave",
                                             interleave_period=200))
        from repro.place.partition import count_cut
        assert count_cut(gb.netlist, fine) > count_cut(gb.netlist, coarse)

    def test_fub_assign_keeps_fubs_whole(self, library):
        gb = fresh_block("spc", library, seed=1)
        part = make_partition(gb, FoldSpec(mode="fub_assign"))
        for fub in gb.regions:
            dies = {part[i.id] for i in gb.netlist.instances.values()
                    if gb.region_of_cluster(i.cluster) == fub}
            assert len(dies) == 1, fub

    def test_fub_fold_splits_named_fubs(self, library):
        gb = fresh_block("spc", library, seed=1)
        part = make_partition(gb, FoldSpec(
            mode="fub_fold", folded_regions=SPC_FOLDED_FUBS))
        for fub in SPC_FOLDED_FUBS:
            dies = {part[i.id] for i in gb.netlist.instances.values()
                    if gb.region_of_cluster(i.cluster) == fub}
            assert dies == {0, 1}, fub
        unfolded = set(gb.regions) - set(SPC_FOLDED_FUBS)
        for fub in unfolded:
            dies = {part[i.id] for i in gb.netlist.instances.values()
                    if gb.region_of_cluster(i.cluster) == fub}
            assert len(dies) == 1, fub

    def test_fub_fold_unknown_region_rejected(self, library):
        gb = fresh_block("spc", library, seed=1)
        with pytest.raises(ValueError):
            make_partition(gb, FoldSpec(mode="fub_fold",
                                        folded_regions=("warp_drive",)))

    def test_fub_modes_require_regions(self, library):
        gb = fresh_block("ncu", library, seed=1)
        with pytest.raises(ValueError):
            make_partition(gb, FoldSpec(mode="fub_assign"))

    def test_balanced_region_assignment(self, library):
        gb = fresh_block("spc", library, seed=1)
        region_die = assign_regions_balanced(gb)
        area = {0: 0.0, 1: 0.0}
        for inst in gb.netlist.instances.values():
            region = gb.region_of_cluster(inst.cluster)
            if region is not None:
                area[region_die[region]] += inst.area_um2
        total = area[0] + area[1]
        assert max(area.values()) / total < 0.65


class TestPartitionSweep:
    def test_five_cases(self, library):
        gb = fresh_block("l2t", library, seed=1)
        cases = partition_case_sweep(gb)
        assert [c[0] for c in cases] == ["#1", "#2", "#3", "#4", "#5"]

    def test_cut_grows_over_cases(self, library):
        from repro.place.partition import count_cut
        gb = fresh_block("l2t", library, seed=1)
        cuts = [count_cut(gb.netlist, make_partition(gb, spec))
                for _, spec in partition_case_sweep(gb)]
        assert cuts[-1] > 3 * cuts[0]


class TestFoldingCandidates:
    @pytest.fixture(scope="class")
    def candidates(self, process):
        designs = {
            name: run_block_flow(name, FlowConfig(), process)
            for name in ("ccx", "l2d", "ncu")
        }
        counts = {"ccx": 1, "l2d": 8, "ncu": 1}
        return folding_candidates(designs, counts)

    def test_sorted_by_power_share(self, candidates):
        shares = [c.total_power_pct for c in candidates]
        assert shares == sorted(shares, reverse=True)

    def test_l2d_counts_multiplicity(self, candidates):
        l2d = next(c for c in candidates if c.block == "l2d")
        assert l2d.count == 8
        assert "8X" in l2d.remark

    def test_power_threshold_disqualifies(self, process):
        # with a realistic chip-wide denominator a small control block
        # falls below the 1% criterion; emulate with a higher threshold
        designs = {
            name: run_block_flow(name, FlowConfig(), process)
            for name in ("ccx", "ncu")
        }
        rows = folding_candidates(designs, {"ccx": 1, "ncu": 1},
                                  min_power_pct=30.0)
        ncu = next(c for c in rows if c.block == "ncu")
        assert not ncu.qualifies

    def test_ccx_qualifies(self, candidates):
        ccx = next(c for c in candidates if c.block == "ccx")
        assert ccx.qualifies
        assert "CPU clock" in ccx.remark
