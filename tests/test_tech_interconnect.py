"""Tests for TSV / F2F via models (Katti equations)."""

import math

import pytest

from repro.tech.interconnect3d import (katti_tsv_capacitance,
                                       katti_tsv_resistance, make_f2f_via,
                                       make_tsv)


def test_katti_resistance_formula():
    # R = rho * h / (pi r^2) with rho_cu = 1.68e-8 Ohm m
    r = katti_tsv_resistance(diameter_um=3.0, height_um=30.0)
    expected = 1.68e-8 * 30e-6 / (math.pi * (1.5e-6) ** 2) / 1000.0
    assert r == pytest.approx(expected, rel=1e-9)


def test_katti_resistance_scales():
    base = katti_tsv_resistance(3.0, 30.0)
    assert katti_tsv_resistance(3.0, 60.0) == pytest.approx(2 * base)
    assert katti_tsv_resistance(6.0, 30.0) == pytest.approx(base / 4)


def test_katti_capacitance_in_expected_range():
    c = katti_tsv_capacitance(3.0, 30.0)
    assert 10.0 < c < 120.0  # tens of fF, per the literature


def test_katti_capacitance_series_less_than_oxide():
    # with a huge depletion region, the series cap shrinks
    c_small_dep = katti_tsv_capacitance(3.0, 30.0, depletion_um=0.1)
    c_big_dep = katti_tsv_capacitance(3.0, 30.0, depletion_um=2.0)
    assert c_big_dep < c_small_dep


def test_default_tsv_properties():
    tsv = make_tsv()
    assert tsv.style == "TSV"
    assert tsv.occupies_silicon
    assert tsv.area_um2 > 0
    assert tsv.landing_pad_um > 0
    assert tsv.resistance_kohm > 0
    assert tsv.capacitance_ff > 10


def test_default_f2f_properties():
    f2f = make_f2f_via()
    assert f2f.style == "F2F"
    assert not f2f.occupies_silicon
    assert f2f.area_um2 == 0.0
    assert f2f.capacitance_ff < 2.0
    # paper: F2F via is about twice the minimum top-metal width
    assert f2f.diameter_um == pytest.approx(0.8)


def test_tsv_much_larger_than_f2f():
    tsv, f2f = make_tsv(), make_f2f_via()
    assert tsv.diameter_um > 2 * f2f.diameter_um
    assert tsv.capacitance_ff > 10 * f2f.capacitance_ff


def test_via_delay_increases_with_load():
    tsv = make_tsv()
    assert tsv.delay_ps(50.0) > tsv.delay_ps(5.0) > 0.0


def test_tsv_area_uses_pitch_keepout():
    tsv = make_tsv(pitch_um=8.0)
    assert tsv.area_um2 == pytest.approx(64.0)
