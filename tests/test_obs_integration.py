"""Integration: the flow is instrumented, and traces never leak into
serialized results."""

import pytest

from repro.analysis.experiments import (ExperimentOptions,
                                        experiment_json, result_to_dict,
                                        run_experiment)
from repro.core.flow import FlowConfig, run_block_flow
from repro.core.fullchip import ChipConfig, build_chip
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.names import (CTR_CHIP_BUILDS, CTR_LINT_RUNS,
                             CTR_OPT_ROUNDS, HIST_OPT_BUFFERS_PER_BLOCK,
                             SPAN_CACHE_LOOKUP, SPAN_CHIP, SPAN_FLOW)
from repro.obs.trace import Tracer

FLOW_STAGES = {"generate", "place", "optimize", "power"}
CHIP_PHASES = {"budget", "blocks", "assemble", "aggregate"}


class TestFlowInstrumentation:
    def test_spans_cover_every_flow_stage(self, process):
        t = Tracer()
        with trace.use_tracer(t):
            design = run_block_flow("ncu", FlowConfig(scale=0.5),
                                    process)
        names = {s.name for s in t.spans}
        assert {SPAN_FLOW} | {f"flow.{s}" for s in FLOW_STAGES} <= names
        # stage_times_ms is a view over the very same spans
        assert set(design.stage_times_ms) >= FLOW_STAGES
        by_name = {s.name: s for s in t.spans}
        for stage in FLOW_STAGES:
            assert design.stage_times_ms[stage] == pytest.approx(
                by_name[f"flow.{stage}"].duration_ms)

    def test_flow_span_carries_block_attrs(self, process):
        t = Tracer()
        with trace.use_tracer(t):
            run_block_flow("ncu", FlowConfig(scale=0.5), process)
        flow_span = next(s for s in t.spans if s.name == SPAN_FLOW)
        assert flow_span.attrs["block"] == "ncu"
        assert flow_span.attrs["folded"] is False

    def test_stage_times_populated_even_when_disabled(self, process):
        t = Tracer(enabled=False)
        with trace.use_tracer(t):
            design = run_block_flow("ncu", FlowConfig(scale=0.5),
                                    process)
        assert t.spans == []
        assert set(design.stage_times_ms) >= FLOW_STAGES
        assert all(v >= 0.0 for v in design.stage_times_ms.values())

    def test_flow_metrics_count_optimizer_moves(self, process):
        reg = MetricsRegistry()
        with use_registry(reg):
            run_block_flow("ncu", FlowConfig(scale=0.5), process)
        counters = reg.snapshot()["counters"]
        assert counters.get(CTR_OPT_ROUNDS, 0) >= 1
        assert HIST_OPT_BUFFERS_PER_BLOCK in \
            reg.snapshot()["histograms"]


class TestChipInstrumentation:
    def test_spans_cover_every_chip_phase(self, process):
        t = Tracer()
        with trace.use_tracer(t):
            chip = build_chip(ChipConfig(style="2d", scale=0.3), process)
        names = {s.name for s in t.spans}
        assert {SPAN_CHIP} | {f"chip.{p}" for p in CHIP_PHASES} <= names
        assert set(chip.phase_times_ms) == CHIP_PHASES
        by_name = {s.name: s for s in t.spans}
        for phase in CHIP_PHASES:
            assert chip.phase_times_ms[phase] == pytest.approx(
                by_name[f"chip.{phase}"].duration_ms)

    def test_chip_metrics_recorded(self, process):
        reg = MetricsRegistry()
        with use_registry(reg):
            build_chip(ChipConfig(style="2d", scale=0.3), process)
        counters = reg.snapshot()["counters"]
        assert counters.get(CTR_CHIP_BUILDS) == 1
        assert CTR_LINT_RUNS not in counters  # lint only runs on demand


class TestNoTraceLeakage:
    def test_result_json_identical_with_and_without_tracing(self,
                                                            process):
        traced = run_experiment("table4", ExperimentOptions(
            process=process, scale=0.5))
        untraced = run_experiment("table4", ExperimentOptions(
            process=process, scale=0.5, trace=False))
        assert experiment_json(traced) == experiment_json(untraced)

    def test_serialized_results_carry_no_timing_keys(self, process):
        res = run_experiment("table4", ExperimentOptions(
            process=process, scale=0.5))
        text = experiment_json(res)
        for forbidden in ("stage_times", "phase_times", "duration_ms",
                          "span", "start_s"):
            assert forbidden not in text, forbidden
        d = result_to_dict(res)
        assert set(d) == {"experiment_id", "description", "all_passed",
                          "table", "checks", "data"}

    def test_cache_lookup_spans_record_outcomes(self, process,
                                                tmp_path):
        from repro.core.cache import DesignCache
        cache = DesignCache(cache_dir=tmp_path)
        t = Tracer()
        cfg = FlowConfig(scale=0.5)
        with trace.use_tracer(t):
            cache.get_or_run("ncu", cfg, process)   # miss
            cache.get_or_run("ncu", cfg, process)   # memory hit
            cache.clear()
            cache.get_or_run("ncu", cfg, process)   # disk hit
        outcomes = [s.attrs["outcome"] for s in t.spans
                    if s.name == SPAN_CACHE_LOOKUP]
        assert outcomes == ["miss", "memory_hit", "disk_hit"]
