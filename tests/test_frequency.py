"""Tests for the clock-frequency sweep (paper Section 7 claim)."""

import pytest

from repro.analysis.frequency import (FrequencyPoint, benefit_trend,
                                      format_sweep, frequency_sweep)
from repro.core.folding import FoldSpec


class TestPointMath:
    def test_benefit(self):
        p = FrequencyPoint(0.7, power_2d_uw=100.0, power_3d_uw=85.0,
                           wns_2d_ps=0, wns_3d_ps=0)
        assert p.benefit == pytest.approx(-0.15)
        assert p.both_close_timing

    def test_timing_flag(self):
        p = FrequencyPoint(0.7, 100, 85, wns_2d_ps=-100, wns_3d_ps=0)
        assert not p.both_close_timing

    def test_trend_prefers_closed_points(self):
        pts = [FrequencyPoint(0.5, 100, 90, 0, 0),
               FrequencyPoint(0.7, 100, 85, 0, 0),
               FrequencyPoint(0.9, 100, 60, -500, 0)]
        # the violating last point is excluded
        assert benefit_trend(pts) == pytest.approx(-0.05)


def test_sweep_on_l2t(process):
    pts = frequency_sweep("l2t", FoldSpec(mode="mincut"), process,
                          freqs_ghz=(0.5, 0.7))
    assert len(pts) == 2
    assert all(p.power_2d_uw > 0 and p.power_3d_uw > 0 for p in pts)
    # folding saves power at both frequencies
    assert all(p.benefit < 0 for p in pts)
    text = format_sweep(pts)
    assert "benefit" in text and "0.50" in text
