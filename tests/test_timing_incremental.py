"""Incremental STA must agree exactly with from-scratch STA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.route.estimate import route_block
from repro.timing.incremental import IncrementalSTA
from repro.timing.sta import TimingConfig, run_sta
from tests.conftest import fresh_block


@pytest.fixture()
def setup(library, process):
    gb = fresh_block("ncu", library, seed=23)
    place_block_2d(gb.netlist, PlacementConfig(seed=23))
    routing = route_block(gb.netlist, process.metal_stack)
    config = TimingConfig("cpu_clk", default_io_delay_ps=50.0)
    return gb.netlist, routing, config


def assert_matches_full(inc, netlist, routing, process, config):
    full = run_sta(netlist, routing, process, config)
    snap = inc.result()
    assert snap.wns_ps == pytest.approx(full.wns_ps, abs=1e-6)
    for iid, s in full.slack.items():
        assert snap.slack.get(iid) == pytest.approx(s, abs=1e-6), iid


def test_initial_state_matches(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    assert_matches_full(inc, netlist, routing, process, config)


def test_single_upsize_matches(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    cell = next(c for c in netlist.cells
                if not c.is_sequential and c.master.drive == 2)
    inc.swap_master(cell.id, process.library.upsize(cell.master))
    assert_matches_full(inc, netlist, routing, process, config)


def test_vth_swap_matches(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    cell = next(c for c in netlist.cells if not c.is_sequential)
    hvt = process.library.variant(cell.master, vth="HVT")
    inc.swap_master(cell.id, hvt)
    assert_matches_full(inc, netlist, routing, process, config)


def test_many_random_swaps_match(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    rng = np.random.default_rng(0)
    cells = [c for c in netlist.cells if not c.is_sequential]
    for _ in range(40):
        cell = cells[int(rng.integers(0, len(cells)))]
        if rng.random() < 0.5:
            new = process.library.upsize(cell.master) or \
                process.library.downsize(cell.master)
        else:
            new = process.library.downsize(cell.master) or \
                process.library.upsize(cell.master)
        if new is not None:
            inc.swap_master(cell.id, new)
    assert_matches_full(inc, netlist, routing, process, config)


def test_noop_swap_is_stable(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    before = inc.result().wns_ps
    cell = next(iter(netlist.cells))
    inc.swap_master(cell.id, cell.master)
    assert inc.result().wns_ps == pytest.approx(before)


# --- exactness: the incremental view must equal a from-scratch
# re-route + re-STA bit-for-bit, not approximately ---------------------


def assert_exact(inc, netlist, process, config):
    """to_result() must equal run_sta over a *fresh* route exactly."""
    fresh_routing = route_block(netlist, process.metal_stack)
    full = run_sta(netlist, fresh_routing, process, config)
    snap = inc.to_result()
    assert snap.arrival == full.arrival
    assert snap.required == full.required
    assert snap.slack == full.slack
    assert snap.wns_ps == full.wns_ps
    assert snap.tns_ps == full.tns_ps


def variant_for(library, master, kind):
    """A resized or re-Vth'd master for ``kind`` in 0..3 (or None)."""
    if kind == 0:
        return library.upsize(master)
    if kind == 1:
        return library.downsize(master)
    if kind == 2:
        return library.variant(master, vth="HVT")
    return library.variant(master, vth="RVT")


def test_batched_swaps_match_exactly(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    cells = [c for c in netlist.cells if not c.is_sequential]
    moves = []
    for kind, cell in enumerate(cells[:60]):
        new = variant_for(process.library, cell.master, kind % 3)
        if new is not None and new is not cell.master:
            moves.append((cell.id, new))
    applied = inc.swap_masters(moves)
    assert applied == len(moves)
    assert_exact(inc, netlist, process, config)


def test_apply_routing_update_matches_exactly(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    # mutate masters behind the view's back, then hand it the net ids
    cells = [c for c in netlist.cells if not c.is_sequential][:20]
    for cell in cells:
        new = process.library.downsize(cell.master) or \
            process.library.upsize(cell.master)
        netlist.replace_master(cell.id, new)
    changed = routing.update_instances(netlist, [c.id for c in cells])
    # reload the swapped cells' own loads too: drivers of unchanged nets
    for c in cells:
        changed.extend(n.id for n in netlist.nets_of(c.id))
    inc.apply_routing_update(sorted(set(changed)))
    assert_exact(inc, netlist, process, config)


def test_try_swap_accepts_and_reverts_exactly(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    base = inc.to_result()
    cell = max((netlist.instances[i] for i in base.slack
                if not netlist.instances[i].is_macro
                and process.library.downsize(
                    netlist.instances[i].master) is not None),
               key=lambda c: base.slack[c.id])
    smaller = process.library.downsize(cell.master)
    # a huge margin forces a revert; state must be restored exactly
    assert not inc.try_swap(cell.id, smaller, min_slack_ps=1e12)
    assert netlist.instances[cell.id].master is cell.master
    after = inc.to_result()
    assert after.arrival == base.arrival
    assert after.required == base.required
    # an impossible-to-miss margin accepts, and the view stays exact
    assert inc.try_swap(cell.id, smaller, min_slack_ps=-1e12)
    assert netlist.instances[cell.id].master is smaller
    assert_exact(inc, netlist, process, config)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_property_random_move_batches_exact(library, process, data):
    """Random upsize/downsize/HVT batches: exact equality after each."""
    gb = fresh_block("ncu", library, seed=23)
    place_block_2d(gb.netlist, PlacementConfig(seed=23))
    netlist = gb.netlist
    routing = route_block(netlist, process.metal_stack)
    config = TimingConfig("cpu_clk", default_io_delay_ps=50.0)
    inc = IncrementalSTA(netlist, routing, process, config)
    cells = [c.id for c in netlist.cells if not c.is_sequential]
    n_batches = data.draw(st.integers(1, 3), label="batches")
    for _ in range(n_batches):
        picks = data.draw(
            st.lists(st.tuples(st.integers(0, len(cells) - 1),
                               st.integers(0, 3)),
                     min_size=1, max_size=25), label="moves")
        moves = []
        for idx, kind in picks:
            iid = cells[idx]
            new = variant_for(library, netlist.instances[iid].master,
                              kind)
            if new is not None:
                moves.append((iid, new))
        inc.swap_masters(moves)
        assert_exact(inc, netlist, process, config)
