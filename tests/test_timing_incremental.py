"""Incremental STA must agree exactly with from-scratch STA."""

import numpy as np
import pytest

from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.route.estimate import route_block
from repro.timing.incremental import IncrementalSTA
from repro.timing.sta import TimingConfig, run_sta
from tests.conftest import fresh_block


@pytest.fixture()
def setup(library, process):
    gb = fresh_block("ncu", library, seed=23)
    place_block_2d(gb.netlist, PlacementConfig(seed=23))
    routing = route_block(gb.netlist, process.metal_stack)
    config = TimingConfig("cpu_clk", default_io_delay_ps=50.0)
    return gb.netlist, routing, config


def assert_matches_full(inc, netlist, routing, process, config):
    full = run_sta(netlist, routing, process, config)
    snap = inc.result()
    assert snap.wns_ps == pytest.approx(full.wns_ps, abs=1e-6)
    for iid, s in full.slack.items():
        assert snap.slack.get(iid) == pytest.approx(s, abs=1e-6), iid


def test_initial_state_matches(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    assert_matches_full(inc, netlist, routing, process, config)


def test_single_upsize_matches(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    cell = next(c for c in netlist.cells
                if not c.is_sequential and c.master.drive == 2)
    inc.swap_master(cell.id, process.library.upsize(cell.master))
    assert_matches_full(inc, netlist, routing, process, config)


def test_vth_swap_matches(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    cell = next(c for c in netlist.cells if not c.is_sequential)
    hvt = process.library.variant(cell.master, vth="HVT")
    inc.swap_master(cell.id, hvt)
    assert_matches_full(inc, netlist, routing, process, config)


def test_many_random_swaps_match(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    rng = np.random.default_rng(0)
    cells = [c for c in netlist.cells if not c.is_sequential]
    for _ in range(40):
        cell = cells[int(rng.integers(0, len(cells)))]
        if rng.random() < 0.5:
            new = process.library.upsize(cell.master) or \
                process.library.downsize(cell.master)
        else:
            new = process.library.downsize(cell.master) or \
                process.library.upsize(cell.master)
        if new is not None:
            inc.swap_master(cell.id, new)
    assert_matches_full(inc, netlist, routing, process, config)


def test_noop_swap_is_stable(setup, process):
    netlist, routing, config = setup
    inc = IncrementalSTA(netlist, routing, process, config)
    before = inc.result().wns_ps
    cell = next(iter(netlist.cells))
    inc.swap_master(cell.id, cell.master)
    assert inc.result().wns_ps == pytest.approx(before)
