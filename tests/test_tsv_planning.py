"""Tests for chip-level TSV array planning."""

import pytest

from repro.designgen.t2 import t2_instances
from repro.floorplan.t2_floorplans import t2_floorplan
from repro.floorplan.tsv_planning import (plan_tsv_arrays, whitespace_sites)
from repro.place.grid import Rect
from repro.tech.interconnect3d import make_tsv


@pytest.fixture(scope="module")
def floorplan():
    dims = {name: (400.0, 400.0) for name, _ in t2_instances()}
    return t2_floorplan("core_cache", dims, gap=60.0)


@pytest.fixture(scope="module")
def tsv():
    return make_tsv()


class TestWhitespaceSites:
    def test_sites_outside_all_blocks(self, floorplan, tsv):
        sites = whitespace_sites(floorplan, tsv, gcell_um=100.0)
        assert sites, "some whitespace must exist with 60um gaps"
        for s in sites:
            for rect in floorplan.positions.values():
                assert not rect.contains(s.x, s.y), (s.x, s.y)

    def test_capacity_positive(self, floorplan, tsv):
        for s in whitespace_sites(floorplan, tsv, gcell_um=100.0):
            assert s.capacity > 0
            assert s.free == s.capacity

    def test_finer_grid_more_sites(self, floorplan, tsv):
        coarse = whitespace_sites(floorplan, tsv, gcell_um=200.0)
        fine = whitespace_sites(floorplan, tsv, gcell_um=80.0)
        assert len(fine) > len(coarse)


class TestPlanTsvArrays:
    def test_all_wires_placed(self, floorplan, tsv):
        bundles = [("spc0", "l2d0", 120), ("spc1", "l2d1", 120)]
        plan = plan_tsv_arrays(floorplan, bundles, tsv, gcell_um=100.0)
        assert plan.unplaced_wires == 0
        assert plan.total_tsvs == 240

    def test_capacity_respected(self, floorplan, tsv):
        bundles = [("spc0", "l2d0", 5000)]
        plan = plan_tsv_arrays(floorplan, bundles, tsv, gcell_um=100.0)
        for s in plan.sites:
            assert s.used <= s.capacity

    def test_detour_nonnegative(self, floorplan, tsv):
        bundles = [("spc0", "ccx", 120), ("l2d7", "ccx", 120)]
        plan = plan_tsv_arrays(floorplan, bundles, tsv, gcell_um=100.0)
        for a in plan.assignments:
            assert a.detour_um >= 0.0
        assert plan.detour_of(("spc0", "ccx")) >= 0.0
        assert plan.detour_of(("never", "routed")) == 0.0

    def test_sites_near_midpoint_preferred(self, floorplan, tsv):
        bundles = [("spc0", "l2d0", 40)]
        plan = plan_tsv_arrays(floorplan, bundles, tsv, gcell_um=100.0)
        ax, ay = floorplan.center_of("spc0")
        bx, by = floorplan.center_of("l2d0")
        direct = abs(ax - bx) + abs(ay - by)
        # first assignment's through-length should not exceed 2x direct
        a = plan.assignments[0]
        through = (abs(ax - a.site.x) + abs(ay - a.site.y) +
                   abs(a.site.x - bx) + abs(a.site.y - by))
        assert through < 2.0 * direct + 400.0

    def test_overfull_whitespace_reports_unplaced(self, tsv):
        # one giant block covering nearly everything
        from repro.floorplan.t2_floorplans import ChipFloorplan
        fp = ChipFloorplan(
            style="2d",
            positions={"blob": Rect(0, 0, 990, 990)},
            die_of={"blob": 0}, width=1000, height=1000, n_dies=2)
        plan = plan_tsv_arrays(fp, [("blob", "blob", 10 ** 7)], tsv,
                               gcell_um=100.0)
        assert plan.unplaced_wires > 0


def test_fullchip_integration(process):
    """F2B chips pay the TSV-array detour; F2F-bonded folded chips
    place bond points freely."""
    from repro.core.fullchip import ChipConfig, build_chip
    chip = build_chip(ChipConfig(style="core_cache", scale=0.4), process)
    crossing = [rb for rb in chip.routed_bundles if rb.crosses_dies]
    assert crossing
    # each crossing bundle's length >= the router's manhattan estimate
    for rb in crossing:
        ax, ay = chip.floorplan.center_of(rb.bundle.a)
        bx, by = chip.floorplan.center_of(rb.bundle.b)
        assert rb.length_um >= abs(ax - bx) + abs(ay - by) - 1e-6
