"""Tests for the metal stack model."""

import pytest

from repro.tech.layers import MetalLayer, MetalStack, make_28nm_stack


@pytest.fixture(scope="module")
def stack():
    return make_28nm_stack()


def test_stack_has_nine_layers(stack):
    assert len(stack) == 9
    assert [l.name for l in stack] == [f"M{i}" for i in range(1, 10)]


def test_layer_lookup_by_name(stack):
    m4 = stack.layer("M4")
    assert m4.index == 4
    with pytest.raises(KeyError):
        stack.layer("M42")


def test_top_layer(stack):
    assert stack.top.name == "M9"


def test_directions_alternate(stack):
    for a, b in zip(stack.layers, stack.layers[1:]):
        if a.index >= 7:
            continue  # top thick layers may repeat patterns
        assert a.direction != b.direction


def test_lower_layers_more_resistive(stack):
    r_values = [l.r_per_um for l in stack]
    assert r_values[0] > r_values[4] > r_values[8]


def test_wire_resistance_and_capacitance_scale_with_length(stack):
    m5 = stack.layer("M5")
    assert m5.wire_resistance(100.0) == pytest.approx(100.0 * m5.r_per_um)
    assert m5.wire_capacitance(100.0) == pytest.approx(100.0 * m5.c_per_um)
    assert m5.wire_resistance(200.0) == pytest.approx(
        2 * m5.wire_resistance(100.0))


def test_sub_stack_restricts_layers(stack):
    sub = stack.sub_stack(7)
    assert len(sub) == 7
    assert sub.top.name == "M7"


@pytest.mark.parametrize("bad", [0, 10, -1])
def test_sub_stack_rejects_bad_index(stack, bad):
    with pytest.raises(ValueError):
        stack.sub_stack(bad)


def test_effective_rc_averages_range(stack):
    r, c = stack.effective_rc(2, 3)
    m2, m3 = stack.layer("M2"), stack.layer("M3")
    assert r == pytest.approx((m2.r_per_um + m3.r_per_um) / 2)
    assert c == pytest.approx((m2.c_per_um + m3.c_per_um) / 2)


def test_effective_rc_upper_layers_faster(stack):
    r_lo, _ = stack.effective_rc(2, 3)
    r_hi, _ = stack.effective_rc(8, 9)
    assert r_hi < r_lo / 5


def test_effective_rc_empty_range_raises(stack):
    with pytest.raises(ValueError):
        stack.effective_rc(5, 4)


def test_effective_rc_default_hi(stack):
    r_all, c_all = stack.effective_rc(2)
    r_explicit, c_explicit = stack.effective_rc(2, 9)
    assert (r_all, c_all) == (r_explicit, c_explicit)
