"""Framework-level tests for the static checker: waivers, config,
reports, registration, and the assert_clean gate."""

import json

import pytest

from repro.lint import (ERROR, INFO, WARNING, LintConfig, LintContext,
                        LintError, LintReport, Violation, Waiver,
                        all_rules, assert_clean, rule, run_rules)
from repro.lint.framework import REGISTRY


def _v(rule_id="ERC001", severity=ERROR, message="boom", obj="net n1",
       context="spc"):
    return Violation(rule_id=rule_id, severity=severity, message=message,
                     obj=obj, context=context)


# ---- waivers and config -------------------------------------------------

def test_waiver_matches_rule_and_obj_patterns():
    w = Waiver(rule_id="ERC*", obj="net n*", reason="known")
    assert w.matches(_v("ERC004", obj="net n9"))
    assert not w.matches(_v("PHY001", obj="net n9"))
    assert not w.matches(_v("ERC004", obj="inst u1"))


def test_waiver_default_obj_matches_everything():
    w = Waiver(rule_id="PHY001")
    assert w.matches(_v("PHY001", obj=""))
    assert w.matches(_v("PHY001", obj="die 1"))


def test_config_disable_uses_fnmatch():
    cfg = LintConfig(disabled=("ERC*",))
    assert cfg.is_disabled("ERC001")
    assert not cfg.is_disabled("PHY001")


def test_config_with_waiver_appends():
    cfg = LintConfig().with_waiver("ERC001", reason="legacy")
    assert cfg.waiver_for(_v("ERC001")) is not None
    assert cfg.waiver_for(_v("ERC002")) is None
    # original untouched (frozen dataclass semantics)
    assert LintConfig().waiver_for(_v("ERC001")) is None


# ---- violations and reports --------------------------------------------

def test_violation_str_and_dict_roundtrip():
    v = _v()
    assert "ERC001" in str(v) and "[spc]" in str(v)
    d = v.to_dict()
    assert d["rule"] == "ERC001" and d["severity"] == ERROR
    assert "waived" not in d
    v.waived_by = Waiver("ERC001", reason="ok")
    assert v.to_dict()["waiver_reason"] == "ok"
    assert "(waived)" in str(v)


def test_report_counts_and_clean():
    rep = LintReport(violations=[
        _v(severity=ERROR), _v("ERC003", WARNING), _v("XYZ", INFO)])
    c = rep.counts()
    assert (c[ERROR], c[WARNING], c[INFO]) == (1, 1, 1)
    assert not rep.clean
    rep.violations[0].waived_by = Waiver("ERC001")
    assert rep.clean
    assert len(rep.waived) == 1
    assert "CLEAN" in rep.summary() and "1 waived" in rep.summary()


def test_report_sort_orders_by_severity_then_rule():
    rep = LintReport(violations=[
        _v("ZZZ", INFO), _v("PHY001", WARNING), _v("ERC004", ERROR)])
    rep.sort()
    assert [v.rule_id for v in rep.violations] == \
        ["ERC004", "PHY001", "ZZZ"]


def test_report_merge_combines_contexts():
    a = LintReport(violations=[_v()], contexts=["spc"])
    b = LintReport(violations=[_v("PHY001", WARNING)],
                   contexts=["spc", "ccx"])
    a.merge(b)
    assert len(a.violations) == 2
    assert a.contexts == ["spc", "ccx"]


def test_report_json_and_markdown_render():
    rep = LintReport(violations=[_v(), _v("ERC001", message="again")],
                     contexts=["spc"])
    d = json.loads(rep.to_json())
    assert d["clean"] is False
    assert len(d["violations"]) == 2
    md = rep.to_markdown()
    assert "## ERC001" in md and "boom" in md
    empty = LintReport().to_markdown()
    assert "No violations" in empty


def test_report_by_rule_excludes_waived():
    rep = LintReport(violations=[_v(), _v("PHY001", WARNING)])
    rep.violations[1].waived_by = Waiver("PHY001")
    assert list(rep.by_rule()) == ["ERC001"]


# ---- registry -----------------------------------------------------------

def test_builtin_deck_is_registered_and_documented():
    rules = all_rules()
    ids = [r.id for r in rules]
    assert ids == sorted(ids)
    for expected in ("ERC004", "PHY001", "PHY005", "RTE001", "CTS001",
                     "STA001", "CHP001"):
        assert expected in ids
    for r in rules:
        assert r.doc, f"rule {r.id} has no catalog docstring"
        assert r.severity in (ERROR, WARNING, INFO)
        assert r.requires


def test_duplicate_rule_id_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        rule("ERC001", "again", ERROR)(lambda ctx: ())


def test_bad_severity_rejected():
    with pytest.raises(ValueError, match="severity"):
        rule("TST999", "bad", "fatal")


def test_run_rules_subset_and_disable():
    @rule("TST001", "always fires", WARNING, requires=())
    def _always(ctx):
        yield "synthetic hit", "obj"

    try:
        ctx = LintContext(name="t")
        # explicit subset runs only the named rule
        rep = run_rules(ctx, rules=("TST001",))
        assert [v.rule_id for v in rep.violations] == ["TST001"]
        assert rep.contexts == ["t"]
        # disabling suppresses it
        rep = run_rules(ctx, config=LintConfig(disabled=("TST*",)))
        assert not any(v.rule_id == "TST001" for v in rep.violations)
        # waiver keeps it in the report but out of the counts
        rep = run_rules(ctx, config=LintConfig().with_waiver("TST001"))
        hits = [v for v in rep.violations if v.rule_id == "TST001"]
        assert hits and hits[0].waived
    finally:
        REGISTRY.pop("TST001", None)


# ---- gate ---------------------------------------------------------------

def test_assert_clean_passes_and_raises():
    clean = LintReport(violations=[_v("PHY001", WARNING)])
    assert assert_clean(clean, stage="x") is clean

    dirty = LintReport(violations=[_v()])
    with pytest.raises(LintError) as exc:
        assert_clean(dirty, stage="spc/place")
    assert "spc/place" in str(exc.value)
    assert exc.value.report is dirty
    assert exc.value.stage == "spc/place"
