"""Tests for the analyzer entry points: waiver files, the shared
run_rules registry seam, the names registry generator, and the CLI."""

import json

import pytest

from repro.__main__ import main
from repro.analyze import (CODE_REGISTRY, WaiverSyntaxError,
                           analyze_paths, analyze_source, check_names,
                           default_config, load_waivers, self_report,
                           write_names)
from repro.lint.framework import LintConfig, Waiver
from repro.obs.metrics import metrics

VIOLATING = ("import random\n"
             "def f(xs):\n"
             "    random.shuffle(xs)\n")
CLEAN = ("def f(xs):\n"
         "    return sorted(xs)\n")


# ---------------------------------------------------------------------------
# waiver files
# ---------------------------------------------------------------------------

def test_load_waivers_parses_rules_patterns_and_reasons(tmp_path):
    wf = tmp_path / "waivers.txt"
    wf.write_text("# comment line\n"
                  "\n"
                  "DET001 repro/x.py::* -- legacy shuffle  # trailing\n"
                  "CON00? repro/y.py::work -- worker-local\n")
    waivers = load_waivers(wf)
    assert [(w.rule_id, w.obj) for w in waivers] == \
        [("DET001", "repro/x.py::*"), ("CON00?", "repro/y.py::work")]
    assert waivers[0].reason == "legacy shuffle"


@pytest.mark.parametrize("line", [
    "DET001 repro/x.py::*",              # no justification at all
    "DET001 repro/x.py::* --",           # empty justification
    "DET001 -- reason",                  # missing obj pattern
    "DET001 a b -- reason",              # too many fields
])
def test_load_waivers_rejects_malformed_lines(tmp_path, line):
    wf = tmp_path / "waivers.txt"
    wf.write_text(line + "\n")
    with pytest.raises(WaiverSyntaxError) as exc:
        load_waivers(wf)
    assert ":1:" in str(exc.value)


def test_waiver_first_match_wins():
    config = LintConfig(waivers=[
        Waiver(rule_id="DET001", obj="repro/x.py::*", reason="first"),
        Waiver(rule_id="DET001", obj="*", reason="second"),
    ])
    report = analyze_source(VIOLATING, name="repro/x.py",
                            config=config, rules=["DET001"])
    assert report.clean
    v = report.violations[0]
    assert v.waived and v.waived_by.reason == "first"


def test_default_config_layers_extra_waiver_files(tmp_path):
    wf = tmp_path / "extra.txt"
    wf.write_text("OBS001 * -- test fixture spans\n")
    base = default_config(use_default_waivers=False)
    assert base.waivers == []
    layered = default_config(waiver_paths=[wf],
                             use_default_waivers=False,
                             disabled=("DET005",))
    assert [w.rule_id for w in layered.waivers] == ["OBS001"]
    assert layered.disabled == ("DET005",)


# ---------------------------------------------------------------------------
# run_rules registry seam (shared with repro.lint.runner)
# ---------------------------------------------------------------------------

def test_analyze_runs_use_analyze_counters_not_lint_counters(tmp_path):
    (tmp_path / "mod.py").write_text(VIOLATING)
    base = metrics().snapshot()
    report = analyze_paths([tmp_path], rules=["DET001"], root=tmp_path)
    delta = metrics().diff(base)["counters"]
    assert not report.clean
    assert delta.get("analyze.runs") == 1
    assert delta.get("analyze.findings.error", 0) >= 1
    assert "lint.runs" not in delta


def test_default_registry_still_bills_to_lint_counters():
    from repro.analyze import context_for_source
    from repro.lint.runner import run_rules
    ctx = context_for_source(CLEAN, name="repro/x.py")
    base = metrics().snapshot()
    # registry=None selects the design-data deck: none of its rules can
    # run on a code context, but the run is still billed to lint.*
    run_rules(ctx, registry=None)
    delta = metrics().diff(base)["counters"]
    assert delta.get("lint.runs") == 1
    assert "analyze.runs" not in delta


def test_explicit_rules_subset_runs_only_those(tmp_path):
    src = ("import random\n"
           "import threading\n"
           "LOCK = threading.Lock()\n"
           "def f(xs):\n"
           "    random.shuffle(xs)\n")
    report = analyze_source(src, name="repro/x.py", rules=["CON005"])
    assert {v.rule_id for v in report.violations} == {"CON005"}


def test_analyze_paths_surfaces_syntax_errors_as_parse_findings(
        tmp_path):
    (tmp_path / "ok.py").write_text(CLEAN)
    (tmp_path / "broken.py").write_text("def broken(:\n")
    report = analyze_paths([tmp_path], root=tmp_path)
    parse = [v for v in report.violations if v.rule_id == "PARSE"]
    assert len(parse) == 1
    assert "broken.py" in parse[0].obj
    assert len(report.contexts) == 2


# ---------------------------------------------------------------------------
# self-gate
# ---------------------------------------------------------------------------

def test_repo_self_analyzes_clean_with_committed_waivers():
    report = self_report()
    assert report.clean, report.summary()
    # every committed waiver line is load-bearing: nothing waived that
    # no longer fires, and every waived finding carries its reason
    waived = [v for v in report.violations if v.waived]
    assert waived, "waiver file no longer exercised"
    assert all(v.waived_by.reason for v in waived)


def test_self_gate_fails_without_waivers():
    report = self_report(use_default_waivers=False)
    assert not report.clean
    assert report.counts()["error"] >= 1


def test_assert_self_clean_returns_report():
    from repro.analyze import assert_self_clean
    report = assert_self_clean()
    assert report.clean


# ---------------------------------------------------------------------------
# names registry generator
# ---------------------------------------------------------------------------

def _fake_pkg(tmp_path):
    pkg = tmp_path / "pkg"
    (pkg / "obs").mkdir(parents=True)
    (pkg / "mod.py").write_text(
        "def f(t, m, kind):\n"
        "    with t.span('flow.place'):\n"
        "        m.counter('cache.misses').inc()\n"
        "        m.counter(f'faults.injected.{kind}').inc()\n"
        "        m.histogram('opt.rounds').observe(1)\n")
    return pkg


def test_write_names_generates_and_is_idempotent(tmp_path):
    pkg = _fake_pkg(tmp_path)
    path, changed = write_names(root=pkg)
    assert changed and path == pkg / "obs" / "names.py"
    text = path.read_text()
    assert 'SPAN_FLOW_PLACE = "flow.place"' in text
    assert 'CTR_CACHE_MISSES = "cache.misses"' in text
    assert 'CTR_PREFIXES = (\n    "faults.injected.",\n)' in text \
        or '"faults.injected."' in text
    assert 'HIST_OPT_ROUNDS = "opt.rounds"' in text
    _, changed_again = write_names(root=pkg)
    assert not changed_again
    _, fresh = check_names(root=pkg)
    assert fresh


def test_check_names_detects_drift(tmp_path):
    pkg = _fake_pkg(tmp_path)
    write_names(root=pkg)
    mod = pkg / "mod.py"
    mod.write_text(mod.read_text().replace("cache.misses",
                                           "cache.hits"))
    _, fresh = check_names(root=pkg)
    assert not fresh


def test_committed_registry_is_fresh():
    _, fresh = check_names()
    assert fresh, "run 'python -m repro analyze --write-names'"


def test_registry_constants_match_their_values():
    from repro.obs import names
    for const, seq in (("SPAN", names.SPAN_NAMES),
                       ("CTR", names.CTR_NAMES),
                       ("HIST", names.HIST_NAMES)):
        for value in seq:
            attr = const + "_" + "".join(
                c if c.isalnum() else "_" for c in value).upper()
            assert getattr(names, attr) == value


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in CODE_REGISTRY:
        assert rule_id in out


def test_cli_exit_codes_and_json_out(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATING)
    out_file = tmp_path / "report.json"
    rc = main(["analyze", str(bad), "--rules", "DET001",
               "--json-out", str(out_file)])
    assert rc == 1
    report = json.loads(out_file.read_text())
    assert set(report) >= {"clean", "counts", "contexts", "violations"}
    assert report["clean"] is False
    v = report["violations"][0]
    assert set(v) >= {"rule", "severity", "message", "obj", "context"}
    assert v["rule"] == "DET001"

    good = tmp_path / "good.py"
    good.write_text(CLEAN)
    assert main(["analyze", str(good)]) == 0
    capsys.readouterr()


def test_cli_disable_silences_a_rule(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATING)
    # (an explicit --rules subset would override --disable, by design)
    assert main(["analyze", str(bad), "--disable", "DET001"]) == 0
    capsys.readouterr()


def test_cli_rejects_bad_waiver_file(tmp_path, capsys):
    wf = tmp_path / "w.txt"
    wf.write_text("DET001 no-reason-given\n")
    src = tmp_path / "x.py"
    src.write_text(CLEAN)
    assert main(["analyze", str(src), "--waivers", str(wf)]) == 2
    assert "bad waiver file" in capsys.readouterr().err


def test_cli_check_names(capsys):
    assert main(["analyze", "--check-names"]) == 0
    assert "fresh" in capsys.readouterr().out
