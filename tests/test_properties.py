"""Property-based tests (hypothesis) for core data structures/invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.floorplan.seqpair import FPBlock, pack
from repro.place.grid import DensityGrid, Rect
from repro.place.regions import region_bisect
from repro.route.steiner import hpwl_length, steiner_length, trunk_tree
from repro.tech.interconnect3d import (katti_tsv_capacitance,
                                       katti_tsv_resistance)

coords = st.floats(min_value=-1000.0, max_value=1000.0,
                   allow_nan=False, allow_infinity=False)
pins_strategy = st.lists(st.tuples(coords, coords), min_size=2,
                         max_size=15)


class TestSteinerProperties:
    @given(pins_strategy)
    def test_tree_bounded_below_by_hpwl(self, pins):
        assert steiner_length(pins) >= hpwl_length(pins) - 1e-6

    @given(pins_strategy)
    def test_tree_bounded_above_by_double_star(self, pins):
        n = len(pins)
        cx = sum(p[0] for p in pins) / n
        cy = sum(p[1] for p in pins) / n
        star2 = 2 * sum(abs(p[0] - cx) + abs(p[1] - cy) for p in pins)
        assert steiner_length(pins) <= star2 + hpwl_length(pins) + 1e-6

    @given(pins_strategy)
    def test_translation_invariant(self, pins):
        moved = [(x + 37.5, y - 11.25) for x, y in pins]
        assert steiner_length(moved) == pytest.approx(
            steiner_length(pins), abs=1e-6)

    @given(pins_strategy)
    def test_path_length_at_least_manhattan(self, pins):
        tree = trunk_tree(pins)
        a, b = pins[0], pins[-1]
        manhattan = abs(a[0] - b[0]) + abs(a[1] - b[1])
        assert tree.path_length(a, b) >= manhattan - 1e-6

    @given(pins_strategy, st.tuples(coords, coords))
    def test_adding_pin_never_shortens(self, pins, extra):
        assert steiner_length(pins + [extra]) >= \
            steiner_length(pins) - 1e-6


class TestRectProperties:
    rects = st.tuples(coords, coords,
                      st.floats(min_value=0.1, max_value=500.0),
                      st.floats(min_value=0.1, max_value=500.0))

    @given(rects, st.tuples(coords, coords))
    def test_clamp_lands_inside(self, r, pt):
        rect = Rect(r[0], r[1], r[0] + r[2], r[1] + r[3])
        x, y = rect.clamp(*pt)
        assert rect.contains(x, y)

    @given(rects, rects)
    def test_overlap_symmetric(self, a, b):
        ra = Rect(a[0], a[1], a[0] + a[2], a[1] + a[3])
        rb = Rect(b[0], b[1], b[0] + b[2], b[1] + b[3])
        assert ra.overlaps(rb) == rb.overlaps(ra)


class TestGridProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0.1, max_value=20.0)), min_size=1,
        max_size=60))
    def test_demand_conserved(self, cells):
        grid = DensityGrid(Rect(0, 0, 100, 100), target_bins=64)
        xs = np.array([c[0] for c in cells])
        ys = np.array([c[1] for c in cells])
        areas = np.array([c[2] for c in cells])
        demand = grid.demand_map(xs, ys, areas)
        assert demand.sum() == pytest.approx(areas.sum())

    @given(st.lists(st.tuples(
        st.floats(min_value=5, max_value=95),
        st.floats(min_value=5, max_value=95),
        st.floats(min_value=1, max_value=40),
        st.floats(min_value=1, max_value=40)), min_size=0, max_size=8))
    def test_supply_never_negative(self, obstructions):
        grid = DensityGrid(Rect(0, 0, 100, 100), target_bins=64)
        for x, y, w, h in obstructions:
            grid.add_obstruction(Rect(x, y, x + w, y + h))
        assert grid.supply.min() >= 0.0


class TestSequencePairProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=1, max_value=50),
        st.floats(min_value=1, max_value=50)), min_size=1, max_size=9),
        st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_pack_valid_for_any_permutation(self, dims, rnd):
        blocks = [FPBlock(f"b{i}", w, h) for i, (w, h) in enumerate(dims)]
        n = len(blocks)
        p1 = list(range(n))
        p2 = list(range(n))
        rnd.shuffle(p1)
        rnd.shuffle(p2)
        res = pack(blocks, p1, p2)
        # area covers all blocks, no block outside the bounding box
        assert res.area + 1e-6 >= sum(b.area for b in blocks)
        for x, y, w, h in res.positions.values():
            assert x >= -1e-9 and y >= -1e-9
            assert x + w <= res.width + 1e-6
            assert y + h <= res.height + 1e-6
        # pairwise disjoint
        items = list(res.positions.values())
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                assert (a[0] + a[2] <= b[0] + 1e-6 or
                        b[0] + b[2] <= a[0] + 1e-6 or
                        a[1] + a[3] <= b[1] + 1e-6 or
                        b[1] + b[3] <= a[1] + 1e-6)


class TestRegionBisectProperties:
    items_strategy = st.lists(st.tuples(
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=500.0)),
        min_size=1, max_size=12)

    @given(items_strategy)
    def test_rects_tile_outline(self, raw):
        outline = Rect(0, 0, 500, 500)
        items = [(f"r{i}", a, x, y) for i, (a, x, y) in enumerate(raw)]
        rects = region_bisect(outline, items)
        assert set(rects) == {k for k, *_ in items}
        total = sum(r.area for r in rects.values())
        assert total == pytest.approx(outline.area, rel=1e-6)
        for r in rects.values():
            assert r.x0 >= -1e-9 and r.y0 >= -1e-9
            assert r.x1 <= outline.x1 + 1e-6
            assert r.y1 <= outline.y1 + 1e-6

    @given(items_strategy)
    def test_rect_areas_proportional(self, raw):
        outline = Rect(0, 0, 500, 500)
        items = [(f"r{i}", a, x, y) for i, (a, x, y) in enumerate(raw)]
        total_demand = sum(a for _, a, *_ in items)
        rects = region_bisect(outline, items)
        for name, demand, *_ in items:
            expected = outline.area * demand / total_demand
            assert rects[name].area == pytest.approx(expected, rel=1e-6)


class TestKattiProperties:
    @given(st.floats(min_value=0.5, max_value=20.0),
           st.floats(min_value=5.0, max_value=200.0))
    def test_resistance_positive_and_monotone(self, d, h):
        r = katti_tsv_resistance(d, h)
        assert r > 0
        assert katti_tsv_resistance(d, h * 2) > r
        assert katti_tsv_resistance(d * 2, h) < r

    @given(st.floats(min_value=0.5, max_value=20.0),
           st.floats(min_value=5.0, max_value=200.0))
    def test_capacitance_scales_with_height(self, d, h):
        c = katti_tsv_capacitance(d, h)
        assert c > 0
        assert katti_tsv_capacitance(d, h * 2) == pytest.approx(2 * c,
                                                                rel=1e-9)


class TestNetlistEditProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2),
                    min_size=1, max_size=30), st.randoms(
        use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_random_edit_sequences_stay_valid(self, ops, rnd):
        from repro.netlist.core import INPUT, Netlist, PinRef
        from repro.tech.cells import make_28nm_library
        lib = make_28nm_library()
        nl = Netlist("fuzz")
        inv = lib.master("INV_X1")
        nl.add_port("in", INPUT)
        first = nl.add_instance("seed", inv)
        nl.add_net("n0", PinRef(port="in"), [PinRef(inst=first.id, pin=0)])
        drivers = [first.id]
        for k, op in enumerate(ops):
            if op == 0:  # extend: new cell driven by random driver
                inst = nl.add_instance(f"c{k}", inv)
                src = rnd.choice(drivers)
                net = nl.output_net_of(src)
                if net is None:
                    net = nl.add_net(f"n{k}", PinRef(inst=src),
                                     [PinRef(inst=inst.id, pin=0)])
                else:
                    nl.add_sink(net.id, PinRef(inst=inst.id, pin=0))
                drivers.append(inst.id)
            elif op == 1:  # resize a random instance
                iid = rnd.choice(drivers)
                m = nl.instances[iid].master
                nl.replace_master(iid, lib.variant(m, drive=4))
            else:  # rewire a net through a fresh buffer
                iid = rnd.choice(drivers)
                net = nl.output_net_of(iid)
                if net is not None and net.sinks:
                    buf = nl.add_instance(f"b{k}", lib.buffer())
                    nl.add_net(f"bn{k}", net.driver,
                               [PinRef(inst=buf.id, pin=0)])
                    nl.rewire_driver(net.id, PinRef(inst=buf.id))
                    drivers.append(buf.id)
        problems = [p for p in nl.validate() if "no sinks" not in p]
        assert problems == []
