"""Tests for the mixed-size 2D placer."""

import pytest

from repro.place.placer2d import (PlacementConfig, compute_outline, hpwl,
                                  place_block_2d, place_macros,
                                  place_ports)
from tests.conftest import fresh_block


@pytest.fixture()
def placed_l2t(library):
    gb = fresh_block("l2t", library, seed=3)
    result = place_block_2d(gb.netlist, PlacementConfig(seed=3))
    return gb, result


def test_outline_area_covers_content(library):
    gb = fresh_block("l2t", library)
    nl = gb.netlist
    outline = compute_outline(nl, PlacementConfig(utilization=0.7))
    assert outline.area > nl.total_cell_area() + nl.total_macro_area()


def test_outline_respects_utilization(library):
    gb = fresh_block("ncu", library)
    tight = compute_outline(gb.netlist, PlacementConfig(utilization=0.9))
    loose = compute_outline(gb.netlist, PlacementConfig(utilization=0.5))
    assert loose.area > tight.area


def test_outline_reserved_area(library):
    gb = fresh_block("ncu", library)
    base = compute_outline(gb.netlist, PlacementConfig())
    grown = compute_outline(gb.netlist,
                            PlacementConfig(reserved_area_um2=5000.0))
    assert grown.area == pytest.approx(base.area + 5000.0, rel=0.01)


def test_macros_inside_outline_and_disjoint(placed_l2t):
    gb, result = placed_l2t
    rects = result.grid.obstructions
    assert len(rects) == len(gb.netlist.macros)
    for r in rects:
        assert r.x0 >= result.outline.x0 - 1e-6
        assert r.x1 <= result.outline.x1 + 1e-6
    for i, a in enumerate(rects):
        for b in rects[i + 1:]:
            assert not a.overlaps(b)


def test_macros_are_fixed(placed_l2t):
    gb, _ = placed_l2t
    assert all(m.fixed for m in gb.netlist.macros)


def test_ports_on_boundary(placed_l2t):
    gb, result = placed_l2t
    o = result.outline
    for p in gb.netlist.ports.values():
        on_edge = (abs(p.x - o.x0) < 1e-6 or abs(p.x - o.x1) < 1e-6 or
                   abs(p.y - o.y0) < 1e-6 or abs(p.y - o.y1) < 1e-6)
        assert on_edge, p.name


def test_cells_inside_outline(placed_l2t):
    gb, result = placed_l2t
    o = result.outline
    for c in gb.netlist.cells:
        assert o.x0 - 1e-6 <= c.x <= o.x1 + 1e-6
        assert o.y0 - 1e-6 <= c.y <= o.y1 + 1e-6


def test_cells_snapped_to_rows(placed_l2t):
    from repro.tech.cells import CELL_HEIGHT_UM
    gb, result = placed_l2t
    row0 = result.outline.y0 + CELL_HEIGHT_UM / 2
    for c in gb.netlist.cells[:50]:
        if c.fixed:
            continue
        offset = (c.y - row0) / CELL_HEIGHT_UM
        assert abs(offset - round(offset)) < 1e-6 or \
            c.y in (result.outline.y0, result.outline.y1)


def test_placement_beats_random_hpwl(library):
    import numpy as np
    gb = fresh_block("ccx", library, seed=4)
    nl = gb.netlist
    result = place_block_2d(nl, PlacementConfig(seed=4))
    placed = hpwl(nl)
    rng = np.random.default_rng(0)
    o = result.outline
    for c in nl.cells:
        if not c.fixed:
            c.x = rng.uniform(o.x0, o.x1)
            c.y = rng.uniform(o.y0, o.y1)
    random_wl = hpwl(nl)
    assert placed < 0.75 * random_wl


def test_placement_deterministic(library):
    a = fresh_block("ncu", library, seed=9)
    place_block_2d(a.netlist, PlacementConfig(seed=9))
    b = fresh_block("ncu", library, seed=9)
    place_block_2d(b.netlist, PlacementConfig(seed=9))
    assert hpwl(a.netlist) == pytest.approx(hpwl(b.netlist))


def test_overflow_is_moderate(placed_l2t):
    _, result = placed_l2t
    assert result.overflow < 0.25


def test_empty_macro_block_place_macros(library):
    gb = fresh_block("ncu", library)
    outline = compute_outline(gb.netlist, PlacementConfig())
    assert place_macros(gb.netlist, outline) == []
