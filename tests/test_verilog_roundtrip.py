"""Round-trip tests: write_verilog -> read_verilog -> same structure."""

import pytest

from repro.netlist.io import write_verilog
from repro.netlist.verilog_in import VerilogParseError, read_verilog
from tests.conftest import fresh_block


@pytest.fixture(scope="module")
def roundtrip(library):
    gb = fresh_block("l2t", library, seed=14)
    text = write_verilog(gb.netlist)
    parsed = read_verilog(text, library)
    return gb.netlist, parsed


def test_counts_preserved(roundtrip):
    original, parsed = roundtrip
    assert parsed.num_cells == original.num_cells
    assert len(parsed.macros) == len(original.macros)
    assert len(parsed.ports) == len(original.ports)


def test_port_directions_preserved(roundtrip):
    original, parsed = roundtrip
    for name, port in original.ports.items():
        assert parsed.ports[name].direction == port.direction


def test_masters_preserved(roundtrip):
    original, parsed = roundtrip
    orig = sorted((i.name, i.master.name)
                  for i in original.instances.values())
    new = sorted((i.name, i.master.name)
                 for i in parsed.instances.values())
    assert orig == new


def test_connectivity_preserved(roundtrip):
    original, parsed = roundtrip

    def edges(nl):
        out = set()
        for net in nl.nets.values():
            drv = net.driver
            d = drv.port if drv.is_port else nl.instances[drv.inst].name
            for s in net.sinks:
                t = s.port if s.is_port else nl.instances[s.inst].name
                out.add((d, t))
        return out

    assert edges(parsed) == edges(original)


def test_parsed_netlist_validates(roundtrip):
    _, parsed = roundtrip
    assert parsed.validate() == []


def test_clock_net_flagged(roundtrip):
    _, parsed = roundtrip
    clock_nets = [n for n in parsed.nets.values() if n.is_clock]
    assert len(clock_nets) >= 1


def test_buffer_counts_match(roundtrip):
    original, parsed = roundtrip
    assert parsed.num_buffers == original.num_buffers


class TestParseErrors:
    def test_missing_module(self, library):
        with pytest.raises(VerilogParseError):
            read_verilog("wire x;", library)

    def test_unknown_master(self, library):
        text = """module t (a);\n  input a;\n  WARP9_X1 u (.A(a));\nendmodule"""
        with pytest.raises(VerilogParseError):
            read_verilog(text, library)

    def test_driverless_net(self, library):
        text = ("module t (o);\n  output o;\n  wire n;\n"
                "  INV_X1 u (.A(n), .Y(o));\nendmodule")
        with pytest.raises(VerilogParseError):
            read_verilog(text, library)

    def test_minimal_module_ok(self, library):
        text = ("module t (a, o);\n  input a;\n  output o;\n"
                "  INV_X1 u (.A(a), .Y(o));\nendmodule")
        nl = read_verilog(text, library)
        assert nl.num_cells == 1
        assert nl.validate() == []
