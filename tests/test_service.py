"""End-to-end tests for the experiment service broker.

The broker runs in-process (:func:`serve_background`) with ``inline``
shards, so test stub experiments registered here execute inside this
interpreter -- which lets the tests hold submitted work open on a
:class:`threading.Event` and assert scheduling behaviour (coalescing,
stealing, disconnects, chaos) deterministically instead of by timing.
"""

import threading
import time

import pytest

from repro.analysis import experiments as expmod
from repro.faults.plan import FaultPlan
from repro.obs.metrics import metrics
from repro.service import (Client, ServiceConfig, ServiceError,
                           serve_background)
from repro.service.schema import PointSpec, SweepRequest

STUB_IDS = ("svc_fast", "svc_slow", "svc_gated")

#: gate the ``svc_gated`` stub blocks on until a test opens it
_GATE = threading.Event()
#: set by ``svc_gated`` on entry: the point is genuinely executing
_STARTED = threading.Event()
#: (experiment_id, scale, seed) per stub execution -- the ground truth
#: for "exactly one execution per unique point"
_CALLS = []
_CALLS_LOCK = threading.Lock()


def _stub_result(eid, opts):
    with _CALLS_LOCK:
        _CALLS.append((eid, opts.scale, opts.seed))
    return expmod.ExperimentResult(
        experiment_id=eid, description="service stub",
        table=f"{eid} scale={opts.scale} seed={opts.seed}",
        checks=[expmod.ShapeCheck("stub", True, str(opts.seed), "n/a")])


@pytest.fixture(scope="module")
def stub_experiments():
    """Three throwaway experiments registered for this module only."""

    @expmod.experiment("svc_fast", "service stub: returns immediately")
    def _fast(opts):
        return _stub_result("svc_fast", opts)

    @expmod.experiment("svc_slow", "service stub: sleeps 0.4 s")
    def _slow(opts):
        time.sleep(0.4)
        return _stub_result("svc_slow", opts)

    @expmod.experiment("svc_gated", "service stub: waits on the gate")
    def _gated(opts):
        _STARTED.set()
        assert _GATE.wait(30.0), "test gate never opened"
        return _stub_result("svc_gated", opts)

    for eid in STUB_IDS:
        expmod.EXPERIMENTS[eid] = (expmod.REGISTRY[eid].fn,
                                   expmod.REGISTRY[eid].description)
    yield STUB_IDS
    for eid in STUB_IDS:
        expmod.REGISTRY.pop(eid, None)
        expmod.EXPERIMENTS.pop(eid, None)


@pytest.fixture()
def gate():
    _GATE.clear()
    _STARTED.clear()
    del _CALLS[:]
    yield _GATE
    _GATE.set()  # unblock any straggling shard thread


def _counters():
    return dict(metrics().snapshot()["counters"])


def _delta(before, name):
    return _counters().get(name, 0) - before.get(name, 0)


def _config(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("shards", 2)
    kw.setdefault("shard_mode", "inline")
    return ServiceConfig(**kw)


def _poll(predicate, timeout=15.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(f"timed out waiting for {what}")


class TestProtocolBasics:
    def test_ping_and_stats(self, stub_experiments):
        with serve_background(_config()) as handle:
            with Client(port=handle.port, timeout=30.0) as client:
                pong = client.ping()
                assert pong["type"] == "pong"
                stats = client.stats()
        assert stats["type"] == "stats"
        assert [s["alive"] for s in stats["shards"]] == [True, True]
        assert stats["sessions"] == 1

    def test_unknown_experiment_id_is_rejected(self, stub_experiments):
        with serve_background(_config()) as handle:
            with Client(port=handle.port, timeout=30.0) as client:
                bad = SweepRequest(points=(PointSpec("nope", 1.0, 1),))
                with pytest.raises(ServiceError,
                                   match="unknown experiment ids"):
                    client.collect(bad)
                # the connection survives a rejected submit
                good = SweepRequest(points=(PointSpec("svc_fast",
                                                      1.0, 11),))
                results = client.collect(good)
        assert len(results) == 1 and results[0].ok

    def test_result_carries_the_experiment_payload(self,
                                                   stub_experiments):
        with serve_background(_config()) as handle:
            with Client(port=handle.port, timeout=30.0) as client:
                req = SweepRequest(points=(PointSpec("svc_fast",
                                                     0.5, 21),))
                res = client.collect(req)[0]
        assert res.status == "ok" and res.all_passed
        assert res.source == "computed"
        assert res.result["table"] == "svc_fast scale=0.5 seed=21"
        assert res.point == PointSpec("svc_fast", 0.5, 21)


class TestCoalescing:
    def test_overlapping_clients_cost_one_execution(self,
                                                    stub_experiments,
                                                    gate):
        """N clients sweeping the same point -> exactly one run."""
        before = _counters()
        req = SweepRequest(points=(PointSpec("svc_gated", 1.0, 101),))
        with serve_background(_config()) as handle:
            results = [None, None, None]

            def drive(i):
                with Client(port=handle.port, timeout=30.0) as client:
                    results[i] = client.collect(req)

            threads = [threading.Thread(target=drive, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            # the job is gated open: wait until the two late clients
            # have attached to it, then let it run
            _poll(lambda: _delta(before, "service.coalesced") >= 2,
                  what="both late submissions to coalesce")
            gate.set()
            for t in threads:
                t.join(30.0)

        assert [eid for eid, _, _ in _CALLS] == ["svc_gated"]
        assert _delta(before, "service.computed") == 1
        assert _delta(before, "service.coalesced") == 2
        canon = {res[0].canonical_json() for res in results}
        assert len(canon) == 1  # every client saw identical bytes

    def test_repeat_sweep_is_served_from_the_store(self,
                                                   stub_experiments,
                                                   gate):
        before = _counters()
        req = SweepRequest(points=(PointSpec("svc_fast", 1.0, 111),))
        gate.set()
        with serve_background(_config()) as handle:
            with Client(port=handle.port, timeout=30.0) as client:
                first = client.collect(req)[0]
                second = client.collect(req)[0]
        assert first.source == "computed"
        assert second.source == "cache"
        assert second.canonical_json() == first.canonical_json()
        assert _delta(before, "service.computed") == 1
        assert _delta(before, "service.result_hits") == 1


class TestScheduling:
    def test_stream_order_is_completion_order(self, stub_experiments):
        req = SweepRequest(points=(
            PointSpec("svc_slow", 1.0, 201),   # shard 0, ~0.4 s
            PointSpec("svc_fast", 1.0, 201),   # shard 1, immediate
        ))
        with serve_background(_config()) as handle:
            with Client(port=handle.port, timeout=30.0) as client:
                rid = client.submit(req)
                order = [index for index, _ in client.stream(rid)]
        assert order == [1, 0]  # fast point first, not request order

    def test_idle_shard_steals_queued_work(self, stub_experiments):
        before = _counters()
        req = SweepRequest(points=(
            PointSpec("svc_slow", 1.0, 211),  # occupies shard 0
            PointSpec("svc_fast", 1.0, 211),  # shard 1, done instantly
            PointSpec("svc_fast", 1.0, 212),  # queued on shard 0,
        ))                                    # stolen by idle shard 1
        with serve_background(_config()) as handle:
            with Client(port=handle.port, timeout=30.0) as client:
                results = client.collect(req)
        assert all(r.ok for r in results)
        assert _delta(before, "service.steals") >= 1
        assert _delta(before, "service.computed") == 3

    def test_cancel_terminates_the_stream(self, stub_experiments,
                                          gate):
        before = _counters()
        with serve_background(_config(shards=1)) as handle:
            with Client(port=handle.port, timeout=30.0) as client:
                req = SweepRequest(points=(PointSpec("svc_gated",
                                                     1.0, 221),))
                rid = client.submit(req)
                client.cancel(rid)
                got = list(client.stream(rid))
        gate.set()
        assert got == []
        assert _delta(before, "service.cancelled") == 1


class TestFailureContract:
    def test_disconnect_mid_stream_does_not_poison_the_pool(
            self, stub_experiments, gate):
        before = _counters()
        with serve_background(_config(shards=1)) as handle:
            victim = Client(port=handle.port, timeout=30.0)
            victim.connect()
            rid = victim.submit(SweepRequest(
                points=(PointSpec("svc_gated", 1.0, 301),)))
            assert rid >= 1
            # wait until the only shard is blocked inside the gated
            # point, then vanish without reading a single result
            assert _STARTED.wait(15.0), "gated point never started"
            victim.close()
            _poll(lambda: _delta(before, "service.disconnects") == 1,
                  what="the broker to notice the disconnect")
            gate.set()
            _poll(lambda: _delta(before, "service.computed") == 1,
                  what="the orphaned point to finish")
            # the same shard must still serve a fresh client
            with Client(port=handle.port, timeout=30.0) as client:
                res = client.collect(SweepRequest(
                    points=(PointSpec("svc_fast", 1.0, 302),)))[0]
                stats = client.stats()
        assert res.ok
        assert [s["alive"] for s in stats["shards"]] == [True]
        assert _delta(before, "service.shard_deaths") == 0

    def test_killed_shard_drains_through_survivors(self,
                                                   stub_experiments):
        """Chaos contract: a fault-killed shard's queue is stolen."""
        plan = FaultPlan.parse("raise task=shard-0 stage=service.shard",
                               seed=1)
        before = _counters()
        req = SweepRequest(points=(
            PointSpec("svc_fast", 1.0, 311),
            PointSpec("svc_fast", 1.0, 312),
            PointSpec("svc_fast", 1.0, 313),
        ))
        with serve_background(_config(), fault_plan=plan) as handle:
            with Client(port=handle.port, timeout=30.0) as client:
                results = client.collect(req)
                stats = client.stats()
        assert all(r.ok for r in results)
        assert len(results) == len(req.points)
        assert _delta(before, "service.shard_deaths") == 1
        alive = {s["index"]: s["alive"] for s in stats["shards"]}
        assert alive == {0: False, 1: True}
