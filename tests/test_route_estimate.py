"""Tests for per-net routing estimation and parasitics."""

import pytest

from repro.netlist.core import INPUT, OUTPUT, Netlist, PinRef
from repro.route.estimate import (layer_class, route_block, route_net)
from repro.tech.cells import make_28nm_library
from repro.tech.layers import make_28nm_stack
from repro.tech.interconnect3d import make_f2f_via, make_tsv


@pytest.fixture(scope="module")
def lib():
    return make_28nm_library()


@pytest.fixture(scope="module")
def stack():
    return make_28nm_stack()


def two_cell_net(lib, dx=100.0, die_b=0):
    nl = Netlist("pair")
    a = nl.add_instance("a", lib.master("INV_X2"), x=0.0, y=0.0)
    b = nl.add_instance("b", lib.master("INV_X2"), x=dx, y=0.0, die=die_b)
    net = nl.add_net("n", PinRef(inst=a.id), [PinRef(inst=b.id, pin=0)])
    return nl, net, a, b


class TestLayerClass:
    def test_short_nets_on_local_metal(self, stack):
        r_short, _ = layer_class(10.0, stack, 7)
        r_long, _ = layer_class(500.0, stack, 7)
        assert r_long < r_short

    def test_max_metal_caps_promotion(self, stack):
        r7, _ = layer_class(500.0, stack, 7)
        r9, _ = layer_class(500.0, stack, 9)
        assert r9 < r7


class TestRouteNet:
    def test_two_pin_length(self, lib, stack):
        nl, net, a, b = two_cell_net(lib, dx=200.0)
        routed = route_net(nl, net, stack)
        assert routed.length_um == pytest.approx(200.0)
        assert routed.wire_cap_ff == pytest.approx(
            routed.c_per_um * 200.0)
        assert len(routed.sinks) == 1
        assert routed.sinks[0].path_len_um == pytest.approx(200.0)

    def test_total_cap_includes_pins(self, lib, stack):
        nl, net, a, b = two_cell_net(lib)
        routed = route_net(nl, net, stack)
        assert routed.total_cap_ff == pytest.approx(
            routed.wire_cap_ff + b.master.input_cap_ff)

    def test_long_wire_flag(self, lib, stack):
        nl, net, *_ = two_cell_net(lib, dx=200.0)
        assert route_net(nl, net, stack, long_wire_um=120.0).is_long
        nl, net, *_ = two_cell_net(lib, dx=50.0)
        assert not route_net(nl, net, stack, long_wire_um=120.0).is_long

    def test_detour_factor_scales(self, lib, stack):
        nl, net, *_ = two_cell_net(lib, dx=100.0)
        base = route_net(nl, net, stack)
        detoured = route_net(nl, net, stack, detour_factor=1.5)
        assert detoured.length_um == pytest.approx(1.5 * base.length_um)

    def test_sink_delay_grows_with_length(self, lib, stack):
        nl1, n1, *_ = two_cell_net(lib, dx=50.0)
        nl2, n2, *_ = two_cell_net(lib, dx=400.0)
        r1 = route_net(nl1, n1, stack)
        r2 = route_net(nl2, n2, stack)
        assert r2.sink_wire_delay_ps(r2.sinks[0]) > \
            r1.sink_wire_delay_ps(r1.sinks[0])

    def test_crossing_net_uses_via(self, lib, stack):
        tsv = make_tsv()
        nl, net, a, b = two_cell_net(lib, dx=100.0, die_b=1)
        routed = route_net(nl, net, stack, via=tsv, via_xy=(50.0, 0.0))
        assert routed.via is tsv
        assert routed.sinks[0].through_via
        assert routed.total_cap_ff > routed.wire_cap_ff + \
            b.master.input_cap_ff  # via cap added
        flat = route_net(nl, net, stack)
        assert routed.sink_wire_delay_ps(routed.sinks[0]) > \
            flat.sink_wire_delay_ps(flat.sinks[0])

    def test_via_detour_lengthens_route(self, lib, stack):
        tsv = make_tsv()
        nl, net, *_ = two_cell_net(lib, dx=100.0, die_b=1)
        direct = route_net(nl, net, stack, via=tsv, via_xy=(50.0, 0.0))
        offset = route_net(nl, net, stack, via=tsv, via_xy=(50.0, 80.0))
        assert offset.length_um > direct.length_um


class TestRouteBlock:
    def test_routes_all_nonclock_nets(self, lib, stack):
        nl = Netlist("b")
        a = nl.add_instance("a", lib.master("INV_X2"))
        f = nl.add_instance("f", lib.master("DFF_X1"))
        nl.add_port("clk", INPUT)
        nl.add_net("d", PinRef(inst=a.id), [PinRef(inst=f.id, pin=0)])
        nl.add_net("clk", PinRef(port="clk"),
                   [PinRef(inst=f.id, pin=1)], is_clock=True)
        result = route_block(nl, stack)
        assert len(result.nets) == 1  # clock excluded

    def test_aggregate_stats(self, lib, stack):
        nl, net, *_ = two_cell_net(lib, dx=300.0)
        result = route_block(nl, stack)
        assert result.total_wirelength_um == pytest.approx(300.0)
        assert result.long_wire_count == 1
        assert result.of(net.id).net_id == net.id
