"""Tests for the span tracer: nesting, attributes, gating, export."""

import json

from repro.obs import trace
from repro.obs.export import (TraceFile, format_summary, read_trace,
                              summarize_spans, trace_lines, write_trace)
from repro.obs.trace import Span, Tracer


class TestSpanNesting:
    def test_parent_child_links_and_depth(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                with t.span("leaf") as leaf:
                    pass
        assert outer.parent_id is None and outer.depth == 0
        assert inner.parent_id == outer.span_id and inner.depth == 1
        assert leaf.parent_id == inner.span_id and leaf.depth == 2
        assert [s.name for s in t.spans] == ["outer", "inner", "leaf"]

    def test_siblings_share_a_parent(self):
        t = Tracer()
        with t.span("parent") as parent:
            with t.span("a") as a:
                pass
            with t.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_stack_unwinds_after_exception(self):
        t = Tracer()
        try:
            with t.span("outer"):
                with t.span("failing"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        with t.span("after") as after:
            pass
        assert after.parent_id is None

    def test_attrs_at_open_and_via_set(self):
        t = Tracer()
        with t.span("stage", block="ccx") as sp:
            sp.set(n_vias=4, outcome="ok")
        assert sp.attrs == {"block": "ccx", "n_vias": 4,
                            "outcome": "ok"}


class TestGating:
    def test_disabled_tracer_still_times(self):
        t = Tracer(enabled=False)
        with t.span("work") as sp:
            pass
        assert sp.duration_ms >= 0.0
        assert t.spans == []

    def test_disabled_contextmanager_restores(self):
        t = Tracer()
        with trace.use_tracer(t):
            with trace.disabled():
                with trace.span("hidden"):
                    pass
            with trace.span("visible"):
                pass
        assert [s.name for s in t.spans] == ["visible"]

    def test_max_spans_cap_counts_drops(self):
        t = Tracer(max_spans=2)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert len(t.spans) == 2
        assert t.dropped == 3

    def test_drain_empties_the_buffer(self):
        t = Tracer()
        with t.span("one"):
            pass
        drained = t.drain()
        assert [s.name for s in drained] == ["one"]
        assert t.spans == []


class TestExport:
    def test_dict_round_trip(self):
        t = Tracer()
        with t.span("flow", block="spc") as sp:
            sp.set(folded=True)
        back = Span.from_dict(sp.to_dict())
        assert back == sp

    def test_write_and_read_trace(self, tmp_path):
        t = Tracer()
        with t.span("bench"):
            with t.span("experiment"):
                pass
        path = tmp_path / "t.jsonl"
        write_trace(path, t.spans, metrics={"counters": {"x": 1}},
                    meta={"scale": 0.5})
        tf = read_trace(path)
        assert isinstance(tf, TraceFile)
        assert tf.meta["scale"] == 0.5
        assert tf.meta["schema"] == 1
        assert [s.name for s in tf.spans] == ["bench", "experiment"]
        assert tf.metrics == {"counters": {"x": 1}}

    def test_every_line_is_json(self):
        t = Tracer()
        with t.span("a"):
            pass
        for line in trace_lines(t.spans, metrics={"counters": {}}):
            json.loads(line)

    def test_summarize_self_time_subtracts_children(self):
        spans = [
            {"name": "outer", "span_id": 1, "parent_id": None,
             "depth": 0, "start_s": 0.0, "duration_ms": 100.0,
             "attrs": {}, "worker": 7},
            {"name": "inner", "span_id": 2, "parent_id": 1, "depth": 1,
             "start_s": 0.0, "duration_ms": 60.0, "attrs": {},
             "worker": 7},
        ]
        by_name = {s.name: s for s in summarize_spans(spans)}
        assert by_name["outer"].self_ms == 40.0
        assert by_name["inner"].self_ms == 60.0
        assert by_name["outer"].total_ms == 100.0

    def test_summarize_keys_parents_per_worker(self):
        """Same span ids from different workers must not cross-link."""
        spans = [
            {"name": "outer", "span_id": 1, "parent_id": None,
             "depth": 0, "start_s": 0.0, "duration_ms": 50.0,
             "attrs": {}, "worker": 1},
            {"name": "inner", "span_id": 2, "parent_id": 1, "depth": 1,
             "start_s": 0.0, "duration_ms": 20.0, "attrs": {},
             "worker": 2},  # different worker: not outer's child
        ]
        by_name = {s.name: s for s in summarize_spans(spans)}
        assert by_name["outer"].self_ms == 50.0

    def test_format_summary_mentions_every_name(self):
        t = Tracer()
        with t.span("alpha"):
            with t.span("beta"):
                pass
        text = format_summary(summarize_spans(t.spans))
        assert "alpha" in text and "beta" in text
