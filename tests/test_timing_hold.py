"""Tests for hold-time analysis and fixing."""

import pytest

from repro.cts.tree import synthesize_clock_tree
from repro.netlist.core import INPUT, Netlist, PinRef
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.route.estimate import route_block
from repro.tech.cells import make_28nm_library
from repro.tech.process import make_process
from repro.timing.hold import fix_hold, run_hold_analysis
from repro.timing.sta import HOLD_PS, TimingConfig
from tests.conftest import fresh_block


@pytest.fixture(scope="module")
def proc():
    return make_process()


def flop_to_flop(lib, n_stages=0, spacing=5.0):
    """ff0 -> [inv stages] -> ff1 with tiny wires (hold-risky)."""
    nl = Netlist("hold")
    dff = lib.master("DFF_X1")
    ff0 = nl.add_instance("ff0", dff, x=0, y=0)
    prev = PinRef(inst=ff0.id)
    for i in range(n_stages):
        c = nl.add_instance(f"i{i}", lib.master("INV_X2"),
                            x=(i + 1) * spacing, y=0)
        nl.add_net(f"n{i}", prev, [PinRef(inst=c.id, pin=0)])
        prev = PinRef(inst=c.id)
    ff1 = nl.add_instance("ff1", dff, x=(n_stages + 1) * spacing, y=0)
    nl.add_net("nD", prev, [PinRef(inst=ff1.id, pin=0)])
    nl.add_port("clk", INPUT)
    nl.add_net("clk", PinRef(port="clk"),
               [PinRef(inst=ff0.id, pin=1), PinRef(inst=ff1.id, pin=1)],
               is_clock=True)
    return nl, ff1


def analyze(nl, proc, hold_ps=HOLD_PS):
    routing = route_block(nl, proc.metal_stack)
    return run_hold_analysis(nl, routing, proc,
                             TimingConfig("cpu_clk"),
                             hold_ps=hold_ps), routing


def test_direct_flop_to_flop_meets_default_hold(proc):
    lib = proc.library
    nl, ff1 = flop_to_flop(lib)
    hold, _ = analyze(nl, proc)
    # clk->q (~50ps) beats the 15ps hold window
    assert hold.slack[ff1.id] > 0
    assert hold.met


def test_large_hold_requirement_violates(proc):
    lib = proc.library
    nl, ff1 = flop_to_flop(lib)
    hold, _ = analyze(nl, proc, hold_ps=400.0)
    assert hold.slack[ff1.id] < 0
    assert hold.violations == 1
    assert not hold.met


def test_logic_stages_add_min_delay(proc):
    lib = proc.library
    fast, _ = analyze(flop_to_flop(lib, n_stages=0)[0], proc)
    slow, _ = analyze(flop_to_flop(lib, n_stages=4)[0], proc)
    assert min(slow.slack.values()) > min(fast.slack.values())


def test_skew_tightens_hold(proc):
    lib = proc.library
    nl, ff1 = flop_to_flop(lib)
    routing = route_block(nl, proc.metal_stack)
    from repro.cts.tree import CTSResult
    skewed = CTSResult(n_buffers=1, wirelength_um=0, sink_pin_cap_ff=0,
                       buffer_master=lib.buffer(), n_sinks=2, levels=1,
                       skew_ps=40.0)
    base = run_hold_analysis(nl, routing, proc, TimingConfig("cpu_clk"))
    tight = run_hold_analysis(nl, routing, proc, TimingConfig("cpu_clk"),
                              cts=skewed)
    assert tight.slack[ff1.id] == pytest.approx(
        base.slack[ff1.id] - 40.0)


def test_fix_hold_pads_violators(proc):
    lib = proc.library
    nl, ff1 = flop_to_flop(lib)
    hold, routing = analyze(nl, proc, hold_ps=200.0)
    assert hold.slack[ff1.id] < 0
    added = fix_hold(nl, routing, hold, proc)
    assert added >= 1
    assert nl.validate() == []
    hold2, _ = analyze(nl, proc, hold_ps=200.0)
    assert hold2.slack[ff1.id] > hold.slack[ff1.id]


def test_generated_block_hold_clean(library, proc):
    gb = fresh_block("ncu", library, seed=17)
    place_block_2d(gb.netlist, PlacementConfig(seed=17))
    routing = route_block(gb.netlist, proc.metal_stack)
    cts = synthesize_clock_tree(gb.netlist, proc)
    hold = run_hold_analysis(gb.netlist, routing, proc,
                             TimingConfig("cpu_clk"), cts=cts)
    assert hold.slack
    # generated blocks have >= 1 logic stage on register paths, so the
    # default hold window with measured skew is comfortably met
    assert hold.whs_ps > -50.0
