"""Tests for the power-delivery IR-drop analysis."""

import numpy as np
import pytest

from repro.analysis.irdrop import (IrDropResult, PdnConfig,
                                   analyze_chip_ir_drop, solve_ir_drop)
from repro.place.grid import Rect


def uniform(n, total_uw):
    return np.full((n, n), total_uw / (n * n))


@pytest.fixture()
def outline():
    return Rect(0, 0, 3000, 3000)


class TestSolve:
    def test_no_power_no_drop(self, outline):
        cfg = PdnConfig()
        r = solve_ir_drop(outline, {0: np.zeros((cfg.tiles, cfg.tiles))},
                          config=cfg)
        assert r.max_drop_v == pytest.approx(0.0, abs=1e-12)

    def test_drop_scales_with_power(self, outline):
        cfg = PdnConfig()
        lo = solve_ir_drop(outline, {0: uniform(cfg.tiles, 5e5)},
                           config=cfg)
        hi = solve_ir_drop(outline, {0: uniform(cfg.tiles, 1e6)},
                           config=cfg)
        assert hi.max_drop_v == pytest.approx(2 * lo.max_drop_v,
                                              rel=1e-6)

    def test_center_droops_most(self, outline):
        cfg = PdnConfig()
        r = solve_ir_drop(outline, {0: uniform(cfg.tiles, 1e6)},
                          config=cfg)
        m = r.drop_v[0]
        n = cfg.tiles
        assert m[n // 2, n // 2] > m[0, 0]

    def test_far_tier_droops_more(self, outline):
        cfg = PdnConfig()
        n = cfg.tiles
        maps = {0: uniform(n, 5e5), 1: uniform(n, 5e5)}
        r = solve_ir_drop(outline, maps, config=cfg)
        assert r.tier_max(1) > r.tier_max(0)

    def test_more_power_tsvs_help(self, outline):
        n = 16
        maps = {0: uniform(n, 5e5), 1: uniform(n, 5e5)}
        sparse = solve_ir_drop(outline, maps,
                               config=PdnConfig(power_tsvs_per_tile=1))
        dense = solve_ir_drop(outline, maps,
                              config=PdnConfig(power_tsvs_per_tile=16))
        assert dense.tier_max(1) < sparse.tier_max(1)

    def test_stacking_worsens_drop_at_equal_power(self):
        cfg = PdnConfig()
        n = cfg.tiles
        flat = solve_ir_drop(Rect(0, 0, 3000, 3000),
                             {0: uniform(n, 1e6)}, config=cfg)
        stacked = solve_ir_drop(Rect(0, 0, 2121, 2121),
                                {0: uniform(n, 5e5),
                                 1: uniform(n, 5e5)}, config=cfg)
        assert stacked.max_drop_v > flat.max_drop_v

    def test_rejects_three_tiers(self, outline):
        n = PdnConfig().tiles
        with pytest.raises(ValueError):
            solve_ir_drop(outline, {0: uniform(n, 1), 1: uniform(n, 1),
                                    2: uniform(n, 1)})

    def test_rejects_bad_shape(self, outline):
        with pytest.raises(ValueError):
            solve_ir_drop(outline, {0: np.zeros((4, 4))},
                          config=PdnConfig(tiles=16))


def test_chip_ir_drop(process):
    from repro.core.fullchip import ChipConfig, build_chip
    chip2d = build_chip(ChipConfig(style="2d", scale=0.4), process)
    chip3d = build_chip(ChipConfig(style="core_cache", scale=0.4),
                        process)
    r2 = analyze_chip_ir_drop(chip2d)
    r3 = analyze_chip_ir_drop(chip3d)
    assert r2.max_drop_v > 0
    assert len(r3.drop_v) == 2
    # the far tier pays the TSV hop
    assert r3.tier_max(1) >= r3.tier_max(0)
