"""Edge cases and failure injection across modules."""

import numpy as np
import pytest

from repro.netlist.core import INPUT, Netlist, PinRef
from repro.place.grid import Rect
from repro.tech.cells import make_28nm_library
from repro.tech.process import make_process


@pytest.fixture(scope="module")
def lib():
    return make_28nm_library()


class TestRoutingEdgeCases:
    def test_port_only_net(self, lib, process):
        from repro.route.estimate import route_net
        nl = Netlist("p")
        nl.add_port("a", INPUT)
        nl.add_port("b", "out")
        nl.ports["a"].x, nl.ports["a"].y = 0.0, 0.0
        nl.ports["b"].x, nl.ports["b"].y = 100.0, 0.0
        net = nl.add_net("feed", PinRef(port="a"), [PinRef(port="b")])
        routed = route_net(nl, net, process.metal_stack)
        assert routed.length_um == pytest.approx(100.0)
        assert routed.sinks[0].pin_cap_ff > 0

    def test_single_pin_net_zero_length(self, lib, process):
        from repro.route.estimate import route_net
        nl = Netlist("s")
        a = nl.add_instance("a", lib.master("INV_X1"))
        b = nl.add_instance("b", lib.master("INV_X1"))
        net = nl.add_net("n", PinRef(inst=a.id), [PinRef(inst=b.id,
                                                         pin=0)])
        routed = route_net(nl, net, process.metal_stack)
        assert routed.length_um == 0.0
        assert not routed.is_long

    def test_routing_result_missing_net(self, process):
        from repro.route.estimate import RoutingResult
        result = RoutingResult()
        with pytest.raises(KeyError):
            result.of(42)


class TestPlacementEdgeCases:
    def test_tiny_block_places(self, lib, process):
        from repro.place.placer2d import PlacementConfig, place_block_2d
        nl = Netlist("tiny")
        a = nl.add_instance("a", lib.master("INV_X1"))
        b = nl.add_instance("b", lib.master("INV_X1"))
        nl.add_port("in", INPUT)
        nl.add_net("n0", PinRef(port="in"), [PinRef(inst=a.id, pin=0)])
        nl.add_net("n1", PinRef(inst=a.id), [PinRef(inst=b.id, pin=0)])
        result = place_block_2d(nl, PlacementConfig(seed=0))
        assert result.outline.area > 0
        for inst in (a, b):
            assert result.outline.contains(inst.x, inst.y)

    def test_macro_only_block(self, lib, process):
        from repro.place.placer2d import PlacementConfig, place_block_2d
        from repro.tech.macros import sram_macro
        nl = Netlist("mac")
        nl.add_instance("ram", sram_macro(2))
        result = place_block_2d(nl, PlacementConfig(seed=0))
        assert len(result.grid.obstructions) == 1

    def test_fold_everything_one_die(self, lib, process):
        from repro.place.placer2d import PlacementConfig
        from repro.place.placer3d import fold_place_3d
        from tests.conftest import fresh_block
        gb = fresh_block("ncu", lib, seed=33)
        assignment = {i.id: 0 for i in gb.netlist.instances.values()}
        res = fold_place_3d(gb.netlist, process, assignment, "F2B",
                            PlacementConfig(seed=33))
        assert res.n_vias == 0
        assert res.vias == []


class TestFlowEdgeCases:
    def test_unknown_block_raises(self, process):
        from repro.core.flow import FlowConfig, run_block_flow
        with pytest.raises(KeyError):
            run_block_flow("gpu", FlowConfig(), process)

    def test_invalid_bonding_rejected(self, process):
        from repro.core.flow import FlowConfig, run_block_flow
        from repro.core.folding import FoldSpec
        with pytest.raises(ValueError):
            run_block_flow("ncu", FlowConfig(
                fold=FoldSpec(mode="mincut"), bonding="GLUE"), process)

    def test_zero_scale_rejected(self, process):
        from repro.core.flow import FlowConfig, run_block_flow
        with pytest.raises(ValueError):
            run_block_flow("ncu", FlowConfig(scale=0.0), process)


class TestFloorplanEdgeCases:
    def test_anneal_single_block(self):
        from repro.floorplan.seqpair import FPBlock, anneal_floorplan
        res = anneal_floorplan([FPBlock("only", 10, 20)])
        assert res.area == pytest.approx(200.0)
        assert res.positions["only"][2:] == (10, 20)

    def test_pack_deterministic(self):
        from repro.floorplan.seqpair import FPBlock, pack
        blocks = [FPBlock(f"b{i}", 10 + i, 5 + i) for i in range(5)]
        a = pack(blocks, [2, 0, 1, 4, 3], [1, 3, 0, 2, 4])
        b = pack(blocks, [2, 0, 1, 4, 3], [1, 3, 0, 2, 4])
        assert a.positions == b.positions


class TestReportEdgeCases:
    def test_empty_rows_table(self):
        from repro.analysis.report import MetricRow, format_table
        text = format_table("empty", ["a"], [MetricRow("x", [1.0])])
        assert "empty" in text

    def test_design_metric_rows_chip_kind(self, process):
        from repro.analysis.report import design_metric_rows
        from repro.core import ChipConfig, build_chip
        chip = build_chip(ChipConfig(style="2d", scale=0.25), process)
        rows = design_metric_rows([chip], kind="chip")
        labels = [r.label for r in rows]
        assert "# TSV/F2F via" in labels


class TestGlobalRouterEdgeCases:
    def test_zero_capacity_still_routes(self):
        from repro.route.global_router import GlobalRouter
        gr = GlobalRouter(Rect(0, 0, 1000, 1000), n_gcells=8,
                          capacity_per_gcell=0.0)
        path = gr.route((50, 50), (950, 950))
        assert path.length_um > 0

    def test_overflow_metric(self):
        from repro.route.global_router import GlobalRouter
        gr = GlobalRouter(Rect(0, 0, 1000, 1000), n_gcells=8,
                          capacity_per_gcell=1.0)
        for _ in range(5):
            gr.route((50, 500), (950, 500), n_wires=10)
        assert gr.overflow() > 0.0
