"""Tests for the decorator-based experiment registry and its options."""

import pytest

from repro.analysis.experiments import (EXPERIMENTS, REGISTRY,
                                        Experiment, ExperimentOptions,
                                        LegacyRunnerError,
                                        UnknownExperimentError,
                                        experiment, run_experiment,
                                        run_table1)
from repro.obs import trace
from repro.obs.trace import Tracer

ALL_IDS = {"table1", "table2", "table3", "table4", "table5",
           "fig2", "fig3", "fig6", "fig7", "fig8", "dvt", "eco"}


class TestRegistry:
    def test_every_id_registered_with_callable_runner(self):
        assert set(REGISTRY) == ALL_IDS
        for exp in REGISTRY.values():
            assert isinstance(exp, Experiment)
            assert callable(exp.fn)
            assert exp.description

    def test_experiments_dict_mirrors_registry(self):
        assert set(EXPERIMENTS) == set(REGISTRY)
        for eid, (runner, desc) in EXPERIMENTS.items():
            assert callable(runner)
            assert desc == REGISTRY[eid].description

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @experiment("table1", "again")
            def _again(opts):
                raise AssertionError("never runs")

    def test_unknown_id_lists_valid_ids(self):
        with pytest.raises(UnknownExperimentError) as exc:
            run_experiment("table99")
        assert "table99" in str(exc.value)
        assert "fig2" in str(exc.value)

    def test_unknown_id_is_a_keyerror(self):
        with pytest.raises(KeyError):
            run_experiment("nope")


class TestDispatch:
    def test_options_object_drives_the_run(self, process):
        res = run_experiment("table1", ExperimentOptions(process=process))
        assert res.experiment_id == "table1"
        assert res.all_passed

    def test_legacy_keywords_still_work(self, process):
        res = run_experiment("table1", process=process, scale=1.0,
                             seed=1)
        assert res.experiment_id == "table1"

    def test_options_and_keywords_conflict(self, process):
        with pytest.raises(TypeError, match="not both"):
            run_experiment("table1", ExperimentOptions(),
                           process=process)

    def test_run_records_an_experiment_span(self, process):
        t = Tracer()
        with trace.use_tracer(t):
            run_experiment("table1", ExperimentOptions(process=process))
        exp_spans = [s for s in t.spans if s.name == "experiment"]
        assert len(exp_spans) == 1
        assert exp_spans[0].attrs["id"] == "table1"
        assert exp_spans[0].attrs["seed"] == 1

    def test_trace_false_suppresses_recording(self, process):
        t = Tracer()
        with trace.use_tracer(t):
            run_experiment("table1", ExperimentOptions(
                process=process, trace=False))
        assert t.spans == []

    def test_resolved_process_defaults(self, process):
        assert ExperimentOptions().resolved_process() is not None
        assert ExperimentOptions(
            process=process).resolved_process() is process


class TestLegacyWrappers:
    def test_wrapper_raises_pointing_at_new_api(self, process):
        with pytest.raises(LegacyRunnerError) as exc:
            run_table1(process=process)
        assert "run_experiment('table1'" in str(exc.value)
        assert "ExperimentOptions" in str(exc.value)

    def test_wrapper_error_is_a_typeerror(self):
        with pytest.raises(TypeError):
            run_table1()

    def test_experiments_dict_runners_raise(self, process):
        for eid, (runner, _) in EXPERIMENTS.items():
            with pytest.raises(LegacyRunnerError) as exc:
                runner(process=process)
            assert f"run_experiment({eid!r}" in str(exc.value)
