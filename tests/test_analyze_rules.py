"""Mutation tests for the code-analysis deck: every rule must fire on
a minimal violating snippet and stay silent on the repaired twin."""

import pytest

from repro.analyze import CODE_REGISTRY, analyze_source


def findings(src, rule):
    report = analyze_source(src, name="repro/fake_mod.py", rules=[rule])
    return [v for v in report.violations if v.rule_id == rule]


def assert_fires(src, rule):
    hits = findings(src, rule)
    assert hits, f"{rule} did not fire"
    return hits


def assert_clean(src, rule):
    assert findings(src, rule) == [], f"{rule} fired on clean code"


# ---------------------------------------------------------------------------
# determinism deck
# ---------------------------------------------------------------------------

def test_det001_global_random_fires_and_seeded_is_clean():
    assert_fires("import random\n"
                 "def f(xs):\n"
                 "    random.shuffle(xs)\n", "DET001")
    # from-imports resolve through the alias map
    assert_fires("from random import shuffle\n"
                 "def f(xs):\n"
                 "    shuffle(xs)\n", "DET001")
    assert_clean("import random\n"
                 "def f(xs):\n"
                 "    rng = random.Random('seed')\n"
                 "    rng.shuffle(xs)\n", "DET001")


def test_det002_numpy_global_fires_and_default_rng_is_clean():
    assert_fires("import numpy as np\n"
                 "def f():\n"
                 "    return np.random.rand(3)\n", "DET002")
    assert_clean("import numpy as np\n"
                 "def f(seed):\n"
                 "    rng = np.random.default_rng(seed)\n"
                 "    return rng.random(3)\n", "DET002")


def test_det003_wall_clock_taint_reaches_json():
    hits = assert_fires(
        "import json\n"
        "import time\n"
        "def f():\n"
        "    t = time.time()\n"
        "    return json.dumps({'t': t})\n", "DET003")
    # obj is scope-based: stable across unrelated line edits
    assert hits[0].obj == "repro/fake_mod.py::f"
    # timing a stage and printing it never touches a sink
    assert_clean("import json\n"
                 "import time\n"
                 "def f():\n"
                 "    t = time.time()\n"
                 "    print(t)\n"
                 "    return json.dumps({'x': 1})\n", "DET003")


def test_det004_identity_taint_in_key_helper():
    assert_fires("def design_key(obj):\n"
                 "    return f'k-{id(obj)}'\n", "DET004")
    # membership tests are comparisons, not leaks (Compare prunes)
    assert_clean("def design_key(obj, seen):\n"
                 "    flag = id(obj) in seen\n"
                 "    return 'dup' if flag else 'new'\n", "DET004")


def test_det005_set_iteration_fires_and_sorted_is_clean():
    assert_fires("def f(xs):\n"
                 "    out = []\n"
                 "    for x in set(xs):\n"
                 "        out.append(x)\n"
                 "    return out\n", "DET005")
    assert_clean("def f(xs):\n"
                 "    out = []\n"
                 "    for x in sorted(set(xs)):\n"
                 "        out.append(x)\n"
                 "    return out\n", "DET005")


def test_det006_listdir_iteration_fires_and_sorted_is_clean():
    assert_fires("import os\n"
                 "def f(d):\n"
                 "    return [p for p in os.listdir(d)]\n", "DET006")
    assert_clean("import os\n"
                 "def f(d):\n"
                 "    return [p for p in sorted(os.listdir(d))]\n",
                 "DET006")


def test_det007_environment_taint_reaches_serialization():
    assert_fires("import json\n"
                 "import os\n"
                 "def f():\n"
                 "    pid = os.getpid()\n"
                 "    return json.dumps([pid])\n", "DET007")
    assert_clean("import json\n"
                 "import os\n"
                 "def f():\n"
                 "    print(os.getpid())\n"
                 "    return json.dumps([1])\n", "DET007")


# ---------------------------------------------------------------------------
# concurrency deck
# ---------------------------------------------------------------------------

def test_con001_lambda_worker_fires_and_function_is_clean():
    assert_fires("import multiprocessing as mp\n"
                 "def f():\n"
                 "    mp.Process(target=lambda: 1).start()\n", "CON001")
    assert_clean("import multiprocessing as mp\n"
                 "def work():\n"
                 "    return 1\n"
                 "def f():\n"
                 "    mp.Process(target=work).start()\n", "CON001")


def test_con002_nested_function_worker_fires():
    assert_fires("import multiprocessing as mp\n"
                 "def f():\n"
                 "    def inner():\n"
                 "        return 1\n"
                 "    mp.Process(target=inner).start()\n", "CON002")
    assert_clean("import multiprocessing as mp\n"
                 "def work():\n"
                 "    return 1\n"
                 "def f():\n"
                 "    mp.Process(target=work).start()\n", "CON002")


def test_con003_bound_method_worker_fires_module_attr_is_clean():
    assert_fires("import multiprocessing as mp\n"
                 "def f(runner):\n"
                 "    mp.Process(target=runner.run).start()\n", "CON003")
    # a function reached through an imported module is importable
    assert_clean("import multiprocessing as mp\n"
                 "import helpers\n"
                 "def f():\n"
                 "    mp.Process(target=helpers.work).start()\n",
                 "CON003")


def test_con004_worker_global_mutation_fires():
    src = ("import multiprocessing as mp\n"
           "STATE = {}\n"
           "def work():\n"
           "    STATE['x'] = 1\n"
           "def f():\n"
           "    mp.Process(target=work).start()\n")
    hits = assert_fires(src, "CON004")
    assert hits[0].obj == "repro/fake_mod.py::work"
    # the transitive call closure is covered too
    assert_fires("import multiprocessing as mp\n"
                 "STATE = {}\n"
                 "def setup():\n"
                 "    STATE['x'] = 1\n"
                 "def work():\n"
                 "    setup()\n"
                 "def f():\n"
                 "    mp.Process(target=work).start()\n", "CON004")
    assert_clean("import multiprocessing as mp\n"
                 "STATE = {}\n"
                 "def work():\n"
                 "    local = dict(STATE)\n"
                 "    local['x'] = 1\n"
                 "    return local\n"
                 "def f():\n"
                 "    mp.Process(target=work).start()\n", "CON004")


def test_con005_module_scope_lock_fires_lazy_is_clean():
    assert_fires("import threading\n"
                 "LOCK = threading.Lock()\n", "CON005")
    assert_clean("import threading\n"
                 "def f():\n"
                 "    lock = threading.Lock()\n"
                 "    return lock\n", "CON005")


# ---------------------------------------------------------------------------
# flow-contract deck
# ---------------------------------------------------------------------------

_EXP_IMPORT = "from repro.analysis.experiments import experiment\n"


def test_flw001_runner_signature():
    assert_fires(_EXP_IMPORT +
                 "@experiment('x', 'demo')\n"
                 "def run_x(opts, extra=1):\n"
                 "    return None\n", "FLW001")
    assert_fires(_EXP_IMPORT +
                 "@experiment('x', 'demo')\n"
                 "def run_x(*args):\n"
                 "    return None\n", "FLW001")
    assert_clean(_EXP_IMPORT +
                 "@experiment('x', 'demo')\n"
                 "def run_x(opts):\n"
                 "    return None\n", "FLW001")


def test_flw002_seed_and_cache_threading():
    assert_fires(_EXP_IMPORT +
                 "@experiment('x', 'demo')\n"
                 "def run_x(opts):\n"
                 "    cfg = FlowConfig(scale=opts.scale)\n"
                 "    return cfg\n", "FLW002")
    assert_fires(_EXP_IMPORT +
                 "@experiment('x', 'demo')\n"
                 "def run_x(opts):\n"
                 "    d = build_chip(None, None)\n"
                 "    return d\n", "FLW002")
    assert_clean(_EXP_IMPORT +
                 "@experiment('x', 'demo')\n"
                 "def run_x(opts):\n"
                 "    seed, cache = opts.seed, opts.cache\n"
                 "    cfg = FlowConfig(scale=opts.scale, seed=seed)\n"
                 "    return build_chip(cfg, None, cache=cache)\n",
                 "FLW002")
    # outside a runner the helpers are free to do what they want
    assert_clean("def helper(scale):\n"
                 "    return FlowConfig(scale=scale)\n", "FLW002")


def test_flw003_frozen_options_mutation():
    assert_fires("def f(opts):\n"
                 "    opts.scale = 2.0\n", "FLW003")
    assert_fires("def f(opts):\n"
                 "    object.__setattr__(opts, 'scale', 2.0)\n",
                 "FLW003")
    assert_clean("import dataclasses\n"
                 "def f(opts):\n"
                 "    return dataclasses.replace(opts, scale=2.0)\n",
                 "FLW003")


def test_flw004_result_id_mismatch():
    assert_fires(_EXP_IMPORT +
                 "@experiment('x', 'demo')\n"
                 "def run_x(opts):\n"
                 "    return ExperimentResult('y', 'demo', '', [])\n",
                 "FLW004")
    assert_clean(_EXP_IMPORT +
                 "@experiment('x', 'demo')\n"
                 "def run_x(opts):\n"
                 "    return ExperimentResult('x', 'demo', '', [])\n",
                 "FLW004")


def test_flw005_span_fault_point_pairing():
    # a flow.* span with no fault_point is invisible to chaos tests
    assert_fires("from repro.obs import trace\n"
                 "def f():\n"
                 "    with trace.span('flow.place'):\n"
                 "        pass\n", "FLW005")
    # a stage fault_point outside any span has no trace attribution
    assert_fires("from repro.faults.inject import fault_point\n"
                 "def f():\n"
                 "    fault_point('place')\n", "FLW005")
    assert_clean("from repro.obs import trace\n"
                 "from repro.faults.inject import fault_point\n"
                 "def f():\n"
                 "    with trace.span('flow.place'):\n"
                 "        fault_point('place')\n", "FLW005")


# ---------------------------------------------------------------------------
# observability-hygiene deck
# ---------------------------------------------------------------------------

def test_obs001_unregistered_span_name_fires():
    assert_fires("from repro.obs import trace\n"
                 "def f():\n"
                 "    with trace.span('totally.bogus'):\n"
                 "        pass\n", "OBS001")
    assert_clean("from repro.obs import trace\n"
                 "def f():\n"
                 "    with trace.span('flow.place'):\n"
                 "        pass\n", "OBS001")


def test_obs002_unregistered_metric_name_fires():
    assert_fires("def f(m):\n"
                 "    m.counter('totally.bogus').inc()\n", "OBS002")
    assert_clean("def f(m):\n"
                 "    m.counter('cache.misses').inc()\n", "OBS002")
    # registry internals re-emit validated names through self.counter
    assert_clean("class R:\n"
                 "    def merge(self, k):\n"
                 "        self.counter(k).inc()\n", "OBS002")
    # conditional literal names: every branch is checked
    assert_fires("def f(m, f2f):\n"
                 "    m.counter('flow.vias.f2f' if f2f\n"
                 "              else 'bogus.vias').inc()\n", "OBS002")


def test_obs003_dynamic_name_prefix():
    assert_fires("def f(m, kind):\n"
                 "    m.counter(f'bogus.{kind}').inc()\n", "OBS003")
    assert_clean("def f(m, kind):\n"
                 "    m.counter(f'faults.injected.{kind}').inc()\n",
                 "OBS003")
    # bare-variable forwarding is out of scope by design
    assert_clean("def f(t, name):\n"
                 "    return t.span(name)\n", "OBS003")


# ---------------------------------------------------------------------------
# deck integrity
# ---------------------------------------------------------------------------

def test_every_registered_rule_has_a_mutation_test():
    import sys
    module = sys.modules[__name__]
    source = open(module.__file__).read()
    for rule_id in CODE_REGISTRY:
        assert f'"{rule_id}"' in source, \
            f"{rule_id} has no mutation test"


def test_deck_is_documented_and_consistent():
    assert len(CODE_REGISTRY) == 20
    for rule_id, rule in CODE_REGISTRY.items():
        assert rule.id == rule_id
        assert rule.severity == "error"
        assert rule.requires == ("tree",)
        assert rule.doc, f"{rule_id} has no docstring"
        prefix = rule_id[:3]
        assert prefix in ("DET", "CON", "FLW", "OBS")


def test_code_registry_is_separate_from_design_deck():
    from repro.lint.framework import REGISTRY as DESIGN_REGISTRY
    assert not set(CODE_REGISTRY) & set(DESIGN_REGISTRY)


def test_syntax_error_raises_source_error():
    from repro.analyze import SourceError, context_for_source
    with pytest.raises(SourceError):
        context_for_source("def broken(:\n", name="bad.py")
