"""Tests for report formatting and the experiment registry."""

import pytest

from repro.analysis.experiments import (EXPERIMENTS, ExperimentOptions,
                                        run_experiment)
from repro.analysis.report import (MetricRow, design_metric_rows,
                                   format_table, relative)


class TestFormatTable:
    def test_contains_values_and_deltas(self):
        rows = [MetricRow("power (mW)", [10.0, 8.0])]
        text = format_table("T", ["2D", "3D"], rows)
        assert "10.00" in text
        assert "8.00 (-20.0%)" in text
        assert "2D" in text and "3D" in text

    def test_no_delta_flag(self):
        rows = [MetricRow("# vias", [0, 100], fmt="{:.0f}",
                          show_delta=False)]
        text = format_table("T", ["a", "b"], rows)
        assert "(" not in text.splitlines()[-1]

    def test_unit_scale(self):
        rows = [MetricRow("x", [2000.0], unit_scale=1e-3)]
        text = format_table("T", ["only"], rows)
        assert "2.00" in text

    def test_zero_baseline_no_delta(self):
        rows = [MetricRow("x", [0.0, 5.0])]
        text = format_table("T", ["a", "b"], rows)
        assert "%" not in text


def test_relative():
    assert relative(8.0, 10.0) == pytest.approx(-0.2)
    assert relative(12.0, 10.0) == pytest.approx(0.2)
    assert relative(5.0, 0.0) == 0.0


def test_design_metric_rows(process):
    from repro.core.flow import FlowConfig, run_block_flow
    d = run_block_flow("ncu", FlowConfig(), process)
    rows = design_metric_rows([d, d])
    labels = [r.label for r in rows]
    assert "footprint (mm^2)" in labels
    assert "total power (mW)" in labels
    text = format_table("cmp", ["a", "b"], rows)
    assert "(+0.0%)" in text  # identical designs


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"table1", "table2", "table3", "table4", "table5",
                    "fig2", "fig3", "fig6", "fig7", "fig8", "dvt",
                    "eco"}
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_table1_fast_and_passes(self, process):
        res = run_experiment("table1", process=process)
        assert res.all_passed
        assert "TSV" in res.table
        assert "PASS" in res.summary()

    def test_table4_passes(self, process):
        res = run_experiment("table1",
                             ExperimentOptions(process=process))
        assert res.experiment_id == "table1"
        assert all(c.measured for c in res.checks)
