"""Tests for the deterministic fault-injection layer.

Covers the ``REPRO_FAULTS`` grammar (parse, round-trip, errors), spec
matching, fire-once semantics, seeded-plan determinism, the flow and
cache hooks, environment activation, and -- critically -- inertness:
with no active plan the hooks must not change behavior, metrics or
bytes.
"""

import pickle

import pytest

from repro import faults
from repro.core.cache import DesignCache
from repro.core.flow import FlowConfig, run_block_flow
from repro.faults import (DEFAULT_HANG_S, FaultPlan, FaultPlanError,
                          FaultSpec, InjectedFault, InjectedHang)
from repro.obs.metrics import metrics


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """Every test starts and ends with no plan and no fired state."""
    faults.reset()
    yield
    faults.reset()


# ---------------------------------------------------------------------------
# Grammar
# ---------------------------------------------------------------------------

class TestPlanGrammar:
    def test_parse_single_spec(self):
        plan = FaultPlan.parse("raise task=fig6 stage=optimize attempt=1")
        assert len(plan) == 1
        spec = plan.specs[0]
        assert spec.kind == "raise"
        assert spec.task == "fig6"
        assert spec.stage == "optimize"
        assert spec.attempt == 1

    def test_parse_multiple_specs_and_defaults(self):
        plan = FaultPlan.parse(
            "raise; slow task=* stage=place seconds=0.05")
        assert len(plan) == 2
        assert plan.specs[0].task == "*"
        assert plan.specs[0].stage == "*"
        assert plan.specs[0].attempt == 1
        assert plan.specs[1].seconds == 0.05

    def test_hang_defaults_to_forever(self):
        plan = FaultPlan.parse("hang task=fig6")
        assert plan.specs[0].seconds == DEFAULT_HANG_S

    def test_round_trip(self):
        text = ("raise task=fig6 stage=optimize attempt=1; "
                "slow task=* stage=place attempt=0 seconds=0.05; "
                "corrupt task=table4 stage=cache.load attempt=1; "
                "hang task=fig* stage=task attempt=1 seconds=3600")
        plan = FaultPlan.parse(text, seed=7)
        again = FaultPlan.parse(plan.to_text(), seed=7)
        assert again == plan

    @pytest.mark.parametrize("bad", [
        "explode task=fig6",                 # unknown kind
        "raise task=fig6 when=now",          # unknown field
        "raise attempt=soon",                # non-integer attempt
        "slow seconds=fast",                 # non-numeric seconds
        "raise task",                        # bare token, no '='
        "raise attempt=-1",                  # negative attempt
        "slow seconds=-1",                   # negative duration
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_empty_text_is_empty_plan(self):
        assert len(FaultPlan.parse("")) == 0
        assert len(FaultPlan.parse(" ; ; ")) == 0

    def test_plan_is_picklable(self):
        plan = FaultPlan.seeded(3, tasks=["fig6", "table4"])
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestSpecMatching:
    def test_exact_match(self):
        spec = FaultSpec(kind="raise", task="fig6", stage="place")
        assert spec.matches("fig6", "place", 1)
        assert not spec.matches("fig7", "place", 1)
        assert not spec.matches("fig6", "power", 1)
        assert not spec.matches("fig6", "place", 2)

    def test_fnmatch_patterns(self):
        spec = FaultSpec(kind="raise", task="fig*", stage="*")
        assert spec.matches("fig6", "optimize", 1)
        assert spec.matches("fig2", "task", 1)
        assert not spec.matches("table4", "optimize", 1)

    def test_attempt_zero_fires_every_attempt(self):
        spec = FaultSpec(kind="raise", attempt=0)
        for attempt in (1, 2, 3, 7):
            assert spec.matches("anything", "anywhere", attempt)

    def test_plan_match_returns_stable_indices(self):
        plan = FaultPlan.parse("raise task=a; raise task=b; slow task=a")
        hits = plan.match("a", "place", 1)
        assert [i for i, _ in hits] == [0, 2]


class TestSeededPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.seeded(4, tasks=["fig6", "table4"])
        b = FaultPlan.seeded(4, tasks=["fig6", "table4"])
        assert a == b
        assert a.to_text() == b.to_text()

    def test_different_seeds_differ(self):
        texts = {FaultPlan.seeded(s, tasks=["fig6", "table4"]).to_text()
                 for s in range(8)}
        assert len(texts) > 1

    def test_always_contains_recoverable_engine_raise(self):
        for seed in range(10):
            plan = FaultPlan.seeded(seed, tasks=["fig6", "table4"])
            first = plan.specs[0]
            assert first.kind == "raise"
            assert first.stage == "task"
            assert first.attempt == 1

    def test_targets_stay_in_task_pool(self):
        tasks = ["fig6", "table4"]
        plan = FaultPlan.seeded(11, tasks=tasks, n_faults=6)
        assert all(s.task in tasks for s in plan.specs)

    def test_seeded_plan_round_trips(self):
        plan = FaultPlan.seeded(4, tasks=["fig6"])
        assert FaultPlan.parse(plan.to_text(), seed=4) == plan


# ---------------------------------------------------------------------------
# Hooks
# ---------------------------------------------------------------------------

class TestFaultPoint:
    def test_raise_fires_and_is_logged(self):
        faults.install(FaultPlan.parse("raise task=t stage=place"))
        with faults.task_context("t", 1):
            with pytest.raises(InjectedFault):
                faults.fault_point("place")
        log = faults.injection_log()
        assert len(log) == 1
        assert log[0]["kind"] == "raise"
        assert log[0]["task"] == "t"
        assert log[0]["stage"] == "place"

    def test_fires_once_per_task_attempt(self):
        faults.install(FaultPlan.parse("slow task=t stage=* seconds=0"))
        with faults.task_context("t", 1):
            faults.fault_point("generate")
            faults.fault_point("place")     # same spec: stays quiet
        assert len(faults.injection_log()) == 1
        # a retried attempt re-matches from scratch
        with faults.task_context("t", 2):
            faults.fault_point("generate")
        assert len(faults.injection_log()) == 1  # attempt=1 spec only
        faults.install(FaultPlan.parse("slow task=t attempt=0 seconds=0"))
        with faults.task_context("t", 1):
            faults.fault_point("generate")
        with faults.task_context("t", 2):
            faults.fault_point("generate")
        assert len(faults.injection_log()) == 2

    def test_hang_raises_past_deadline(self):
        import time
        faults.install(FaultPlan.parse("hang task=t seconds=60"))
        deadline = time.monotonic() + 0.05
        t0 = time.monotonic()
        with faults.task_context("t", 1, deadline):
            with pytest.raises(InjectedHang):
                faults.fault_point("place")
        assert time.monotonic() - t0 < 5.0

    def test_metrics_recorded_per_kind(self):
        before = metrics().snapshot()
        faults.install(FaultPlan.parse(
            "slow task=t stage=a seconds=0; raise task=t stage=b"))
        with faults.task_context("t", 1):
            faults.fault_point("a")
            with pytest.raises(InjectedFault):
                faults.fault_point("b")
        diff = metrics().diff(before)["counters"]
        assert diff["faults.injected"] == 2.0
        assert diff["faults.injected.slow"] == 1.0
        assert diff["faults.injected.raise"] == 1.0

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise task=t stage=place")
        faults.reset()   # forget the cached (empty) parse
        with faults.task_context("t", 1):
            with pytest.raises(InjectedFault):
                faults.fault_point("place")

    def test_env_parse_error_surfaces(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "explode everything")
        faults.reset()
        with pytest.raises(FaultPlanError):
            faults.active_plan()


class TestCorruptPoint:
    def test_corrupts_existing_file_once(self, tmp_path):
        target = tmp_path / "entry.pkl"
        payload = b"x" * 100
        target.write_bytes(payload)
        faults.install(FaultPlan.parse("corrupt task=t stage=cache.load"))
        with faults.task_context("t", 1):
            assert faults.corrupt_point(target)
            assert target.read_bytes() != payload
            garbled = target.read_bytes()
            # fire-once: a second load of the same attempt is untouched
            assert not faults.corrupt_point(target)
            assert target.read_bytes() == garbled
        assert faults.injection_log()[0]["kind"] == "corrupt"

    def test_missing_file_keeps_spec_armed(self, tmp_path):
        target = tmp_path / "entry.pkl"
        faults.install(FaultPlan.parse("corrupt task=t stage=cache.load"))
        with faults.task_context("t", 1):
            assert not faults.corrupt_point(target)
            target.write_bytes(b"y" * 100)
            assert faults.corrupt_point(target)

    def test_corruption_bytes_are_seeded(self, tmp_path):
        blobs = []
        for _ in range(2):
            target = tmp_path / "entry.pkl"
            target.write_bytes(b"z" * 100)
            faults.install(FaultPlan.parse(
                "corrupt task=t stage=cache.load", seed=5))
            with faults.task_context("t", 1):
                assert faults.corrupt_point(target)
            blobs.append(target.read_bytes())
        assert blobs[0] == blobs[1]


# ---------------------------------------------------------------------------
# Flow and cache integration
# ---------------------------------------------------------------------------

class TestFlowHooks:
    def test_stage_fault_aborts_the_flow(self, process):
        faults.install(FaultPlan.parse("raise task=t stage=place"))
        with faults.task_context("t", 1):
            with pytest.raises(InjectedFault):
                run_block_flow("ncu", FlowConfig(scale=0.3), process)

    def test_slow_stage_leaves_the_design_intact(self, process):
        clean = run_block_flow("ncu", FlowConfig(scale=0.3), process)
        faults.install(FaultPlan.parse(
            "slow task=t stage=optimize seconds=0.01"))
        with faults.task_context("t", 1):
            slowed = run_block_flow("ncu", FlowConfig(scale=0.3), process)
        assert len(faults.injection_log()) == 1
        assert slowed.power.total_uw == clean.power.total_uw
        assert slowed.wirelength_um == clean.wirelength_um

    def test_cache_survives_injected_corruption(self, tmp_path, process):
        config = FlowConfig(scale=0.3)
        warm = DesignCache(cache_dir=tmp_path)
        baseline = warm.get_or_run("ncu", config, process)
        assert warm.stats.stores == 1

        faults.install(FaultPlan.parse(
            "corrupt task=t stage=cache.load"))
        before = metrics().snapshot()
        victim = DesignCache(cache_dir=tmp_path)
        with faults.task_context("t", 1):
            design = victim.get_or_run("ncu", config, process)
        # the corrupted entry was dropped, recomputed and re-stored
        assert victim.stats.corrupt_drops == 1
        assert victim.stats.misses == 1
        assert design.power.total_uw == baseline.power.total_uw
        diff = metrics().diff(before)["counters"]
        assert diff["cache.corrupt_drops"] == 1.0
        assert diff["faults.injected.corrupt"] == 1.0
        # the rewrite healed the disk tier: a fresh cache now disk-hits
        faults.clear()
        healed = DesignCache(cache_dir=tmp_path)
        again = healed.get_or_run("ncu", config, process)
        assert healed.stats.disk_hits == 1
        assert again.power.total_uw == baseline.power.total_uw


class TestInertness:
    def test_no_plan_is_a_noop(self, process):
        before = metrics().snapshot()
        with faults.task_context("t", 1):
            faults.fault_point("place")
            faults.fault_point("task")
        diff = metrics().diff(before)["counters"]
        assert not any(k.startswith("faults.") for k in diff)
        assert faults.injection_log() == []

    def test_cleared_plan_restores_byte_identical_flow(self, process):
        config = FlowConfig(scale=0.3)
        clean = run_block_flow("ncu", config, process)
        with faults.installed(FaultPlan.parse("raise task=t stage=place")):
            with faults.task_context("t", 1):
                with pytest.raises(InjectedFault):
                    run_block_flow("ncu", config, process)
        after = run_block_flow("ncu", config, process)
        assert after.power.total_uw == clean.power.total_uw
        assert after.wirelength_um == clean.wirelength_um
        assert after.n_cells == clean.n_cells
