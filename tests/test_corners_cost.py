"""Tests for process corners and the cost/yield model."""

import pytest

from repro.analysis.corners import analyze_corners, signoff_summary
from repro.analysis.cost import (CostModel, cost_2d, cost_3d,
                                 cost_comparison, die_yield,
                                 dies_per_wafer, format_cost_table)
from repro.core.flow import FlowConfig, run_block_flow
from repro.tech.corners import (CORNERS, corner_library, corner_process,
                                derate_master)


class TestCorners:
    def test_corner_set(self):
        assert set(CORNERS) == {"ss", "tt", "ff"}
        assert CORNERS["ss"].delay_factor > 1 > CORNERS["ff"].delay_factor
        assert CORNERS["ff"].leakage_factor > 1

    def test_derate_master(self, library):
        m = library.master("INV_X2")
        ss = derate_master(m, CORNERS["ss"])
        assert ss.drive_res_kohm > m.drive_res_kohm
        assert ss.leakage_uw < m.leakage_uw
        assert ss.area_um2 == m.area_um2  # geometry unchanged

    def test_tt_is_identity(self, library):
        m = library.master("NAND2_X4_HVT")
        tt = derate_master(m, CORNERS["tt"])
        assert tt == m

    def test_corner_library_complete(self, library):
        ff = corner_library(library, "ff")
        assert len(ff) == len(library)
        assert ff.master("INV_X1").drive_res_kohm < \
            library.master("INV_X1").drive_res_kohm
        # library navigation still works
        assert ff.upsize(ff.master("INV_X2")).drive == 4

    def test_corner_process(self, process):
        ss = corner_process(process, "ss")
        assert ss.vdd < process.vdd
        assert ss.name.endswith("_ss")
        # base process untouched
        assert process.library.master("INV_X1").drive_res_kohm == \
            pytest.approx(4.2)

    @pytest.fixture(scope="class")
    def design(self, process):
        return run_block_flow("ncu", FlowConfig(seed=3), process)

    def test_corner_ordering(self, design, process):
        reports = analyze_corners(design, process)
        assert reports["ss"].wns_ps < reports["tt"].wns_ps < \
            reports["ff"].wns_ps
        assert reports["ff"].leakage_uw > reports["tt"].leakage_uw > \
            reports["ss"].leakage_uw

    def test_masters_restored_after_analysis(self, design, process):
        before = {i.id: i.master for i in design.netlist.instances.values()}
        analyze_corners(design, process)
        after = {i.id: i.master for i in design.netlist.instances.values()}
        assert before == after

    def test_summary_renders(self, design, process):
        reports = analyze_corners(design, process)
        text = signoff_summary(reports)
        assert "setup sign-off at SS" in text
        assert "ff" in text


class TestCostModel:
    def test_dies_per_wafer_decreases_with_area(self):
        assert dies_per_wafer(50, 300) > dies_per_wafer(100, 300)

    def test_dies_per_wafer_rejects_zero_area(self):
        with pytest.raises(ValueError):
            dies_per_wafer(0, 300)

    def test_yield_decreases_with_area(self):
        model = CostModel()
        assert die_yield(25, model) > die_yield(100, model)
        assert 0 < die_yield(100, model) < 1

    def test_small_dies_cheaper(self):
        small = cost_2d(40)
        big = cost_2d(120)
        assert small.cost_per_good_die < big.cost_per_good_die

    def test_w2w_vs_d2d(self):
        # with big dies (poor yield), die matching (d2d) wins
        w2w = cost_3d(80, strategy="w2w")
        d2d = cost_3d(80, strategy="d2d")
        assert d2d.cost_per_good_die < w2w.cost_per_good_die

    def test_f2f_skips_tsv_cost(self):
        f2b = cost_3d(40, style="fold_f2b", uses_tsv=True)
        f2f = cost_3d(40, style="fold_f2f", uses_tsv=False)
        assert f2f.cost_per_good_die < f2b.cost_per_good_die

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            cost_3d(40, strategy="origami")

    def test_comparison_and_table(self):
        costs = cost_comparison({"2d": 72.0, "core_cache": 40.0,
                                 "fold_f2f": 37.0})
        table = format_cost_table(costs)
        assert "2d" in table and "fold_f2f" in table
        by_style = {c.style: c for c in costs}
        # halved dies yield better per tier than the 2D monolith
        assert by_style["core_cache"].die_yield != \
            by_style["2d"].die_yield

    def test_cost_scaling_sane(self):
        # stacking two half-size dies costs more than one big die at low
        # defect density (bonding overhead dominates) ...
        cheap_defects = CostModel(defect_density=0.05)
        d2 = cost_2d(80, cheap_defects)
        d3 = cost_3d(40, cheap_defects, strategy="d2d")
        assert d3.cost_per_good_die > d2.cost_per_good_die
        # ... but wins when defects make the big die yield poorly
        dirty = CostModel(defect_density=2.5)
        d2 = cost_2d(80, dirty)
        d3 = cost_3d(40, dirty, strategy="d2d")
        assert d3.cost_per_good_die < d2.cost_per_good_die
