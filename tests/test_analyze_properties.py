"""Property tests for the code-analysis deck: any rule-violating
mutation of a clean fixture fires at least one finding in the matching
deck, the clean fixture fires none, and findings stay waivable and
stable under unrelated source edits."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import analyze_source
from repro.lint.framework import LintConfig, Waiver

#: a module that exercises every deck's subject matter and is clean
FIXTURE = '''\
import json
import os
import random
import threading
import time

import multiprocessing as mp

from repro.analysis.experiments import experiment
from repro.faults.inject import fault_point
from repro.obs import trace


def pick(xs, seed):
    rng = random.Random(seed)
    return rng.choice(sorted(xs))


def scan(d):
    return [p for p in sorted(os.listdir(d))]


def work(n):
    return n * 2


def launch():
    p = mp.Process(target=work, args=(3,))
    p.start()
    return p


def timed(m):
    with trace.span('flow.place'):
        fault_point('place')
        m.counter('cache.misses').inc()


@experiment('demo', 'property-test fixture')
def run_demo(opts):
    seed = opts.seed
    return json.dumps({'seed': seed})
'''

#: (deck prefix, appended mutation) -- each must trip its own deck
MUTATIONS = [
    ("DET", "def mut(xs):\n"
            "    random.shuffle(xs)\n"),
    ("DET", "def mut():\n"
            "    return json.dumps({'t': time.time()})\n"),
    ("DET", "def mut(xs):\n"
            "    return [x for x in set(xs)]\n"),
    ("DET", "def mut(d):\n"
            "    return [p for p in os.listdir(d)]\n"),
    ("DET", "def mut_key(obj):\n"
            "    return f'k-{id(obj)}'\n"),
    ("CON", "def mut():\n"
            "    mp.Process(target=lambda: 1).start()\n"),
    ("CON", "def mut():\n"
            "    def inner():\n"
            "        return 1\n"
            "    mp.Process(target=inner).start()\n"),
    ("CON", "MUT_LOCK = threading.Lock()\n"),
    ("FLW", "@experiment('mut', 'x')\n"
            "def run_mut(opts, extra=0):\n"
            "    return None\n"),
    ("FLW", "def mut(opts):\n"
            "    opts.scale = 2.0\n"),
    ("FLW", "def mut():\n"
            "    fault_point('place')\n"),
    ("OBS", "def mut():\n"
            "    with trace.span('bogus.span'):\n"
            "        pass\n"),
    ("OBS", "def mut(m):\n"
            "    m.counter('bogus.name').inc()\n"),
    ("OBS", "def mut(m, k):\n"
            "    m.counter(f'bogus.{k}').inc()\n"),
]

paddings = st.integers(min_value=0, max_value=8)


def analyze(source):
    return analyze_source(source, name="repro/fixture.py")


def test_clean_fixture_fires_nothing():
    report = analyze(FIXTURE)
    assert report.violations == [], [str(v) for v in report.violations]


@given(st.sampled_from(MUTATIONS), paddings)
@settings(max_examples=60, deadline=None)
def test_mutations_always_fire_their_deck(mutation, pad):
    deck, snippet = mutation
    source = FIXTURE + "\n" * (pad + 1) + snippet
    report = analyze(source)
    hits = [v for v in report.violations if v.rule_id.startswith(deck)]
    assert hits, (deck, snippet,
                  [str(v) for v in report.violations])


@given(st.sampled_from(MUTATIONS), paddings, paddings)
@settings(max_examples=40, deadline=None)
def test_finding_objs_are_stable_under_line_shifts(mutation, pad_a,
                                                   pad_b):
    _, snippet = mutation
    objs_a = {(v.rule_id, v.obj) for v in analyze(
        FIXTURE + "\n" * (pad_a + 1) + snippet).violations}
    objs_b = {(v.rule_id, v.obj) for v in analyze(
        FIXTURE + "\n" * (pad_b + 1) + snippet).violations}
    assert objs_a == objs_b


@given(st.sampled_from(MUTATIONS), paddings)
@settings(max_examples=40, deadline=None)
def test_every_finding_is_waivable_by_rule_and_obj(mutation, pad):
    _, snippet = mutation
    source = FIXTURE + "\n" * (pad + 1) + snippet
    report = analyze(source)
    assert not report.clean
    config = LintConfig(waivers=tuple(
        Waiver(rule_id=v.rule_id, obj=v.obj, reason="property test")
        for v in report.violations))
    waived = analyze_source(source, name="repro/fixture.py",
                            config=config)
    assert waived.clean
    assert all(v.waived for v in waived.violations)
