"""Tests for the block-design cache."""

import pytest

from repro.core.cache import DesignCache
from repro.core.flow import FlowConfig
from repro.core.fullchip import ChipConfig, build_chip


def test_hit_returns_same_object(process):
    cache = DesignCache()
    cfg = FlowConfig(scale=0.4)
    a = cache.get_or_run("ncu", cfg, process)
    b = cache.get_or_run("ncu", cfg, process)
    assert a is b
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_different_configs_miss(process):
    cache = DesignCache()
    cache.get_or_run("ncu", FlowConfig(scale=0.4), process)
    cache.get_or_run("ncu", FlowConfig(scale=0.4, dual_vth=True),
                     process)
    assert cache.stats.misses == 2


def test_clear(process):
    cache = DesignCache()
    cache.get_or_run("ncu", FlowConfig(scale=0.4), process)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.misses == 0


def test_eviction_cap(process):
    cache = DesignCache(max_entries=1)
    cache.get_or_run("ncu", FlowConfig(scale=0.4), process)
    cache.get_or_run("ccu", FlowConfig(scale=0.4), process)
    assert len(cache) == 1


def test_chip_sweep_reuses_blocks(process):
    cache = DesignCache()
    build_chip(ChipConfig(style="core_cache", scale=0.3), process,
               cache=cache)
    first_misses = cache.stats.misses
    # same seed + scale: unfolded blocks with equal budgets recur
    build_chip(ChipConfig(style="core_core", scale=0.3), process,
               cache=cache)
    assert cache.stats.hits > 0
    assert cache.stats.misses < 2 * first_misses
