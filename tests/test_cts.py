"""Tests for clock tree synthesis."""

import pytest

from repro.cts.tree import CTSResult, clock_sinks, synthesize_clock_tree
from repro.netlist.core import INPUT, Netlist, PinRef
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.place.partition import fm_bipartition
from repro.place.placer3d import fold_place_3d
from tests.conftest import fresh_block


def grid_of_flops(lib, n=64, pitch=100.0, die=0):
    nl = Netlist("flops")
    dff = lib.master("DFF_X1")
    sinks = []
    side = int(n ** 0.5)
    for i in range(n):
        f = nl.add_instance(f"f{i}", dff, x=(i % side) * pitch,
                            y=(i // side) * pitch, die=die)
        sinks.append(PinRef(inst=f.id, pin=1))
    nl.add_port("clk", INPUT)
    nl.add_net("clk", PinRef(port="clk"), sinks, is_clock=True)
    return nl


def test_all_sinks_collected(library):
    nl = grid_of_flops(library)
    sinks = clock_sinks(nl)
    assert len(sinks[0]) == 64
    assert len(sinks[1]) == 0


def test_tree_covers_all_sinks(library, process):
    nl = grid_of_flops(library)
    cts = synthesize_clock_tree(nl, process)
    assert cts.n_sinks == 64
    assert cts.n_buffers >= 64 // 12
    assert cts.levels >= 3
    assert cts.wirelength_um > 0
    assert cts.via_crossings == 0


def test_sink_cap_sums_clock_pins(library, process):
    nl = grid_of_flops(library, n=16)
    cts = synthesize_clock_tree(nl, process)
    per_pin = library.flop().clock_pin_cap_ff
    assert cts.sink_pin_cap_ff == pytest.approx(16 * per_pin)


def test_bigger_footprint_longer_clock_tree(library, process):
    near = synthesize_clock_tree(grid_of_flops(library, pitch=50.0),
                                 process)
    far = synthesize_clock_tree(grid_of_flops(library, pitch=200.0),
                                process)
    assert far.wirelength_um > 2 * near.wirelength_um
    assert far.n_buffers == near.n_buffers  # same sink count


def test_folded_block_crosses_once(library, process):
    nl = grid_of_flops(library, n=32, die=0)
    # move half the flops to die 1
    for i, inst in enumerate(nl.instances.values()):
        if i % 2:
            inst.die = 1
    cts = synthesize_clock_tree(nl, process)
    assert cts.via_crossings == 1


def test_empty_netlist(library, process):
    nl = Netlist("empty")
    cts = synthesize_clock_tree(nl, process)
    assert cts.n_sinks == 0
    assert cts.n_buffers == 0


def test_merge_results(library, process):
    a = synthesize_clock_tree(grid_of_flops(library, n=16), process)
    b = synthesize_clock_tree(grid_of_flops(library, n=16), process)
    m = a.merged_with(b)
    assert m.n_buffers == a.n_buffers + b.n_buffers
    assert m.n_sinks == 32
    assert m.wirelength_um == pytest.approx(
        a.wirelength_um + b.wirelength_um)


def test_generated_block_cts(library, process):
    gb = fresh_block("l2t", library, seed=2)
    place_block_2d(gb.netlist, PlacementConfig(seed=2))
    cts = synthesize_clock_tree(gb.netlist, process)
    flops = sum(1 for i in gb.netlist.instances.values()
                if i.is_sequential)
    assert cts.n_sinks >= flops  # flops + macro clock pins
