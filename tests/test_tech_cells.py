"""Tests for the standard-cell library model."""

import pytest

from repro.tech.cells import (DRIVE_STRENGTHS, HVT_DELAY_FACTOR,
                              HVT_INTERNAL_FACTOR, HVT_LEAKAGE_FACTOR,
                              VTH_HVT, VTH_RVT, CellLibrary,
                              make_28nm_library)


@pytest.fixture(scope="module")
def lib():
    return make_28nm_library()


def test_library_size(lib):
    # 10 functions x 5 drives x 2 flavors
    assert len(lib) == 10 * len(DRIVE_STRENGTHS) * 2


def test_master_lookup(lib):
    m = lib.master("NAND2_X4")
    assert m.function == "NAND2"
    assert m.drive == 4
    assert m.vth == VTH_RVT
    h = lib.master("NAND2_X4_HVT")
    assert h.vth == VTH_HVT


def test_unknown_master_raises(lib):
    with pytest.raises(KeyError):
        lib.master("NAND3_X1")


def test_contains(lib):
    assert "INV_X1" in lib
    assert "INV_X3" not in lib


@pytest.mark.parametrize("function", ["INV", "NAND2", "DFF", "MUX2"])
def test_size_scaling_monotonic(lib, function):
    ladder = lib.sizes_of(function)
    assert [m.drive for m in ladder] == list(DRIVE_STRENGTHS)
    for a, b in zip(ladder, ladder[1:]):
        assert b.area_um2 > a.area_um2
        assert b.input_cap_ff > a.input_cap_ff
        assert b.drive_res_kohm < a.drive_res_kohm
        assert b.leakage_uw > a.leakage_uw
        assert b.internal_energy_fj > a.internal_energy_fj


@pytest.mark.parametrize("function", ["INV", "BUF", "DFF", "XOR2"])
def test_hvt_derating(lib, function):
    rvt = lib.master(f"{function}_X2")
    hvt = lib.master(f"{function}_X2_HVT")
    assert hvt.drive_res_kohm == pytest.approx(
        rvt.drive_res_kohm * HVT_DELAY_FACTOR)
    assert hvt.intrinsic_delay_ps == pytest.approx(
        rvt.intrinsic_delay_ps * HVT_DELAY_FACTOR)
    assert hvt.leakage_uw == pytest.approx(
        rvt.leakage_uw * HVT_LEAKAGE_FACTOR)
    assert hvt.internal_energy_fj == pytest.approx(
        rvt.internal_energy_fj * HVT_INTERNAL_FACTOR)
    # HVT cells occupy the same area
    assert hvt.area_um2 == pytest.approx(rvt.area_um2)


def test_delay_model_linear_in_load(lib):
    m = lib.master("INV_X2")
    d0 = m.delay_ps(0.0)
    d10 = m.delay_ps(10.0)
    d20 = m.delay_ps(20.0)
    assert d0 == pytest.approx(m.intrinsic_delay_ps)
    assert d20 - d10 == pytest.approx(d10 - d0)


def test_upsize_downsize_chain(lib):
    m = lib.master("NOR2_X2")
    up = lib.upsize(m)
    assert up.drive == 4
    down = lib.downsize(m)
    assert down.drive == 1
    assert lib.downsize(down) is None
    top = lib.master("NOR2_X16")
    assert lib.upsize(top) is None


def test_upsize_preserves_vth(lib):
    m = lib.master("AND2_X2_HVT")
    assert lib.upsize(m).vth == VTH_HVT


def test_variant_changes_vth_only(lib):
    m = lib.master("MUX2_X8")
    v = lib.variant(m, vth=VTH_HVT)
    assert v.drive == 8 and v.function == "MUX2" and v.vth == VTH_HVT


def test_buffer_and_flop_helpers(lib):
    assert lib.buffer().function == "BUF"
    assert lib.buffer(drive=8).drive == 8
    assert lib.flop().is_sequential
    assert lib.flop().clock_pin_cap_ff > 0


def test_is_buffer_flag(lib):
    assert lib.master("BUF_X4").is_buffer
    assert lib.master("INV_X4").is_buffer
    assert not lib.master("NAND2_X4").is_buffer


def test_sequential_only_dff(lib):
    seq = {m.function for m in lib.masters if m.is_sequential}
    assert seq == {"DFF"}
