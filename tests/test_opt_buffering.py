"""Tests for repeater insertion."""

import pytest

from repro.netlist.core import INPUT, Netlist, PinRef
from repro.opt.buffering import (BufferingConfig, insert_buffers,
                                 optimal_spacing_um)
from repro.route.estimate import route_block
from repro.tech.cells import make_28nm_library
from repro.tech.layers import make_28nm_stack


@pytest.fixture(scope="module")
def lib():
    return make_28nm_library()


@pytest.fixture(scope="module")
def stack():
    return make_28nm_stack()


def long_net(lib, length=2000.0):
    nl = Netlist("long")
    a = nl.add_instance("a", lib.master("INV_X2"), x=0, y=0)
    b = nl.add_instance("b", lib.master("INV_X2"), x=length, y=0)
    net = nl.add_net("n", PinRef(inst=a.id), [PinRef(inst=b.id, pin=0)])
    return nl, net, a, b


def fanout_net(lib, n_sinks=40):
    nl = Netlist("fan")
    a = nl.add_instance("a", lib.master("INV_X2"), x=0, y=0)
    sinks = []
    for i in range(n_sinks):
        # keep the spread small so the cap trigger (not the long-wire
        # chain trigger) fires
        c = nl.add_instance(f"s{i}", lib.master("INV_X2"),
                            x=(i % 8) * 10.0, y=(i // 8) * 10.0)
        sinks.append(PinRef(inst=c.id, pin=0))
    net = nl.add_net("n", PinRef(inst=a.id), sinks)
    return nl, net, a


def test_optimal_spacing_positive(lib, stack):
    r, c = stack.effective_rc(4, 6)
    sp = optimal_spacing_um(lib.buffer(4), r, c)
    assert 30.0 < sp < 400.0


def test_long_net_gets_chain(lib, stack):
    nl, net, a, b = long_net(lib)
    routing = route_block(nl, stack)
    added = insert_buffers(nl, routing, lib)
    assert added >= 3
    assert nl.num_buffers == 2 + added  # a and b are INVs (repeaters)
    assert nl.validate() == []
    # the original net id survives, driven by the last chain buffer
    assert net.id in nl.nets
    assert nl.instances[net.driver.inst].master.function == "BUF"


def test_chain_shortens_sink_paths(lib, stack):
    nl, net, a, b = long_net(lib)
    routing = route_block(nl, stack)
    insert_buffers(nl, routing, lib)
    rerouted = route_block(nl, stack)
    worst = max(max((s.path_len_um for s in r.sinks), default=0)
                for r in rerouted.nets.values())
    assert worst < 2000.0


def test_short_net_untouched(lib, stack):
    nl, net, a, b = long_net(lib, length=30.0)
    routing = route_block(nl, stack)
    assert insert_buffers(nl, routing, lib) == 0
    assert nl.num_cells == 2


def test_fanout_net_gets_groups(lib, stack):
    nl, net, a = fanout_net(lib)
    routing = route_block(nl, stack)
    added = insert_buffers(nl, routing, lib,
                           BufferingConfig(cap_limit_ff=30.0,
                                           group_size=8))
    assert added >= 4
    # the original net now drives only buffers
    for s in net.sinks:
        assert nl.instances[s.inst].master.function == "BUF"
    assert nl.validate() == []


def test_fanout_groups_preserve_sink_count(lib, stack):
    nl, net, a = fanout_net(lib, n_sinks=30)
    routing = route_block(nl, stack)
    insert_buffers(nl, routing, lib,
                   BufferingConfig(cap_limit_ff=30.0, group_size=10))
    # every original sink still driven by exactly one net
    sink_nets = 0
    for n in nl.nets.values():
        for s in n.sinks:
            if not s.is_port and nl.instances[s.inst].name.startswith("s"):
                sink_nets += 1
    assert sink_nets == 30


def test_clock_nets_never_buffered(lib, stack):
    nl = Netlist("clk")
    nl.add_port("clk", INPUT)
    sinks = [PinRef(inst=nl.add_instance(
        f"f{i}", lib.master("DFF_X1"), x=i * 500.0, y=0).id, pin=1)
        for i in range(10)]
    nl.add_net("clk", PinRef(port="clk"), sinks, is_clock=True)
    routing = route_block(nl, stack)
    assert insert_buffers(nl, routing, lib) == 0


def test_max_buffers_cap(lib, stack):
    nl = Netlist("many")
    for k in range(30):
        a = nl.add_instance(f"a{k}", lib.master("INV_X2"), x=0, y=k * 20)
        b = nl.add_instance(f"b{k}", lib.master("INV_X2"), x=3000,
                            y=k * 20)
        nl.add_net(f"n{k}", PinRef(inst=a.id), [PinRef(inst=b.id, pin=0)])
    routing = route_block(nl, stack)
    added = insert_buffers(nl, routing, lib,
                           BufferingConfig(max_new_buffers_per_pass=10))
    assert added <= 10 + 8  # cap checked per net batch


def test_crossing_net_chain_stays_on_driver_die(lib, stack, process):
    nl, net, a, b = long_net(lib)
    b.die = 1
    routing = route_block(nl, stack, via=process.tsv,
                          via_sites={net.id: (1000.0, 0.0)})
    insert_buffers(nl, routing, lib)
    for inst in nl.instances.values():
        if inst.name.startswith("rep_"):
            assert inst.die == 0
