"""Property-based tests for the later-added subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import CostModel, cost_2d, cost_3d, die_yield
from repro.netlist.core import Netlist
from repro.place.grid import Rect
from repro.place.legalize import check_overlaps, legalize_cells
from repro.power.activity import _gate_output
from repro.tech.cells import CELL_HEIGHT_UM, make_28nm_library
from repro.tech.corners import CORNERS, derate_master

signal = st.tuples(st.floats(min_value=0.0, max_value=1.0),
                   st.floats(min_value=0.0, max_value=1.0))


class TestActivityProperties:
    @given(st.sampled_from(["INV", "BUF", "NAND2", "AND2", "NOR2", "OR2",
                            "XOR2", "AOI21", "MUX2"]),
           st.lists(signal, min_size=1, max_size=3))
    def test_outputs_always_bounded(self, function, ins):
        prob, act = _gate_output(function, ins)
        assert 0.0 <= prob <= 1.0
        assert 0.0 <= act <= 1.0

    @given(st.lists(signal, min_size=2, max_size=2))
    def test_demorgan_probability(self, ins):
        # NAND(a,b) == NOT(AND(a,b)) must hold probabilistically
        p_and, a_and = _gate_output("AND2", ins)
        p_nand, a_nand = _gate_output("NAND2", ins)
        assert p_nand == pytest.approx(1.0 - p_and, abs=1e-9)
        assert a_nand == pytest.approx(a_and, abs=1e-9)

    @given(signal)
    def test_double_inversion_identity(self, sig):
        once = _gate_output("INV", [sig])
        twice = _gate_output("INV", [once])
        assert twice[0] == pytest.approx(sig[0], abs=1e-9)
        assert twice[1] == pytest.approx(sig[1], abs=1e-9)


class TestCostProperties:
    areas = st.floats(min_value=5.0, max_value=400.0)

    @given(areas, areas)
    def test_yield_monotone_in_area(self, a, b):
        model = CostModel()
        lo, hi = sorted((a, b))
        assert die_yield(lo, model) >= die_yield(hi, model) - 1e-12

    @given(areas)
    def test_yields_are_probabilities(self, a):
        model = CostModel()
        assert 0.0 < die_yield(a, model) <= 1.0

    @given(areas, st.floats(min_value=0.01, max_value=3.0))
    def test_costs_positive(self, area, d0):
        model = CostModel(defect_density=d0)
        assert cost_2d(area, model).cost_per_good_die > 0
        assert cost_3d(area, model, strategy="w2w").cost_per_good_die > 0
        assert cost_3d(area, model, strategy="d2d").cost_per_good_die > 0


class TestCornerProperties:
    @given(st.sampled_from(["ss", "tt", "ff"]),
           st.sampled_from(["INV_X1", "NAND2_X4", "DFF_X2",
                            "MUX2_X8_HVT"]))
    def test_derating_preserves_identity_fields(self, corner, name):
        lib = make_28nm_library()
        m = lib.master(name)
        d = derate_master(m, CORNERS[corner])
        assert d.name == m.name
        assert d.function == m.function
        assert d.drive == m.drive
        assert d.area_um2 == m.area_um2
        assert d.input_cap_ff == m.input_cap_ff


class TestLegalizerProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=300.0)),
        min_size=1, max_size=80),
        st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_placed_cells_never_overlap(self, positions, seed):
        lib = make_28nm_library()
        nl = Netlist("prop")
        outline = Rect(0, 0, 520, 30 * CELL_HEIGHT_UM)
        cells = []
        for k, (x, y) in enumerate(positions):
            cells.append(nl.add_instance(f"c{k}", lib.master("INV_X2"),
                                         x=x, y=y))
        res = legalize_cells(cells, outline)
        placed = [c for c in cells]
        if res.failed == 0:
            assert check_overlaps(placed) == 0
        for c in placed:
            assert outline.x0 - 1e-6 <= c.x <= outline.x1 + 1e-6


class TestEngineFaultProperties:
    """Resilience properties of the experiment engine under injected
    faults: recoverable faults must recover byte-identically, and
    unrecoverable faults must degrade only the ids they target."""

    IDS = ["table1", "table4"]
    SCALE = 0.4

    @pytest.fixture(autouse=True)
    def _clean_fault_state(self):
        from repro import faults
        faults.reset()
        yield
        faults.reset()

    @pytest.fixture(scope="class")
    def chaos_baseline(self):
        from repro.parallel.engine import run_experiments
        return run_experiments(ids=self.IDS, scale=self.SCALE)

    @given(seed=st.integers(min_value=0, max_value=10**6),
           kind=st.sampled_from(["raise", "slow", "crash"]),
           target=st.sampled_from(["table1", "table4"]))
    @settings(max_examples=6, deadline=None)
    def test_recoverable_faults_recover_byte_identically(
            self, chaos_baseline, seed, kind, target):
        from repro.faults import FaultPlan
        from repro.parallel.engine import run_experiments
        plan = FaultPlan.parse(
            f"{kind} task={target} stage=task attempt=1", seed=seed)
        report = run_experiments(ids=self.IDS, scale=self.SCALE,
                                 retries=1, fault_plan=plan)
        assert report.completed()
        by_id = {r.experiment_id: r for r in report.runs}
        # slow merely delays the attempt; raise/crash cost one retry
        assert by_id[target].attempts == (1 if kind == "slow" else 2)
        assert report.results_json() == chaos_baseline.results_json()

    @given(seed=st.integers(min_value=0, max_value=10**6),
           target=st.sampled_from(["table1", "table4"]))
    @settings(max_examples=4, deadline=None)
    def test_unrecoverable_faults_only_degrade_their_target(
            self, chaos_baseline, seed, target):
        from repro.faults import FaultPlan
        from repro.parallel.engine import run_experiments
        plan = FaultPlan.parse(
            f"raise task={target} stage=task attempt=0", seed=seed)
        report = run_experiments(ids=self.IDS, scale=self.SCALE,
                                 retries=1, fault_plan=plan)
        assert not report.completed()
        assert {r.experiment_id
                for r in report.failed_runs()} == {target}
        want = {k: v for k, v in chaos_baseline.results_dict().items()
                if k != target}
        assert report.results_dict() == want

    @given(seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=25, deadline=None)
    def test_seeded_plans_replay_and_round_trip(self, seed):
        from repro.faults import FaultPlan
        plan = FaultPlan.seeded(seed, tasks=["a", "b"])
        assert plan == FaultPlan.seeded(seed, tasks=["a", "b"])
        assert FaultPlan.parse(plan.to_text(), seed=seed) == plan
        first = plan.specs[0]
        assert (first.kind, first.stage, first.attempt) == \
            ("raise", "task", 1)


class TestPlaceKernelProperties:
    """Vectorized placement kernels agree with their scalar references."""

    coords = st.floats(min_value=-1e4, max_value=1e4,
                       allow_nan=False, allow_infinity=False)

    @given(st.lists(st.tuples(coords, coords,
                              st.integers(min_value=2, max_value=40)),
                    min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_b2b_weights_match_scalar(self, triples):
        from repro.place.quadratic import QuadraticPlacer, b2b_weights
        pa = np.array([t[0] for t in triples])
        pb = np.array([t[1] for t in triples])
        deg = np.array([t[2] for t in triples], dtype=np.int64)
        vec = b2b_weights(pa, pb, deg)
        for k, (a, b, d) in enumerate(triples):
            assert vec[k] == QuadraticPlacer._b2b_weight(a, b, d)

    @given(seed=st.integers(min_value=0, max_value=10**6),
           n=st.integers(min_value=1, max_value=120),
           with_hole=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_spread_conserves_cells_inside_outline(self, seed, n,
                                                   with_hole):
        from repro.place.grid import DensityGrid
        from repro.place.spreading import spread
        grid = DensityGrid(Rect(0, 0, 80, 80), target_bins=64,
                           utilization=1.0)
        if with_hole:
            grid.add_obstruction(Rect(30, 30, 50, 50))
        rng = np.random.default_rng(seed)
        xs = rng.uniform(0, 80, n)
        ys = rng.uniform(0, 80, n)
        areas = rng.uniform(1.0, 5.0, n)
        total = areas.sum()
        sx, sy = spread(grid, xs, ys, areas, rng)
        # every cell is still accounted for, inside the outline
        assert len(sx) == len(sy) == n
        assert areas.sum() == total
        assert (sx >= 0).all() and (sx <= 80).all()
        assert (sy >= 0).all() and (sy <= 80).all()

    @given(seed=st.integers(min_value=0, max_value=10**6),
           n=st.integers(min_value=1, max_value=150),
           with_hole=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_legalize_random_mixes_overlap_free(self, seed, n,
                                                with_hole):
        from repro.netlist.core import Netlist
        lib = make_28nm_library()
        outline = Rect(0, 0, 300, 30 * CELL_HEIGHT_UM)
        obstructions = ([Rect(80, 0, 140, 30 * CELL_HEIGHT_UM)]
                        if with_hole else [])
        rng = np.random.default_rng(seed)
        nl = Netlist("prop")
        masters = ["INV_X1", "INV_X2", "BUF_X4", "NAND2_X2", "DFF_X1"]
        cells = [nl.add_instance(
            f"c{i}", lib.master(str(rng.choice(masters))),
            x=float(rng.uniform(0, 300)),
            y=float(rng.uniform(0, 30 * CELL_HEIGHT_UM)))
            for i in range(n)]
        res = legalize_cells(cells, outline, obstructions)
        assert res.failed == 0
        assert check_overlaps(cells) == 0
        for c in cells:
            for o in obstructions:
                assert not (o.x0 < c.x < o.x1 - c.width_um)

    @given(seed=st.integers(min_value=0, max_value=10**6),
           n=st.integers(min_value=2, max_value=80),
           x_is_center=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_overlapping_pairs_matches_brute_force(self, seed, n,
                                                   x_is_center):
        from repro.place.grid import GEOM_TOL_UM
        from repro.place.legalize import overlapping_pairs
        lib = make_28nm_library()
        rng = np.random.default_rng(seed)
        nl = Netlist("pairs")
        cells = [nl.add_instance(
            f"c{i}", lib.master(str(rng.choice(
                ["INV_X1", "BUF_X4", "NAND2_X2"]))),
            x=float(rng.uniform(0, 40)),
            y=float(rng.choice([0.6, 1.8, 3.0])))
            for i in range(n)]

        def span(c):
            if x_is_center:
                return c.x - c.width_um / 2, c.x + c.width_um / 2
            return c.x, c.x + c.width_um

        brute = set()
        for i, a in enumerate(cells):
            for b in cells[i + 1:]:
                if round(a.y, 3) != round(b.y, 3):
                    continue
                a0, a1 = span(a)
                b0, b1 = span(b)
                if min(a1, b1) - max(a0, b0) > GEOM_TOL_UM:
                    brute.add(tuple(sorted((a.id, b.id))))
        swept = {tuple(sorted((a.id, b.id)))
                 for a, b in overlapping_pairs(cells,
                                               x_is_center=x_is_center)}
        assert swept == brute
