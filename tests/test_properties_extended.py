"""Property-based tests for the later-added subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import CostModel, cost_2d, cost_3d, die_yield
from repro.netlist.core import Netlist
from repro.place.grid import Rect
from repro.place.legalize import check_overlaps, legalize_cells
from repro.power.activity import _gate_output
from repro.tech.cells import CELL_HEIGHT_UM, make_28nm_library
from repro.tech.corners import CORNERS, derate_master

signal = st.tuples(st.floats(min_value=0.0, max_value=1.0),
                   st.floats(min_value=0.0, max_value=1.0))


class TestActivityProperties:
    @given(st.sampled_from(["INV", "BUF", "NAND2", "AND2", "NOR2", "OR2",
                            "XOR2", "AOI21", "MUX2"]),
           st.lists(signal, min_size=1, max_size=3))
    def test_outputs_always_bounded(self, function, ins):
        prob, act = _gate_output(function, ins)
        assert 0.0 <= prob <= 1.0
        assert 0.0 <= act <= 1.0

    @given(st.lists(signal, min_size=2, max_size=2))
    def test_demorgan_probability(self, ins):
        # NAND(a,b) == NOT(AND(a,b)) must hold probabilistically
        p_and, a_and = _gate_output("AND2", ins)
        p_nand, a_nand = _gate_output("NAND2", ins)
        assert p_nand == pytest.approx(1.0 - p_and, abs=1e-9)
        assert a_nand == pytest.approx(a_and, abs=1e-9)

    @given(signal)
    def test_double_inversion_identity(self, sig):
        once = _gate_output("INV", [sig])
        twice = _gate_output("INV", [once])
        assert twice[0] == pytest.approx(sig[0], abs=1e-9)
        assert twice[1] == pytest.approx(sig[1], abs=1e-9)


class TestCostProperties:
    areas = st.floats(min_value=5.0, max_value=400.0)

    @given(areas, areas)
    def test_yield_monotone_in_area(self, a, b):
        model = CostModel()
        lo, hi = sorted((a, b))
        assert die_yield(lo, model) >= die_yield(hi, model) - 1e-12

    @given(areas)
    def test_yields_are_probabilities(self, a):
        model = CostModel()
        assert 0.0 < die_yield(a, model) <= 1.0

    @given(areas, st.floats(min_value=0.01, max_value=3.0))
    def test_costs_positive(self, area, d0):
        model = CostModel(defect_density=d0)
        assert cost_2d(area, model).cost_per_good_die > 0
        assert cost_3d(area, model, strategy="w2w").cost_per_good_die > 0
        assert cost_3d(area, model, strategy="d2d").cost_per_good_die > 0


class TestCornerProperties:
    @given(st.sampled_from(["ss", "tt", "ff"]),
           st.sampled_from(["INV_X1", "NAND2_X4", "DFF_X2",
                            "MUX2_X8_HVT"]))
    def test_derating_preserves_identity_fields(self, corner, name):
        lib = make_28nm_library()
        m = lib.master(name)
        d = derate_master(m, CORNERS[corner])
        assert d.name == m.name
        assert d.function == m.function
        assert d.drive == m.drive
        assert d.area_um2 == m.area_um2
        assert d.input_cap_ff == m.input_cap_ff


class TestLegalizerProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=300.0)),
        min_size=1, max_size=80),
        st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_placed_cells_never_overlap(self, positions, seed):
        lib = make_28nm_library()
        nl = Netlist("prop")
        outline = Rect(0, 0, 520, 30 * CELL_HEIGHT_UM)
        cells = []
        for k, (x, y) in enumerate(positions):
            cells.append(nl.add_instance(f"c{k}", lib.master("INV_X2"),
                                         x=x, y=y))
        res = legalize_cells(cells, outline)
        placed = [c for c in cells]
        if res.failed == 0:
            assert check_overlaps(placed) == 0
        for c in placed:
            assert outline.x0 - 1e-6 <= c.x <= outline.x1 + 1e-6


class TestEngineFaultProperties:
    """Resilience properties of the experiment engine under injected
    faults: recoverable faults must recover byte-identically, and
    unrecoverable faults must degrade only the ids they target."""

    IDS = ["table1", "table4"]
    SCALE = 0.4

    @pytest.fixture(autouse=True)
    def _clean_fault_state(self):
        from repro import faults
        faults.reset()
        yield
        faults.reset()

    @pytest.fixture(scope="class")
    def chaos_baseline(self):
        from repro.parallel.engine import run_experiments
        return run_experiments(ids=self.IDS, scale=self.SCALE)

    @given(seed=st.integers(min_value=0, max_value=10**6),
           kind=st.sampled_from(["raise", "slow", "crash"]),
           target=st.sampled_from(["table1", "table4"]))
    @settings(max_examples=6, deadline=None)
    def test_recoverable_faults_recover_byte_identically(
            self, chaos_baseline, seed, kind, target):
        from repro.faults import FaultPlan
        from repro.parallel.engine import run_experiments
        plan = FaultPlan.parse(
            f"{kind} task={target} stage=task attempt=1", seed=seed)
        report = run_experiments(ids=self.IDS, scale=self.SCALE,
                                 retries=1, fault_plan=plan)
        assert report.completed()
        by_id = {r.experiment_id: r for r in report.runs}
        # slow merely delays the attempt; raise/crash cost one retry
        assert by_id[target].attempts == (1 if kind == "slow" else 2)
        assert report.results_json() == chaos_baseline.results_json()

    @given(seed=st.integers(min_value=0, max_value=10**6),
           target=st.sampled_from(["table1", "table4"]))
    @settings(max_examples=4, deadline=None)
    def test_unrecoverable_faults_only_degrade_their_target(
            self, chaos_baseline, seed, target):
        from repro.faults import FaultPlan
        from repro.parallel.engine import run_experiments
        plan = FaultPlan.parse(
            f"raise task={target} stage=task attempt=0", seed=seed)
        report = run_experiments(ids=self.IDS, scale=self.SCALE,
                                 retries=1, fault_plan=plan)
        assert not report.completed()
        assert {r.experiment_id
                for r in report.failed_runs()} == {target}
        want = {k: v for k, v in chaos_baseline.results_dict().items()
                if k != target}
        assert report.results_dict() == want

    @given(seed=st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=25, deadline=None)
    def test_seeded_plans_replay_and_round_trip(self, seed):
        from repro.faults import FaultPlan
        plan = FaultPlan.seeded(seed, tasks=["a", "b"])
        assert plan == FaultPlan.seeded(seed, tasks=["a", "b"])
        assert FaultPlan.parse(plan.to_text(), seed=seed) == plan
        first = plan.specs[0]
        assert (first.kind, first.stage, first.attempt) == \
            ("raise", "task", 1)
