"""Tests for the power analysis, including hand-computed checks."""

import pytest

from repro.cts.tree import CTSResult
from repro.netlist.core import INPUT, Netlist, PinRef
from repro.power.analysis import MACRO_ACTIVITY, PowerReport, analyze_power
from repro.route.estimate import route_block
from repro.tech.cells import make_28nm_library
from repro.tech.process import CPU_CLOCK, IO_CLOCK, make_process


@pytest.fixture(scope="module")
def proc():
    return make_process()


@pytest.fixture(scope="module")
def lib(proc):
    return proc.library


def pair_netlist(lib, dx=100.0):
    nl = Netlist("p")
    a = nl.add_instance("a", lib.master("INV_X2"), x=0, y=0)
    b = nl.add_instance("b", lib.master("INV_X2"), x=dx, y=0)
    nl.add_net("n", PinRef(inst=a.id), [PinRef(inst=b.id, pin=0)])
    return nl, a, b


def test_net_power_hand_check(proc, lib):
    nl, a, b = pair_netlist(lib, dx=100.0)
    routing = route_block(nl, proc.metal_stack)
    report = analyze_power(nl, routing, proc, CPU_CLOCK, activity=0.2)
    routed = next(iter(routing.nets.values()))
    f = proc.clock_freq_ghz[CPU_CLOCK]
    v2 = proc.vdd ** 2
    expected_wire = 0.2 * routed.wire_cap_ff * v2 * f
    expected_pin = 0.2 * b.master.input_cap_ff * v2 * f
    assert report.wire_uw == pytest.approx(expected_wire)
    assert report.pin_uw == pytest.approx(expected_pin)
    assert report.net_uw == pytest.approx(expected_wire + expected_pin)


def test_cell_power_hand_check(proc, lib):
    nl, a, b = pair_netlist(lib)
    routing = route_block(nl, proc.metal_stack)
    report = analyze_power(nl, routing, proc, CPU_CLOCK, activity=0.2)
    f = proc.clock_freq_ghz[CPU_CLOCK]
    expected = 2 * 0.2 * a.master.internal_energy_fj * f
    assert report.cell_uw == pytest.approx(expected)
    assert report.leakage_uw == pytest.approx(2 * a.master.leakage_uw)


def test_flops_switch_at_full_activity(proc, lib):
    nl = Netlist("f")
    f0 = nl.add_instance("f0", lib.master("DFF_X1"))
    c = nl.add_instance("c", lib.master("INV_X2"))
    nl.add_net("q", PinRef(inst=f0.id), [PinRef(inst=c.id, pin=0)])
    routing = route_block(nl, proc.metal_stack)
    r = analyze_power(nl, routing, proc, CPU_CLOCK, activity=0.1)
    f = proc.clock_freq_ghz[CPU_CLOCK]
    expected = (1.0 * f0.master.internal_energy_fj +
                0.1 * c.master.internal_energy_fj) * f
    assert r.cell_uw == pytest.approx(expected)


def test_macro_power_terms(proc, lib):
    from repro.tech.macros import sram_macro
    nl = Netlist("m")
    ram = sram_macro(4)
    m = nl.add_instance("ram", ram)
    c = nl.add_instance("c", lib.master("INV_X2"))
    nl.add_net("q", PinRef(inst=m.id, pin=0), [PinRef(inst=c.id, pin=0)])
    routing = route_block(nl, proc.metal_stack)
    r = analyze_power(nl, routing, proc, CPU_CLOCK)
    f = proc.clock_freq_ghz[CPU_CLOCK]
    assert r.macro_uw == pytest.approx(
        MACRO_ACTIVITY * ram.access_energy_fj * f + ram.leakage_uw)
    assert r.leakage_uw >= ram.leakage_uw


def test_io_clock_halves_dynamic_power(proc, lib):
    nl1, *_ = pair_netlist(lib)
    routing1 = route_block(nl1, proc.metal_stack)
    cpu = analyze_power(nl1, routing1, proc, CPU_CLOCK)
    io = analyze_power(nl1, routing1, proc, IO_CLOCK)
    assert io.net_uw == pytest.approx(cpu.net_uw / 2)
    assert io.cell_uw == pytest.approx(cpu.cell_uw / 2)
    assert io.leakage_uw == pytest.approx(cpu.leakage_uw)


def test_per_net_activity_override(proc, lib):
    nl, a, b = pair_netlist(lib)
    net = nl.output_net_of(a.id)
    net.activity = 0.5
    routing = route_block(nl, proc.metal_stack)
    low = analyze_power(nl, routing, proc, CPU_CLOCK, activity=0.1)
    net.activity = None
    base = analyze_power(nl, routing, proc, CPU_CLOCK, activity=0.1)
    assert low.net_uw == pytest.approx(5 * base.net_uw)


def test_clock_tree_power_added(proc, lib):
    nl, a, b = pair_netlist(lib)
    routing = route_block(nl, proc.metal_stack)
    cts = CTSResult(n_buffers=10, wirelength_um=1000.0,
                    sink_pin_cap_ff=50.0,
                    buffer_master=lib.buffer(8), n_sinks=60, levels=3)
    with_cts = analyze_power(nl, routing, proc, CPU_CLOCK, cts=cts)
    without = analyze_power(nl, routing, proc, CPU_CLOCK)
    assert with_cts.total_uw > without.total_uw
    assert with_cts.clock_uw > 0
    f = proc.clock_freq_ghz[CPU_CLOCK]
    v2 = proc.vdd ** 2
    expected_clock_net = (cts.wire_cap_ff + 50.0) * v2 * f
    assert with_cts.net_uw - without.net_uw == pytest.approx(
        expected_clock_net)


def test_report_algebra():
    a = PowerReport(cell_uw=10, net_uw=20, leakage_uw=5)
    b = PowerReport(cell_uw=1, net_uw=2, leakage_uw=3)
    s = a.plus(b)
    assert s.total_uw == pytest.approx(41)
    k = a.scaled(3)
    assert k.cell_uw == 30 and k.total_uw == pytest.approx(105)
    assert a.net_fraction == pytest.approx(20 / 35)
    assert PowerReport().net_fraction == 0.0
