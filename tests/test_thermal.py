"""Tests for the compact thermal model (paper future-work extension)."""

import numpy as np
import pytest

from repro.place.grid import Rect
from repro.thermal import ThermalConfig, analyze_chip_thermal, solve_stack


@pytest.fixture()
def outline():
    return Rect(0, 0, 3200, 3200)


def uniform_map(n, total_uw):
    return np.full((n, n), total_uw / (n * n))


class TestSolveStack:
    def test_zero_power_is_ambient(self, outline):
        cfg = ThermalConfig()
        r = solve_stack(outline, {0: np.zeros((cfg.tiles, cfg.tiles))},
                        config=cfg)
        assert r.max_c == pytest.approx(cfg.ambient_c, abs=1e-6)

    def test_temperature_rises_with_power(self, outline):
        cfg = ThermalConfig()
        lo = solve_stack(outline, {0: uniform_map(cfg.tiles, 5e5)},
                         config=cfg)
        hi = solve_stack(outline, {0: uniform_map(cfg.tiles, 1e6)},
                         config=cfg)
        assert hi.max_c > lo.max_c > cfg.ambient_c

    def test_linearity_in_power(self, outline):
        cfg = ThermalConfig()
        a = solve_stack(outline, {0: uniform_map(cfg.tiles, 5e5)},
                        config=cfg)
        b = solve_stack(outline, {0: uniform_map(cfg.tiles, 1e6)},
                        config=cfg)
        rise_a = a.avg_c - cfg.ambient_c
        rise_b = b.avg_c - cfg.ambient_c
        assert rise_b == pytest.approx(2 * rise_a, rel=1e-6)

    def test_hotspot_hotter_than_uniform(self, outline):
        cfg = ThermalConfig()
        n = cfg.tiles
        uniform = solve_stack(outline, {0: uniform_map(n, 1e6)},
                              config=cfg)
        spot = np.zeros((n, n))
        spot[n // 2, n // 2] = 1e6
        focused = solve_stack(outline, {0: spot}, config=cfg)
        assert focused.max_c > uniform.max_c

    def test_far_tier_runs_hotter(self, outline):
        cfg = ThermalConfig()
        n = cfg.tiles
        maps = {0: uniform_map(n, 5e5), 1: uniform_map(n, 5e5)}
        r = solve_stack(outline, maps, config=cfg)
        assert r.tier_max(1) > r.tier_max(0)

    def test_stacking_same_power_is_hotter(self):
        cfg = ThermalConfig()
        n = cfg.tiles
        flat = solve_stack(Rect(0, 0, 3200, 3200),
                           {0: uniform_map(n, 1e6)}, config=cfg)
        half = Rect(0, 0, 3200 / 2 ** 0.5, 3200 / 2 ** 0.5)
        stacked = solve_stack(half, {0: uniform_map(n, 5e5),
                                     1: uniform_map(n, 5e5)}, config=cfg)
        assert stacked.max_c > flat.max_c

    def test_via_farm_cools_far_tier(self, outline):
        cfg = ThermalConfig()
        n = cfg.tiles
        maps = {0: uniform_map(n, 5e5), 1: uniform_map(n, 5e5)}
        bare = solve_stack(outline, maps, via_area_um2=0.0, config=cfg)
        farm = solve_stack(outline, maps, via_area_um2=5e5, config=cfg)
        assert farm.tier_max(1) < bare.tier_max(1)

    def test_rejects_three_tiers(self, outline):
        n = ThermalConfig().tiles
        with pytest.raises(ValueError):
            solve_stack(outline, {0: uniform_map(n, 1),
                                  1: uniform_map(n, 1),
                                  2: uniform_map(n, 1)})

    def test_rejects_bad_shape(self, outline):
        with pytest.raises(ValueError):
            solve_stack(outline, {0: np.zeros((3, 3))},
                        config=ThermalConfig(tiles=16))


class TestChipThermal:
    @pytest.fixture(scope="class")
    def chips(self, process):
        from repro.core.fullchip import ChipConfig, build_chip
        return {
            style: build_chip(ChipConfig(style=style, scale=0.4), process)
            for style in ("2d", "core_cache")
        }

    def test_2d_single_tier(self, chips):
        r = analyze_chip_thermal(chips["2d"])
        assert list(r.temperature_c) == [0]
        assert r.max_c > ThermalConfig().ambient_c

    def test_3d_runs_hotter_than_2d(self, chips):
        r2 = analyze_chip_thermal(chips["2d"])
        r3 = analyze_chip_thermal(chips["core_cache"])
        assert len(r3.temperature_c) == 2
        assert r3.max_c > r2.max_c

    def test_power_conservation_in_maps(self, chips):
        from repro.thermal import chip_power_maps
        chip = chips["core_cache"]
        _, maps, _ = chip_power_maps(chip)
        total = sum(m.sum() for m in maps.values())
        assert total == pytest.approx(chip.power.total_uw, rel=0.02)
