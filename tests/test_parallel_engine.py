"""Tests for the process-pool experiment engine."""

import json

import pytest

from repro.analysis.experiments import EXPERIMENTS
from repro.core.explore import explore_design_space
from repro.parallel.engine import (explore_points, run_experiments,
                                   run_serial_experiment, run_sweep)
from repro.service.schema import PointSpec, SweepRequest


def test_unknown_id_raises():
    with pytest.raises(ValueError, match="unknown experiment ids"):
        run_experiments(ids=["table1", "nope"], scale=0.5)


def test_duplicate_ids_rejected():
    """The same id twice in one batch is an error, never a silent
    overwrite of the id-keyed report."""
    with pytest.raises(ValueError, match="duplicate"):
        run_experiments(ids=["table1", "table1"], scale=0.5)


def test_run_sweep_rejects_repeated_id_even_across_seeds():
    req = SweepRequest(points=(PointSpec("table1", 0.5, 1),
                               PointSpec("table1", 0.5, 2)))
    with pytest.raises(ValueError, match="duplicate experiment ids"):
        run_sweep(req)


def test_run_sweep_accepts_a_custom_request(process):
    req = SweepRequest(points=(PointSpec("table1", 0.5, 1),))
    report = run_sweep(req, process=process)
    assert [r.experiment_id for r in report.runs] == ["table1"]
    assert report.scale == 0.5


def test_run_serial_experiment_single_point(process):
    run = run_serial_experiment(PointSpec("table1", 0.5, 1),
                                process=process)
    assert run.status == "ok"
    assert run.experiment_id == "table1"
    assert run.result["experiment_id"] == "table1"
    assert run.attempts == 1


def test_default_ids_cover_registry():
    """Requesting nothing means the whole registry, in registry order."""
    tasks = list(EXPERIMENTS)
    assert len(tasks) >= 11
    with pytest.raises(ValueError):
        run_experiments(ids=["definitely-not-registered"])
    # cheap smoke on one real id instead of the full registry
    report = run_experiments(ids=["table1"], scale=0.5)
    assert [r.experiment_id for r in report.runs] == ["table1"]


def test_serial_report_shape(process):
    report = run_experiments(ids=["table1", "table4"], scale=0.5,
                             process=process)
    assert [r.experiment_id for r in report.runs] == \
        ["table1", "table4"]
    assert report.parallel == 1
    assert report.scale == 0.5
    assert report.seed == 1
    assert all(r.wall_s >= 0 for r in report.runs)
    assert report.total_wall_s >= max(r.wall_s for r in report.runs)
    assert report.cache_stats is not None
    assert "hit_rate" in report.cache_stats
    # table4's shape check fails at half scale: propagation matters
    assert report.all_passed == all(r.all_passed for r in report.runs)
    summary = report.summary()
    assert "table1" in summary and "serial" in summary


def test_results_json_is_key_sorted_and_parseable(process):
    report = run_experiments(ids=["table1"], scale=0.5, process=process)
    payload = json.loads(report.results_json())
    assert set(payload) == {"table1"}
    assert set(payload["table1"]) >= {"experiment_id", "description",
                                      "all_passed", "checks"}
    # key-sorted serialization: re-dumping sorted is a fixed point
    assert report.results_json() == json.dumps(payload, sort_keys=True,
                                               indent=2)


def test_timing_json_round_trips(process):
    report = run_experiments(ids=["table1"], scale=0.5, process=process)
    timing = json.loads(report.timing_json())
    assert timing["parallel"] == 1
    assert timing["scale"] == 0.5
    assert set(timing["experiments"]) == {"table1"}
    assert timing["total_wall_s"] >= 0
    assert "cache" in timing


@pytest.mark.slow
def test_parallel_pool_matches_serial_and_reports_workers(process,
                                                          tmp_path):
    ids = ["table1", "table4"]
    serial = run_experiments(ids=ids, scale=0.5, process=process)
    par = run_experiments(ids=ids, scale=0.5, parallel=2,
                          cache_dir=tmp_path)
    assert par.parallel == 2
    assert [r.experiment_id for r in par.runs] == ids
    assert par.results_json() == serial.results_json()
    # per-worker cache stats aggregate back to the parent: hit rates
    # are real numbers under --parallel N, not None
    assert par.cache_stats is not None
    assert par.cache_stats["hit_rate"] >= 0.0
    assert len(par.worker_cache_stats) == len(ids)
    assert par.cache_stats["misses"] == \
        sum(d["misses"] for d in par.worker_cache_stats)
    lookups = (par.cache_stats["hits"] + par.cache_stats["disk_hits"]
               + par.cache_stats["misses"])
    assert lookups == (serial.cache_stats["hits"]
                       + serial.cache_stats["disk_hits"]
                       + serial.cache_stats["misses"])
    assert "2 workers" in par.summary()
    # worker spans merged into one timeline, keyed by worker pid
    workers = {d["worker"] for d in par.spans}
    assert len(workers) >= 2  # parent (bench span) + >=1 pool worker
    assert {d["name"] for d in par.spans} >= {"bench", "experiment"}


@pytest.mark.slow
def test_explore_parallel_matches_serial(process, tmp_path):
    grid = [("2d", False), ("fold_f2f", True)]
    serial = explore_design_space(process, grid=grid, scale=0.4)
    par = explore_design_space(process, grid=grid, scale=0.4,
                               parallel=2, cache_dir=tmp_path)
    assert par.points == serial.points
    assert par.pareto == serial.pareto


@pytest.mark.slow
def test_explore_duplicate_grid_points_coalesce(tmp_path):
    """A repeated (style, dual_vth) entry is computed once and fills
    every matching slot -- not recomputed, not overwritten."""
    grid = [("2d", False), ("2d", False)]
    points = explore_points(grid, scale=0.35, parallel=2,
                            cache_dir=tmp_path)
    assert len(points) == 2
    assert points[0] is points[1]  # one execution, replicated
