"""Tests for the sequence-pair annealer and the T2 reference layouts."""

import pytest

from repro.floorplan.seqpair import (AnnealConfig, FPBlock,
                                     anneal_floorplan, pack)
from repro.floorplan.t2_floorplans import (BOTH_DIES, FOLDED_TYPES, STYLES,
                                           t2_floorplan)
from repro.designgen.t2 import t2_instances


def no_overlaps(positions):
    items = list(positions.items())
    for i, (na, (ax, ay, aw, ah)) in enumerate(items):
        for nb, (bx, by, bw, bh) in items[i + 1:]:
            if not (ax + aw <= bx + 1e-9 or bx + bw <= ax + 1e-9 or
                    ay + ah <= by + 1e-9 or by + bh <= ay + 1e-9):
                return False, (na, nb)
    return True, None


class TestSequencePair:
    def blocks(self, n=6):
        return [FPBlock(f"b{i}", 10.0 + i, 8.0 + (i % 3) * 4)
                for i in range(n)]

    def test_identity_pack_is_a_row(self):
        blocks = self.blocks(3)
        res = pack(blocks, [0, 1, 2], [0, 1, 2])
        assert res.width == pytest.approx(sum(b.width for b in blocks))
        assert res.height == pytest.approx(max(b.height for b in blocks))

    def test_reversed_p1_stacks_vertically(self):
        blocks = self.blocks(3)
        res = pack(blocks, [2, 1, 0], [0, 1, 2])
        assert res.height == pytest.approx(sum(b.height for b in blocks))

    def test_pack_never_overlaps(self):
        import numpy as np
        rng = np.random.default_rng(0)
        blocks = self.blocks(8)
        for _ in range(20):
            p1 = list(rng.permutation(8))
            p2 = list(rng.permutation(8))
            res = pack(blocks, p1, p2)
            ok, pair = no_overlaps(res.positions)
            assert ok, pair

    def test_anneal_beats_row_pack(self):
        blocks = self.blocks(10)
        row = pack(blocks, list(range(10)), list(range(10)))
        annealed = anneal_floorplan(
            blocks, config=AnnealConfig(iterations=1500, seed=1))
        assert annealed.area < row.area
        ok, _ = no_overlaps(annealed.positions)
        assert ok

    def test_anneal_with_bundles_pulls_blocks_together(self):
        blocks = self.blocks(8)
        bundles = [("b0", "b7", 50)]
        res = anneal_floorplan(blocks, bundles,
                               AnnealConfig(iterations=2500, seed=2,
                                            wl_weight=3.0))
        x0, y0 = res.center_of("b0")
        x7, y7 = res.center_of("b7")
        d = abs(x0 - x7) + abs(y0 - y7)
        assert d < (res.width + res.height) / 2

    def test_empty_floorplan(self):
        assert anneal_floorplan([]).area == 0.0


class TestT2Floorplans:
    @pytest.fixture(scope="class")
    def dims(self):
        return {name: (300.0, 300.0) for name, _ in t2_instances()}

    @pytest.mark.parametrize("style", STYLES)
    def test_all_instances_placed(self, style, dims):
        fp = t2_floorplan(style, dims)
        assert set(fp.positions) == {n for n, _ in t2_instances()}
        assert fp.width > 0 and fp.height > 0

    @pytest.mark.parametrize("style", STYLES)
    def test_blocks_inside_chip(self, style, dims):
        fp = t2_floorplan(style, dims)
        for r in fp.positions.values():
            assert r.x0 >= -1e-9 and r.y0 >= -1e-9
            assert r.x1 <= fp.width + 1e-9
            assert r.y1 <= fp.height + 1e-9

    def test_2d_single_die_no_overlap(self, dims):
        fp = t2_floorplan("2d", dims)
        assert fp.n_dies == 1
        assert set(fp.die_of.values()) == {0}
        rects = {n: (r.x0, r.y0, r.width, r.height)
                 for n, r in fp.positions.items()}
        ok, pair = no_overlaps(rects)
        assert ok, pair

    @pytest.mark.parametrize("style", ["core_cache", "core_core"])
    def test_stacked_styles_no_overlap_per_die(self, style, dims):
        fp = t2_floorplan(style, dims)
        assert fp.n_dies == 2
        for die in (0, 1):
            rects = {n: (r.x0, r.y0, r.width, r.height)
                     for n, r in fp.positions.items()
                     if fp.die_of[n] == die}
            ok, pair = no_overlaps(rects)
            assert ok, (die, pair)

    def test_core_cache_separates_cores_and_caches(self, dims):
        fp = t2_floorplan("core_cache", dims)
        spc_dies = {fp.die_of[f"spc{i}"] for i in range(8)}
        l2_dies = {fp.die_of[f"l2d{i}"] for i in range(8)} | \
            {fp.die_of[f"l2t{i}"] for i in range(8)}
        assert spc_dies == {0}
        assert l2_dies == {1}

    def test_core_core_splits_cores(self, dims):
        fp = t2_floorplan("core_core", dims)
        dies = [fp.die_of[f"spc{i}"] for i in range(8)]
        assert dies.count(0) == 4 and dies.count(1) == 4

    @pytest.mark.parametrize("style", ["fold_f2b", "fold_f2f"])
    def test_folded_blocks_on_both_dies(self, style, dims):
        fp = t2_floorplan(style, dims)
        for name, die in fp.die_of.items():
            base = name.rstrip("0123456789")
            if base in FOLDED_TYPES:
                assert die == BOTH_DIES, name
            else:
                assert die in (0, 1), name

    def test_crosses_dies(self, dims):
        fp = t2_floorplan("core_cache", dims)
        assert fp.crosses_dies("spc0", "l2d0")
        assert not fp.crosses_dies("spc0", "spc1")
        fp2 = t2_floorplan("fold_f2b", dims)
        # folded blocks expose pins on both tiers -> no forced crossing
        assert not fp2.crosses_dies("spc0", "ccx")

    def test_unknown_style_rejected(self, dims):
        with pytest.raises(ValueError):
            t2_floorplan("origami", dims)

    def test_folded_dims_shrink_chip(self):
        full = {name: (300.0, 300.0) for name, _ in t2_instances()}
        fp_2d = t2_floorplan("2d", full)
        small = dict(full)
        for name, _ in t2_instances():
            base = name.rstrip("0123456789")
            if base in FOLDED_TYPES:
                small[name] = (212.0, 212.0)
        fp_fold = t2_floorplan("fold_f2f", small)
        assert fp_fold.area_um2 < fp_2d.area_um2
