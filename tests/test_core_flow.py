"""Tests for the end-to-end block design flow."""

import pytest

from repro.core.flow import FlowConfig, run_block_flow
from repro.core.folding import FoldSpec


@pytest.fixture(scope="module")
def ccx_2d(process):
    return run_block_flow("ccx", FlowConfig(), process)


@pytest.fixture(scope="module")
def ccx_fold(process):
    return run_block_flow("ccx", FlowConfig(
        fold=FoldSpec(mode="regions", die1_regions=("cpx",)),
        bonding="F2B"), process)


def test_2d_design_sane(ccx_2d):
    d = ccx_2d
    assert d.footprint_um2 > 0
    assert d.wirelength_um > 0
    assert d.n_cells > 1000
    assert d.n_buffers > 0
    assert d.n_vias == 0
    assert not d.is_folded
    assert d.power.total_uw > 0
    assert d.netlist.validate() == []


def test_2d_meets_timing(ccx_2d):
    assert ccx_2d.sta.wns_ps >= -20.0


def test_power_components_sum(ccx_2d):
    p = ccx_2d.power
    assert p.total_uw == pytest.approx(
        p.cell_uw + p.net_uw + p.leakage_uw)
    assert p.net_uw == pytest.approx(p.wire_uw + p.pin_uw)


def test_fold_shrinks_footprint(ccx_2d, ccx_fold):
    assert ccx_fold.footprint_um2 < 0.62 * ccx_2d.footprint_um2


def test_fold_cuts_wirelength_and_power(ccx_2d, ccx_fold):
    assert ccx_fold.wirelength_um < ccx_2d.wirelength_um
    assert ccx_fold.power.total_uw < ccx_2d.power.total_uw


def test_fold_meets_timing(ccx_fold):
    assert ccx_fold.sta.wns_ps >= -20.0


def test_ccx_natural_fold_uses_four_vias(ccx_fold):
    # 3 test bridges + 1 clock-tree crossing: the paper's 4 TSVs
    assert ccx_fold.n_vias == 4


def test_fold_result_attached(ccx_fold):
    assert ccx_fold.is_folded
    assert ccx_fold.fold_result.bonding == "F2B"
    assert ccx_fold.tsv_area_um2 > 0


def test_flow_deterministic(process):
    a = run_block_flow("ncu", FlowConfig(seed=5), process)
    b = run_block_flow("ncu", FlowConfig(seed=5), process)
    assert a.power.total_uw == pytest.approx(b.power.total_uw)
    assert a.n_buffers == b.n_buffers
    assert a.wirelength_um == pytest.approx(b.wirelength_um)


def test_io_budget_shifts_power(process):
    loose = run_block_flow("l2t", FlowConfig(io_budget_ps=0.0), process)
    tight = run_block_flow("l2t", FlowConfig(io_budget_ps=250.0), process)
    assert tight.power.total_uw >= loose.power.total_uw * 0.99


def test_dual_vth_flow(process):
    d = run_block_flow("ncu", FlowConfig(dual_vth=True), process)
    assert d.hvt_fraction > 0.5
    assert d.sta.wns_ps >= -20.0


def test_rvt_flow_has_no_hvt(ccx_2d):
    assert ccx_2d.hvt_fraction == 0.0


def test_f2f_fold_uses_all_nine_layers(process):
    d = run_block_flow("l2t", FlowConfig(
        fold=FoldSpec(mode="mincut"), bonding="F2F"), process)
    assert d.fold_result.bonding == "F2F"
    assert d.tsv_area_um2 == 0.0


def test_scale_parameter_shrinks_design(process):
    full = run_block_flow("l2t", FlowConfig(scale=1.0), process)
    half = run_block_flow("l2t", FlowConfig(scale=0.5), process)
    assert half.n_cells < 0.75 * full.n_cells


def test_long_wire_count_positive_for_big_blocks(ccx_2d):
    assert ccx_2d.long_wires > 10
