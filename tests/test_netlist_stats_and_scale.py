"""Netlist statistics plus the scale-stability contract of DESIGN.md."""

import pytest

from repro.core.flow import FlowConfig, run_block_flow
from repro.core.folding import FoldSpec
from repro.netlist.stats import collect_stats
from tests.conftest import fresh_block


class TestStats:
    def test_collect_stats_counts(self, library):
        gb = fresh_block("l2t", library, seed=4)
        stats = collect_stats(gb.netlist)
        assert stats.num_cells == gb.netlist.num_cells
        assert stats.num_macros == len(gb.netlist.macros)
        assert stats.num_flops > 0
        assert stats.num_nets == len(gb.netlist.nets)
        assert stats.cell_area_um2 == pytest.approx(
            gb.netlist.total_cell_area())
        assert stats.total_area_um2 > stats.cell_area_um2
        assert stats.avg_net_degree > 1.5

    def test_function_histogram_sums_to_cells(self, library):
        gb = fresh_block("ncu", library, seed=4)
        stats = collect_stats(gb.netlist)
        assert sum(stats.function_histogram.values()) == stats.num_cells

    def test_hvt_fraction_initially_zero(self, library):
        gb = fresh_block("ncu", library, seed=4)
        assert collect_stats(gb.netlist).hvt_fraction == 0.0


class TestScaleStability:
    """DESIGN.md Section 5: paper claims are ratios between designs at
    identical scale, and those ratios keep their sign across scales."""

    @pytest.mark.parametrize("scale", [0.7, 1.0])
    def test_fold_signs_stable(self, process, scale):
        d2 = run_block_flow("ccx", FlowConfig(scale=scale), process)
        d3 = run_block_flow("ccx", FlowConfig(
            scale=scale,
            fold=FoldSpec(mode="regions", die1_regions=("cpx",)),
            bonding="F2B"), process)
        assert d3.footprint_um2 < d2.footprint_um2
        assert d3.wirelength_um < d2.wirelength_um
        assert d3.power.total_uw < d2.power.total_uw
