"""Tests for the Rent-exponent measurement."""

import pytest

from repro.designgen.rent import RentFit, measure_rent_exponent
from tests.conftest import fresh_block


@pytest.mark.parametrize("block", ["spc", "ccx", "l2t"])
def test_generator_in_realistic_rent_regime(library, block):
    """Real logic sits around p ~ 0.5-0.75; the generator must too."""
    gb = fresh_block(block, library, seed=1)
    fit = measure_rent_exponent(gb.netlist)
    assert 0.4 < fit.exponent < 0.85, fit.exponent
    assert fit.coefficient > 1.0


def test_fit_predicts_terminals(library):
    gb = fresh_block("l2t", library, seed=1)
    fit = measure_rent_exponent(gb.netlist)
    small = fit.terminals_at(50)
    big = fit.terminals_at(500)
    assert big > small > 0


def test_sample_points_cover_scales(library):
    gb = fresh_block("ccx", library, seed=1)
    fit = measure_rent_exponent(gb.netlist, min_gates=24, max_depth=5)
    gates = sorted(pt.gates for pt in fit.points)
    assert gates[0] < 100 < gates[-1]
    assert len(fit.points) >= 15


def test_low_locality_raises_exponent(library):
    """More global wiring => higher Rent exponent."""
    import numpy as np
    from repro.designgen.logic import LogicSpec, generate_logic
    def measure(locality, seed=5):
        spec = LogicSpec(n_cells=900, n_inputs=40, n_outputs=40,
                         locality=locality)
        rng = np.random.default_rng(seed)
        nl = generate_logic("b", spec, library, rng)
        return measure_rent_exponent(nl).exponent

    assert measure(0.45) > measure(0.95)


def test_degenerate_netlist():
    from repro.netlist.core import Netlist
    fit = measure_rent_exponent(Netlist("empty"))
    assert fit.exponent == 0.0
    assert fit.points == []
