"""Tests for the Tetris legalizer."""

import numpy as np
import pytest

from repro.netlist.core import Netlist
from repro.place.grid import Rect
from repro.place.legalize import (build_rows, check_overlaps,
                                  legalize_cells)
from repro.place.placer2d import PlacementConfig, place_block_2d
from repro.tech.cells import CELL_HEIGHT_UM, make_28nm_library
from tests.conftest import fresh_block


@pytest.fixture(scope="module")
def lib():
    return make_28nm_library()


def make_cells(lib, n, outline, seed=0):
    rng = np.random.default_rng(seed)
    nl = Netlist("lg")
    cells = []
    for i in range(n):
        c = nl.add_instance(f"c{i}", lib.master("INV_X2"),
                            x=float(rng.uniform(outline.x0, outline.x1)),
                            y=float(rng.uniform(outline.y0, outline.y1)))
        cells.append(c)
    return cells


class TestBuildRows:
    def test_row_count(self):
        outline = Rect(0, 0, 100, 10 * CELL_HEIGHT_UM)
        rows = build_rows(outline, [])
        assert len(rows) == 10
        assert all(r.x0 == 0 and r.x1 == 100 for r in rows)

    def test_obstruction_splits_rows(self):
        outline = Rect(0, 0, 100, 4 * CELL_HEIGHT_UM)
        hole = Rect(40, 0, 60, 4 * CELL_HEIGHT_UM)
        rows = build_rows(outline, [hole])
        assert len(rows) == 8  # two segments per row
        for seg in rows:
            assert seg.x1 <= 40 or seg.x0 >= 60

    def test_obstruction_at_edge(self):
        outline = Rect(0, 0, 100, 2 * CELL_HEIGHT_UM)
        rows = build_rows(outline, [Rect(0, 0, 30, 2 * CELL_HEIGHT_UM)])
        assert all(seg.x0 >= 30 for seg in rows)


class TestLegalize:
    def test_no_overlaps_after(self, lib):
        outline = Rect(0, 0, 400, 40 * CELL_HEIGHT_UM)
        cells = make_cells(lib, 300, outline)
        res = legalize_cells(cells, outline)
        assert res.failed == 0
        assert check_overlaps(cells) == 0

    def test_cells_avoid_obstructions(self, lib):
        outline = Rect(0, 0, 400, 40 * CELL_HEIGHT_UM)
        hole = Rect(100, 0, 300, 40 * CELL_HEIGHT_UM)
        cells = make_cells(lib, 150, outline)
        res = legalize_cells(cells, outline, [hole])
        assert res.failed == 0
        for c in cells:
            assert not (100 < c.x < 300 - c.width_um), c.x

    def test_displacement_reasonable(self, lib):
        outline = Rect(0, 0, 600, 50 * CELL_HEIGHT_UM)
        cells = make_cells(lib, 200, outline)
        res = legalize_cells(cells, outline)
        assert res.avg_displacement_um < 0.3 * outline.width

    def test_overfull_core_reports_failures(self, lib):
        outline = Rect(0, 0, 40, 2 * CELL_HEIGHT_UM)
        cells = make_cells(lib, 100, outline)
        res = legalize_cells(cells, outline)
        assert res.failed > 0
        assert res.placed + res.failed == 100

    def test_rows_are_on_pitch(self, lib):
        outline = Rect(0, 0, 400, 20 * CELL_HEIGHT_UM)
        cells = make_cells(lib, 100, outline)
        legalize_cells(cells, outline)
        for c in cells:
            offset = (c.y - CELL_HEIGHT_UM / 2) / CELL_HEIGHT_UM
            assert abs(offset - round(offset)) < 1e-6

    def test_empty_input(self, lib):
        res = legalize_cells([], Rect(0, 0, 100, 100))
        assert res.placed == 0 and res.failed == 0


class TestPlacerIntegration:
    def test_full_legalize_flag(self, library):
        gb = fresh_block("ncu", library, seed=12)
        place_block_2d(gb.netlist,
                       PlacementConfig(seed=12, full_legalize=True,
                                       utilization=0.45))
        movable = [c for c in gb.netlist.cells if not c.fixed]
        assert check_overlaps(movable) == 0

    def test_legalized_placement_keeps_structure(self, library):
        from repro.place.placer2d import hpwl
        loose = fresh_block("ncu", library, seed=13)
        place_block_2d(loose.netlist, PlacementConfig(seed=13))
        wl_loose = hpwl(loose.netlist)
        tight = fresh_block("ncu", library, seed=13)
        place_block_2d(tight.netlist,
                       PlacementConfig(seed=13, full_legalize=True,
                                       utilization=0.45))
        wl_tight = hpwl(tight.netlist)
        assert wl_tight < 2.0 * wl_loose
