"""Tests for the bonding-style studies and SPC second-level folding."""

import pytest

from repro.core.bonding import compare_bonding
from repro.core.flow import FlowConfig
from repro.core.folding import FoldSpec
from repro.core.secondlevel import (fub_assign_spec, second_level_spec,
                                    spc_folding_study)
from repro.designgen.t2 import SPC_FOLDED_FUBS


@pytest.fixture(scope="module")
def l2t_comparison(process):
    return compare_bonding("l2t", FoldSpec(mode="mincut"), process,
                           FlowConfig(), label="l2t-mincut")


def test_comparison_labels_and_designs(l2t_comparison):
    comp = l2t_comparison
    assert comp.label == "l2t-mincut"
    assert comp.f2b.fold_result.bonding == "F2B"
    assert comp.f2f.fold_result.bonding == "F2F"


def test_f2f_beats_f2b_on_footprint(l2t_comparison):
    assert l2t_comparison.footprint_gain < 0.0


def test_f2f_beats_f2b_on_power(l2t_comparison):
    assert l2t_comparison.power_gain < 0.01


def test_f2f_wirelength_not_worse(l2t_comparison):
    assert l2t_comparison.wirelength_gain < 0.02


def test_via_counts_reported(l2t_comparison):
    f2b_vias, f2f_vias = l2t_comparison.n_vias
    assert f2b_vias > 0 and f2f_vias > 0


class TestSecondLevel:
    def test_specs(self):
        assert fub_assign_spec().mode == "fub_assign"
        spec = second_level_spec()
        assert spec.mode == "fub_fold"
        assert set(spec.folded_regions) == set(SPC_FOLDED_FUBS)

    @pytest.fixture(scope="class")
    def study(self, process):
        return spc_folding_study(process, FlowConfig())

    def test_3d_saves_power_vs_2d(self, study):
        _, d_p2d = study.improvement("power")
        assert d_p2d < -0.05

    def test_second_level_tracks_block_level(self, study):
        # the model resolves the big 3D-vs-2D effect; the small second-
        # level delta (paper: -5.1%) is within placement noise here
        d_p, _ = study.improvement("power")
        assert abs(d_p) < 0.05
        d_wl, _ = study.improvement("wirelength")
        assert abs(d_wl) < 0.06

    def test_both_3d_designs_halve_footprint(self, study):
        for d in (study.block_level_3d, study.second_level_3d):
            ratio = d.footprint_um2 / study.flat_2d.footprint_um2
            assert ratio < 0.65

    def test_3d_designs_use_vias(self, study):
        assert study.block_level_3d.n_vias > 0
        assert study.second_level_3d.n_vias > 0

    def test_unknown_metric_rejected(self, study):
        with pytest.raises(ValueError):
            study.improvement("beauty")
