"""Smoke tests: the CLI and every example script actually run."""

import importlib.util
import pathlib
import sys

import pytest

from repro.__main__ import main as cli_main

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    old_argv = sys.argv
    sys.argv = [f"{name}.py"] + argv
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestCli:
    def test_experiments_listing(self, capsys):
        assert cli_main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig7" in out

    def test_run_table1(self, capsys):
        assert cli_main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "TSV" in out and "PASS" in out

    def test_run_unknown_experiment(self, capsys):
        assert cli_main(["run", "table99"]) == 2

    def test_block_command(self, capsys):
        assert cli_main(["block", "ncu", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "total power (mW)" in out
        assert "worst slack" in out

    def test_block_folded_command(self, capsys):
        assert cli_main(["block", "l2t", "--fold", "--bonding", "F2F",
                         "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "# TSV/F2F via" in out

    def test_chip_command(self, capsys):
        assert cli_main(["chip", "2d", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "inter-block wirelength" in out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", ["--block", "l2t",
                                         "--scale", "0.5"], capsys)
        assert "2D vs folded 3D" in out
        assert "meet timing" in out

    def test_f2f_via_flow(self, capsys):
        out = run_example("f2f_via_flow", ["--block", "l2t"], capsys)
        assert "step 1" in out and "step 3" in out
        assert "F2F vias" in out

    def test_floorplan_annealer(self, capsys):
        out = run_example("floorplan_annealer",
                          ["--iterations", "300"], capsys)
        assert "annealed floorplan" in out

    def test_fullchip_styles(self, capsys):
        out = run_example("fullchip_styles",
                          ["--scale", "0.3", "--styles", "2d",
                           "core_cache"], capsys)
        assert "Full-chip comparison" in out
        assert "core_cache" in out

    def test_thermal_tradeoff(self, capsys):
        out = run_example("thermal_tradeoff",
                          ["--scale", "0.3", "--styles", "2d",
                           "core_cache"], capsys)
        assert "power, " in out and "C vs 2D" in out

    def test_folding_study(self, capsys):
        out = run_example("folding_study", ["--scale", "0.3"], capsys)
        assert "step 1" in out and "step 2" in out
        assert "spc" in out


class TestExtendedCli:
    def test_signoff_command(self, capsys):
        rc = cli_main(["signoff", "core_cache", "--scale", "0.3",
                       "--iterations", "1"])
        out = capsys.readouterr().out
        assert "chip-level sign-off" in out
        assert rc in (0, 1)


def test_physical_integrity_example(capsys):
    out = run_example("physical_integrity",
                      ["--scale", "0.3", "--styles", "2d",
                       "core_cache"], capsys)
    assert "thermal and power-grid integrity" in out
    assert "manufacturing cost" in out
    assert "multi-corner" in out


def test_render_layouts_example(tmp_path, capsys):
    out = run_example("render_layouts", ["--out", str(tmp_path)], capsys)
    assert "ccx_folded.svg" in out
    assert (tmp_path / "chip_fold_f2f.svg").exists()


def test_design_space_example(capsys):
    out = run_example("design_space", ["--scale", "0.25"], capsys)
    assert "Pareto-optimal" in out
    assert "lowest power" in out


def test_eco_session_example(capsys):
    out = run_example("eco_session", ["--block", "ncu"], capsys)
    assert "ECO 1" in out and "ECO 3" in out
    assert "final power" in out


class TestReportCard:
    def test_report_command(self, capsys, tmp_path):
        out_file = tmp_path / "card.md"
        rc = cli_main(["report", "2d", "--scale", "0.3",
                       "--out", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        assert "# Design report" in text
        assert "Headline metrics" in text
        assert "Per block type" in text
        assert "Physical integrity" in text

    def test_report_card_api(self, process):
        from repro.analysis import chip_report_card
        from repro.core import ChipConfig, build_chip
        chip = build_chip(ChipConfig(style="core_cache", scale=0.3),
                          process)
        text = chip_report_card(chip, process, include_signoff=True)
        assert "chip-level sign-off" in text.lower() or \
            "Chip-level timing sign-off" in text
        assert "| spc | 8 |" in text
