"""Tests for the TSV-to-wire coupling extension."""

import pytest

from repro.analysis.coupling import coupling_power, coupling_study
from repro.core.flow import FlowConfig, run_block_flow
from repro.core.folding import FoldSpec
from repro.tech.interconnect3d import (make_f2f_via, make_tsv,
                                       tsv_wire_coupling_ff)


def test_coupling_cap_positive_and_distance_monotone():
    tsv = make_tsv()
    near = tsv_wire_coupling_ff(tsv, wire_distance_um=0.5)
    far = tsv_wire_coupling_ff(tsv, wire_distance_um=3.0)
    assert near > far > 0.0


def test_coupling_scales_with_length():
    tsv = make_tsv()
    short = tsv_wire_coupling_ff(tsv, coupled_length_um=2.0)
    long_ = tsv_wire_coupling_ff(tsv, coupled_length_um=8.0)
    assert long_ == pytest.approx(4 * short, rel=1e-9)


def test_f2f_couples_less_than_tsv():
    assert tsv_wire_coupling_ff(make_f2f_via()) < \
        tsv_wire_coupling_ff(make_tsv())


def test_coupling_power_requires_folded(process):
    flat = run_block_flow("ncu", FlowConfig(), process)
    with pytest.raises(ValueError):
        coupling_power(flat, process)


def test_coupling_study_shapes(process):
    res = coupling_study("l2t", process=process)
    f2b, f2f = res["F2B"], res["F2F"]
    assert f2b.n_vias > 0 and f2f.n_vias > 0
    assert f2b.coupling_per_via_ff > f2f.coupling_per_via_ff
    # same partition => comparable via counts; F2B pays more coupling
    assert f2b.coupling_power_uw > f2f.coupling_power_uw
    assert 0.0 < f2b.power_penalty < 0.2
