"""Mutation tests for the rule deck: seed one specific defect into an
otherwise-legal design and assert the checker flags it with exactly the
expected rule id."""

import pytest

from repro.lint import lint_netlist, lint_placement
from repro.netlist.core import INPUT, OUTPUT, Netlist, PinRef
from repro.place.grid import Rect
from repro.place.placer3d import ViaSite
from repro.tech.cells import CELL_HEIGHT_UM
from repro.tech.macros import sram_macro


def row_y(outline, k):
    """y of standard-cell row k inside the outline."""
    return outline.y0 + (k + 0.5) * CELL_HEIGHT_UM


def tiny_netlist(library):
    """in -> INV -> NAND2(+tied 2nd pin) -> out: a minimal legal block."""
    nl = Netlist("tiny")
    inv = nl.add_instance("inv0", library.master("INV_X1"))
    nand = nl.add_instance("nand0", library.master("NAND2_X1"))
    nl.add_port("in_a", INPUT)
    nl.add_port("in_b", INPUT)
    nl.add_port("out_z", OUTPUT)
    nl.add_net("n_in", PinRef(port="in_a"), [PinRef(inst=inv.id, pin=0)])
    nl.add_net("n_mid", PinRef(inst=inv.id),
               [PinRef(inst=nand.id, pin=0)])
    nl.add_net("n_tie", PinRef(port="in_b"),
               [PinRef(inst=nand.id, pin=1)])
    nl.add_net("n_out", PinRef(inst=nand.id), [PinRef(port="out_z")])
    return nl


@pytest.fixture()
def tiny(library):
    return tiny_netlist(library)


def rule_ids(report):
    return set(report.by_rule())


# ---- baseline: the un-mutated design is error-clean ---------------------

def test_tiny_netlist_is_clean(tiny):
    report = lint_netlist(tiny)
    assert report.clean, report.summary()
    assert not rule_ids(report)


# ---- electrical mutations ----------------------------------------------

def test_deleted_driver_flags_erc004(tiny):
    inv_id = next(i.id for i in tiny.instances.values()
                  if i.name == "inv0")
    del tiny.instances[inv_id]  # simulate a botched ECO

    report = lint_netlist(tiny)
    assert not report.clean
    hits = report.by_rule()["ERC004"]
    assert any("driver instance missing" in v.message for v in hits)
    # the legacy string API reports the same defect
    assert any("driver instance missing" in m for m in tiny.validate())


def test_deleted_sink_instance_flags_erc004_without_crashing(tiny):
    # nand0 is the sink of a cell-driven net (n_mid): deleting it must
    # not crash load-based rules (ERC007) that walk sink endpoints
    nand_id = next(i.id for i in tiny.instances.values()
                   if i.name == "nand0")
    del tiny.instances[nand_id]
    report = lint_netlist(tiny)
    assert not report.clean
    assert any("sink instance missing" in v.message
               for v in report.by_rule()["ERC004"])


def test_deleted_driver_port_flags_erc004(tiny):
    del tiny.ports["in_a"]
    report = lint_netlist(tiny)
    assert any("driver port missing" in v.message
               for v in report.by_rule()["ERC004"])


def test_multi_driven_pin_flags_erc002(tiny, library):
    # a second net converging on nand0 pin 0
    nand_id = next(i.id for i in tiny.instances.values()
                   if i.name == "nand0")
    tiny.add_net("n_contend", PinRef(port="in_b"),
                 [PinRef(inst=nand_id, pin=0)])
    report = lint_netlist(tiny)
    assert not report.clean
    assert "ERC002" in rule_ids(report)


def test_disconnected_input_pin_flags_erc001(tiny):
    # drop NAND2 pin 1: the cell's output becomes undefined
    for net in tiny.nets.values():
        net.sinks = [s for s in net.sinks if s.pin != 1 or s.is_port]
    report = lint_netlist(tiny)
    assert "ERC001" in rule_ids(report)
    assert any("pin(s) [1]" in v.message
               for v in report.by_rule()["ERC001"])


def test_sinkless_net_flags_erc003(tiny):
    for net in tiny.nets.values():
        if net.name == "n_out":
            net.sinks = []
    report = lint_netlist(tiny)
    assert any(v.message == "net n_out: no sinks"
               for v in report.by_rule()["ERC003"])


def test_combinational_loop_flags_erc005(tiny, library):
    inv = library.master("INV_X1")
    a = tiny.add_instance("loop_a", inv)
    b = tiny.add_instance("loop_b", inv)
    tiny.add_net("n_ab", PinRef(inst=a.id), [PinRef(inst=b.id, pin=0)])
    tiny.add_net("n_ba", PinRef(inst=b.id), [PinRef(inst=a.id, pin=0)])
    report = lint_netlist(tiny)
    assert not report.clean
    assert any("combinational loop" in v.message
               for v in report.by_rule()["ERC005"])


def test_self_loop_flags_erc005(tiny, library):
    g = tiny.add_instance("selfy", library.master("INV_X1"))
    tiny.add_net("n_self", PinRef(inst=g.id), [PinRef(inst=g.id, pin=0)])
    assert any("drives its own input" in v.message
               for v in lint_netlist(tiny).by_rule()["ERC005"])


def test_unsynchronized_cdc_flags_erc006(tiny, library):
    dff = library.master("DFF_X1")
    fa = tiny.add_instance("ff_a", dff)
    fb = tiny.add_instance("ff_b", dff)
    tiny.add_net("clk_a", PinRef(port="in_a"),
                 [PinRef(inst=fa.id, pin=1)],
                 is_clock=True, clock_domain="cpu")
    tiny.add_net("clk_b", PinRef(port="in_b"),
                 [PinRef(inst=fb.id, pin=1)],
                 is_clock=True, clock_domain="dram")
    tiny.add_net("n_cross", PinRef(inst=fa.id),
                 [PinRef(inst=fb.id, pin=0)])
    report = lint_netlist(tiny)
    assert any("cpu -> dram" in v.message
               for v in report.by_rule()["ERC006"])


def test_unclocked_flop_flags_cts001(tiny, library):
    tiny.add_instance("ff_lost", library.master("DFF_X1"))
    report = lint_netlist(tiny)
    assert not report.clean
    assert any("ff_lost" in v.message
               for v in report.by_rule()["CTS001"])


# ---- physical mutations -------------------------------------------------

def placed_tiny(library, outline=None):
    """The tiny netlist with both cells legally placed on row 2."""
    if outline is None:
        outline = Rect(0.0, 0.0, 200.0, 200.0)
    nl = tiny_netlist(library)
    y = row_y(outline, 2)
    for i, inst in enumerate(nl.instances.values()):
        inst.x, inst.y = 50.0 + 30.0 * i, y
    return nl, outline


def test_legal_placement_is_clean(library):
    nl, outline = placed_tiny(library)
    report = lint_placement(nl, outline)
    assert report.clean and not rule_ids(report), report.summary()


def test_overlapping_cells_flag_phy001(library):
    nl, outline = placed_tiny(library)
    cells = nl.cells
    cells[1].x, cells[1].y = cells[0].x, cells[0].y  # stack them
    report = lint_placement(nl, outline)
    assert "PHY001" in rule_ids(report)
    assert any("overlapping cell pair" in v.message
               for v in report.by_rule()["PHY001"])


def test_cell_outside_outline_flags_phy002(library):
    nl, outline = placed_tiny(library)
    nl.cells[0].x = outline.x1 + 40.0
    report = lint_placement(nl, outline)
    assert not report.clean
    assert "PHY002" in rule_ids(report)


def test_cell_inside_macro_hole_flags_phy003(library):
    nl, outline = placed_tiny(library)
    macro = nl.add_instance("sram0", sram_macro(16))
    macro.x, macro.y = 100.0, 100.0   # centered footprint
    nl.add_net("n_mac", PinRef(inst=macro.id),
               [PinRef(inst=nl.cells[0].id, pin=99)])
    nl.cells[0].x, nl.cells[0].y = 100.0, 100.0  # inside the hole
    report = lint_placement(nl, outline)
    assert "PHY003" in rule_ids(report)


def test_off_row_cell_flags_phy004(library):
    nl, outline = placed_tiny(library)
    # the NAND: INV/BUF cells are repeater-exempt from this rule
    nand = next(c for c in nl.cells if c.name == "nand0")
    nand.y = row_y(outline, 2) + 5.0  # between rows
    report = lint_placement(nl, outline)
    assert "PHY004" in rule_ids(report)


def test_off_row_repeater_is_exempt_from_phy004(library):
    nl, outline = placed_tiny(library)
    rep = nl.add_instance("rep_0", library.master("BUF_X4"))
    rep.x, rep.y = 80.0, row_y(outline, 1) + 5.0
    nl.add_net("n_rep", PinRef(inst=rep.id),
               [PinRef(port="out_z")])
    # the repeater needs an input to stay ERC001-clean
    for net in nl.nets.values():
        if net.name == "n_out":
            net.sinks = [PinRef(inst=rep.id, pin=0)]
    report = lint_placement(nl, outline)
    assert "PHY004" not in rule_ids(report)


def test_tsv_over_macro_flags_phy005_for_f2b_only(library):
    nl, outline = placed_tiny(library)
    macro = nl.add_instance("sram0", sram_macro(16), die=1)
    macro.x, macro.y = 140.0, 140.0
    nl.add_net("n_mac", PinRef(inst=macro.id),
               [PinRef(inst=nl.cells[0].id, pin=99)])
    nl.add_net("clk", PinRef(port="in_b"),
               [PinRef(inst=macro.id, pin=macro.master.n_io)],
               is_clock=True, clock_domain="cpu")
    vias = [ViaSite(net_id=0, x=macro.x, y=macro.y)]  # on the macro

    f2b = lint_placement(nl, outline, bonding="F2B", vias=vias)
    assert not f2b.clean
    assert any("lands on a macro" in v.message
               for v in f2b.by_rule()["PHY005"])

    # the same geometry is legal with F2F bonding (paper Section 5)
    f2f = lint_placement(nl, outline, bonding="F2F", vias=vias)
    assert "PHY005" not in rule_ids(f2f)
    assert f2f.clean


def test_via_outside_outline_flags_phy006(library):
    nl, outline = placed_tiny(library)
    vias = [ViaSite(net_id=1, x=outline.x1 + 10.0, y=50.0)]
    report = lint_placement(nl, outline, bonding="F2F", vias=vias)
    assert not report.clean
    assert "PHY006" in rule_ids(report)


def test_overloaded_die_flags_phy007(library):
    nl, outline = placed_tiny(library, outline=Rect(0, 0, 4.0, 12.0))
    # two ~1 um2 cells on a 48 um2 outline is fine; shrink further
    tiny_outline = Rect(0.0, 0.0, 1.0, 1.0)
    for inst in nl.cells:
        inst.x = inst.y = 0.5
    report = lint_placement(nl, tiny_outline)
    assert "PHY007" in rule_ids(report)
