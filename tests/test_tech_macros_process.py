"""Tests for macro masters and the process-node bundle."""

import pytest

from repro.tech.macros import default_macro_menu, sram_macro
from repro.tech.process import CPU_CLOCK, IO_CLOCK, make_process


class TestSramMacro:
    def test_area_scales_with_capacity(self):
        small, big = sram_macro(2), sram_macro(16)
        assert big.area_um2 == pytest.approx(8 * small.area_um2, rel=0.01)

    def test_leakage_scales_with_bits(self):
        assert sram_macro(16).leakage_uw == pytest.approx(
            8 * sram_macro(2).leakage_uw, rel=0.01)

    def test_access_energy_grows_sublinearly(self):
        e2, e16 = sram_macro(2).access_energy_fj, \
            sram_macro(16).access_energy_fj
        assert e2 < e16 < 8 * e2

    def test_outline_is_wide(self):
        m = sram_macro(16)
        assert m.width_um > m.height_um

    def test_io_count_reasonable(self):
        m = sram_macro(16, word_bits=64)
        assert m.n_io > 128  # D + Q + address + control

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            sram_macro(0)
        with pytest.raises(ValueError):
            sram_macro(-4)

    def test_menu_sorted_sizes(self):
        menu = default_macro_menu()
        areas = [m.area_um2 for m in menu]
        assert areas == sorted(areas)


class TestProcessNode:
    def test_clock_periods(self):
        p = make_process()
        assert p.clock_period_ps(CPU_CLOCK) == pytest.approx(
            1000.0 / p.clock_freq_ghz[CPU_CLOCK])
        assert p.clock_period_ps(IO_CLOCK) == pytest.approx(
            2 * p.clock_period_ps(CPU_CLOCK))

    def test_unknown_clock_raises(self):
        with pytest.raises(KeyError):
            make_process().clock_period_ps("turbo_clk")

    def test_via_for_bonding(self):
        p = make_process()
        assert p.via_for("F2B").style == "TSV"
        assert p.via_for("f2f").style == "F2F"
        with pytest.raises(ValueError):
            p.via_for("glue")

    def test_long_wire_threshold_is_physical(self):
        # 100x the *physical* 28nm cell height, not the fat model cell
        p = make_process()
        assert p.long_wire_um == pytest.approx(120.0)

    def test_library_and_stack_attached(self):
        p = make_process()
        assert len(p.metal_stack) == 9
        assert "INV_X1" in p.library
