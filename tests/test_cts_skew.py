"""Tests for CTS skew and insertion-delay analysis."""

import pytest

from repro.cts.tree import synthesize_clock_tree
from repro.netlist.core import INPUT, Netlist, PinRef
from tests.conftest import fresh_block


def grid_of_flops(lib, n=64, pitch=100.0, jitter=0.0, seed=0):
    import numpy as np
    rng = np.random.default_rng(seed)
    nl = Netlist("flops")
    dff = lib.master("DFF_X1")
    sinks = []
    side = int(n ** 0.5)
    for i in range(n):
        x = (i % side) * pitch + float(rng.uniform(-jitter, jitter))
        y = (i // side) * pitch + float(rng.uniform(-jitter, jitter))
        f = nl.add_instance(f"f{i}", dff, x=x, y=y)
        sinks.append(PinRef(inst=f.id, pin=1))
    nl.add_port("clk", INPUT)
    nl.add_net("clk", PinRef(port="clk"), sinks, is_clock=True)
    return nl


def test_skew_nonnegative_and_below_insertion(library, process):
    nl = grid_of_flops(library, jitter=40.0, seed=1)
    cts = synthesize_clock_tree(nl, process)
    assert cts.max_insertion_ps > 0
    assert 0.0 <= cts.skew_ps <= cts.max_insertion_ps


def test_regular_grid_has_low_skew(library, process):
    regular = synthesize_clock_tree(grid_of_flops(library), process)
    ragged = synthesize_clock_tree(
        grid_of_flops(library, jitter=150.0, seed=2), process)
    assert regular.skew_ps <= ragged.skew_ps + 1e-9


def test_bigger_footprint_more_insertion_delay(library, process):
    near = synthesize_clock_tree(grid_of_flops(library, pitch=50.0),
                                 process)
    far = synthesize_clock_tree(grid_of_flops(library, pitch=400.0),
                                process)
    assert far.max_insertion_ps > near.max_insertion_ps


def test_two_tier_tree_tracks_insertion_gap(library, process):
    nl = grid_of_flops(library, n=32)
    for i, inst in enumerate(nl.instances.values()):
        inst.die = i % 2
    cts = synthesize_clock_tree(nl, process)
    assert cts.via_crossings == 1
    assert cts.skew_ps >= 0.0


def test_folded_block_skew_finite(library, process):
    from repro.place.partition import fm_bipartition
    from repro.place.placer2d import PlacementConfig
    from repro.place.placer3d import fold_place_3d
    gb = fresh_block("l2t", library, seed=9)
    part = fm_bipartition(gb.netlist, seed=0)
    fold_place_3d(gb.netlist, process, part.assignment, "F2F",
                  PlacementConfig(seed=9))
    cts = synthesize_clock_tree(gb.netlist, process)
    assert cts.skew_ps < cts.max_insertion_ps
    assert cts.max_insertion_ps < 1000.0
