#!/usr/bin/env python3
"""The paper's Section 4 workflow: pick folding candidates, fold them.

1. Design every T2 block type in 2D and evaluate the three folding
   criteria (total-power share, net-power share, long-wire count) --
   the paper's Table 3.
2. Fold each qualifying block with its natural partition and report the
   per-block power benefit.

Usage::

    python examples/folding_study.py [--scale 1.0]
"""

import argparse
from dataclasses import replace

from repro.core import FlowConfig, FoldSpec, run_block_flow
from repro.core.folding import folding_candidates
from repro.core.secondlevel import second_level_spec
from repro.designgen import t2_block_types
from repro.tech import make_process

FOLDS = {
    "spc": second_level_spec(),
    "ccx": FoldSpec(mode="regions", die1_regions=("cpx",)),
    "l2d": FoldSpec(mode="regions", die1_regions=("subbank2", "subbank3")),
    "l2t": FoldSpec(mode="mincut"),
    "rtx": FoldSpec(mode="regions", die1_regions=("tx",)),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--bonding", default="F2F",
                        choices=["F2B", "F2F"])
    args = parser.parse_args()

    process = make_process()
    base = FlowConfig(scale=args.scale)

    print("step 1: 2D designs + folding criteria (paper Table 3)")
    designs = {}
    counts = {}
    for bt in t2_block_types():
        designs[bt.name] = run_block_flow(bt.name, base, process)
        counts[bt.name] = bt.count
    rows = folding_candidates(designs, counts)
    print(f"{'block':8s}{'power %':>9s}{'net %':>8s}{'long wires':>12s}"
          f"{'remark':>16s}{'fold?':>7s}")
    for r in rows:
        print(f"{r.block:8s}{r.total_power_pct:9.1f}{r.net_power_pct:8.1f}"
              f"{r.long_wires:12d}{r.remark:>16s}"
              f"{'yes' if r.qualifies else 'no':>7s}")

    print(f"\nstep 2: fold the qualifying blocks ({args.bonding})")
    for name, fold in FOLDS.items():
        folded = run_block_flow(
            name, replace(base, fold=fold, bonding=args.bonding), process)
        d2 = designs[name]
        print(f"  {name:5s}: power {folded.power.total_uw / d2.power.total_uw - 1:+7.1%}"
              f"  wirelength {folded.wirelength_um / d2.wirelength_um - 1:+7.1%}"
              f"  footprint {folded.footprint_um2 / d2.footprint_um2 - 1:+7.1%}"
              f"  ({folded.n_vias} vias)")


if __name__ == "__main__":
    main()
