#!/usr/bin/env python3
"""Sweep the study's design space and print the Pareto front.

Evaluates every (design style, library) configuration the paper touches
-- 2D vs the two stacking floorplans vs folding with either bonding
style, RVT-only vs dual-Vth -- and reports power, footprint, temperature
and the Pareto-optimal subset.

Usage::

    python examples/design_space.py [--scale 0.7]
"""

import argparse
import time

from repro.core.explore import explore_design_space
from repro.tech import make_process


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.7)
    args = parser.parse_args()

    process = make_process()
    t0 = time.time()
    result = explore_design_space(process, scale=args.scale)
    print(result.table())
    print(f"\n{len(result.pareto)} Pareto-optimal configurations "
          f"(evaluated {len(result.points)} in {time.time() - t0:.0f}s)")
    best = result.best("power")
    print(f"lowest power: {best.label} at {best.power_mw:.1f} mW "
          f"({best.n_3d_connections} 3D connections)")


if __name__ == "__main__":
    main()
