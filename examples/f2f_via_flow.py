#!/usr/bin/env python3
"""Demonstrate the paper's F2F via placement flow (Section 5.1).

Walks the three steps of Fig. 4 explicitly:

1. run the 3D placer with an ideal (zero-size) 3D interconnect;
2. export the merged "2D-like" two-tier design view (cells and metal
   layers of both tiers renamed apart, 2D nets tied off);
3. route the 3D nets and read back each net's bond-plane crossing as its
   F2F via site.

Usage::

    python examples/f2f_via_flow.py [--block l2t] [--show-view]
"""

import argparse

from repro.core.folding import FoldSpec, make_partition
from repro.designgen import block_type_by_name, generate_block
from repro.place import PlacementConfig, fold_place_3d
from repro.route import export_merged_view, place_f2f_vias
from repro.tech import make_process


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--block", default="l2t")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--show-view", action="store_true",
                        help="print the merged 2D-like design view")
    args = parser.parse_args()

    process = make_process()
    gb = generate_block(block_type_by_name(args.block), process.library,
                        seed=args.seed)

    print("step 1: ideal-interconnect 3D placement")
    assignment = make_partition(gb, FoldSpec(mode="mincut"))
    placement = fold_place_3d(gb.netlist, process, assignment, "F2F",
                              PlacementConfig(seed=args.seed))
    print(f"  outline {placement.outline.width:.0f} x "
          f"{placement.outline.height:.0f} um, "
          f"{placement.n_vias} tier-crossing nets")

    print("step 2: merged 2D-like design view (Fig. 4b)")
    view = export_merged_view(gb.netlist, placement.outline, max_nets=12)
    if args.show_view:
        print(view)
    else:
        for line in view.splitlines()[:6]:
            print("  " + line)
        print(f"  ... ({len(view.splitlines())} lines; --show-view "
              f"prints everything)")

    print("step 3: route 3D nets, extract F2F via sites (Fig. 4c)")
    plan = place_f2f_vias(gb.netlist, placement.outline, process)
    print(f"  placed {plan.n_vias} F2F vias, total legalization "
          f"displacement {plan.total_displacement_um:.1f} um")
    for net_id, (x, y) in list(sorted(plan.sites.items()))[:8]:
        print(f"    net {gb.netlist.nets[net_id].name:18s} "
              f"via at ({x:7.1f}, {y:7.1f})")
    print("    ...")


if __name__ == "__main__":
    main()
