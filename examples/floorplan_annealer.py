#!/usr/bin/env python3
"""Explore automatic 3D floorplanning with the sequence-pair annealer.

The paper uses hand-crafted floorplans because the T2's replicated
blocks "need to be arranged in a specific order"; this example shows
why: the annealer matches the reference layout on area but struggles to
rediscover the regular core/cache arrangement the wirelength wants.

Usage::

    python examples/floorplan_annealer.py [--iterations 4000]
"""

import argparse

from repro.designgen import t2_bundles, t2_instances
from repro.floorplan import (AnnealConfig, FPBlock, anneal_floorplan,
                             t2_floorplan)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # representative block dimensions (um) by type
    dims_by_type = {
        "spc": (960, 960), "l2d": (620, 620), "l2t": (510, 510),
        "l2b": (390, 390), "ccx": (700, 700), "rtx": (730, 730),
        "mac": (420, 420), "tds": (460, 460), "rdp": (440, 440),
        "ncu": (330, 330), "ccu": (210, 210), "tcu": (270, 270),
        "sii": (300, 300), "sio": (300, 300), "dmu": (330, 330),
        "mcu": (320, 320),
    }
    dims = {name: dims_by_type[tname] for name, tname in t2_instances()}
    bundles = [(b.a, b.b, b.n_wires) for b in t2_bundles()]

    reference = t2_floorplan("2d", dims)
    ref_wl = 0.0
    for a, b, w in bundles:
        ax, ay = reference.center_of(a)
        bx, by = reference.center_of(b)
        ref_wl += w * (abs(ax - bx) + abs(ay - by))
    print(f"reference 2D floorplan: {reference.area_um2 / 1e6:.2f} mm^2, "
          f"bundle wirelength {ref_wl / 1e6:.2f} m")

    blocks = [FPBlock(name, *dims[name]) for name, _ in t2_instances()]
    print(f"annealing {len(blocks)} blocks for {args.iterations} moves ...")
    annealed = anneal_floorplan(
        blocks, bundles,
        AnnealConfig(iterations=args.iterations, seed=args.seed,
                     wl_weight=1.0))
    print(f"annealed floorplan:     {annealed.area / 1e6:.2f} mm^2, "
          f"bundle wirelength {annealed.wirelength / 1e6:.2f} m")
    better_area = annealed.area < reference.area_um2
    print(f"-> annealer {'wins' if better_area else 'loses'} on area; "
          f"the hand floorplan encodes the regular SPC/L2 adjacency that "
          f"random moves rarely find (the paper's Section 3.1 argument).")


if __name__ == "__main__":
    main()
