#!/usr/bin/env python3
"""Render the paper's layout figures as SVG files.

Produces the visual artifacts of the study: the folded CCX with its via
dots (Fig. 2b / 5b) and the five full-chip floorplan panels (Fig. 8a-e),
written as standalone SVGs into ``layouts/``.

Usage::

    python examples/render_layouts.py [--out layouts]
"""

import argparse
import pathlib

from repro.analysis.layout_svg import render_block_svg, render_chip_svg
from repro.core.folding import FoldSpec, make_partition
from repro.designgen import block_type_by_name, generate_block
from repro.floorplan import STYLES, t2_floorplan
from repro.designgen import t2_instances
from repro.place import PlacementConfig, fold_place_3d
from repro.tech import make_process


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="layouts")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    out = pathlib.Path(args.out)
    out.mkdir(exist_ok=True)
    process = make_process()

    # folded CCX with its four vias (Fig. 2b)
    gb = generate_block(block_type_by_name("ccx"), process.library,
                        seed=args.seed)
    part = make_partition(gb, FoldSpec(mode="regions",
                                       die1_regions=("cpx",)))
    res = fold_place_3d(gb.netlist, process, part, "F2F",
                        PlacementConfig(seed=args.seed))
    sites = {v.net_id: (v.x, v.y) for v in res.vias}
    svg = render_block_svg(gb.netlist, res.outline, via_sites=sites)
    (out / "ccx_folded.svg").write_text(svg)
    print(f"wrote {out / 'ccx_folded.svg'} "
          f"({res.outline.width:.0f} x {res.outline.height:.0f} um, "
          f"{len(sites)} vias)")

    # the five chip panels (Fig. 8a-e) from representative block dims
    dims_by_type = {
        "spc": (950, 950), "l2d": (620, 620), "l2t": (500, 500),
        "l2b": (390, 390), "ccx": (700, 700), "rtx": (730, 730),
        "mac": (420, 420), "tds": (460, 460), "rdp": (440, 440),
        "ncu": (330, 330), "ccu": (210, 210), "tcu": (270, 270),
        "sii": (300, 300), "sio": (300, 300), "dmu": (330, 330),
        "mcu": (320, 320),
    }
    folded = {"spc", "ccx", "l2d", "l2t", "rtx"}
    for style in STYLES:
        dims = {}
        for name, tname in t2_instances():
            w, h = dims_by_type[tname]
            if style.startswith("fold") and tname in folded:
                w, h = w * 0.72, h * 0.72
            dims[name] = (w, h)
        fp = t2_floorplan(style, dims)
        (out / f"chip_{style}.svg").write_text(render_chip_svg(fp))
        print(f"wrote {out / f'chip_{style}.svg'} "
              f"({fp.width / 1000:.1f} x {fp.height / 1000:.1f} mm)")


if __name__ == "__main__":
    main()
