#!/usr/bin/env python3
"""The power-vs-temperature tradeoff of 3D stacking (paper future work).

The paper's conclusion lists thermal analysis of the bonding styles as
future work.  This example runs it: build the chip in several design
styles, feed the per-tier power maps into the compact thermal model, and
print the tradeoff -- 3D saves power but concentrates it on half the
footprint, and the F2B TSV farm doubles as a heat path for the far tier.

Usage::

    python examples/thermal_tradeoff.py [--scale 0.6]
"""

import argparse

from repro.core.fullchip import ChipConfig, build_chip
from repro.tech import make_process
from repro.thermal import analyze_chip_thermal


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--styles", nargs="*",
                        default=["2d", "core_cache", "fold_f2b",
                                 "fold_f2f"])
    args = parser.parse_args()

    process = make_process()
    print(f"{'style':12s}{'power mW':>10s}{'max C':>8s}"
          f"{'near tier':>11s}{'far tier':>10s}{'3D vias':>9s}")
    baseline = None
    for style in args.styles:
        chip = build_chip(ChipConfig(style=style, scale=args.scale),
                          process)
        thermal = analyze_chip_thermal(chip)
        tiers = sorted(thermal.temperature_c)
        near = thermal.tier_max(tiers[0])
        far = thermal.tier_max(tiers[-1]) if len(tiers) > 1 else float(
            "nan")
        print(f"{style:12s}{chip.power.total_uw / 1e3:10.1f}"
              f"{thermal.max_c:8.1f}{near:11.1f}{far:10.1f}"
              f"{chip.n_3d_connections:9d}")
        if baseline is None:
            baseline = (chip.power.total_uw, thermal.max_c)
        else:
            dp = chip.power.total_uw / baseline[0] - 1
            dt = thermal.max_c - baseline[1]
            print(f"{'':12s}-> {dp:+.1%} power, {dt:+.1f} C vs 2D")


if __name__ == "__main__":
    main()
