#!/usr/bin/env python3
"""An engineering-change-order session on a finished design.

Shows the incremental tooling on a signed-off block: open a persistent
timing view, apply Vth swaps with instant re-timing, check and fix hold,
and gate low-activity flops -- the kind of late-stage surgery a real
project does without re-running the whole flow.

Usage::

    python examples/eco_session.py [--block l2t]
"""

import argparse
import time

from repro.core import FlowConfig, run_block_flow
from repro.cts import synthesize_clock_tree
from repro.opt import insert_clock_gates
from repro.power import analyze_power, apply_activity, propagate_activity
from repro.tech import VTH_HVT, make_process
from repro.timing import (IncrementalSTA, TimingConfig, fix_hold,
                          run_hold_analysis)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--block", default="l2t")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    process = make_process()
    print(f"baseline flow on {args.block!r} ...")
    design = run_block_flow(args.block, FlowConfig(seed=args.seed),
                            process)
    domain = design.generated.block_type.logic.clock_domain
    timing = TimingConfig(domain)
    # use propagated per-net activities for the whole session so the
    # before/after power comparison shares one activity model
    signals = propagate_activity(design.netlist)
    apply_activity(design.netlist, signals)
    cts = synthesize_clock_tree(design.netlist, process)
    power0 = analyze_power(design.netlist, design.routing, process,
                           domain, cts=cts).total_uw
    print(f"  power {power0 / 1e3:.2f} mW (propagated activities), "
          f"WNS {design.sta.wns_ps:+.0f} ps")

    print("\nECO 1: opportunistic HVT swaps via incremental STA")
    inc = IncrementalSTA(design.netlist, design.routing, process, timing)
    t0 = time.time()
    swaps = tried = 0
    for cell in list(design.netlist.cells):
        if cell.is_sequential or cell.master.vth == VTH_HVT:
            continue
        snapshot = inc.result()
        if snapshot.slack.get(cell.id, 0.0) < 120.0:
            continue
        tried += 1
        hvt = process.library.variant(cell.master, vth=VTH_HVT)
        inc.swap_master(cell.id, hvt)
        if inc.result().wns_ps < 0:
            inc.swap_master(cell.id, cell.master)  # revert
        else:
            swaps += 1
        if tried >= 300:
            break
    print(f"  {swaps} swaps accepted of {tried} tried in "
          f"{time.time() - t0:.1f}s, WNS {inc.result().wns_ps:+.0f} ps")

    print("\nECO 2: hold sign-off")
    cts = synthesize_clock_tree(design.netlist, process)
    hold = run_hold_analysis(design.netlist, design.routing, process,
                             timing, cts=cts)
    print(f"  worst hold slack {hold.whs_ps:+.0f} ps "
          f"({hold.violations} violations, skew {cts.skew_ps:.0f} ps)")
    if hold.violations:
        added = fix_hold(design.netlist, design.routing, hold, process)
        print(f"  padded {added} capture pins")

    print("\nECO 3: clock gating from propagated activities")
    gating = insert_clock_gates(design.netlist, process, signals)
    print(f"  {gating.n_gates} gates over {gating.gated_flops}/"
          f"{gating.total_flops} flops "
          f"(mean enable {gating.mean_enable:.2f})")

    from repro.route import route_block
    routing = route_block(design.netlist, process.metal_stack)
    cts = synthesize_clock_tree(design.netlist, process)
    power1 = analyze_power(design.netlist, routing, process, domain,
                           cts=cts).total_uw
    print(f"\nfinal power {power1 / 1e3:.2f} mW "
          f"({power1 / power0 - 1:+.1%} vs baseline)")


if __name__ == "__main__":
    main()
