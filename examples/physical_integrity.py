#!/usr/bin/env python3
"""Physical-integrity scorecard: thermal, IR drop, corners, and cost.

Runs the analyses beyond the paper's scope -- its stated future work and
the manufacturing side its introduction motivates -- over the design
styles: steady-state temperature, power-grid droop, multi-corner timing
of a representative block, and cost per good die.

Usage::

    python examples/physical_integrity.py [--scale 0.6]
"""

import argparse

from repro.analysis.corners import analyze_corners, signoff_summary
from repro.analysis.cost import cost_comparison, format_cost_table
from repro.analysis.irdrop import analyze_chip_ir_drop
from repro.core.flow import FlowConfig, run_block_flow
from repro.core.fullchip import ChipConfig, build_chip
from repro.tech import make_process
from repro.thermal import analyze_chip_thermal


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--styles", nargs="*",
                        default=["2d", "core_cache", "fold_f2f"])
    args = parser.parse_args()
    process = make_process()

    print("== thermal and power-grid integrity ==")
    print(f"{'style':12s}{'power mW':>10s}{'max temp C':>12s}"
          f"{'max droop mV':>14s}")
    footprints = {}
    for style in args.styles:
        chip = build_chip(ChipConfig(style=style, scale=args.scale),
                          process)
        thermal = analyze_chip_thermal(chip)
        ir = analyze_chip_ir_drop(chip)
        footprints[style] = chip.footprint_um2 / 1e6
        print(f"{style:12s}{chip.power.total_uw / 1e3:10.1f}"
              f"{thermal.max_c:12.1f}{ir.max_drop_v * 1e3:14.1f}")

    print("\n== manufacturing cost (die-to-die bonding, KGD test) ==")
    print(format_cost_table(cost_comparison(footprints)))

    print("\n== multi-corner sign-off of the CCX block ==")
    design = run_block_flow("ccx", FlowConfig(scale=args.scale), process)
    print(signoff_summary(analyze_corners(design, process)))


if __name__ == "__main__":
    main()
