#!/usr/bin/env python3
"""Quickstart: fold one T2 block and compare 2D vs 3D vs bonding styles.

Runs the paper's core experiment on the cache crossbar (CCX): implement
it flat (2D), folded across two tiers with TSVs (F2B), and folded with
face-to-face vias (F2F), then print the comparison table -- the same
metrics as the paper's Fig. 2 / Table 4.

Usage::

    python examples/quickstart.py [--block ccx] [--scale 1.0]
"""

import argparse

from repro.analysis.report import design_metric_rows, format_table
from repro.core import FlowConfig, FoldSpec, run_block_flow
from repro.tech import make_process

NATURAL_FOLDS = {
    "ccx": FoldSpec(mode="regions", die1_regions=("cpx",)),
    "l2d": FoldSpec(mode="regions", die1_regions=("subbank2", "subbank3")),
    "rtx": FoldSpec(mode="regions", die1_regions=("tx",)),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--block", default="ccx",
                        help="T2 block type to fold (default: ccx)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="model scale factor (default: 1.0)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    process = make_process()
    fold = NATURAL_FOLDS.get(args.block, FoldSpec(mode="mincut"))
    base = FlowConfig(scale=args.scale, seed=args.seed)

    print(f"designing {args.block!r} three ways "
          f"(scale {args.scale}, seed {args.seed}) ...")
    flat = run_block_flow(args.block, base, process)
    from dataclasses import replace
    f2b = run_block_flow(args.block,
                         replace(base, fold=fold, bonding="F2B"), process)
    f2f = run_block_flow(args.block,
                         replace(base, fold=fold, bonding="F2F"), process)

    print()
    print(format_table(
        f"{args.block}: 2D vs folded 3D (both bonding styles)",
        ["2D", "3D F2B (TSV)", "3D F2F via"],
        design_metric_rows([flat, f2b, f2f])))
    print()
    print(f"worst slack: 2D {flat.sta.wns_ps:+.0f} ps, "
          f"F2B {f2b.sta.wns_ps:+.0f} ps, F2F {f2f.sta.wns_ps:+.0f} ps "
          f"(all designs meet timing at the same target frequency)")


if __name__ == "__main__":
    main()
