#!/usr/bin/env python3
"""Build the full OpenSPARC-T2 model chip in all five design styles.

Reproduces the paper's headline comparison (Fig. 8 + Tables 2/5): the
2D baseline, the two stacking floorplans, and block folding with each
bonding style -- optionally with the dual-Vth library.

Usage::

    python examples/fullchip_styles.py [--scale 0.7] [--dual-vth]
"""

import argparse
import time

from repro.analysis.report import design_metric_rows, format_table
from repro.core.fullchip import ChipConfig, build_chip
from repro.floorplan.t2_floorplans import STYLES
from repro.tech import make_process


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.7,
                        help="model scale (1.0 = full model, slower)")
    parser.add_argument("--dual-vth", action="store_true",
                        help="use the dual-Vth (RVT+HVT) library")
    parser.add_argument("--styles", nargs="*", default=list(STYLES),
                        choices=list(STYLES))
    args = parser.parse_args()

    process = make_process()
    chips = {}
    for style in args.styles:
        t0 = time.time()
        chips[style] = build_chip(
            ChipConfig(style=style, scale=args.scale,
                       dual_vth=args.dual_vth), process)
        c = chips[style]
        print(f"built {style:11s} in {time.time() - t0:5.1f}s: "
              f"{c.footprint_um2 / 1e6:6.2f} mm^2/tier, "
              f"{c.n_3d_connections:6d} 3D connections, "
              f"{c.power.total_uw / 1e3:7.1f} mW")

    print()
    vth = "dual-Vth" if args.dual_vth else "RVT only"
    print(format_table(
        f"Full-chip comparison ({vth}, scale {args.scale})",
        [s for s in args.styles],
        design_metric_rows([chips[s] for s in args.styles], kind="chip")))


if __name__ == "__main__":
    main()
