"""Block-design caching for sweeps.

Design-space sweeps rebuild the same (block type, flow config) pairs
over and over -- unfolded control blocks recur identically across chip
styles, RVT blocks across bonding variants.  ``FlowConfig`` is a frozen
dataclass (fold specs included), so (block, config) is a proper cache
key; a finished :class:`~repro.core.flow.BlockDesign` is immutable *by
convention* after the flow (the aggregation layers only read it), so
cache hits can share the object.

Pass one :class:`DesignCache` through
:func:`~repro.core.fullchip.build_chip` calls (or the design-space
explorer) to deduplicate the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..tech.process import ProcessNode
from .flow import BlockDesign, FlowConfig, run_block_flow

Key = Tuple[str, FlowConfig]


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DesignCache:
    """Memoizes finished block designs by (block, flow config)."""

    def __init__(self, max_entries: int = 256) -> None:
        self._store: Dict[Key, BlockDesign] = {}
        self.max_entries = max_entries
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def get_or_run(self, block: str, config: FlowConfig,
                   process: ProcessNode) -> BlockDesign:
        """Return the cached design or run the flow and cache it.

        The cached object is shared: treat it as read-only.  Flows that
        intend to mutate the netlist afterwards (ECO sessions) should
        call :func:`run_block_flow` directly.
        """
        key = (block, config)
        hit = self._store.get(key)
        if hit is not None:
            self.stats.hits += 1
            return hit
        self.stats.misses += 1
        design = run_block_flow(block, config, process)
        if len(self._store) >= self.max_entries:
            # simple FIFO eviction; sweeps rarely exceed the default cap
            oldest = next(iter(self._store))
            del self._store[oldest]
        self._store[key] = design
        return design

    def clear(self) -> None:
        self._store.clear()
        self.stats = CacheStats()
