"""Block-design caching for sweeps: in-memory plus a persistent disk tier.

Design-space sweeps rebuild the same (block type, flow config) pairs
over and over -- unfolded control blocks recur identically across chip
styles, RVT blocks across bonding variants.  ``FlowConfig`` is a frozen
dataclass (fold specs included), so (block, config, process) is a proper
cache key; a finished :class:`~repro.core.flow.BlockDesign` is immutable
*by convention* after the flow (the aggregation layers only read it), so
cache hits can share the object.

Two tiers:

* **memory** -- a dict keyed by the content hash, shared objects, FIFO
  capped at ``max_entries``;
* **disk** (optional) -- pass ``cache_dir`` and every finished design is
  pickled under ``<cache_dir>/<sha256>.pkl``.  Keys hash the *content*
  of the request -- block name, every ``FlowConfig`` field (fold spec
  included), a :func:`process_fingerprint` of the technology node, and
  :data:`CODE_VERSION` -- so a stale tree from an older flow can never
  satisfy a new request.  Writes are atomic (temp file + ``os.replace``)
  so concurrent workers sharing one directory never observe a torn file;
  loads are corruption-tolerant (a truncated or garbage file counts as a
  miss, is deleted, and the design is recomputed).

Pass one :class:`DesignCache` through
:func:`~repro.core.fullchip.build_chip` calls (or the design-space
explorer) to deduplicate the work; point several runs (or several
``multiprocessing`` workers) at one ``cache_dir`` to make reruns
near-free.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..faults.inject import corrupt_point
from ..obs import trace
from ..obs.metrics import metrics
from ..tech.process import ProcessNode
from .flow import BlockDesign, FlowConfig, run_block_flow

#: Version stamp baked into every disk-cache key.  Bump whenever the
#: flow's numerics change (placement, routing, timing, power models):
#: old entries then silently become misses instead of serving stale
#: designs.
CODE_VERSION = "2"


def process_fingerprint(process: ProcessNode) -> Dict[str, object]:
    """Stable identity of a technology node for cache keying.

    Captures every process parameter the block flow reads -- supply,
    clocks, activity, the 3D via electricals and the metal stack shape --
    as plain JSON-serializable values.  Two nodes with equal fingerprints
    produce equal designs for equal configs.
    """
    def via(v) -> Dict[str, object]:
        return {
            "style": v.style,
            "diameter_um": v.diameter_um,
            "height_um": v.height_um,
            "pitch_um": v.pitch_um,
            "resistance_kohm": v.resistance_kohm,
            "capacitance_ff": v.capacitance_ff,
            "occupies_silicon": v.occupies_silicon,
            "landing_pad_um": v.landing_pad_um,
        }
    return {
        "name": process.name,
        "vdd": process.vdd,
        "clock_freq_ghz": dict(sorted(process.clock_freq_ghz.items())),
        "default_activity": process.default_activity,
        "cell_height_um": process.cell_height_um,
        "n_metal_layers": len(process.metal_stack.layers),
        "tsv": via(process.tsv),
        "f2f_via": via(process.f2f_via),
    }


def design_key(block: str, config: FlowConfig,
               process: ProcessNode) -> str:
    """Content hash of one block-flow request.

    The key covers the block name, the whole ``FlowConfig`` (fold spec,
    bonding, seed, scale, budgets, ...), the process fingerprint and
    :data:`CODE_VERSION`, so any input that can change the finished
    design changes the key.
    """
    payload = {
        "block": block,
        "config": asdict(config),
        "process": process_fingerprint(process),
        "version": CODE_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters across both tiers."""

    hits: int = 0            # in-memory hits
    disk_hits: int = 0       # loaded from the persistent tier
    misses: int = 0          # full flow runs
    stores: int = 0          # designs written to disk
    evictions: int = 0       # entries dropped (either tier)
    corrupt_drops: int = 0   # unreadable disk entries discarded

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.disk_hits + self.misses
        return (self.hits + self.disk_hits) / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        d = asdict(self)
        d["hit_rate"] = self.hit_rate
        return d


class DesignCache:
    """Memoizes finished block designs by content-hashed request.

    Args:
        max_entries: in-memory entry cap (FIFO eviction).
        cache_dir: optional directory for the persistent tier; created
            on demand.  Safe to share between processes.
        max_disk_entries: optional cap on on-disk entries; the oldest
            (by mtime) are pruned after each store.
    """

    def __init__(self, max_entries: int = 256,
                 cache_dir: Optional[Union[str, Path]] = None,
                 max_disk_entries: Optional[int] = None) -> None:
        self._store: Dict[str, BlockDesign] = {}
        self.max_entries = max_entries
        self.max_disk_entries = max_disk_entries
        self.cache_dir: Optional[Path] = \
            Path(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    # ---- disk tier -----------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def disk_entries(self) -> int:
        """Number of entries currently in the persistent tier."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.pkl"))

    def _load_disk(self, key: str) -> Optional[BlockDesign]:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        # chaos hook: an active "corrupt" fault spec garbles the entry
        # here, immediately before the read, so the tolerant-load path
        # below is exercised for real (inert without a fault plan)
        corrupt_point(path)
        try:
            with open(path, "rb") as f:
                design = pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            # truncated write, foreign bytes, unpicklable after a code
            # change: drop the entry and recompute
            self.stats.corrupt_drops += 1
            metrics().counter("cache.corrupt_drops").inc()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(design, BlockDesign):
            self.stats.corrupt_drops += 1
            metrics().counter("cache.corrupt_drops").inc()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return design

    def _store_disk(self, key: str, design: BlockDesign) -> None:
        if self.cache_dir is None:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(design, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.stores += 1
            metrics().counter("cache.stores").inc()
            self._prune_disk()
        except OSError:
            # an unwritable cache directory degrades to memory-only
            pass

    def _prune_disk(self) -> None:
        if self.max_disk_entries is None or self.cache_dir is None:
            return
        entries = sorted(self.cache_dir.glob("*.pkl"),
                         key=lambda p: p.stat().st_mtime)
        while len(entries) > self.max_disk_entries:
            victim = entries.pop(0)
            try:
                victim.unlink()
                self.stats.evictions += 1
            except OSError:
                pass

    def clear_disk(self) -> None:
        """Delete every entry of the persistent tier."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        for path in self.cache_dir.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass

    # ---- the lookup ----------------------------------------------------

    def _remember(self, key: str, design: BlockDesign) -> None:
        if len(self._store) >= self.max_entries:
            # simple FIFO eviction; sweeps rarely exceed the default cap
            oldest = next(iter(self._store))
            del self._store[oldest]
            self.stats.evictions += 1
        self._store[key] = design

    def get_or_run(self, block: str, config: FlowConfig,
                   process: ProcessNode) -> BlockDesign:
        """Return the cached design or run the flow and cache it.

        The cached object is shared: treat it as read-only.  Flows that
        intend to mutate the netlist afterwards (ECO sessions) should
        call :func:`run_block_flow` directly.

        Every lookup records a ``cache.lookup`` span whose ``outcome``
        attribute is ``memory_hit`` / ``disk_hit`` / ``miss``, and
        increments the matching ``cache.*`` counters.
        """
        with trace.span("cache.lookup", block=block) as sp:
            key = design_key(block, config, process)
            hit = self._store.get(key)
            if hit is not None:
                self.stats.hits += 1
                metrics().counter("cache.memory_hits").inc()
                sp.set(outcome="memory_hit")
                return hit
            design = self._load_disk(key)
            if design is not None:
                self.stats.disk_hits += 1
                metrics().counter("cache.disk_hits").inc()
                sp.set(outcome="disk_hit")
                self._remember(key, design)
                return design
            self.stats.misses += 1
            metrics().counter("cache.misses").inc()
            sp.set(outcome="miss")
            design = run_block_flow(block, config, process)
            self._remember(key, design)
            self._store_disk(key, design)
            return design

    def clear(self) -> None:
        """Drop the in-memory tier and reset the counters (the disk tier
        survives; see :meth:`clear_disk`)."""
        self._store.clear()
        self.stats = CacheStats()
