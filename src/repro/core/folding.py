"""Block folding: candidate selection and fold partitions (Section 4).

**Folding criteria** (Section 4.1).  A block is worth folding when

1. it consumes a significant share (>1%) of total system power,
2. its *net power* share is high (cell/leakage-dominated blocks, such as
   the memory-heavy L2 data bank, gain little from shorter wires), and
3. it contains many *long wires* (longer than 100x the standard-cell
   height), whose shortening delivers the net-power saving.

:func:`folding_candidates` evaluates all three on finished 2D block
designs and reproduces Table 3.

**Fold partitions** (Sections 4.3-4.5).  :func:`make_partition` turns a
:class:`FoldSpec` into a per-instance tier assignment:

* ``regions`` -- a natural partition: named regions (PCX/CPX, L2D
  sub-banks) to tier 1;
* ``mincut`` -- FM min-cut with area balance;
* ``interleave`` -- clusters striped across tiers with a period; shorter
  periods produce more 3D connections (the Fig. 7 partition-case sweep);
* ``fub_assign`` -- whole functional-unit blocks assigned to tiers (the
  SPC's *block-level 3D* baseline);
* ``fub_fold`` -- second-level folding: the named FUBs are split across
  tiers internally, the rest assigned whole (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..designgen.generate import GeneratedBlock
from ..place.partition import fm_bipartition, partition_by_clusters
from ..tech.process import CPU_CLOCK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flow import BlockDesign

FOLD_MODES = ("mincut", "regions", "interleave", "fub_assign", "fub_fold")


@dataclass(frozen=True)
class FoldSpec:
    """How to partition a block across the two tiers."""

    mode: str = "mincut"
    #: regions placed on tier 1 (mode="regions")
    die1_regions: Tuple[str, ...] = ()
    #: cluster stripe period (mode="interleave"); smaller = more 3D nets
    interleave_period: int = 2
    #: area balance tolerance for min-cut
    balance_tol: float = 0.10
    #: regions folded internally (mode="fub_fold")
    folded_regions: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in FOLD_MODES:
            raise ValueError(f"unknown fold mode {self.mode!r}")


def make_partition(gb: GeneratedBlock, spec: FoldSpec) -> Dict[int, int]:
    """Build the instance -> tier assignment for a fold spec."""
    netlist = gb.netlist
    if spec.mode == "mincut":
        return fm_bipartition(netlist,
                              balance_tol=spec.balance_tol).assignment

    if spec.mode == "regions":
        if not spec.die1_regions:
            raise ValueError("regions mode requires die1_regions")
        die1 = gb.clusters_of_regions(spec.die1_regions)
        return partition_by_clusters(netlist, die1)

    if spec.mode == "interleave":
        # stripe the (cluster-ordered) instance sequence across the tiers;
        # the stripe width is ``interleave_period`` instances, so period 1
        # alternates every instance (maximum 3D connections) and large
        # periods approach a locality-preserving half/half split
        period = max(1, spec.interleave_period)
        order = sorted(netlist.instances.values(),
                       key=lambda i: (i.cluster, i.id))
        return {inst.id: (idx // period) % 2
                for idx, inst in enumerate(order)}

    # FUB-granularity modes
    if not gb.regions:
        raise ValueError(f"block {netlist.name!r} has no regions")
    if spec.mode == "fub_assign":
        region_die = assign_regions_balanced(gb)
        return {i.id: region_die.get(gb.region_of_cluster(i.cluster), 0)
                for i in netlist.instances.values()}

    # fub_fold: split named regions internally, assign the rest whole
    folded = set(spec.folded_regions)
    unknown = folded - set(gb.regions)
    if unknown:
        raise ValueError(f"unknown regions {sorted(unknown)}")
    region_die = assign_regions_balanced(
        gb, exclude=folded)
    assignment: Dict[int, int] = {}
    locked = set()
    for inst in netlist.instances.values():
        region = gb.region_of_cluster(inst.cluster)
        if region in folded:
            lo, hi = gb.regions[region]
            mid = (lo + hi) / 2.0
            assignment[inst.id] = 0 if inst.cluster < mid else 1
        else:
            assignment[inst.id] = region_die.get(region, 0)
            locked.add(inst.id)
    # refine the intra-FUB splits to min-cut (the mixed-size 3D placer's
    # job in the paper); whole-FUB assignments stay locked
    refined = fm_bipartition(netlist, initial=assignment, locked=locked,
                             balance_tol=spec.balance_tol)
    return refined.assignment


def assign_regions_balanced(gb: GeneratedBlock,
                            exclude: Optional[set] = None) -> Dict[str, int]:
    """Greedy whole-region tier assignment balancing area.

    Excluded (internally-folded) regions contribute half their area to
    each tier, exactly as a folded FUB does.
    """
    exclude = exclude or set()
    area_of: Dict[str, float] = {name: 0.0 for name in gb.regions}
    for inst in gb.netlist.instances.values():
        region = gb.region_of_cluster(inst.cluster)
        if region is not None:
            area_of[region] += inst.area_um2
    load = [0.0, 0.0]
    for name in exclude:
        load[0] += area_of.get(name, 0.0) / 2.0
        load[1] += area_of.get(name, 0.0) / 2.0
    region_die: Dict[str, int] = {}
    for name in sorted((n for n in area_of if n not in exclude),
                       key=lambda n: -area_of[n]):
        die = 0 if load[0] <= load[1] else 1
        region_die[name] = die
        load[die] += area_of[name]
    return region_die


# ---------------------------------------------------------------------------
# folding criteria (Table 3)
# ---------------------------------------------------------------------------

@dataclass
class FoldingCandidate:
    """One row of the paper's Table 3."""

    block: str
    count: int
    total_power_pct: float
    net_power_pct: float
    long_wires: int
    clock_domain: str
    qualifies: bool

    @property
    def remark(self) -> str:
        clk = "CPU clock" if self.clock_domain == CPU_CLOCK else "I/O clock"
        mult = f", {self.count}X" if self.count > 1 else ""
        return clk + mult


def folding_candidates(designs: Dict[str, "BlockDesign"],
                       counts: Dict[str, int],
                       min_power_pct: float = 1.0,
                       min_net_pct: float = 25.0,
                       min_long_wires: int = 1) -> List[FoldingCandidate]:
    """Evaluate the Section 4.1 folding criteria on 2D block designs.

    Args:
        designs: block type -> 2D design (one instance each).
        counts: block type -> chip multiplicity.
        min_power_pct: criterion 1 threshold on per-block total-power %.
        min_net_pct: criterion 2 threshold on net-power share.
        min_long_wires: criterion 3 threshold.

    Returns:
        Candidates sorted by per-block total power share, descending --
        the layout of Table 3.
    """
    total = sum(d.power.total_uw * counts.get(name, 1)
                for name, d in designs.items())
    rows: List[FoldingCandidate] = []
    for name, d in designs.items():
        pct = 100.0 * d.power.total_uw / total if total > 0 else 0.0
        net_pct = 100.0 * d.power.net_fraction
        qualifies = (pct >= min_power_pct and net_pct >= min_net_pct
                     and d.long_wires >= min_long_wires)
        rows.append(FoldingCandidate(
            block=name,
            count=counts.get(name, 1),
            total_power_pct=pct,
            net_power_pct=net_pct,
            long_wires=d.long_wires,
            clock_domain=_domain_of(d),
            qualifies=qualifies,
        ))
    rows.sort(key=lambda r: -r.total_power_pct)
    return rows


def _domain_of(design: "BlockDesign") -> str:
    if design.generated is not None:
        return design.generated.block_type.logic.clock_domain
    return CPU_CLOCK


# ---------------------------------------------------------------------------
# the Fig. 7 partition-case sweep
# ---------------------------------------------------------------------------

def partition_case_sweep(gb: GeneratedBlock) -> List[Tuple[str, FoldSpec]]:
    """The five partition cases of Fig. 7, ordered by 3D connection count.

    Case #1 is the min-cut partition (fewest 3D nets); later cases stripe
    the cluster space with decreasing period, adding 3D connections.
    """
    cases: List[Tuple[str, FoldSpec]] = [("#1", FoldSpec(mode="mincut"))]
    if gb.regions and len(gb.regions) >= 2:
        names = tuple(sorted(gb.regions))
        cases.append(("#2", FoldSpec(mode="regions",
                                     die1_regions=names[1::2])))
    else:
        cases.append(("#2", FoldSpec(mode="interleave",
                                     interleave_period=256)))
    # stripe widths in instances: narrower stripes = more 3D connections
    cases += [
        ("#3", FoldSpec(mode="interleave", interleave_period=48)),
        ("#4", FoldSpec(mode="interleave", interleave_period=12)),
        ("#5", FoldSpec(mode="interleave", interleave_period=3)),
    ]
    return cases
