"""Full-chip T2 assembly (paper Sections 3 and 6).

Builds complete chips in the five design styles of Fig. 8 -- 2D,
core/cache stacking, core/core stacking, and block folding with F2B or
F2F bonding -- and rolls block-level designs up into chip-level metrics:

* the chip floorplan (reference layouts, shelf-packed from actual block
  footprints);
* chip-level wire bundles routed by the capacity-aware global router,
  with over-the-block routing rules by bonding style (Section 6.1): most
  blocks leave M8/M9 free above them, the SPC and F2F-folded blocks do
  not;
* per-block I/O timing budgets derived from bundle delays -- the paper's
  PrimeTime loop (Section 2.2): shorter 3D bundles hand the blocks looser
  budgets, which the block optimizer converts into smaller/HVT cells;
* chip repeaters on the bundles, the top-level clock spine, and the
  TSV / F2F via counts of the whole stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..designgen.t2 import Bundle, t2_block_types, t2_bundles, t2_instances
from ..floorplan.t2_floorplans import (BOTH_DIES, FOLDED_TYPES, STYLES,
                                       ChipFloorplan, t2_floorplan)
from ..obs import trace
from ..obs.metrics import metrics
from ..opt.buffering import optimal_spacing_um
from ..place.grid import Rect
from ..power.analysis import PowerReport
from ..route.global_router import GlobalRouter
from ..route.steiner import steiner_length
from ..tech.process import CPU_CLOCK, ProcessNode
from .flow import BlockDesign, FlowConfig, run_block_flow
from .folding import FoldSpec
from .secondlevel import second_level_spec

#: default fold partition per folded block type (the paper's choices:
#: natural partitions where the structure provides one, min-cut otherwise)
DEFAULT_FOLDS: Dict[str, FoldSpec] = {
    "ccx": FoldSpec(mode="regions", die1_regions=("cpx",)),
    "l2d": FoldSpec(mode="regions", die1_regions=("subbank2", "subbank3")),
    "l2t": FoldSpec(mode="mincut"),
    "rtx": FoldSpec(mode="regions", die1_regions=("tx",)),
    "spc": second_level_spec(),
}

#: over-the-block routing capacity left above a block (Section 6.1)
OTB_NORMAL = 0.70     # block routes to M7; M8/M9 free above it
OTB_BLOCKED = 0.30    # block uses all nine layers (SPC, F2F-folded);
                      # only the channels between blocks remain


@dataclass(frozen=True)
class ChipConfig:
    """Configuration of a full-chip build."""

    style: str = "2d"
    scale: float = 1.0
    seed: int = 1
    dual_vth: bool = False
    opt_rounds: int = 2
    folded_types: Tuple[str, ...] = FOLDED_TYPES
    #: budget bucket (ps) so identical blocks share one design run
    budget_bucket_ps: float = 25.0
    #: per-block-type minimum I/O budgets (ps), e.g. from a previous
    #: sign-off iteration (see core.chip_sta.build_signed_off_chip)
    budget_floor_ps: Tuple[Tuple[str, float], ...] = ()
    #: run the static checker on every block flow and on the assembled
    #: chip; raise :class:`repro.lint.LintError` on any unwaived error
    assert_clean: bool = False

    def __post_init__(self) -> None:
        if self.style not in STYLES:
            raise ValueError(f"unknown style {self.style!r}")

    @property
    def is_3d(self) -> bool:
        return self.style != "2d"

    @property
    def is_folded(self) -> bool:
        return self.style in ("fold_f2b", "fold_f2f")

    @property
    def bonding(self) -> str:
        return "F2F" if self.style == "fold_f2f" else "F2B"


@dataclass
class RoutedBundle:
    """One chip-level bundle after global routing."""

    bundle: Bundle
    length_um: float
    crosses_dies: bool
    n_repeaters: int
    delay_ps: float


@dataclass
class ChipDesign:
    """A complete chip in one design style."""

    config: ChipConfig
    floorplan: ChipFloorplan
    block_designs: Dict[str, BlockDesign]
    routed_bundles: List[RoutedBundle]
    power: PowerReport
    footprint_um2: float
    wirelength_um: float
    interblock_wl_um: float
    n_cells: int
    n_buffers: int
    n_3d_connections: int
    hvt_fraction: float
    wns_ps: float
    #: per-die chip-level global-router overflow fractions
    router_overflow: Tuple[float, ...] = ()
    #: chip-level TSV array plan (F2B 3D styles only)
    tsv_plan: Optional[object] = None
    #: wall-clock per build phase (budget/blocks/assemble/aggregate) in
    #: milliseconds; a thin view over the build's ``repro.obs`` spans
    #: (``chip.blocks`` -> ``"blocks"``).  Block flows served from a
    #: cache report ~0 here
    phase_times_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def style(self) -> str:
        return self.config.style

    def block_of(self, instance: str) -> BlockDesign:
        """The design backing a chip instance."""
        return self.block_designs[instance.rstrip("0123456789")]


def _fold_for(config: ChipConfig, type_name: str) -> Optional[FoldSpec]:
    if config.is_folded and type_name in config.folded_types:
        return DEFAULT_FOLDS.get(type_name, FoldSpec(mode="mincut"))
    return None


def _estimate_dims(process: ProcessNode, config: ChipConfig
                   ) -> Dict[str, Tuple[float, float]]:
    """Pre-flow footprint estimates (area model, no placement)."""
    from ..designgen.t2 import scaled_logic
    dims: Dict[str, Tuple[float, float]] = {}
    for bt in t2_block_types():
        spec = scaled_logic(bt.logic, config.scale)
        cell_area = spec.n_cells * 110.0  # average model-cell area
        macro_area = sum(m.area_um2 * c for m, c in spec.macros)
        area = cell_area / 0.70 + macro_area * 1.08
        if _fold_for(config, bt.name) is not None:
            area *= 0.55  # folded: ~half plus via overhead
        side = math.sqrt(area)
        for inst, tname in t2_instances():
            if tname == bt.name:
                dims[inst] = (side, side)
    return dims


def _bundle_wire_stats(process: ProcessNode, length_um: float,
                       clock_domain: str, crosses: bool
                       ) -> Tuple[int, float]:
    """(repeaters per wire, delay ps) of one buffered chip-level wire."""
    stack = process.metal_stack
    r, c = stack.effective_rc(8, 9)
    buf = process.library.buffer(drive=16)
    spacing = optimal_spacing_um(buf, r, c)
    n_seg = max(1, int(math.ceil(length_um / spacing)))
    seg_len = length_um / n_seg
    seg_delay = buf.delay_ps(c * seg_len + buf.input_cap_ff) + \
        r * seg_len * (c * seg_len / 2.0 + buf.input_cap_ff)
    delay = n_seg * seg_delay
    if crosses:
        delay += process.tsv.delay_ps(buf.input_cap_ff)
    return n_seg - 1, delay


def build_chip(config: ChipConfig, process: ProcessNode,
               cache=None) -> ChipDesign:
    """Design the full T2 in one style.

    Runs one block flow per unique (type, fold, budget-bucket), assembles
    the reference floorplan from the real block footprints, globally
    routes the bundles with style-dependent blockages, and aggregates
    chip metrics.  Pass a :class:`repro.core.cache.DesignCache` to share
    identical block designs across multiple builds (sweeps).

    The build records a ``chip`` observability span with one child span
    per phase (``chip.budget`` / ``chip.blocks`` / ``chip.assemble`` /
    ``chip.aggregate``); ``ChipDesign.phase_times_ms`` is derived from
    those spans.
    """
    with trace.span("chip", style=config.style, scale=config.scale,
                    seed=config.seed, dual_vth=config.dual_vth):
        return _build_chip(config, process, cache)


def _build_chip(config: ChipConfig, process: ProcessNode,
                cache=None) -> ChipDesign:
    instances = t2_instances()
    bundles = t2_bundles()
    counts: Dict[str, int] = {}
    for _, tname in instances:
        counts[tname] = counts.get(tname, 0) + 1

    # 3D floorplans reserve whitespace channels between blocks for the
    # TSV arrays (the cyan dots of the paper's Fig. 8); 2D needs only
    # routing channels
    gap_um = 35.0 if config.is_3d and config.bonding == "F2B" else 8.0

    # ---- phase 1: budgets from the estimated floorplan -----------------
    phase_times_ms: Dict[str, float] = {}
    with trace.span("chip.budget", style=config.style) as sp_budget:
        est_dims = _estimate_dims(process, config)
        est_fp = t2_floorplan(config.style, est_dims, gap=gap_um)
        budget_of: Dict[str, float] = {}
        for b in bundles:
            ax, ay = est_fp.center_of(b.a)
            bx, by = est_fp.center_of(b.b)
            length = abs(ax - bx) + abs(ay - by)
            crosses = est_fp.crosses_dies(b.a, b.b)
            _, delay = _bundle_wire_stats(process, length,
                                          b.clock_domain, crosses)
            # each side's budget covers its half of the inter-block
            # wire; the optional sign-off loop (core.chip_sta) raises
            # per-type floors where the measured cross paths need more
            for end in (b.a, b.b):
                tname = end.rstrip("0123456789")
                budget_of[tname] = max(budget_of.get(tname, 0.0),
                                       delay / 2.0)
        for tname, floor in config.budget_floor_ps:
            budget_of[tname] = max(budget_of.get(tname, 0.0), floor)
        bucket = max(config.budget_bucket_ps, 1.0)
        budget_of = {k: round(v / bucket) * bucket
                     for k, v in budget_of.items()}
    phase_times_ms["budget"] = sp_budget.duration_ms

    # ---- phase 2: block flows ------------------------------------------
    block_designs: Dict[str, BlockDesign] = {}
    with trace.span("chip.blocks", style=config.style,
                    cached=cache is not None) as sp_blocks:
        for bt in t2_block_types():
            fold = _fold_for(config, bt.name)
            fc = FlowConfig(scale=config.scale, seed=config.seed,
                            fold=fold, bonding=config.bonding,
                            dual_vth=config.dual_vth,
                            io_budget_ps=budget_of.get(bt.name, 0.0),
                            opt_rounds=config.opt_rounds,
                            assert_clean=config.assert_clean)
            if cache is not None:
                block_designs[bt.name] = cache.get_or_run(bt.name, fc,
                                                          process)
            else:
                block_designs[bt.name] = run_block_flow(bt.name, fc,
                                                        process)
    phase_times_ms["blocks"] = sp_blocks.duration_ms

    # ---- phase 3: real floorplan + global routing ----------------------
    with trace.span("chip.assemble", style=config.style) as sp_asm:
        dims = {}
        for inst, tname in instances:
            d = block_designs[tname]
            dims[inst] = d.dims
        floorplan = t2_floorplan(config.style, dims, gap=gap_um)
        outline = Rect(0.0, 0.0, floorplan.width, floorplan.height)

        n_dies = floorplan.n_dies
        routers = [GlobalRouter(outline, n_gcells=24,
                                capacity_per_gcell=3000.0)
                   for _ in range(n_dies)]
        for inst, rect in floorplan.positions.items():
            tname = inst.rstrip("0123456789")
            die = floorplan.die_of[inst]
            folded = die == BOTH_DIES
            spc_like = tname == "spc"
            if folded:
                if config.style == "fold_f2f" or spc_like:
                    frac = (OTB_BLOCKED, OTB_BLOCKED)
                else:  # F2B fold: bottom tier keeps M8/M9, top does not
                    frac = (OTB_NORMAL, OTB_BLOCKED)
                for d in range(n_dies):
                    routers[d].add_blockage(rect,
                                            frac[d] if d < len(frac)
                                            else frac[-1])
            else:
                frac = OTB_BLOCKED if spc_like else OTB_NORMAL
                routers[die].add_blockage(rect, frac)

        # TSV array planning (reference [5]): tier-crossing bundles must
        # land their TSVs in whitespace, outside every block
        tsv_plan = None
        if config.is_3d and config.bonding == "F2B":
            from ..floorplan.tsv_planning import plan_tsv_arrays
            crossing = [(b.a, b.b, b.n_wires) for b in bundles
                        if floorplan.crosses_dies(b.a, b.b)]
            if crossing:
                tsv_plan = plan_tsv_arrays(floorplan, crossing,
                                           process.tsv)

        routed: List[RoutedBundle] = []
        interblock_wl = 0.0
        n_cross_wires = 0
        chip_repeaters_cpu = 0
        chip_repeaters_io = 0
        for b in sorted(bundles, key=lambda x: -x.n_wires):
            src = floorplan.center_of(b.a)
            dst = floorplan.center_of(b.b)
            crosses = floorplan.crosses_dies(b.a, b.b)
            die_a = floorplan.die_of[b.a]
            route_die = die_a if die_a not in (BOTH_DIES,) else \
                (floorplan.die_of[b.b]
                 if floorplan.die_of[b.b] != BOTH_DIES else 0)
            router = routers[min(route_die, n_dies - 1)]
            path = router.route(src, dst, n_wires=b.n_wires)
            length = path.length_um
            if crosses and tsv_plan is not None:
                length += tsv_plan.detour_of((b.a, b.b))
            reps, delay = _bundle_wire_stats(process, length,
                                             b.clock_domain, crosses)
            routed.append(RoutedBundle(bundle=b, length_um=length,
                                       crosses_dies=crosses,
                                       n_repeaters=reps * b.n_wires,
                                       delay_ps=delay))
            interblock_wl += length * b.n_wires
            if crosses:
                n_cross_wires += b.n_wires
            if b.clock_domain == CPU_CLOCK:
                chip_repeaters_cpu += reps * b.n_wires
            else:
                chip_repeaters_io += reps * b.n_wires
        sp_asm.set(n_bundles=len(routed), cross_wires=n_cross_wires)
    phase_times_ms["assemble"] = sp_asm.duration_ms

    # ---- phase 4: aggregation -------------------------------------------
    with trace.span("chip.aggregate", style=config.style) as sp_agg:
        power = PowerReport()
        n_cells = 0
        n_buffers = 0
        n_vias = n_cross_wires
        wirelength = interblock_wl
        wns = math.inf
        hvt_cells = 0.0
        for bt in t2_block_types():
            d = block_designs[bt.name]
            k = counts[bt.name]
            power = power.plus(d.power.scaled(k))
            n_cells += d.n_cells * k
            n_buffers += d.n_buffers * k
            n_vias += d.n_vias * k
            wirelength += d.wirelength_um * k
            wns = min(wns, d.sta.wns_ps)
            hvt_cells += d.hvt_fraction * d.n_cells * k

        # chip-level wire + repeater power
        vdd2 = process.vdd ** 2
        alpha = process.default_activity
        r89, c89 = process.metal_stack.effective_rc(8, 9)
        # chip repeaters sit on multi-millimetre bundles with delay to
        # spare; a dual-Vth flow implements them in HVT
        from ..tech.cells import VTH_HVT
        buf = process.library.buffer(drive=16, vth=VTH_HVT) \
            if config.dual_vth else process.library.buffer(drive=16)
        for rb in routed:
            f = process.clock_freq_ghz[rb.bundle.clock_domain]
            wire_cap = c89 * rb.length_um * rb.bundle.n_wires
            if rb.crosses_dies:
                wire_cap += process.tsv.capacitance_ff * rb.bundle.n_wires
            power.wire_uw += alpha * wire_cap * vdd2 * f
            power.net_uw += alpha * wire_cap * vdd2 * f
            power.cell_uw += alpha * rb.n_repeaters * \
                buf.internal_energy_fj * f
            power.leakage_uw += rb.n_repeaters * buf.leakage_uw
        n_buffers += chip_repeaters_cpu + chip_repeaters_io
        n_cells += chip_repeaters_cpu + chip_repeaters_io

        # top-level clock spine: Steiner over block centers, buffered
        f_cpu = process.clock_freq_ghz[CPU_CLOCK]
        centers = [floorplan.center_of(i) for i, _ in instances]
        spine_len = steiner_length(centers)
        spine_bufs = max(1, int(spine_len / 200.0))
        clock_cap = c89 * spine_len
        power.net_uw += clock_cap * vdd2 * f_cpu
        power.wire_uw += clock_cap * vdd2 * f_cpu
        power.cell_uw += spine_bufs * buf.internal_energy_fj * f_cpu
        power.leakage_uw += spine_bufs * buf.leakage_uw
        power.clock_uw += clock_cap * vdd2 * f_cpu + \
            spine_bufs * buf.internal_energy_fj * f_cpu
        wirelength += spine_len
        n_buffers += spine_bufs
        n_cells += spine_bufs
        if config.dual_vth:
            # chip repeaters and spine buffers are implemented in HVT
            hvt_cells += n_cells - sum(
                block_designs[bt.name].n_cells * counts[bt.name]
                for bt in t2_block_types())

        chip = ChipDesign(
            config=config,
            floorplan=floorplan,
            block_designs=block_designs,
            routed_bundles=routed,
            power=power,
            footprint_um2=floorplan.area_um2,
            wirelength_um=wirelength,
            interblock_wl_um=interblock_wl,
            n_cells=n_cells,
            n_buffers=n_buffers,
            n_3d_connections=n_vias if config.is_3d else 0,
            hvt_fraction=hvt_cells / max(n_cells, 1),
            wns_ps=wns,
            router_overflow=tuple(r.overflow() for r in routers),
            tsv_plan=tsv_plan,
            phase_times_ms=phase_times_ms,
        )
    phase_times_ms["aggregate"] = sp_agg.duration_ms
    metrics().counter("chip.builds").inc()
    metrics().counter("chip.3d_connections").inc(chip.n_3d_connections)
    if config.assert_clean:
        # block flows were gated individually; this pass adds the
        # chip-scope rules (floorplan geometry, router capacity, TSVs)
        from ..lint import assert_clean as _gate, lint_chip
        _gate(lint_chip(chip, include_blocks=False),
              stage=f"chip/{config.style}")
    return chip
