"""Chip-level static timing sign-off (the paper's Section 2.2 loop).

The block flows are driven by I/O budgets derived from the floorplan;
this module closes the loop the way the paper's PrimeTime runs do: for
every inter-block bundle it assembles the full cross-block path --

    launch inside block A  ->  A's output port  ->  buffered inter-block
    wire (+ TSV for crossing bundles)  ->  B's input port  ->  capture
    inside block B

-- and checks it against the clock period.  The result is the chip's
true worst slack including paths no single block can see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..tech.process import ProcessNode
from ..timing.paths import io_path_delays
from ..timing.sta import TimingConfig
from .fullchip import ChipDesign


@dataclass
class CrossPath:
    """One cross-block path: bundle plus its assembled delay."""

    source: str
    sink: str
    t_out_ps: float
    wire_ps: float
    t_in_ps: float
    period_ps: float
    #: pipeline flop stages inserted on the wire (0 = combinational)
    pipeline_stages: int = 0

    @property
    def delay_ps(self) -> float:
        return self.t_out_ps + self.wire_ps + self.t_in_ps

    @property
    def slack_ps(self) -> float:
        """Slack of the worst cycle of the (possibly pipelined) path."""
        if self.pipeline_stages == 0:
            return self.period_ps - self.delay_ps
        seg = self.wire_ps / (self.pipeline_stages + 1)
        worst = max(self.t_out_ps + seg, seg + self.t_in_ps, seg)
        # each hop also pays a flop launch + capture
        return self.period_ps - (worst + 110.0)

    @property
    def latency_cycles(self) -> int:
        """Cycles the signal needs to cross (1 + pipeline stages)."""
        return 1 + self.pipeline_stages


@dataclass
class ChipSTAResult:
    """Chip-level sign-off summary."""

    paths: List[CrossPath]
    wns_ps: float
    block_wns_ps: float
    #: bundles that needed wire pipelining (extra latency cycles)
    pipelined_bundles: int = 0

    @property
    def met(self) -> bool:
        return self.wns_ps >= 0.0 and self.block_wns_ps >= 0.0

    def worst(self, n: int = 5) -> List[CrossPath]:
        return sorted(self.paths, key=lambda p: p.slack_ps)[:n]

    def report(self, n: int = 5) -> str:
        lines = [f"chip-level sign-off: WNS {self.wns_ps:+.0f} ps "
                 f"(block-internal WNS {self.block_wns_ps:+.0f} ps, "
                 f"{self.pipelined_bundles} bundles pipelined)"]
        for p in self.worst(n):
            pipe = f"  [{p.pipeline_stages} pipe]" if \
                p.pipeline_stages else ""
            lines.append(
                f"  {p.source:8s} -> {p.sink:8s}: out {p.t_out_ps:6.0f}"
                f" + wire {p.wire_ps:6.0f} + in {p.t_in_ps:6.0f}"
                f" = {p.delay_ps:7.0f} ps  slack {p.slack_ps:+7.0f}"
                f"{pipe}")
        return "\n".join(lines)


def run_chip_sta(chip: ChipDesign, process: ProcessNode) -> ChipSTAResult:
    """Assemble and time every cross-block path of a built chip."""
    # per block type: (t_in, t_out) from its final routed state
    io_delays: Dict[str, Tuple[float, float]] = {}
    for name, design in chip.block_designs.items():
        domain = design.generated.block_type.logic.clock_domain
        cfg = TimingConfig(clock_domain=domain,
                           default_io_delay_ps=design.config.io_budget_ps)
        io_delays[name] = io_path_delays(design.netlist, design.routing,
                                         process, cfg, sta=design.sta)

    paths: List[CrossPath] = []
    wns = float("inf")
    for rb in chip.routed_bundles:
        a = rb.bundle.a.rstrip("0123456789")
        b = rb.bundle.b.rstrip("0123456789")
        period = 1000.0 / process.clock_freq_ghz[rb.bundle.clock_domain]
        t_out = io_delays[a][1]
        t_in = io_delays[b][0]
        path = CrossPath(source=rb.bundle.a, sink=rb.bundle.b,
                         t_out_ps=t_out, wire_ps=rb.delay_ps,
                         t_in_ps=t_in, period_ps=period)
        paths.append(path)
        wns = min(wns, path.slack_ps)
        # bundles are bidirectional at this abstraction: check the
        # reverse direction too
        rev = CrossPath(source=rb.bundle.b, sink=rb.bundle.a,
                        t_out_ps=io_delays[b][1], wire_ps=rb.delay_ps,
                        t_in_ps=io_delays[a][0], period_ps=period)
        paths.append(rev)
        wns = min(wns, rev.slack_ps)

    if wns == float("inf"):
        wns = 0.0
    return ChipSTAResult(paths=paths, wns_ps=wns,
                         block_wns_ps=chip.wns_ps)


def build_signed_off_chip(config, process: ProcessNode,
                          max_iterations: int = 2,
                          tolerance_ps: float = 25.0):
    """The paper's Section 2.2 iteration, run to closure.

    Builds the chip, times every cross-block path, and -- when a path
    misses -- tightens the receiving block's I/O budget by the measured
    remote launch + wire delay and rebuilds, exactly as the paper's
    PrimeTime -> Encounter loop does.  Returns (chip, chip_sta_result).
    """
    from dataclasses import replace
    from .fullchip import build_chip

    chip = build_chip(config, process)
    sta = run_chip_sta(chip, process)
    for _ in range(max_iterations):
        if sta.wns_ps >= -tolerance_ps:
            break
        from ..designgen.t2 import block_type_by_name

        def block_period(tname: str) -> float:
            domain = block_type_by_name(tname).logic.clock_domain
            return process.clock_period_ps(domain)

        floors: Dict[str, float] = dict(config.budget_floor_ps)
        for path in sta.paths:
            if path.slack_ps >= -tolerance_ps:
                continue
            # a block can absorb only a modest budget tightening before
            # its own deep cones stop closing; cap at ~30% of the
            # block's own period and let wire pipelining take the rest
            sink_type = path.sink.rstrip("0123456789")
            needed = min(path.t_out_ps + path.wire_ps + 10.0,
                         0.30 * block_period(sink_type))
            floors[sink_type] = max(floors.get(sink_type, 0.0), needed)
            src_type = path.source.rstrip("0123456789")
            needed_src = min(path.t_in_ps + path.wire_ps + 10.0,
                             0.30 * block_period(src_type))
            floors[src_type] = max(floors.get(src_type, 0.0), needed_src)
        config = replace(config,
                         budget_floor_ps=tuple(sorted(floors.items())))
        chip = build_chip(config, process)
        sta = run_chip_sta(chip, process)
    if sta.wns_ps < -tolerance_ps:
        sta = pipeline_failing_bundles(sta, tolerance_ps)
    return chip, sta


def pipeline_failing_bundles(sta: ChipSTAResult,
                             tolerance_ps: float = 25.0,
                             max_stages: int = 4) -> ChipSTAResult:
    """Insert pipeline flops on bundles whose paths cannot close.

    Long inter-block wires that miss a single cycle are registered
    mid-flight -- the standard SoC resolution (at the cost of one cycle
    of latency per stage), which the sign-off reports explicitly rather
    than hiding the violation.
    """
    pipelined = 0
    wns = float("inf")
    new_paths: List[CrossPath] = []
    for p in sta.paths:
        q = p
        if p.slack_ps < -tolerance_ps:
            for stages in range(1, max_stages + 1):
                q = CrossPath(source=p.source, sink=p.sink,
                              t_out_ps=p.t_out_ps, wire_ps=p.wire_ps,
                              t_in_ps=p.t_in_ps, period_ps=p.period_ps,
                              pipeline_stages=stages)
                if q.slack_ps >= -tolerance_ps:
                    break
            pipelined += 1
        new_paths.append(q)
        wns = min(wns, q.slack_ps)
    if wns == float("inf"):
        wns = 0.0
    return ChipSTAResult(paths=new_paths, wns_ps=wns,
                         block_wns_ps=sta.block_wns_ps,
                         pipelined_bundles=pipelined)
