"""Bonding-style studies: F2B vs F2F on folded blocks (Section 5).

Face-to-back bonding connects the tiers with TSVs, which consume silicon,
are pitch-limited and cannot sit over macros; face-to-face bonding uses
tiny metal-to-metal vias with none of those restrictions.  The paper
shows F2F wins on every partition and that its advantage *grows with the
number of 3D connections* (Fig. 7): TSV area overhead is what kills
heavily-connected F2B partitions.

:func:`compare_bonding` runs one fold in both styles;
:func:`bonding_power_sweep` reproduces Fig. 7's five-partition sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..designgen.generate import generate_block
from ..designgen.t2 import block_type_by_name
from ..tech.process import ProcessNode
from .flow import BlockDesign, FlowConfig, run_block_flow
from .folding import FoldSpec, partition_case_sweep


@dataclass
class BondingComparison:
    """One fold implemented in both bonding styles."""

    label: str
    f2b: BlockDesign
    f2f: BlockDesign

    @property
    def n_vias(self) -> Tuple[int, int]:
        return self.f2b.n_vias, self.f2f.n_vias

    @property
    def power_gain(self) -> float:
        """Relative power change of F2F vs F2B (negative = F2F wins)."""
        return self.f2f.power.total_uw / self.f2b.power.total_uw - 1.0

    @property
    def footprint_gain(self) -> float:
        """Relative footprint change of F2F vs F2B."""
        return self.f2f.footprint_um2 / self.f2b.footprint_um2 - 1.0

    @property
    def wirelength_gain(self) -> float:
        return self.f2f.wirelength_um / self.f2b.wirelength_um - 1.0


def compare_bonding(block: str, fold: FoldSpec, process: ProcessNode,
                    base: Optional[FlowConfig] = None,
                    label: str = "", cache=None) -> BondingComparison:
    """Implement one fold in F2B and F2F and compare.

    Pass a :class:`repro.core.cache.DesignCache` to reuse designs across
    repeated comparisons (sweeps, warm benchmark runs).
    """
    base = base or FlowConfig()

    def flow(cfg: FlowConfig):
        if cache is not None:
            return cache.get_or_run(block, cfg, process)
        return run_block_flow(block, cfg, process)

    f2b = flow(replace(base, fold=fold, bonding="F2B"))
    f2f = flow(replace(base, fold=fold, bonding="F2F"))
    return BondingComparison(label=label or fold.mode, f2b=f2b, f2f=f2f)


def bonding_power_sweep(block: str, process: ProcessNode,
                        base: Optional[FlowConfig] = None,
                        cache=None) -> List[BondingComparison]:
    """The Fig. 7 sweep: five partition cases, both bonding styles.

    Returns comparisons in partition-case order (#1..#5, increasing 3D
    connection count).
    """
    base = base or FlowConfig()
    gb = generate_block(block_type_by_name(block), process.library,
                        seed=base.seed, scale=base.scale)
    out: List[BondingComparison] = []
    for label, fold in partition_case_sweep(gb):
        out.append(compare_bonding(block, fold, process, base, label=label,
                                   cache=cache))
    return out
