"""The RTL-to-layout block design flow (paper Section 2.2).

One entry point, :func:`run_block_flow`, takes a T2 block through the
whole model pipeline:

    generate (synthesis stand-in)
      -> 2D placement  OR  fold partition + two-tier placement
      -> 3D via placement (TSV legalization or the Section 5.1 F2F flow)
      -> routing estimation + parasitics
      -> CTS
      -> staged timing/power optimization (buffers, sizing, dual-Vth)
      -> sign-off STA + power analysis

and returns a :class:`BlockDesign` with every metric the paper tabulates:
footprint, wirelength, cell/buffer counts, 3D via counts, long-wire
statistics, HVT usage and the cell/net/leakage power split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..cts.tree import CTSResult
from ..designgen.generate import GeneratedBlock, generate_block
from ..designgen.t2 import BlockType, block_type_by_name
from ..eco.driver import EcoClosureReport, EcoConfig, close_timing
from ..eco.session import EcoSession
from ..faults.inject import fault_point
from ..netlist.core import Netlist
from ..obs import trace
from ..obs.metrics import metrics
from ..opt.flow import OptimizeConfig, OptimizeResult, optimize_block
from ..place.grid import Rect
from ..place.placer2d import PlacementConfig, place_block_2d
from ..place.placer3d import Fold3DResult, fold_place_3d
from ..power.analysis import PowerReport, analyze_power
from ..route.estimate import RouteContext, RoutingResult
from ..route.route3d import place_f2f_vias
from ..tech.process import ProcessNode
from ..timing.sta import STAResult, TimingConfig
from .folding import FoldSpec, make_partition


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of one block design run.

    Attributes:
        scale: model-scale multiplier for the generator.
        seed: generation/placement seed.
        fold: folding specification; ``None`` keeps the block 2D.
        bonding: ``"F2B"`` or ``"F2F"`` -- only meaningful when folded.
        dual_vth: enable RVT->HVT swapping in the power stage.
        io_budget_ps: external delay at the block's ports (from the
            chip-level context; larger = tighter internal timing).
        utilization: placement utilization target.
        opt_rounds: staged-optimization iterations.
        max_metal: routing-layer cap override (defaults per block type).
    """

    scale: float = 1.0
    seed: int = 1
    fold: Optional[FoldSpec] = None
    bonding: str = "F2B"
    dual_vth: bool = False
    io_budget_ps: float = 0.0
    utilization: float = 0.70
    opt_rounds: int = 2
    max_metal: Optional[int] = None
    #: after optimization, run the capacity-tracked global router and
    #: re-time against the measured (not estimated) wirelengths
    detailed_route: bool = False
    #: run the static checker at stage boundaries and raise
    #: :class:`repro.lint.LintError` on any unwaived error
    assert_clean: bool = False
    #: disable the optimizer's incremental timing/parasitic core and
    #: fully re-route + re-time after every transform chunk (identical
    #: results, much slower; baseline / bisection aid)
    opt_full_recompute: bool = False
    #: 3D die-assignment style: ``"fold"`` keeps the partitioner's
    #: tiers (the paper's flow, default); ``"bistratal"`` refines the
    #: movable cells analytically with the coupled-planes z solve
    #: before placement (see docs/placement.md)
    place_mode: str = "fold"
    #: run the incremental timing-closure ECO loop after optimization
    #: (estimator routing only -- incompatible with ``detailed_route``;
    #: see docs/eco.md)
    eco: Optional[EcoConfig] = None


@dataclass
class BlockDesign:
    """A finished block design and its sign-off metrics."""

    name: str
    config: FlowConfig
    netlist: Netlist
    outline: Rect
    footprint_um2: float
    wirelength_um: float
    n_cells: int
    n_buffers: int
    n_vias: int
    tsv_area_um2: float
    long_wires: int
    hvt_fraction: float
    power: PowerReport
    sta: STAResult
    cts: CTSResult
    routing: RoutingResult
    fold_result: Optional[Fold3DResult] = None
    generated: Optional[GeneratedBlock] = None
    #: congestion report when the flow ran the detailed router
    congestion: Optional[object] = None
    #: wall-clock per flow stage (generate/place/optimize/route/power),
    #: in milliseconds; a thin view over the flow's ``repro.obs`` spans
    #: (``flow.place`` -> ``"place"``), excluded from JSON exports
    #: (non-deterministic)
    stage_times_ms: Dict[str, float] = field(default_factory=dict)
    #: the per-net route context the flow signed off with; lets an ECO
    #: session re-route touched nets bit-identically long after the
    #: flow returned (``None`` when the detailed router produced the
    #: final routing, which the estimator context cannot reproduce)
    route_ctx: Optional[RouteContext] = None
    #: closure report when the flow ran the ECO stage
    eco_report: Optional[EcoClosureReport] = None

    @property
    def is_folded(self) -> bool:
        return self.fold_result is not None

    @property
    def dims(self) -> Tuple[float, float]:
        return self.outline.width, self.outline.height


def _routing_layers(block_type: BlockType, config: FlowConfig) -> int:
    """Metal layers available to the block (Section 2.2 / 6.1 rules).

    Unfolded blocks and F2B-folded bottom tiers stop at M7 (M8/M9 stay
    free for over-the-block routing); the SPC always gets all nine; an
    F2F-folded block uses all nine on both tiers, since the F2F via sits
    on top of M9.
    """
    if config.max_metal is not None:
        return config.max_metal
    if block_type.max_metal >= 9:
        return 9
    if config.fold is not None and config.bonding.upper() == "F2F":
        return 9
    return block_type.max_metal


def run_block_flow(block: str, config: FlowConfig,
                   process: ProcessNode) -> BlockDesign:
    """Run the full design flow on one block type.

    Args:
        block: T2 block type name (``"spc"``, ``"ccx"``, ...).
        config: flow configuration.
        process: technology node.

    Returns:
        The finished :class:`BlockDesign`.
    """
    block_type = block_type_by_name(block)
    with trace.span("flow", block=block,
                    folded=config.fold is not None,
                    fold=config.fold.mode if config.fold else None,
                    bonding=config.bonding if config.fold else None,
                    scale=config.scale, seed=config.seed):
        with trace.span("flow.generate", block=block) as sp_gen:
            fault_point("generate")
            gb = generate_block(block_type, process.library,
                                seed=config.seed, scale=config.scale)
        design = run_flow_on(gb, config, process)
    design.stage_times_ms["generate"] = sp_gen.duration_ms
    return design


def run_flow_on(gb: GeneratedBlock, config: FlowConfig,
                process: ProcessNode) -> BlockDesign:
    """Run the flow on an already-generated block (reusable netlists)."""
    netlist = gb.netlist
    block_type = gb.block_type
    max_metal = _routing_layers(block_type, config)
    pc = PlacementConfig(utilization=config.utilization, seed=config.seed)
    if config.eco is not None and config.detailed_route:
        raise ValueError(
            "FlowConfig.eco needs the estimator's routing; it cannot "
            "run together with detailed_route=True")

    if config.assert_clean:
        # gate the incoming netlist before spending placement effort
        from ..lint import assert_clean as _gate, lint_netlist
        _gate(lint_netlist(netlist), stage=f"{block_type.name}/generate")

    fold_result: Optional[Fold3DResult] = None
    via_sites: Dict[int, Tuple[float, float]] = {}
    via = None
    extra_clock_vias = 0
    stage_times_ms: Dict[str, float] = {}

    with trace.span("flow.place", block=block_type.name,
                    folded=config.fold is not None) as sp_place:
        fault_point("place")
        if config.fold is None:
            placement = place_block_2d(netlist, pc)
            outline = placement.outline
            tsv_area = 0.0
            n_vias = 0
        else:
            assignment = make_partition(gb, config.fold)
            region_of = None
            if config.fold.mode in ("fub_assign", "fub_fold"):
                # FUBs are place-and-route regions of their own
                # (Section 4.5)
                region_of = {
                    inst.id: gb.region_of_cluster(inst.cluster)
                    for inst in netlist.instances.values()
                }
            fold_result = fold_place_3d(netlist, process, assignment,
                                        config.bonding, pc,
                                        region_of=region_of,
                                        mode=config.place_mode)
            outline = fold_result.outline
            tsv_area = fold_result.tsv_area_um2
            via = process.via_for(config.bonding)
            if config.bonding.upper() == "F2F":
                # the paper's Section 5.1 flow refines via sites by 3D
                # routing
                plan = place_f2f_vias(netlist, outline, process)
                via_sites = dict(plan.sites)
            else:
                via_sites = {v.net_id: (v.x, v.y)
                             for v in fold_result.vias}
            n_vias = fold_result.n_vias
            sp_place.set(n_vias=n_vias)
            metrics().counter(
                "flow.vias.f2f" if config.bonding.upper() == "F2F"
                else "flow.vias.tsv").inc(n_vias)
    stage_times_ms["place"] = sp_place.duration_ms

    if config.assert_clean:
        # gate the placement (and legalized via sites) before routing
        from ..lint import assert_clean as _gate, lint_placement
        _gate(lint_placement(
            netlist, outline,
            bonding=config.bonding if fold_result is not None else None,
            vias=fold_result.vias if fold_result is not None else None,
            utilization=config.utilization),
            stage=f"{block_type.name}/place")

    route_ctx = RouteContext(stack=process.metal_stack,
                             max_metal=max_metal, via=via,
                             via_sites=via_sites,
                             long_wire_um=process.long_wire_um)

    timing = TimingConfig(clock_domain=block_type.logic.clock_domain,
                          default_io_delay_ps=config.io_budget_ps)
    with trace.span("flow.optimize", block=block_type.name) as sp_opt:
        fault_point("optimize")
        opt = optimize_block(netlist, process, timing,
                             route_ctx.route_block,
                             OptimizeConfig(
                                 rounds=config.opt_rounds,
                                 dual_vth=config.dual_vth,
                                 full_recompute=config.opt_full_recompute),
                             route_net_fn=route_ctx.route_net)
    stage_times_ms["optimize"] = sp_opt.duration_ms

    eco_report: Optional[EcoClosureReport] = None
    if config.eco is not None:
        with trace.span("flow.eco", block=block_type.name,
                        target_wns_ps=config.eco.target_wns_ps) as sp_eco:
            fault_point("eco")
            session = EcoSession(
                netlist, opt.routing, process, timing, route_ctx,
                outline=outline, sta_snapshot=opt.sta,
                full_recompute=config.eco.full_recompute,
                legalize_buffers=config.eco.legalize_buffers)
            eco_report = close_timing(session, config.eco)
            opt.routing = session.routing
            opt.sta = session.sta()
            opt.cts = session.cts_result()
            sp_eco.set(status=eco_report.status,
                       rounds=len(eco_report.rounds))
        stage_times_ms["eco"] = sp_eco.duration_ms

    congestion = None
    if config.detailed_route:
        from ..opt.sizing import fix_timing
        from ..route.block_router import route_block_detailed
        from ..timing.sta import run_sta

        def detail_route() -> tuple:
            return route_block_detailed(
                netlist, process.metal_stack, outline,
                max_metal=max_metal, via=via, via_sites=via_sites,
                long_wire_um=process.long_wire_um)

        with trace.span("flow.detailed_route",
                        block=block_type.name) as sp_route:
            fault_point("detailed_route")
            # post-route repair: measured detours can break paths the
            # estimate-driven optimization believed were met
            detailed, congestion = detail_route()
            sta = run_sta(netlist, detailed, process, timing)
            for _ in range(3):
                if sta.wns_ps >= -1.0:
                    break
                if not fix_timing(netlist, detailed, sta,
                                  process.library):
                    break
                detailed, congestion = detail_route()
                sta = run_sta(netlist, detailed, process, timing)
            opt.routing = detailed
            opt.sta = sta
        stage_times_ms["detailed_route"] = sp_route.duration_ms

    with trace.span("flow.power", block=block_type.name) as sp_power:
        fault_point("power")
        power = analyze_power(netlist, opt.routing, process,
                              block_type.logic.clock_domain, cts=opt.cts)
    stage_times_ms["power"] = sp_power.duration_ms
    from ..opt.dualvth import hvt_fraction

    n_vias += opt.cts.via_crossings
    design = BlockDesign(
        name=block_type.name,
        config=config,
        netlist=netlist,
        outline=outline,
        footprint_um2=outline.area,
        wirelength_um=opt.routing.total_wirelength_um +
        opt.cts.wirelength_um,
        n_cells=netlist.num_cells,
        n_buffers=netlist.num_buffers + opt.cts.n_buffers,
        n_vias=n_vias,
        tsv_area_um2=tsv_area,
        long_wires=opt.routing.long_wire_count,
        hvt_fraction=hvt_fraction(netlist),
        power=power,
        sta=opt.sta,
        cts=opt.cts,
        routing=opt.routing,
        fold_result=fold_result,
        generated=gb,
        congestion=congestion,
        stage_times_ms=stage_times_ms,
        route_ctx=None if config.detailed_route else route_ctx,
        eco_report=eco_report,
    )
    if config.assert_clean:
        from ..lint import assert_clean as _gate, lint_block
        _gate(lint_block(design), stage=f"{block_type.name}/signoff")
    return design
