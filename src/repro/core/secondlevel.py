"""Second-level folding of the SPARC core (paper Section 4.5, Fig. 3).

The SPC is the highest-power block in the T2, so the paper pushes folding
one level deeper: instead of only assigning whole functional unit blocks
(FUBs) to tiers -- a *block-level 3D* design of the core -- six of the 14
FUBs (the two integer units, the FP/graphics unit, the load/store unit,
the trap unit and the fetch datapath) are themselves split across the
tiers.  The paper measures 9.2% shorter wires, 10.8% fewer buffers and
5.1% less power than the block-level 3D core, and 21.2% less power than
the 2D core.

:func:`spc_folding_study` runs all three designs and returns them for
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..designgen.t2 import SPC_FOLDED_FUBS
from ..tech.process import ProcessNode
from .flow import BlockDesign, FlowConfig, run_block_flow
from .folding import FoldSpec


@dataclass
class SpcStudyResult:
    """The three SPC designs of the second-level folding study."""

    flat_2d: BlockDesign
    block_level_3d: BlockDesign
    second_level_3d: BlockDesign

    def improvement(self, metric: str) -> Tuple[float, float]:
        """(vs block-level 3D, vs 2D) relative change of a metric.

        Negative values are reductions; e.g. ``improvement("power")``
        returning ``(-0.05, -0.21)`` matches the paper's -5.1% / -21.2%.
        """
        def value(d: BlockDesign) -> float:
            if metric == "power":
                return d.power.total_uw
            if metric == "wirelength":
                return d.wirelength_um
            if metric == "buffers":
                return float(d.n_buffers)
            if metric == "footprint":
                return d.footprint_um2
            raise ValueError(f"unknown metric {metric!r}")

        v2 = value(self.second_level_3d)
        return (v2 / value(self.block_level_3d) - 1.0,
                v2 / value(self.flat_2d) - 1.0)


def fub_assign_spec() -> FoldSpec:
    """Block-level 3D core: whole FUBs assigned to tiers."""
    return FoldSpec(mode="fub_assign")


def second_level_spec(folded_fubs: Tuple[str, ...] = SPC_FOLDED_FUBS
                      ) -> FoldSpec:
    """Second-level folding: the given FUBs split across tiers."""
    return FoldSpec(mode="fub_fold", folded_regions=tuple(folded_fubs))


def spc_folding_study(process: ProcessNode,
                      base: Optional[FlowConfig] = None,
                      bonding: str = "F2F",
                      cache=None) -> SpcStudyResult:
    """Run the Fig. 3 study: 2D vs block-level 3D vs second-level 3D.

    Pass a :class:`repro.core.cache.DesignCache` to reuse the three SPC
    designs across repeated runs.
    """
    base = base or FlowConfig()

    def flow(cfg: FlowConfig) -> BlockDesign:
        if cache is not None:
            return cache.get_or_run("spc", cfg, process)
        return run_block_flow("spc", cfg, process)

    flat = flow(replace(base, fold=None))
    block3d = flow(replace(base, fold=fub_assign_spec(), bonding=bonding))
    second = flow(replace(base, fold=second_level_spec(), bonding=bonding))
    return SpcStudyResult(flat_2d=flat, block_level_3d=block3d,
                          second_level_3d=second)
