"""Design-space exploration over the study's axes.

The paper walks a handful of hand-picked points (five styles, two
bonding options, two libraries); a downstream user wants the whole grid
and its Pareto front.  This module sweeps design-style x bonding x
library configurations, collects power / footprint / temperature /
3D-connection metrics for each, and extracts the Pareto-optimal set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..tech.process import ProcessNode
from ..thermal.model import analyze_chip_thermal
from .fullchip import ChipConfig, build_chip

#: the paper's design axes
DEFAULT_GRID: Tuple[Tuple[str, bool], ...] = (
    ("2d", False), ("2d", True),
    ("core_cache", False), ("core_cache", True),
    ("core_core", True),
    ("fold_f2b", True),
    ("fold_f2f", False), ("fold_f2f", True),
)


@dataclass
class DesignPoint:
    """One evaluated configuration."""

    style: str
    dual_vth: bool
    power_mw: float
    footprint_mm2: float
    max_temp_c: float
    n_3d_connections: int
    wns_ps: float

    @property
    def label(self) -> str:
        vth = "dvt" if self.dual_vth else "rvt"
        return f"{self.style}/{vth}"

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (power, footprint, temperature)."""
        no_worse = (self.power_mw <= other.power_mw and
                    self.footprint_mm2 <= other.footprint_mm2 and
                    self.max_temp_c <= other.max_temp_c)
        better = (self.power_mw < other.power_mw or
                  self.footprint_mm2 < other.footprint_mm2 or
                  self.max_temp_c < other.max_temp_c)
        return no_worse and better


@dataclass
class ExplorationResult:
    """All evaluated points plus the Pareto set."""

    points: List[DesignPoint]
    pareto: List[DesignPoint]

    def best(self, metric: str) -> DesignPoint:
        key = {
            "power": lambda p: p.power_mw,
            "footprint": lambda p: p.footprint_mm2,
            "temperature": lambda p: p.max_temp_c,
        }[metric]
        return min(self.points, key=key)

    def table(self) -> str:
        lines = [f"{'config':18s}{'power mW':>10s}{'mm^2/tier':>11s}"
                 f"{'max C':>8s}{'3D conn':>9s}{'pareto':>8s}"]
        front = {id(p) for p in self.pareto}
        for p in sorted(self.points, key=lambda q: q.power_mw):
            lines.append(
                f"{p.label:18s}{p.power_mw:10.1f}"
                f"{p.footprint_mm2:11.2f}{p.max_temp_c:8.1f}"
                f"{p.n_3d_connections:9d}"
                f"{'*' if id(p) in front else '':>8s}")
        return "\n".join(lines)


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset of the evaluated points."""
    return [p for p in points
            if not any(q.dominates(p) for q in points if q is not p)]


def evaluate_point(process: ProcessNode, style: str, dual_vth: bool,
                   scale: float = 0.7, seed: int = 1,
                   cache=None) -> DesignPoint:
    """Build and measure one grid configuration."""
    chip = build_chip(ChipConfig(style=style, dual_vth=dual_vth,
                                 scale=scale, seed=seed), process,
                      cache=cache)
    thermal = analyze_chip_thermal(chip)
    return DesignPoint(
        style=style, dual_vth=dual_vth,
        power_mw=chip.power.total_uw / 1e3,
        footprint_mm2=chip.footprint_um2 / 1e6,
        max_temp_c=thermal.max_c,
        n_3d_connections=chip.n_3d_connections,
        wns_ps=chip.wns_ps)


def explore_design_space(process: ProcessNode,
                         grid: Iterable[Tuple[str, bool]] = DEFAULT_GRID,
                         scale: float = 0.7,
                         seed: int = 1,
                         parallel: int = 0,
                         cache_dir=None) -> ExplorationResult:
    """Evaluate every configuration in ``grid``.

    Args:
        process: technology node.
        grid: (style, dual_vth) pairs to build.
        scale: model scale (the default keeps the sweep to minutes).
        seed: generation seed.
        parallel: worker count; ``0``/``1`` evaluates in-process,
            anything higher fans the grid points out across a
            ``multiprocessing`` pool (same numbers, same order).
        cache_dir: optional persistent design-cache directory (shared
            by all workers when parallel).

    Returns:
        The evaluated points and their Pareto front.
    """
    grid = list(grid)
    if parallel > 1 and len(grid) > 1:
        from ..parallel.engine import explore_points
        points = explore_points(grid, scale=scale, seed=seed,
                                parallel=parallel, cache_dir=cache_dir)
    else:
        from .cache import DesignCache
        cache = DesignCache(cache_dir=cache_dir)
        points = [evaluate_point(process, style, dual_vth, scale=scale,
                                 seed=seed, cache=cache)
                  for style, dual_vth in grid]
    return ExplorationResult(points=points, pareto=pareto_front(points))
