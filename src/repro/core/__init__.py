"""The paper's contribution: folding, bonding styles, full-chip assembly."""

from .cache import CacheStats, DesignCache
from .bonding import BondingComparison, bonding_power_sweep, compare_bonding
from .explore import (DesignPoint, ExplorationResult,
                      explore_design_space, pareto_front)
from .chip_sta import (ChipSTAResult, CrossPath, build_signed_off_chip,
                       pipeline_failing_bundles, run_chip_sta)
from .fullchip import ChipConfig, ChipDesign, build_chip
from .flow import BlockDesign, FlowConfig, run_block_flow, run_flow_on
from .folding import (FOLD_MODES, FoldingCandidate, FoldSpec,
                      folding_candidates, make_partition,
                      partition_case_sweep)
from .secondlevel import (SpcStudyResult, fub_assign_spec,
                          second_level_spec, spc_folding_study)

__all__ = [
    "CacheStats", "DesignCache",
    "BondingComparison", "bonding_power_sweep", "compare_bonding",
    "ChipSTAResult", "CrossPath", "build_signed_off_chip",
    "pipeline_failing_bundles", "run_chip_sta", "ChipConfig",
    "DesignPoint", "ExplorationResult", "explore_design_space",
    "pareto_front",
    "ChipDesign", "build_chip",
    "BlockDesign", "FlowConfig", "run_block_flow", "run_flow_on",
    "FOLD_MODES", "FoldingCandidate", "FoldSpec", "folding_candidates",
    "make_partition", "partition_case_sweep", "SpcStudyResult",
    "fub_assign_spec", "second_level_spec", "spc_folding_study",
]
