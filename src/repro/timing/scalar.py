"""Legacy per-net / per-node timing loops (parity reference).

The default analysis path is the levelized array timing graph in
:mod:`~repro.timing.graph` fed by the batched net extractor in
:mod:`~repro.route.estimate`.  This module preserves the original
scalar (per-net dict / ``deque`` walk) engines so the parity harness
(``tests/test_sta_parity.py``) and the bench gate
(``benchmarks/sta_smoke.py``) can compare the two:

* set ``REPRO_STA_SCALAR=1`` in the environment to route every
  dispatching entry point (:func:`repro.timing.sta.run_sta`,
  :func:`repro.timing.hold.run_hold_analysis`,
  :func:`repro.timing.paths.io_path_delays`,
  :func:`repro.timing.si.derate_routing`,
  :func:`repro.route.estimate.route_block`) through the scalar
  reference;
* the flag is read at *call* time, so tests can flip it per-case with
  ``monkeypatch.setenv``.

The loops are kept verbatim from the pre-vectorization modules with
two deliberate, documented changes (see ``docs/timing.md``):

* the backward pass sorts by ``(-arrival, instance id)`` instead of
  leaving equal-arrival ordering to set iteration order (the array
  path emits the same order, and propagated *values* cannot depend on
  the tie-break because every cell delay is positive);
* :func:`derate_routing` emits derated nets through
  ``dataclasses.replace`` so via-independent fields added to
  :class:`~repro.route.estimate.RoutedNet` (``driver_key`` today) are
  carried instead of silently dropped -- the same single code path the
  batch extractor and ``RoutedNet.copy`` use.

The scalar path is a test/bench instrument only -- it is not part of
the production flow and is never selected implicitly.
"""

from __future__ import annotations

import os
from collections import defaultdict, deque
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..cts.tree import CTSResult
from ..netlist.core import Netlist
from ..route.block_router import BlockRouter, _class_for
from ..route.estimate import RoutingResult, route_net
from ..tech.process import ProcessNode
from .load import net_loads_driver
from .si import SiConfig, SiReport, coupling_factor
from .sta import (HOLD_PS, MACRO_SETUP_PS, SETUP_PS, STAResult,
                  TimingConfig, _is_terminal_sink)

#: environment variable selecting the legacy scalar timing engines
SCALAR_ENV = "REPRO_STA_SCALAR"


def use_scalar() -> bool:
    """True when the legacy scalar timing engines are requested."""
    return os.environ.get(SCALAR_ENV, "") == "1"


# ---------------------------------------------------------------------------
# setup STA: forward arrival / backward required (original run_sta)
# ---------------------------------------------------------------------------

def run_sta(netlist: Netlist, routing: RoutingResult, process: ProcessNode,
            config: TimingConfig) -> STAResult:
    """The original per-node Kahn/dict STA walk (parity reference)."""
    period = process.clock_period_ps(config.clock_domain)

    # adjacency: driver instance -> [(sink inst, wire_delay)] for comb sinks
    succ: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    pred_count: Dict[int, int] = defaultdict(int)
    # terminal fanout: driver inst -> [(required_time_at_sink, wire_delay)]
    term_req: Dict[int, List[float]] = defaultdict(list)
    # source arrivals per instance (flop/macro launch); comb start at -inf
    port_fanout: Dict[str, List[Tuple[Optional[int], float, float]]] = \
        defaultdict(list)

    insts = netlist.instances

    # precompute every instance's driven load once (hot path); the
    # which-nets-load-a-driver rule is shared with the incremental STA
    # and the sizing engines via repro.timing.load
    _loads: Dict[int, float] = defaultdict(float)
    for net in netlist.nets.values():
        if not net_loads_driver(netlist, net):
            continue
        routed = routing.nets.get(net.id)
        if routed is not None:
            _loads[net.driver.inst] += routed.total_cap_ff

    def load_of(inst_id: int) -> float:
        return _loads[inst_id]

    for net in netlist.nets.values():
        if net.is_clock:
            continue
        routed = routing.nets.get(net.id)
        if routed is None:
            continue
        wire_delay = {s.ref.key(): routed.sink_wire_delay_ps(s)
                      for s in routed.sinks}
        drv = net.driver
        for sink in net.sinks:
            wd = wire_delay.get(sink.key(), 0.0)
            if _is_terminal_sink(netlist, sink):
                if sink.is_port:
                    if netlist.ports[sink.port].false_path:
                        continue
                    req = period - config.io_delay(sink.port)
                elif insts[sink.inst].is_macro:
                    req = period - MACRO_SETUP_PS
                else:
                    req = period - SETUP_PS
                if drv.is_port:
                    port_fanout[drv.port].append((None, wd, req))
                else:
                    term_req[drv.inst].append(req - wd)
            else:
                if drv.is_port:
                    port_fanout[drv.port].append((sink.inst, wd, 0.0))
                else:
                    succ[drv.inst].append((sink.inst, wd))
                    pred_count[sink.inst] += 1

    arrival: Dict[int, float] = {}
    ready = deque()
    launch_arrival: Dict[int, float] = {}

    for inst in insts.values():
        if inst.is_macro:
            launch_arrival[inst.id] = inst.master.intrinsic_delay_ps
        elif inst.is_sequential:
            launch_arrival[inst.id] = inst.master.delay_ps(load_of(inst.id))

    # input-port arrivals feed their comb sinks as extra preds handled now
    extra_arrival: Dict[int, float] = defaultdict(lambda: float("-inf"))
    for pname, fans in port_fanout.items():
        a0 = config.io_delay(pname)
        for sink_inst, wd, _req in fans:
            if sink_inst is not None:
                extra_arrival[sink_inst] = max(extra_arrival[sink_inst],
                                               a0 + wd)

    # Kahn topological propagation over combinational nodes
    comb_in: Dict[int, float] = defaultdict(lambda: float("-inf"))
    for iid, a in extra_arrival.items():
        comb_in[iid] = a
    for inst in insts.values():
        if inst.is_macro or inst.is_sequential:
            arrival[inst.id] = launch_arrival[inst.id]
            ready.append(inst.id)
        elif pred_count[inst.id] == 0:
            base = comb_in[inst.id]
            if base == float("-inf"):
                base = 0.0  # undriven comb cell (dangling input rescue)
            arrival[inst.id] = base + inst.master.delay_ps(load_of(inst.id))
            ready.append(inst.id)

    remaining = dict(pred_count)
    processed = set()
    while ready:
        iid = ready.popleft()
        if iid in processed:
            continue
        processed.add(iid)
        a = arrival[iid]
        for sink, wd in succ[iid]:
            comb_in[sink] = max(comb_in[sink], a + wd)
            remaining[sink] -= 1
            if remaining[sink] == 0:
                inst = insts[sink]
                arrival[sink] = comb_in[sink] + \
                    inst.master.delay_ps(load_of(sink))
                ready.append(sink)

    # any leftover (cycle safety): assign using current comb_in
    for inst in insts.values():
        if inst.id not in arrival:
            base = comb_in[inst.id]
            if base == float("-inf"):
                base = 0.0
            arrival[inst.id] = base + (
                inst.master.intrinsic_delay_ps if inst.is_macro
                else inst.master.delay_ps(load_of(inst.id)))

    # ---- backward pass ---------------------------------------------------
    required: Dict[int, float] = {}
    order = sorted(processed | set(arrival),
                   key=lambda i: (-arrival[i], i))
    INF = float("inf")
    req_map: Dict[int, float] = defaultdict(lambda: INF)
    for iid, reqs in term_req.items():
        req_map[iid] = min([req_map[iid]] + reqs)
    # propagate requirements backward in reverse topological (by arrival)
    for iid in order:
        r = req_map[iid]
        inst = insts[iid]
        for sink, wd in succ[iid]:
            sink_inst = insts[sink]
            r_sink = req_map[sink]
            if r_sink < INF:
                r = min(r, r_sink - sink_inst.master.delay_ps(
                    load_of(sink)) - wd)
        req_map[iid] = r
        required[iid] = r

    slack: Dict[int, float] = {}
    wns = INF
    tns = 0.0
    for iid, a in arrival.items():
        r = required.get(iid, INF)
        if r >= INF:
            continue
        s = r - a
        slack[iid] = s
        if s < wns:
            wns = s
        if s < 0:
            tns += s
    if wns == INF:
        wns = 0.0
    return STAResult(period_ps=period, arrival=arrival, required=required,
                     slack=slack, wns_ps=wns, tns_ps=tns)


# ---------------------------------------------------------------------------
# hold: min-delay propagation (original run_hold_analysis)
# ---------------------------------------------------------------------------

def run_hold_analysis(netlist: Netlist, routing: RoutingResult,
                      process: ProcessNode, config: TimingConfig,
                      cts: Optional[CTSResult] = None,
                      hold_ps: float = HOLD_PS):
    """The original per-net min-arrival hold walk (parity reference)."""
    from .hold import HoldResult

    skew = cts.skew_ps if cts is not None else 0.0
    requirement = hold_ps + skew

    insts = netlist.instances
    loads: Dict[int, float] = defaultdict(float)
    for net in netlist.nets.values():
        if net.is_clock or net.driver.is_port:
            continue
        if net.driver.pin != 0 and not insts[net.driver.inst].is_macro:
            continue
        routed = routing.nets.get(net.id)
        if routed is not None:
            loads[net.driver.inst] += routed.total_cap_ff

    succ: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    pred_count: Dict[int, int] = defaultdict(int)
    captures: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        routed = routing.nets.get(net.id)
        if routed is None or net.driver.is_port:
            continue
        for s in routed.sinks:
            if s.ref.is_port:
                continue
            sink = insts[s.ref.inst]
            wd = routed.sink_wire_delay_ps(s)
            if sink.is_macro or sink.is_sequential:
                captures[net.driver.inst].append((s.ref.inst, wd))
            else:
                succ[net.driver.inst].append((s.ref.inst, wd))
                pred_count[s.ref.inst] += 1

    INF = float("inf")
    min_arrival: Dict[int, float] = {}
    comb_in: Dict[int, float] = defaultdict(lambda: INF)
    ready = deque()
    for inst in insts.values():
        if inst.is_macro:
            min_arrival[inst.id] = inst.master.intrinsic_delay_ps
            ready.append(inst.id)
        elif inst.is_sequential:
            min_arrival[inst.id] = inst.master.delay_ps(loads[inst.id])
            ready.append(inst.id)
        elif pred_count[inst.id] == 0:
            # driven only by ports: ports launch at the clock edge too,
            # conservatively with zero external min delay
            min_arrival[inst.id] = inst.master.delay_ps(loads[inst.id])
            ready.append(inst.id)

    remaining = dict(pred_count)
    done = set()
    while ready:
        iid = ready.popleft()
        if iid in done:
            continue
        done.add(iid)
        a = min_arrival[iid]
        for sink, wd in succ[iid]:
            comb_in[sink] = min(comb_in[sink], a + wd)
            remaining[sink] -= 1
            if remaining[sink] == 0:
                inst = insts[sink]
                min_arrival[sink] = comb_in[sink] + \
                    inst.master.delay_ps(loads[sink])
                ready.append(sink)

    slack: Dict[int, float] = {}
    whs = INF
    violations = 0
    for drv, sinks in captures.items():
        a = min_arrival.get(drv)
        if a is None:
            continue
        for cap_inst, wd in sinks:
            hs = (a + wd) - requirement
            prev = slack.get(cap_inst, INF)
            if hs < prev:
                slack[cap_inst] = hs
            if hs < whs:
                whs = hs
    violations = sum(1 for v in slack.values() if v < 0)
    if whs == INF:
        whs = 0.0
    return HoldResult(slack=slack, whs_ps=whs, violations=violations)


# ---------------------------------------------------------------------------
# I/O path budget halves (original io_path_delays)
# ---------------------------------------------------------------------------

def io_path_delays(netlist: Netlist, routing: RoutingResult,
                   process: ProcessNode, config: TimingConfig,
                   sta: Optional[STAResult] = None
                   ) -> Tuple[float, float]:
    """The original worklist t_in / t_out scan (parity reference)."""
    from .sta import run_sta as run_sta_dispatch

    if sta is None:
        sta = run_sta_dispatch(netlist, routing, process, config)
    insts = netlist.instances

    # ---- t_out: arrival at output ports ---------------------------------
    t_out = 0.0
    for name, port in netlist.ports.items():
        if port.direction != "out":
            continue
        if port.false_path:
            continue  # observation-only pins carry no requirement
        for net in netlist.nets_of_port(name):
            routed = routing.nets.get(net.id)
            if routed is None or net.driver.is_port:
                continue
            for s in routed.sinks:
                if s.ref.is_port and s.ref.port == name:
                    arr = sta.arrival.get(net.driver.inst, 0.0)
                    t_out = max(t_out,
                                arr + routed.sink_wire_delay_ps(s))

    # ---- t_in: forward propagation with port-only sources ---------------
    succ: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    pred_count: Dict[int, int] = defaultdict(int)
    loads: Dict[int, float] = defaultdict(float)
    port_arr: Dict[int, float] = {}
    capture_delay: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        routed = routing.nets.get(net.id)
        if routed is None:
            continue
        if not net.driver.is_port and (net.driver.pin == 0 or
                                       insts[net.driver.inst].is_macro):
            loads[net.driver.inst] += routed.total_cap_ff
        for s in routed.sinks:
            if s.ref.is_port:
                continue
            sink = insts[s.ref.inst]
            wd = routed.sink_wire_delay_ps(s)
            if sink.is_macro or sink.is_sequential:
                if not net.driver.is_port:
                    setup = MACRO_SETUP_PS if sink.is_macro else SETUP_PS
                    capture_delay[net.driver.inst].append((wd, setup))
                continue
            if net.driver.is_port:
                a = wd  # port external delay excluded: pure block path
                port_arr[s.ref.inst] = max(port_arr.get(s.ref.inst,
                                                        0.0), a)
            else:
                succ[net.driver.inst].append((s.ref.inst, wd))
                pred_count[s.ref.inst] += 1

    arrival: Dict[int, float] = {}
    INF_NEG = float("-inf")
    ready = deque()
    for iid, a in port_arr.items():
        inst = insts[iid]
        arrival[iid] = a + inst.master.delay_ps(loads[iid])
        ready.append(iid)
    t_in = 0.0
    visited = set()
    while ready:
        iid = ready.popleft()
        if iid in visited:
            continue
        visited.add(iid)
        a = arrival[iid]
        for wd, setup in capture_delay.get(iid, ()):
            t_in = max(t_in, a + wd + setup)
        for sink, wd in succ[iid]:
            cand = a + wd + insts[sink].master.delay_ps(loads[sink])
            if cand > arrival.get(sink, INF_NEG):
                arrival[sink] = cand
                if sink in visited:
                    visited.discard(sink)
                ready.append(sink)
    return t_in, t_out


# ---------------------------------------------------------------------------
# SI derating (original derate_routing loop)
# ---------------------------------------------------------------------------

def derate_routing(netlist: Netlist, routing: RoutingResult,
                   router: BlockRouter,
                   config: Optional[SiConfig] = None
                   ) -> Tuple[RoutingResult, SiReport]:
    """The original per-net corridor-utilization derate (reference)."""
    import numpy as np

    config = config or SiConfig()
    out = RoutingResult()
    factors = []
    for routed in routing.nets.values():
        net = netlist.nets.get(routed.net_id)
        if net is None:
            continue
        cls = _class_for(max(routed.length_um, 1e-6), router.max_metal)
        cap = max(router.capacity[cls], 1e-6)
        # average utilization over the net's bounding corridor
        cells = []
        for ref in net.endpoints():
            x, y, _ = netlist.endpoint_position(ref)
            cells.append(router.gcell(x, y))
        i0 = min(c[0] for c in cells)
        i1 = max(c[0] for c in cells)
        j0 = min(c[1] for c in cells)
        j1 = max(c[1] for c in cells)
        usage = router.usage[cls][i0:i1 + 1, j0:j1 + 1]
        util = float(usage.mean()) / cap if usage.size else 0.0
        k = coupling_factor(util, config)
        factors.append(k)
        out.nets[routed.net_id] = replace(
            routed,
            c_per_um=routed.c_per_um * k,
            wire_cap_ff=routed.wire_cap_ff * k,
            sinks=[replace(s, path_len_um=s.path_len_um * k ** 0.5)
                   for s in routed.sinks])
    report = SiReport(
        nets_derated=len(factors),
        worst_factor=max(factors, default=1.0),
        mean_factor=float(np.mean(factors)) if factors else 1.0)
    return out, report


# ---------------------------------------------------------------------------
# per-net extraction (original route_block loop)
# ---------------------------------------------------------------------------

def route_block(netlist: Netlist, stack, max_metal: int = 7,
                via=None, via_sites=None, long_wire_um: float = 120.0,
                detour_factor: float = 1.0) -> RoutingResult:
    """The original route-one-net-at-a-time extraction loop (reference)."""
    result = RoutingResult()
    via_sites = via_sites or {}
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        xy = via_sites.get(net.id)
        result.nets[net.id] = route_net(
            netlist, net, stack, max_metal=max_metal,
            via=via if xy is not None else None, via_xy=xy,
            long_wire_um=long_wire_um, detour_factor=detour_factor)
    return result
