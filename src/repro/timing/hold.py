"""Hold-time (min-delay) analysis.

Setup checks bound the *slowest* path per cycle; hold checks bound the
*fastest*: a capturing flop must not see the next launch's data before
its hold window closes, so every launch-to-capture path must be slower
than ``hold time + clock skew``.  The sign-off engine here propagates
*minimum* arrivals through the combinational DAG (the mirror image of
:func:`repro.timing.sta.run_sta`) and checks each capture against the
hold requirement, taking the clock tree's measured skew
(:class:`repro.cts.tree.CTSResult`) as the uncertainty.

Zero-stage paths (flop feeding flop directly) are the classic hold risk;
3D designs add a twist the paper's future work hints at: tier-crossing
launch/capture pairs see the inter-tier clock skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cts.tree import CTSResult
from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.process import ProcessNode
from .sta import HOLD_PS, TimingConfig


@dataclass
class HoldResult:
    """Min-delay slacks at capturing endpoints."""

    #: capture instance id -> hold slack (ps)
    slack: Dict[int, float]
    whs_ps: float
    violations: int

    @property
    def met(self) -> bool:
        return self.whs_ps >= 0.0


def run_hold_analysis(netlist: Netlist, routing: RoutingResult,
                      process: ProcessNode, config: TimingConfig,
                      cts: Optional[CTSResult] = None,
                      hold_ps: float = HOLD_PS) -> HoldResult:
    """Check every capture against ``hold + skew`` with min-delay paths.

    Dispatches to the levelized array engine
    (:func:`repro.timing.graph.run_hold_array`); the scalar reference
    walk lives in :mod:`repro.timing.scalar` behind
    ``REPRO_STA_SCALAR=1``.
    """
    from . import scalar
    if scalar.use_scalar():
        return scalar.run_hold_analysis(netlist, routing, process, config,
                                        cts=cts, hold_ps=hold_ps)
    from .graph import run_hold_array
    return run_hold_array(netlist, routing, process, config,
                          cts=cts, hold_ps=hold_ps)


def fix_hold(netlist: Netlist, routing: RoutingResult,
             hold: HoldResult, process: ProcessNode,
             requirement_ps: Optional[float] = None) -> int:
    """Pad violating captures with delay buffers on their D inputs.

    The standard hold fix: insert a small buffer in front of each
    violating capture pin, adding its cell delay to the min path.
    Returns the number of buffers added; re-route and re-check after.
    """
    from ..netlist.core import PinRef
    buf = process.library.master("BUF_X1")
    added = 0
    for cap_inst, hs in sorted(hold.slack.items()):
        if hs >= 0:
            continue
        inst = netlist.instances.get(cap_inst)
        if inst is None:
            continue
        # find the capture pin's net and splice a buffer before it
        for net in list(netlist.nets_of(cap_inst)):
            if net.is_clock:
                continue
            for ref in list(net.sinks):
                if ref.inst != cap_inst:
                    continue
                pad = netlist.add_instance(
                    f"hold_{cap_inst}_{net.id}", buf,
                    x=inst.x, y=inst.y, die=inst.die,
                    cluster=inst.cluster)
                netlist.remove_sink(net.id, ref)
                netlist.add_sink(net.id, PinRef(inst=pad.id, pin=0))
                netlist.add_net(f"hold_n_{cap_inst}_{net.id}",
                                PinRef(inst=pad.id), [ref],
                                clock_domain=net.clock_domain)
                added += 1
                break
            break
    return added
