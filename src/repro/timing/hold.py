"""Hold-time (min-delay) analysis.

Setup checks bound the *slowest* path per cycle; hold checks bound the
*fastest*: a capturing flop must not see the next launch's data before
its hold window closes, so every launch-to-capture path must be slower
than ``hold time + clock skew``.  The sign-off engine here propagates
*minimum* arrivals through the combinational DAG (the mirror image of
:func:`repro.timing.sta.run_sta`) and checks each capture against the
hold requirement, taking the clock tree's measured skew
(:class:`repro.cts.tree.CTSResult`) as the uncertainty.

Zero-stage paths (flop feeding flop directly) are the classic hold risk;
3D designs add a twist the paper's future work hints at: tier-crossing
launch/capture pairs see the inter-tier clock skew.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cts.tree import CTSResult
from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.process import ProcessNode
from .sta import HOLD_PS, TimingConfig


@dataclass
class HoldResult:
    """Min-delay slacks at capturing endpoints."""

    #: capture instance id -> hold slack (ps)
    slack: Dict[int, float]
    whs_ps: float
    violations: int

    @property
    def met(self) -> bool:
        return self.whs_ps >= 0.0


def run_hold_analysis(netlist: Netlist, routing: RoutingResult,
                      process: ProcessNode, config: TimingConfig,
                      cts: Optional[CTSResult] = None,
                      hold_ps: float = HOLD_PS) -> HoldResult:
    """Check every capture against ``hold + skew`` with min-delay paths."""
    skew = cts.skew_ps if cts is not None else 0.0
    requirement = hold_ps + skew

    insts = netlist.instances
    loads: Dict[int, float] = defaultdict(float)
    for net in netlist.nets.values():
        if net.is_clock or net.driver.is_port:
            continue
        if net.driver.pin != 0 and not insts[net.driver.inst].is_macro:
            continue
        routed = routing.nets.get(net.id)
        if routed is not None:
            loads[net.driver.inst] += routed.total_cap_ff

    succ: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    pred_count: Dict[int, int] = defaultdict(int)
    captures: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        routed = routing.nets.get(net.id)
        if routed is None or net.driver.is_port:
            continue
        for s in routed.sinks:
            if s.ref.is_port:
                continue
            sink = insts[s.ref.inst]
            wd = routed.sink_wire_delay_ps(s)
            if sink.is_macro or sink.is_sequential:
                captures[net.driver.inst].append((s.ref.inst, wd))
            else:
                succ[net.driver.inst].append((s.ref.inst, wd))
                pred_count[s.ref.inst] += 1

    INF = float("inf")
    min_arrival: Dict[int, float] = {}
    comb_in: Dict[int, float] = defaultdict(lambda: INF)
    ready = deque()
    for inst in insts.values():
        if inst.is_macro:
            min_arrival[inst.id] = inst.master.intrinsic_delay_ps
            ready.append(inst.id)
        elif inst.is_sequential:
            min_arrival[inst.id] = inst.master.delay_ps(loads[inst.id])
            ready.append(inst.id)
        elif pred_count[inst.id] == 0:
            # driven only by ports: ports launch at the clock edge too,
            # conservatively with zero external min delay
            min_arrival[inst.id] = inst.master.delay_ps(loads[inst.id])
            ready.append(inst.id)

    remaining = dict(pred_count)
    done = set()
    while ready:
        iid = ready.popleft()
        if iid in done:
            continue
        done.add(iid)
        a = min_arrival[iid]
        for sink, wd in succ[iid]:
            comb_in[sink] = min(comb_in[sink], a + wd)
            remaining[sink] -= 1
            if remaining[sink] == 0:
                inst = insts[sink]
                min_arrival[sink] = comb_in[sink] + \
                    inst.master.delay_ps(loads[sink])
                ready.append(sink)

    slack: Dict[int, float] = {}
    whs = INF
    violations = 0
    for drv, sinks in captures.items():
        a = min_arrival.get(drv)
        if a is None:
            continue
        for cap_inst, wd in sinks:
            hs = (a + wd) - requirement
            prev = slack.get(cap_inst, INF)
            if hs < prev:
                slack[cap_inst] = hs
            if hs < whs:
                whs = hs
    violations = sum(1 for v in slack.values() if v < 0)
    if whs == INF:
        whs = 0.0
    return HoldResult(slack=slack, whs_ps=whs, violations=violations)


def fix_hold(netlist: Netlist, routing: RoutingResult,
             hold: HoldResult, process: ProcessNode,
             requirement_ps: Optional[float] = None) -> int:
    """Pad violating captures with delay buffers on their D inputs.

    The standard hold fix: insert a small buffer in front of each
    violating capture pin, adding its cell delay to the min path.
    Returns the number of buffers added; re-route and re-check after.
    """
    from ..netlist.core import PinRef
    buf = process.library.master("BUF_X1")
    added = 0
    for cap_inst, hs in sorted(hold.slack.items()):
        if hs >= 0:
            continue
        inst = netlist.instances.get(cap_inst)
        if inst is None:
            continue
        # find the capture pin's net and splice a buffer before it
        for net in list(netlist.nets_of(cap_inst)):
            if net.is_clock:
                continue
            for ref in list(net.sinks):
                if ref.inst != cap_inst:
                    continue
                pad = netlist.add_instance(
                    f"hold_{cap_inst}_{net.id}", buf,
                    x=inst.x, y=inst.y, die=inst.die,
                    cluster=inst.cluster)
                netlist.remove_sink(net.id, ref)
                netlist.add_sink(net.id, PinRef(inst=pad.id, pin=0))
                netlist.add_net(f"hold_n_{cap_inst}_{net.id}",
                                PinRef(inst=pad.id), [ref],
                                clock_domain=net.clock_domain)
                added += 1
                break
            break
    return added
