"""Static timing analysis and path reporting."""

from .paths import (PathStage, TimingPath, extract_worst_paths,
                    io_path_delays)
from .hold import HoldResult, fix_hold, run_hold_analysis
from .incremental import IncrementalSTA
from .load import driven_load, net_loads_driver
from .si import SiConfig, SiReport, coupling_factor, derate_routing
from .sta import (MACRO_SETUP_PS, SETUP_PS, STAResult, TimingConfig,
                  run_sta)

__all__ = ["MACRO_SETUP_PS", "SETUP_PS", "STAResult", "TimingConfig",
           "run_sta", "PathStage", "TimingPath", "extract_worst_paths",
           "io_path_delays", "SiConfig", "SiReport", "coupling_factor",
           "derate_routing", "HoldResult", "fix_hold",
           "run_hold_analysis", "IncrementalSTA", "driven_load",
           "net_loads_driver"]
