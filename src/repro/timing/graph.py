"""Levelized structure-of-arrays timing engines (the default path).

The scalar engines in :mod:`repro.timing.scalar` walk the
combinational DAG one node at a time through dicts and deques.  This
module replaces that walk with a **TimingGraph**: a flat array view of
the routed netlist (instances, per-sink Elmore wire delays, driver
loads, combinational edges) plus a one-shot Kahn levelization.  Each
analysis then runs as a handful of vectorized gathers and segment
reductions per level instead of per-node Python.

Bit-exactness contract (verified by ``tests/test_sta_parity.py``; the
full argument lives in ``docs/timing.md``):

* order-free reductions (arrival max, required/hold min, WNS/WHS) are
  computed with vector ``max``/``min`` -- comparison-based and
  therefore bit-exact regardless of evaluation order;
* ordered float accumulations (driver loads, TNS) keep the scalar
  path's sequential order -- loads via ``np.bincount`` (which adds
  per-segment weights in flat element order) over nets in netlist
  order, TNS via a small Python loop over the canonical arrival order;
* every elementwise float expression (cell delay, Elmore terms,
  backward-edge requireds) replicates the scalar operand order
  operation for operation;
* dict *iteration order* of ``STAResult.arrival`` reproduces the
  scalar engine's FIFO completion order.  That order is purely
  structural: seeds enqueue in instance order, and a node enqueues the
  moment its last predecessor edge relaxes, i.e. at the lexicographic
  max over its in-edges of ``(predecessor completion position, edge
  construction index)`` -- so the canonical order is recovered level by
  level without running the scalar walk.  ``required`` iterates in the
  scalar backward order ``sorted by (-arrival, instance id)``.

The graph assumes every cell delay is positive (true for the whole
generated library), which makes arrivals strictly increasing along
edges; the scalar backward pass's arrival-sorted order is then a
reverse topological order and level-descending processing matches it.

Fallbacks: combinational cycles, routed sinks out of positional sync
with the netlist (mid-surgery snapshots), or non-monotone instance ids
route the call to the scalar reference engine (counted by
``sta.scalar_fallbacks``).

Caching: the flat net view lives on the :class:`RoutingResult`
(:meth:`~repro.route.estimate.RoutingResult.net_arrays`, keyed by the
netlist's connectivity revision); the levelized graph with its delay
tables is cached on that view keyed by the netlist's master revision,
so a setup + hold + I/O-path sweep over one snapshot builds the graph
once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.core import Netlist
from ..route.estimate import NetArrays, RoutingResult
from ..tech.process import ProcessNode
from .sta import (MACRO_SETUP_PS, SETUP_PS, STAResult, TimingConfig)

_NEG_INF = float("-inf")
_INF = float("inf")


def _ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], ends[i])`` ranges into one index array."""
    cnts = ends - starts
    total = int(cnts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offs = np.repeat(np.cumsum(cnts) - cnts, cnts)
    return np.repeat(starts, cnts) + np.arange(total, dtype=np.int64) - offs


class TimingGraph:
    """Levelized array form of one routed netlist snapshot."""

    def __init__(self, netlist: Netlist, arrays: NetArrays) -> None:
        self.mrev = netlist.mrev
        self.ok = True          # False -> callers must use the scalar path
        self.cyclic = False

        insts = netlist.instances
        iids: List[int] = []
        mac: List[bool] = []
        seq: List[bool] = []
        intr: List[float] = []
        res: List[float] = []
        memo: Dict[int, Tuple[bool, bool, float, float]] = {}
        for inst in insts.values():
            m = inst.master
            t = memo.get(id(m))
            if t is None:
                im = inst.is_macro
                t = (im, (not im) and m.is_sequential,
                     m.intrinsic_delay_ps, m.drive_res_kohm)
                memo[id(m)] = t
            iids.append(inst.id)
            mac.append(t[0])
            seq.append(t[1])
            intr.append(t[2])
            res.append(t[3])

        self.iids = np.asarray(iids, dtype=np.int64)
        V = self.V = len(iids)
        self.is_macro = np.asarray(mac, dtype=bool)
        self.is_seq = np.asarray(seq, dtype=bool)
        intrinsic = np.asarray(intr, dtype=np.float64)
        drive_res = np.asarray(res, dtype=np.float64)

        if V and not bool(np.all(np.diff(self.iids) > 0)):
            self.ok = False     # scalar seed order needs monotone ids
            return

        # -- dense endpoint indices ------------------------------------
        s_raw = arrays.sink_inst
        net_row = arrays.sink_net
        sp = arrays.sink_is_port
        d_raw = arrays.drv_inst
        drvp = arrays.drv_is_port
        if V:
            sd = np.searchsorted(self.iids, np.clip(s_raw, 0, None))
            sd = np.clip(sd, 0, V - 1)
            dd = np.searchsorted(self.iids, np.clip(d_raw, 0, None))
            dd = np.clip(dd, 0, V - 1)
            bad_sink = (~sp) & (self.iids[sd] != s_raw)
            bad_drv = (~drvp) & (self.iids[dd] != d_raw)
            if bool(bad_sink.any()) or bool(bad_drv.any()):
                self.ok = False  # dangling endpoint: scalar raises KeyError
                return
        else:
            sd = np.zeros(len(s_raw), dtype=np.int64)
            dd = np.zeros(len(d_raw), dtype=np.int64)
            if bool((~sp).any()) or bool((~drvp).any()):
                self.ok = False   # instance endpoints but no instances
                return

        mac_sd = self.is_macro[sd] if V else np.zeros(len(sd), dtype=bool)
        seq_sd = self.is_seq[sd] if V else np.zeros(len(sd), dtype=bool)
        mac_dd = self.is_macro[dd] if V else np.zeros(len(dd), dtype=bool)
        self.all_matched = bool(arrays.matched.all())

        # -- driver loads and cell delays (ordered accumulation) -------
        # predicate = net_loads_driver: non-clock (already filtered),
        # instance driver, pin 0 or macro; the bincount adds
        # total_cap_ff per driver sequentially in netlist net order,
        # matching the scalar loops bit for bit
        mask_load = (~drvp) & ((arrays.drv_pin == 0) | mac_dd)
        if V:
            self.loads = np.bincount(dd[mask_load],
                                     weights=arrays.total_cap[mask_load],
                                     minlength=V)
        else:
            self.loads = np.zeros(0, dtype=np.float64)
        # CellMaster.delay_ps: intrinsic + drive_res * load; macros
        # launch with their intrinsic access time
        self.delay = np.where(self.is_macro, intrinsic,
                              intrinsic + drive_res * self.loads)

        # -- edge groups over the flat sink rows -----------------------
        drvp_row = drvp[net_row]
        nonport = ~sp
        tmac = nonport & mac_sd
        tseq = nonport & seq_sd
        term = tmac | tseq

        m_comb = (~drvp_row) & nonport & ~term
        self.e_src = dd[net_row[m_comb]]
        self.e_dst = sd[m_comb]
        self.e_wd = arrays.sink_wd[m_comb]
        e_idx = np.flatnonzero(m_comb)   # scalar succ-list append order

        m_ti = (~drvp_row) & term
        self.t_i_drv = dd[net_row[m_ti]]
        self.t_i_wd = arrays.sink_wd[m_ti]
        self.t_i_macro = tmac[m_ti]
        self.t_i_sink_raw = s_raw[m_ti]  # hold capture instance ids
        # the I/O-path capture setup margin per entry (constant)
        self.io_cap_setup = np.where(self.t_i_macro, MACRO_SETUP_PS,
                                     SETUP_PS)

        m_tp = (~drvp_row) & sp
        self.t_p_drv = dd[net_row[m_tp]]
        self.t_p_wd = arrays.sink_wd[m_tp]
        tp_rows = np.flatnonzero(m_tp)
        tp_names = [arrays.sink_ports[i] for i in tp_rows.tolist()]
        self.tp_names, self.t_p_name_idx = _intern(tp_names)

        m_pf = drvp_row & nonport & ~term
        self.pf_dst = sd[m_pf]
        self.pf_wd = arrays.sink_wd[m_pf]
        pf_rows = net_row[m_pf]
        pf_names = [arrays.drv_ports[i] for i in pf_rows.tolist()]
        self.pf_names, self.pf_name_idx = _intern(pf_names)

        # I/O-path port seeds: max(0, wire delays) per port-driven node
        mb = np.full(V, _NEG_INF)
        np.maximum.at(mb, self.pf_dst, self.pf_wd)
        self.port_base = np.where(mb > _NEG_INF, np.maximum(mb, 0.0),
                                  _NEG_INF)

        # hold capture emission order: drivers by first appearance,
        # entries per driver in append order (scalar dict iteration)
        C = len(self.t_i_drv)
        first: Dict[int, int] = {}
        rank = np.empty(C, dtype=np.int64)
        drv_list = self.t_i_drv.tolist()
        for i, d in enumerate(drv_list):
            r = first.get(d)
            if r is None:
                r = first[d] = len(first)
            rank[i] = r
        self.cap_perm = np.lexsort((np.arange(C, dtype=np.int64), rank))

        # -- levelization (pure structure, value-independent) ----------
        E = len(self.e_src)
        pred = np.bincount(self.e_dst, minlength=V) if V else \
            np.zeros(0, dtype=np.int64)
        self.pred_count = pred
        s_ord = np.argsort(self.e_src, kind="stable")
        s_src = self.e_src[s_ord]
        s_indptr = np.searchsorted(s_src, np.arange(V + 1))
        d_ord = np.argsort(self.e_dst, kind="stable")
        d_dst = self.e_dst[d_ord]
        d_indptr = np.searchsorted(d_dst, np.arange(V + 1))
        d_src = self.e_src[d_ord]
        d_wd = self.e_wd[d_ord]
        d_eidx = e_idx[d_ord]
        s_dst = self.e_dst[s_ord]
        s_wd = self.e_wd[s_ord]

        seed = self.is_macro | self.is_seq | (pred == 0)
        self.seed_mask = seed
        proc_pos = np.full(V, -1, dtype=np.int64)
        w0 = np.flatnonzero(seed)
        proc_pos[w0] = np.arange(len(w0), dtype=np.int64)
        next_pos = len(w0)
        waves = [w0]
        # per-wave cached gathers: forward in-edges (grouped per node in
        # wave order) and backward out-edges (nodes that have any)
        self.fin: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [
            (np.empty(0, np.int64), np.empty(0, np.float64),
             np.empty(0, np.int64))]
        remaining = pred.copy()
        done = seed.copy()
        frontier = w0
        while True:
            rows = _ranges(s_indptr[frontier], s_indptr[frontier + 1])
            if rows.size == 0:
                break
            cnt = np.bincount(s_dst[rows], minlength=V)
            remaining -= cnt
            new = np.flatnonzero((remaining == 0) & (cnt > 0) & ~done)
            if new.size == 0:
                break
            # completion keys: lex-max over in-edges of
            # (pred completion position, edge construction index)
            r2 = _ranges(d_indptr[new], d_indptr[new + 1])
            cnt2 = d_indptr[new + 1] - d_indptr[new]
            owner = np.repeat(np.arange(len(new), dtype=np.int64), cnt2)
            p = proc_pos[d_src[r2]]
            e = d_eidx[r2]
            perm = np.lexsort((e, p, owner))
            last = np.cumsum(cnt2) - 1
            kp = p[perm][last]
            ke = e[perm][last]
            worder = np.lexsort((ke, kp))
            wave_nodes = new[worder]
            proc_pos[wave_nodes] = next_pos + \
                np.arange(len(wave_nodes), dtype=np.int64)
            next_pos += len(wave_nodes)
            done[new] = True
            waves.append(wave_nodes)
            # in-edge gather for the forward value pass, in wave order
            r3 = _ranges(d_indptr[wave_nodes], d_indptr[wave_nodes + 1])
            cnt3 = d_indptr[wave_nodes + 1] - d_indptr[wave_nodes]
            starts3 = np.cumsum(cnt3) - cnt3
            self.fin.append((d_src[r3], d_wd[r3], starts3))
            frontier = wave_nodes

        if V and not bool(done.all()):
            self.cyclic = True   # combinational cycle: scalar handles it
            self.ok = False
            return

        self.waves = waves
        self.canon = np.concatenate(waves) if waves else \
            np.empty(0, dtype=np.int64)
        self.canon_iids = self.iids[self.canon].tolist()
        self.seed_comb = w0[~(self.is_macro[w0] | self.is_seq[w0])]
        self.n_levels = len(waves)

        # backward out-edge gathers per wave (only nodes with edges)
        self.bout: List[Tuple[np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray]] = []
        for nodes in waves:
            has = s_indptr[nodes + 1] > s_indptr[nodes]
            bn = nodes[has]
            r4 = _ranges(s_indptr[bn], s_indptr[bn + 1])
            cnt4 = s_indptr[bn + 1] - s_indptr[bn]
            starts4 = np.cumsum(cnt4) - cnt4
            self.bout.append((bn, s_dst[r4], s_wd[r4], starts4))

    # -- forward max/min value propagation -----------------------------

    def forward_max(self, comb_in: np.ndarray,
                    seed_arr: np.ndarray) -> np.ndarray:
        """Levelized longest-arrival pass.

        ``comb_in`` carries the external seeds (port arrivals) and is
        updated in place; ``seed_arr`` holds level-0 arrivals.
        """
        arr = seed_arr
        for ell in range(1, len(self.waves)):
            nodes = self.waves[ell]
            src, wd, starts = self.fin[ell]
            t = arr[src] + wd
            m = np.maximum.reduceat(t, starts) if len(t) else \
                np.empty(0, np.float64)
            ci = np.maximum(m, comb_in[nodes])
            comb_in[nodes] = ci
            arr[nodes] = ci + self.delay[nodes]
        return arr

    def forward_min(self, seed_arr: np.ndarray) -> np.ndarray:
        """Levelized shortest-arrival pass (hold)."""
        arr = seed_arr
        for ell in range(1, len(self.waves)):
            nodes = self.waves[ell]
            src, wd, starts = self.fin[ell]
            t = arr[src] + wd
            m = np.minimum.reduceat(t, starts) if len(t) else \
                np.empty(0, np.float64)
            arr[nodes] = m + self.delay[nodes]
        return arr

    def backward_min(self, req: np.ndarray) -> np.ndarray:
        """Levelized required-time pass, level-descending.

        ``req`` arrives seeded with the terminal requirements and is
        tightened in place: each node takes the min over its out-edges
        of ``(req[sink] - delay[sink]) - wire_delay`` (the scalar
        ``r_sink < INF`` guard is a no-op because ``inf`` minus a
        finite delay stays ``inf``).
        """
        for ell in range(len(self.waves) - 1, -1, -1):
            bn, dst, wd, starts = self.bout[ell]
            if len(bn) == 0:
                continue
            t = (req[dst] - self.delay[dst]) - wd
            m = np.minimum.reduceat(t, starts)
            req[bn] = np.minimum(req[bn], m)
        return req


def _intern(names: List[Optional[str]]
            ) -> Tuple[List[Optional[str]], np.ndarray]:
    """(unique names, per-entry index) for cheap per-call io lookups."""
    uniq: List[Optional[str]] = []
    where: Dict[Optional[str], int] = {}
    idx = np.empty(len(names), dtype=np.int64)
    for i, nm in enumerate(names):
        j = where.get(nm)
        if j is None:
            j = where[nm] = len(uniq)
            uniq.append(nm)
        idx[i] = j
    return uniq, idx


def graph_for(netlist: Netlist, routing: RoutingResult
              ) -> Optional[TimingGraph]:
    """The cached levelized graph for a snapshot (None -> use scalar)."""
    from ..obs.metrics import metrics

    arrays = routing.net_arrays(netlist)
    g = getattr(arrays, "_graph", None)
    if g is None or g.mrev != netlist.mrev:
        g = TimingGraph(netlist, arrays)
        arrays._graph = g
        if g.ok:
            metrics().counter("sta.levels").inc(g.n_levels)
    if not g.ok:
        metrics().counter("sta.scalar_fallbacks").inc()
        return None
    return g


# ---------------------------------------------------------------------------
# setup STA
# ---------------------------------------------------------------------------

def run_sta_array(netlist: Netlist, routing: RoutingResult,
                  process: ProcessNode,
                  config: TimingConfig) -> STAResult:
    """Array-path :func:`repro.timing.sta.run_sta` (same result, faster)."""
    from ..obs.metrics import metrics
    from . import scalar

    g = graph_for(netlist, routing)
    if g is None or not g.all_matched:
        if g is not None:
            metrics().counter("sta.scalar_fallbacks").inc()
        return scalar.run_sta(netlist, routing, process, config)
    metrics().counter("sta.vector_passes").inc()

    period = process.clock_period_ps(config.clock_domain)
    V = g.V

    # input-port arrivals onto their combinational fanout
    comb_in = np.full(V, _NEG_INF)
    if len(g.pf_dst):
        a0 = np.asarray([config.io_delay(nm) for nm in g.pf_names])
        np.maximum.at(comb_in, g.pf_dst, a0[g.pf_name_idx] + g.pf_wd)

    # level-0 arrivals: flop/macro launches plus zero-pred comb cells
    arr = np.full(V, _NEG_INF)
    w0 = g.waves[0] if g.waves else np.empty(0, np.int64)
    arr[w0] = g.delay[w0]
    zp = g.seed_comb
    base = comb_in[zp].copy()
    base[base == _NEG_INF] = 0.0
    arr[zp] = base + g.delay[zp]

    arr = g.forward_max(comb_in, arr)

    # terminal requirements -> req seed (order-free min)
    req = np.full(V, _INF)
    if len(g.t_i_drv):
        r_i = np.where(g.t_i_macro, period - MACRO_SETUP_PS,
                       period - SETUP_PS)
        np.minimum.at(req, g.t_i_drv, r_i - g.t_i_wd)
    if len(g.t_p_drv):
        ports = netlist.ports
        keep = np.asarray([not ports[nm].false_path
                           for nm in g.tp_names])[g.t_p_name_idx]
        if bool(keep.any()):
            r_p = np.asarray([period - config.io_delay(nm)
                              for nm in g.tp_names])[g.t_p_name_idx]
            np.minimum.at(req, g.t_p_drv[keep],
                          (r_p - g.t_p_wd)[keep])
    req = g.backward_min(req)

    # -- emission in the scalar engine's dict orders -------------------
    arrival: Dict[int, float] = {}
    a_list = arr[g.canon].tolist()
    for iid, a in zip(g.canon_iids, a_list):
        arrival[iid] = a

    required: Dict[int, float] = {}
    ordb = np.lexsort((np.arange(V, dtype=np.int64), -arr))
    iids_b = g.iids[ordb].tolist()
    req_b = req[ordb].tolist()
    for iid, r in zip(iids_b, req_b):
        required[iid] = r

    slack: Dict[int, float] = {}
    wns = _INF
    tns = 0.0
    r_canon = req[g.canon].tolist()
    for iid, a, r in zip(g.canon_iids, a_list, r_canon):
        if r >= _INF:
            continue
        s = r - a
        slack[iid] = s
        if s < wns:
            wns = s
        if s < 0:
            tns += s
    if wns == _INF:
        wns = 0.0
    return STAResult(period_ps=period, arrival=arrival, required=required,
                     slack=slack, wns_ps=wns, tns_ps=tns)


# ---------------------------------------------------------------------------
# hold analysis
# ---------------------------------------------------------------------------

def run_hold_array(netlist: Netlist, routing: RoutingResult,
                   process: ProcessNode, config: TimingConfig,
                   cts=None, hold_ps: float = None):
    """Array-path :func:`repro.timing.hold.run_hold_analysis`."""
    from ..obs.metrics import metrics
    from . import scalar
    from .hold import HoldResult
    from .sta import HOLD_PS

    if hold_ps is None:
        hold_ps = HOLD_PS
    g = graph_for(netlist, routing)
    if g is None:
        return scalar.run_hold_analysis(netlist, routing, process, config,
                                        cts=cts, hold_ps=hold_ps)
    metrics().counter("sta.vector_passes").inc()

    skew = cts.skew_ps if cts is not None else 0.0
    requirement = hold_ps + skew

    V = g.V
    arr = np.full(V, _INF)
    w0 = g.waves[0] if g.waves else np.empty(0, np.int64)
    # macro -> intrinsic, flop / port-only comb -> delay(load): exactly
    # the per-node delay table
    arr[w0] = g.delay[w0]
    arr = g.forward_min(arr)

    hs = (arr[g.t_i_drv] + g.t_i_wd) - requirement
    slack: Dict[int, float] = {}
    whs = _INF
    perm = g.cap_perm
    caps = g.t_i_sink_raw[perm].tolist()
    hs_l = hs[perm].tolist()
    for cap_inst, h in zip(caps, hs_l):
        prev = slack.get(cap_inst, _INF)
        if h < prev:
            slack[cap_inst] = h
        if h < whs:
            whs = h
    violations = sum(1 for v in slack.values() if v < 0)
    if whs == _INF:
        whs = 0.0
    return HoldResult(slack=slack, whs_ps=whs, violations=violations)


# ---------------------------------------------------------------------------
# I/O path halves
# ---------------------------------------------------------------------------

def io_path_array(netlist: Netlist, routing: RoutingResult,
                  process: ProcessNode, config: TimingConfig,
                  sta: Optional[STAResult] = None) -> Tuple[float, float]:
    """Array-path :func:`repro.timing.paths.io_path_delays`."""
    from ..obs.metrics import metrics
    from . import scalar
    from .sta import run_sta as run_sta_dispatch

    g = graph_for(netlist, routing)
    if g is None:
        return scalar.io_path_delays(netlist, routing, process, config,
                                     sta=sta)
    metrics().counter("sta.vector_passes").inc()

    if sta is None:
        sta = run_sta_dispatch(netlist, routing, process, config)

    # t_out: worst launch-to-output-port arrival (few port nets; the
    # scalar scan is kept -- it is not a hot path)
    t_out = 0.0
    for name, port in netlist.ports.items():
        if port.direction != "out" or port.false_path:
            continue
        for net in netlist.nets_of_port(name):
            routed = routing.nets.get(net.id)
            if routed is None or net.driver.is_port:
                continue
            for s in routed.sinks:
                if s.ref.is_port and s.ref.port == name:
                    a = sta.arrival.get(net.driver.inst, 0.0)
                    t_out = max(t_out,
                                a + routed.sink_wire_delay_ps(s))

    # t_in: longest port-to-capture path; port-seeded forward pass
    V = g.V
    comb_in = g.port_base.copy()
    arr = np.where(comb_in > _NEG_INF, comb_in + g.delay,
                   _NEG_INF)
    mask = np.zeros(V, dtype=bool)
    w0 = g.waves[0] if g.waves else np.empty(0, np.int64)
    mask[w0] = True
    arr = np.where(mask, arr, _NEG_INF)  # only level-0 values so far
    for ell in range(1, len(g.waves)):
        nodes = g.waves[ell]
        src, wd, starts = g.fin[ell]
        t = arr[src] + wd
        m = np.maximum.reduceat(t, starts) if len(t) else \
            np.empty(0, np.float64)
        ci = np.maximum(m, comb_in[nodes])
        arr[nodes] = np.where(ci > _NEG_INF, ci + g.delay[nodes],
                              _NEG_INF)

    t_in = 0.0
    if len(g.t_i_drv):
        c = (arr[g.t_i_drv] + g.t_i_wd) + g.io_cap_setup
        c = c[arr[g.t_i_drv] > _NEG_INF]
        if len(c):
            t_in = max(t_in, float(c.max()))
    return t_in, t_out
