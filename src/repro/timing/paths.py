"""Timing path extraction and reporting.

Turns an STA result back into human-readable critical paths -- the
equivalent of a PrimeTime ``report_timing``: startpoint (flop / macro /
port), the chain of cells with per-stage cell and wire increments, the
endpoint, and the slack.  Used by the chip-level sign-off report and
handy for debugging why a block fails its budget.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.process import ProcessNode
from .sta import STAResult, TimingConfig, run_sta


@dataclass
class PathStage:
    """One stage of a timing path."""

    instance: str
    master: str
    cell_delay_ps: float
    wire_delay_ps: float
    arrival_ps: float


@dataclass
class TimingPath:
    """A complete register-to-register (or port) path."""

    startpoint: str
    endpoint: str
    stages: List[PathStage]
    slack_ps: float
    required_ps: float
    arrival_ps: float

    @property
    def depth(self) -> int:
        return len(self.stages)

    def report(self) -> str:
        lines = [f"  startpoint: {self.startpoint}",
                 f"  endpoint:   {self.endpoint}",
                 f"  {'instance':24s}{'master':16s}{'cell':>8s}"
                 f"{'wire':>8s}{'arrival':>9s}"]
        for s in self.stages:
            lines.append(f"  {s.instance:24s}{s.master:16s}"
                         f"{s.cell_delay_ps:8.1f}{s.wire_delay_ps:8.1f}"
                         f"{s.arrival_ps:9.1f}")
        lines.append(f"  arrival {self.arrival_ps:.1f} ps, required "
                     f"{self.required_ps:.1f} ps, slack "
                     f"{self.slack_ps:+.1f} ps")
        return "\n".join(lines)


def extract_worst_paths(netlist: Netlist, routing: RoutingResult,
                        process: ProcessNode, config: TimingConfig,
                        n_paths: int = 3,
                        sta: Optional[STAResult] = None
                        ) -> List[TimingPath]:
    """The ``n_paths`` worst-slack paths, traced through max-arrival
    predecessors."""
    if sta is None:
        sta = run_sta(netlist, routing, process, config)
    insts = netlist.instances

    # rebuild predecessor map: sink inst -> (driver inst, wire delay)
    pred: Dict[int, List[Tuple[Optional[int], float]]] = defaultdict(list)
    loads: Dict[int, float] = defaultdict(float)
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        routed = routing.nets.get(net.id)
        if routed is None:
            continue
        if not net.driver.is_port and (net.driver.pin == 0 or
                                       insts[net.driver.inst].is_macro):
            loads[net.driver.inst] += routed.total_cap_ff
        for s in routed.sinks:
            if s.ref.is_port:
                continue
            sink_inst = insts[s.ref.inst]
            if sink_inst.is_macro or sink_inst.is_sequential:
                continue
            drv = None if net.driver.is_port else net.driver.inst
            pred[s.ref.inst].append((drv, routed.sink_wire_delay_ps(s)))

    def cell_delay(iid: int) -> float:
        inst = insts[iid]
        if inst.is_macro:
            return inst.master.intrinsic_delay_ps
        return inst.master.delay_ps(loads[iid])

    def trace(end_inst: int) -> List[PathStage]:
        stages: List[PathStage] = []
        iid = end_inst
        guard = 0
        while iid is not None and guard < 10000:
            guard += 1
            inst = insts[iid]
            best = None
            for drv, wd in pred.get(iid, ()):
                if drv is None:
                    score = wd
                else:
                    score = sta.arrival.get(drv, 0.0) + wd
                if best is None or score > best[0]:
                    best = (score, drv, wd)
            wire_in = best[2] if best else 0.0
            stages.append(PathStage(
                instance=inst.name, master=inst.master.name,
                cell_delay_ps=cell_delay(iid), wire_delay_ps=wire_in,
                arrival_ps=sta.arrival.get(iid, 0.0)))
            if best is None or inst.is_sequential or inst.is_macro:
                break
            iid = best[1]
        stages.reverse()
        return stages

    worst = sorted((iid for iid in sta.slack), key=lambda i: sta.slack[i])
    paths: List[TimingPath] = []
    seen_ends = set()
    for iid in worst:
        if len(paths) >= n_paths:
            break
        if iid in seen_ends or iid not in insts:
            continue
        seen_ends.add(iid)
        stages = trace(iid)
        if not stages:
            continue
        paths.append(TimingPath(
            startpoint=stages[0].instance,
            endpoint=stages[-1].instance,
            stages=stages,
            slack_ps=sta.slack[iid],
            required_ps=sta.required.get(iid, float("inf")),
            arrival_ps=sta.arrival.get(iid, 0.0)))
    return paths


def io_path_delays(netlist: Netlist, routing: RoutingResult,
                   process: ProcessNode, config: TimingConfig,
                   sta: Optional[STAResult] = None
                   ) -> Tuple[float, float]:
    """(worst input-to-capture, worst launch-to-output) delay in ps.

    The two halves of a cross-block path: ``t_in`` is the longest delay
    from any input port to a capturing element inside the block;
    ``t_out`` is the longest launch-to-output-port delay.  The chip-level
    sign-off (``repro.core.chip_sta``) adds the inter-block wire between
    them.

    Dispatches to the levelized array engine
    (:func:`repro.timing.graph.io_path_array`); the scalar relaxation
    walk lives in :mod:`repro.timing.scalar` behind
    ``REPRO_STA_SCALAR=1``.
    """
    from . import scalar
    if scalar.use_scalar():
        return scalar.io_path_delays(netlist, routing, process, config,
                                     sta=sta)
    from .graph import io_path_array
    return io_path_array(netlist, routing, process, config, sta=sta)
