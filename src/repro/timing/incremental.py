"""Incremental static timing analysis.

Engineering-change-order edits -- resizing a master, swapping its Vth --
perturb timing only in the touched cells' fan-in/fan-out cones, yet
:func:`repro.timing.sta.run_sta` reprocesses the whole block.  This
module keeps the timing graph alive between edits:

* :meth:`IncrementalSTA.swap_masters` applies a whole batch of master
  changes (one optimizer chunk), refreshes the routing view's pin caps
  through :meth:`repro.route.estimate.RoutingResult.update_instances`,
  and re-propagates arrivals forward / requireds backward with a single
  frontier walk for the batch;
* :meth:`IncrementalSTA.apply_routing_update` absorbs an external
  incremental re-extraction (changed net ids) into the live graph;
* :meth:`IncrementalSTA.to_result` snapshots the live graph as an
  :class:`STAResult` equal to a from-scratch :func:`run_sta` -- not
  approximately: the propagation uses exact comparisons and the same
  arithmetic expressions and accumulation orders as ``run_sta``, so
  every arrival, required, slack, WNS and TNS value matches
  bit-for-bit (asserted exactly by the test suite).

Placement and routing geometry are assumed frozen (master swaps do not
move cells); for netlist surgery (buffer insertion), rebuild.
"""

from __future__ import annotations

from collections import defaultdict, deque
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..netlist.core import Netlist
from ..obs.metrics import metrics
from ..route.estimate import RoutingResult
from ..tech.cells import CellMaster
from ..tech.process import ProcessNode
from .load import driven_load, net_loads_driver
from .sta import (MACRO_SETUP_PS, SETUP_PS, STAResult, TimingConfig,
                  run_sta)

INF = float("inf")


class IncrementalSTA:
    """A persistent timing view supporting batched master-swap ECOs."""

    def __init__(self, netlist: Netlist, routing: RoutingResult,
                 process: ProcessNode, config: TimingConfig) -> None:
        self.netlist = netlist
        self.routing = routing
        self.process = process
        self.config = config
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        base = run_sta(self.netlist, self.routing, self.process,
                       self.config)
        metrics().counter("sta.full_rebuilds").inc()
        self.period = base.period_ps
        self.arrival: Dict[int, float] = dict(base.arrival)
        self.required: Dict[int, float] = dict(base.required)
        self._index_graph()

    @classmethod
    def from_snapshot(cls, netlist: Netlist, routing: RoutingResult,
                      process: ProcessNode, config: TimingConfig,
                      snapshot: STAResult) -> "IncrementalSTA":
        """Adopt a finished design's STA instead of re-running it.

        ``snapshot`` must be the exact :func:`run_sta` result for
        ``(netlist, routing, config)`` -- e.g. ``BlockDesign.sta``
        straight out of the flow.  Only the (float-free) graph index is
        rebuilt; ``sta.full_rebuilds`` stays untouched, which is what
        lets a derived ECO scenario reuse the base design's timing work
        wholesale.
        """
        view = cls.__new__(cls)
        view.netlist = netlist
        view.routing = routing
        view.process = process
        view.config = config
        view.period = snapshot.period_ps
        view.arrival = dict(snapshot.arrival)
        view.required = dict(snapshot.required)
        view._index_graph()
        return view

    def _index_graph(self) -> None:
        """(Re)build the structural index: edges, loads, topo order.

        Pure graph bookkeeping -- no timing values are touched, so this
        is safe to re-run after netlist surgery to absorb new/removed
        nets and instances.  Loads are re-accumulated from scratch in
        ``run_sta``'s net order, keeping them bit-identical with a full
        run.
        """
        insts = self.netlist.instances
        # edges keep live references to the routed SinkPath objects, so
        # wire delays always reflect the *current* pin caps
        self.succ: Dict[int, List[Tuple[int, object, object]]] = \
            defaultdict(list)
        self.pred: Dict[int, List[Tuple[int, object, object]]] = \
            defaultdict(list)
        self.term_req: Dict[int, List[Tuple[float, object, object]]] = \
            defaultdict(list)
        self.port_in: Dict[int, List[Tuple[float, object, object]]] = \
            defaultdict(list)
        self.loads: Dict[int, float] = defaultdict(float)
        for net in self.netlist.nets.values():
            if net.is_clock:
                continue
            routed = self.routing.nets.get(net.id)
            if routed is None:
                continue
            drv = net.driver
            if net_loads_driver(self.netlist, net):
                self.loads[drv.inst] += routed.total_cap_ff
            for s in routed.sinks:
                ref = s.ref
                if ref.is_port:
                    if not drv.is_port and \
                            not self.netlist.ports[ref.port].false_path:
                        req = self.period - \
                            self.config.io_delay(ref.port)
                        self.term_req[drv.inst].append((req, routed, s))
                    continue
                sink = insts[ref.inst]
                if sink.is_macro or sink.is_sequential:
                    if not drv.is_port:
                        setup = MACRO_SETUP_PS if sink.is_macro \
                            else SETUP_PS
                        self.term_req[drv.inst].append(
                            (self.period - setup, routed, s))
                    continue
                if drv.is_port:
                    a0 = self.config.io_delay(drv.port)
                    self.port_in[ref.inst].append((a0, routed, s))
                else:
                    self.succ[drv.inst].append((ref.inst, routed, s))
                    self.pred[ref.inst].append((drv.inst, routed, s))

        # topological index over the combinational edges: dirty cones
        # re-propagate in this order, so each affected node is
        # re-evaluated once per batch instead of once per worklist hit
        indeg = {iid: 0 for iid in insts}
        for edges in self.succ.values():
            for sink, _routed, _sp in edges:
                indeg[sink] += 1
        order = deque(iid for iid, d in indeg.items() if d == 0)
        self.topo: Dict[int, int] = {}
        idx = 0
        while order:
            iid = order.popleft()
            self.topo[iid] = idx
            idx += 1
            for sink, _routed, _sp in self.succ.get(iid, ()):
                indeg[sink] -= 1
                if indeg[sink] == 0:
                    order.append(sink)

    # -- delay model --------------------------------------------------------

    def _own_delay(self, iid: int) -> float:
        inst = self.netlist.instances[iid]
        if inst.is_macro:
            return inst.master.intrinsic_delay_ps
        return inst.master.delay_ps(self.loads[iid])

    def _recompute_arrival(self, iid: int) -> float:
        inst = self.netlist.instances[iid]
        if inst.is_macro or inst.is_sequential:
            return self._own_delay(iid)
        best = float("-inf")
        for a0, routed, sp in self.port_in.get(iid, ()):
            best = max(best, a0 + routed.sink_wire_delay_ps(sp))
        for drv, routed, sp in self.pred[iid]:
            best = max(best, self.arrival.get(drv, 0.0) +
                       routed.sink_wire_delay_ps(sp))
        if best == float("-inf"):
            best = 0.0
        return best + self._own_delay(iid)

    def _recompute_required(self, iid: int) -> float:
        r = INF
        for req, routed, sp in self.term_req.get(iid, ()):
            r = min(r, req - routed.sink_wire_delay_ps(sp))
        for sink, routed, sp in self.succ[iid]:
            r_sink = self.required.get(sink, INF)
            if r_sink < INF:
                r = min(r, r_sink - self._own_delay(sink) -
                        routed.sink_wire_delay_ps(sp))
        return r

    # -- ECO edits -----------------------------------------------------------

    def swap_master(self, inst_id: int, master: CellMaster) -> None:
        """Apply one master change and re-time the affected cones."""
        self.swap_masters([(inst_id, master)])

    def swap_masters(self,
                     moves: Sequence[Tuple[int, CellMaster]]) -> int:
        """Apply a batch of master changes with one frontier walk.

        Pin capacitances in the routing view are refreshed in place
        (:meth:`RoutingResult.update_instances`), affected drivers'
        loads are recomputed from scratch in ``run_sta``'s accumulation
        order, and the whole batch's fan-in/fan-out cones are re-timed
        with a single forward and a single backward propagation --
        instead of one full re-route and one full STA per chunk.

        Returns the number of moves actually applied (no-ops skipped).
        """
        applied: List[int] = []
        for iid, master in moves:
            if self.netlist.instances[iid].master is master:
                continue
            self.netlist.replace_master(iid, master)
            applied.append(iid)
        if not applied:
            return 0
        changed_nets = self.routing.update_instances(self.netlist,
                                                     applied)
        self._retime(applied, changed_nets)
        return len(applied)

    def apply_routing_update(self, net_ids: Iterable[int]) -> None:
        """Absorb externally re-extracted nets into the live graph.

        Call after mutating the routing view directly (for example a
        caller-driven :meth:`RoutingResult.update_instances` or
        :meth:`RoutingResult.refresh_nets`): affected drivers' loads
        and both cones are re-timed incrementally.  The edge index is
        rebuilt first -- a re-route replaces the ``RoutedNet`` (and
        ``SinkPath``) objects the edges hold live references to, and
        retiming over the stale geometry would quietly freeze wire
        delays at their pre-update values.
        """
        self._index_graph()
        self._retime((), list(net_ids))

    def patch_topology(self, changed_insts: Iterable[int],
                       changed_nets: Iterable[int],
                       removed_insts: Iterable[int] = ()) -> None:
        """Absorb netlist surgery into the live graph.

        Called after instances/nets were added, removed or rewired
        (buffer insertion/removal, ECO displacement) *and* the routing
        view was brought current for every affected net.  The edge
        index is rebuilt structurally, new instances get provisional
        timing values, the touched cones are re-propagated, and finally
        the arrival dict is rebuilt in ``run_sta``'s canonical
        insertion order so :meth:`to_result` stays bit-identical to a
        from-scratch run -- including the order-sensitive TNS
        accumulation.

        Args:
            changed_insts: live instances whose timing context changed
                (e.g. a rewired driver).
            changed_nets: net ids re-routed/re-extracted, including ids
                of nets that were *removed* (skipped harmlessly).
            removed_insts: ids of instances deleted by the surgery.
        """
        metrics().counter("sta.topology_patches").inc()
        for iid in removed_insts:
            self.arrival.pop(iid, None)
            self.required.pop(iid, None)
        self._index_graph()
        insts = self.netlist.instances
        new_ids = [iid for iid in insts if iid not in self.arrival]
        # provisional values for the new nodes, in topo order so chains
        # (buffer trees) see their in-batch predecessors
        for iid in sorted(new_ids,
                          key=lambda i: self.topo.get(i, len(insts))):
            self.arrival[iid] = self._recompute_arrival(iid)
            self.required.setdefault(iid, INF)
        seeds = (set(changed_insts) | set(new_ids)) & set(insts)
        self._retime(seeds, changed_nets)
        order = self._canonical_arrival_order()
        self.arrival = {iid: self.arrival[iid] for iid in order}
        self.required = {iid: self.required.get(iid, INF)
                         for iid in order}

    def retarget(self, config: TimingConfig) -> None:
        """Swap the I/O timing context (neighboring-scenario ECO).

        Port budgets enter timing in exactly two places: launch
        arrivals of port-driven sinks (``port_in``) and capture
        requirements at port-capturing drivers (``term_req``).
        Re-indexing under the new config refreshes both edge sets;
        re-timing then seeds from every port-coupled instance, leaving
        the interior of the block untouched unless a cone actually
        moved.
        """
        self.config = config
        self.period = self.process.clock_period_ps(config.clock_domain)
        self._index_graph()
        seeds = set(self.port_in) | set(self.term_req)
        self._retime(seeds, ())

    def _canonical_arrival_order(self) -> List[int]:
        """``run_sta``'s arrival-dict insertion order, structurally.

        Replays the full run's ordering without touching any floats:
        launches and zero-pred combinational nodes in instance order,
        then Kahn completion order over the combinational edges, then
        the cycle-safety leftovers in instance order.  Rebuilding the
        arrival dict in this order after surgery keeps the (float-
        order-sensitive) TNS sum in :meth:`to_result` bit-identical to
        a from-scratch run.
        """
        insts = self.netlist.instances
        pred_count = {iid: 0 for iid in insts}
        for edges in self.succ.values():
            for sink, _routed, _sp in edges:
                if sink in pred_count:
                    pred_count[sink] += 1
        order: List[int] = []
        ready: deque = deque()
        for inst in insts.values():
            if inst.is_macro or inst.is_sequential:
                order.append(inst.id)
                ready.append(inst.id)
            elif pred_count[inst.id] == 0:
                order.append(inst.id)
                ready.append(inst.id)
        remaining = dict(pred_count)
        processed: Set[int] = set()
        while ready:
            iid = ready.popleft()
            if iid in processed:
                continue
            processed.add(iid)
            for sink, _routed, _sp in self.succ.get(iid, ()):
                remaining[sink] -= 1
                if remaining[sink] == 0:
                    order.append(sink)
                    ready.append(sink)
        seen = set(order)
        for inst in insts.values():
            if inst.id not in seen:
                order.append(inst.id)
        return order

    def try_swap(self, inst_id: int, master: CellMaster,
                 min_slack_ps: float) -> bool:
        """Apply one swap; keep it only if true post-move slack holds.

        Every node whose arrival or required time actually moved (plus
        the swapped cell itself) must keep at least ``min_slack_ps`` of
        slack, or the move is reverted -- re-propagation is purely
        functional, so the revert restores the prior state exactly.
        """
        old = self.netlist.instances[inst_id].master
        if old is master:
            return False
        changed: Set[int] = {inst_id}
        self.netlist.replace_master(inst_id, master)
        nets = self.routing.update_instances(self.netlist, [inst_id])
        self._retime([inst_id], nets, changed)
        worst = INF
        for iid in changed:
            r = self.required.get(iid, INF)
            if r < INF:
                worst = min(worst, r - self.arrival.get(iid, 0.0))
        if worst < min_slack_ps:
            self.netlist.replace_master(inst_id, old)
            nets = self.routing.update_instances(self.netlist, [inst_id])
            self._retime([inst_id], nets)
            return False
        return True

    def _retime(self, changed_insts: Iterable[int],
                changed_nets: Iterable[int],
                changed_out: Optional[Set[int]] = None) -> None:
        dirty: Set[int] = set(changed_insts)
        reload_ids: Set[int] = set(changed_insts)
        for nid in changed_nets:
            net = self.netlist.nets.get(nid)
            if net is None:
                continue
            drv = net.driver
            if not drv.is_port:
                dirty.add(drv.inst)
                reload_ids.add(drv.inst)
            for s in net.sinks:
                if not s.is_port:
                    dirty.add(s.inst)
        for iid in reload_ids:
            self.loads[iid] = driven_load(self.netlist, self.routing,
                                          iid)
        ok = self._propagate_forward(dirty, changed_out) and \
            self._propagate_backward(dirty, changed_out)
        if not ok:  # pragma: no cover - cyclic-netlist safety valve
            self._build()
            if changed_out is not None:
                changed_out.update(self.arrival)

    def _propagate_forward(self, seeds: Iterable[int],
                           changed_out: Optional[Set[int]] = None) -> bool:
        topo = self.topo
        heap: List[Tuple[int, int]] = []
        queued: Set[int] = set()
        for iid in seeds:
            idx = topo.get(iid)
            if idx is None:  # cyclic netlist: fall back to full rebuild
                return False
            if iid not in queued:
                heappush(heap, (idx, iid))
                queued.add(iid)
        guard = 0
        limit = 500 * (len(self.netlist.instances) + 4)
        while heap:
            if guard >= limit:
                return False
            guard += 1
            _, iid = heappop(heap)
            queued.discard(iid)
            new = self._recompute_arrival(iid)
            if new == self.arrival.get(iid, 0.0):
                continue
            self.arrival[iid] = new
            if changed_out is not None:
                changed_out.add(iid)
            for sink, _routed, _sp in self.succ[iid]:
                if sink not in queued:
                    idx = topo.get(sink)
                    if idx is None:
                        return False
                    heappush(heap, (idx, sink))
                    queued.add(sink)
        metrics().counter("sta.incremental_nodes").inc(guard)
        return True

    def _propagate_backward(self, seeds: Iterable[int],
                            changed_out: Optional[Set[int]] = None
                            ) -> bool:
        topo = self.topo
        heap: List[Tuple[int, int]] = []
        queued: Set[int] = set()

        def push(iid: int) -> bool:
            idx = topo.get(iid)
            if idx is None:
                return False
            if iid not in queued:
                # reverse topological order: sinks before their drivers
                heappush(heap, (-idx, iid))
                queued.add(iid)
            return True

        for iid in seeds:
            if not push(iid):
                return False
            # a changed cell's delay also shifts its predecessors'
            # required times, even when its own required is untouched
            for drv, _routed, _sp in self.pred[iid]:
                if not push(drv):
                    return False
        guard = 0
        limit = 500 * (len(self.netlist.instances) + 4)
        while heap:
            if guard >= limit:
                return False
            guard += 1
            _, iid = heappop(heap)
            queued.discard(iid)
            new = self._recompute_required(iid)
            if new == self.required.get(iid, INF):
                continue
            self.required[iid] = new
            if changed_out is not None:
                changed_out.add(iid)
            for drv, _routed, _sp in self.pred[iid]:
                if not push(drv):
                    return False
        metrics().counter("sta.incremental_nodes").inc(guard)
        return True

    # -- results ---------------------------------------------------------------

    def to_result(self) -> STAResult:
        """Snapshot the live graph as an :class:`STAResult`.

        Equal to a from-scratch :func:`run_sta` over the same netlist
        and routing -- bit-for-bit, including the TNS accumulation
        order (``run_sta``'s arrival-dict order is a function of graph
        structure only, which master swaps never change).
        """
        slack: Dict[int, float] = {}
        wns = INF
        tns = 0.0
        for iid, a in self.arrival.items():
            r = self.required.get(iid, INF)
            if r >= INF:
                continue
            s = r - a
            slack[iid] = s
            if s < wns:
                wns = s
            if s < 0:
                tns += s
        if wns == INF:
            wns = 0.0
        # copies: a snapshot must stay frozen while further ECOs land
        return STAResult(period_ps=self.period,
                         arrival=dict(self.arrival),
                         required=dict(self.required), slack=slack,
                         wns_ps=wns, tns_ps=tns)

    #: back-compat alias (pre-batch API)
    def result(self) -> STAResult:
        return self.to_result()
