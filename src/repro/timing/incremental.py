"""Incremental static timing analysis.

Engineering-change-order edits -- resizing a master, swapping its Vth --
perturb timing only in the touched cells' fan-in/fan-out cones, yet
:func:`repro.timing.sta.run_sta` reprocesses the whole block.  This
module keeps the timing graph alive between edits:

* :meth:`IncrementalSTA.swap_master` applies a master change and
  re-propagates arrivals forward (and requireds backward) only while
  values actually move;
* results match a from-scratch :func:`run_sta` exactly (asserted by the
  test suite), because both build the same graph and delay model.

Placement and routing are assumed frozen (master swaps do not move
cells); for netlist surgery (buffer insertion), rebuild.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterable, List, Set, Tuple

from ..netlist.core import Netlist
from ..route.estimate import RoutingResult
from ..tech.cells import CellMaster
from ..tech.process import ProcessNode
from .sta import (MACRO_SETUP_PS, SETUP_PS, STAResult, TimingConfig,
                  run_sta)


class IncrementalSTA:
    """A persistent timing view supporting master-swap ECOs."""

    def __init__(self, netlist: Netlist, routing: RoutingResult,
                 process: ProcessNode, config: TimingConfig) -> None:
        self.netlist = netlist
        self.routing = routing
        self.process = process
        self.config = config
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        base = run_sta(self.netlist, self.routing, self.process,
                       self.config)
        self.period = base.period_ps
        self.arrival: Dict[int, float] = dict(base.arrival)
        self.required: Dict[int, float] = dict(base.required)

        insts = self.netlist.instances
        # edges keep live references to the routed SinkPath objects, so
        # wire delays always reflect the *current* pin caps
        self.succ: Dict[int, List[Tuple[int, object, object]]] = \
            defaultdict(list)
        self.pred: Dict[int, List[Tuple[int, object, object]]] = \
            defaultdict(list)
        self.term_req: Dict[int, List[Tuple[float, object, object]]] = \
            defaultdict(list)
        self.port_in: Dict[int, List[Tuple[float, object, object]]] = \
            defaultdict(list)
        self.loads: Dict[int, float] = defaultdict(float)
        for net in self.netlist.nets.values():
            if net.is_clock:
                continue
            routed = self.routing.nets.get(net.id)
            if routed is None:
                continue
            drv = net.driver
            if not drv.is_port and (drv.pin == 0 or
                                    insts[drv.inst].is_macro):
                self.loads[drv.inst] += routed.total_cap_ff
            for s in routed.sinks:
                ref = s.ref
                if ref.is_port:
                    if not drv.is_port and \
                            not self.netlist.ports[ref.port].false_path:
                        req = self.period - \
                            self.config.io_delay(ref.port)
                        self.term_req[drv.inst].append((req, routed, s))
                    continue
                sink = insts[ref.inst]
                if sink.is_macro or sink.is_sequential:
                    if not drv.is_port:
                        setup = MACRO_SETUP_PS if sink.is_macro \
                            else SETUP_PS
                        self.term_req[drv.inst].append(
                            (self.period - setup, routed, s))
                    continue
                if drv.is_port:
                    a0 = self.config.io_delay(drv.port)
                    self.port_in[ref.inst].append((a0, routed, s))
                else:
                    self.succ[drv.inst].append((ref.inst, routed, s))
                    self.pred[ref.inst].append((drv.inst, routed, s))

    # -- delay model --------------------------------------------------------

    def _own_delay(self, iid: int) -> float:
        inst = self.netlist.instances[iid]
        if inst.is_macro:
            return inst.master.intrinsic_delay_ps
        return inst.master.delay_ps(self.loads[iid])

    def _recompute_arrival(self, iid: int) -> float:
        inst = self.netlist.instances[iid]
        if inst.is_macro or inst.is_sequential:
            return self._own_delay(iid)
        best = float("-inf")
        for a0, routed, sp in self.port_in.get(iid, ()):
            best = max(best, a0 + routed.sink_wire_delay_ps(sp))
        for drv, routed, sp in self.pred[iid]:
            best = max(best, self.arrival.get(drv, 0.0) +
                       routed.sink_wire_delay_ps(sp))
        if best == float("-inf"):
            best = 0.0
        return best + self._own_delay(iid)

    def _recompute_required(self, iid: int) -> float:
        r = float("inf")
        for req, routed, sp in self.term_req.get(iid, ()):
            r = min(r, req - routed.sink_wire_delay_ps(sp))
        for sink, routed, sp in self.succ[iid]:
            r_sink = self.required.get(sink, float("inf"))
            if r_sink < float("inf"):
                r = min(r, r_sink - self._own_delay(sink) -
                        routed.sink_wire_delay_ps(sp))
        return r

    # -- ECO edits -----------------------------------------------------------

    def swap_master(self, inst_id: int, master: CellMaster) -> None:
        """Apply one master change and re-time the affected cones."""
        netlist = self.netlist
        old = netlist.instances[inst_id].master
        if old is master:
            return
        netlist.replace_master(inst_id, master)
        # the cell's input cap changes its drivers' loads; refresh the
        # routing view's pin caps in place so a from-scratch STA over
        # the same routing agrees with this incremental view
        dirty: Set[int] = {inst_id}
        cap_delta = master.input_cap_ff - old.input_cap_ff
        if abs(cap_delta) > 1e-12:
            for net in netlist.nets_of(inst_id):
                if net.is_clock or net.driver.is_port:
                    continue
                if net.driver.inst == inst_id:
                    continue
                routed = self.routing.nets.get(net.id)
                pins = 0
                for s in net.sinks:
                    if s.is_port or s.inst != inst_id:
                        continue
                    pins += 1
                    if routed is not None:
                        for sp in routed.sinks:
                            if sp.ref.key() == s.key():
                                sp.pin_cap_ff = master.input_cap_ff
                if net.driver.pin == 0 or \
                        netlist.instances[net.driver.inst].is_macro:
                    self.loads[net.driver.inst] += pins * cap_delta
                dirty.add(net.driver.inst)
        self._propagate_forward(dirty)
        self._propagate_backward(dirty)

    def _propagate_forward(self, seeds: Iterable[int]) -> None:
        work = deque(seeds)
        guard = 0
        limit = 50 * (len(self.netlist.instances) + 4)
        while work and guard < limit:
            guard += 1
            iid = work.popleft()
            inst = self.netlist.instances[iid]
            new = self._recompute_arrival(iid)
            if abs(new - self.arrival.get(iid, 0.0)) < 1e-9:
                continue
            self.arrival[iid] = new
            if inst.is_macro or inst.is_sequential:
                pass  # launch value changed (load-dependent clk->q)
            for sink, _routed, _sp in self.succ[iid]:
                work.append(sink)

    def _propagate_backward(self, seeds: Iterable[int]) -> None:
        work = deque(seeds)
        # a changed cell's delay also shifts its predecessors' required
        for iid in list(work):
            for drv, _routed, _sp in self.pred[iid]:
                work.append(drv)
        guard = 0
        limit = 50 * (len(self.netlist.instances) + 4)
        while work and guard < limit:
            guard += 1
            iid = work.popleft()
            new = self._recompute_required(iid)
            old = self.required.get(iid, float("inf"))
            if new == old or (new == float("inf") and
                              old == float("inf")):
                continue
            if abs(new - old) < 1e-9:
                continue
            self.required[iid] = new
            for drv, _routed, _sp in self.pred[iid]:
                work.append(drv)

    # -- results ---------------------------------------------------------------

    def result(self) -> STAResult:
        """Snapshot the current slacks as an :class:`STAResult`."""
        slack: Dict[int, float] = {}
        wns = float("inf")
        tns = 0.0
        for iid, a in self.arrival.items():
            r = self.required.get(iid, float("inf"))
            if r == float("inf"):
                continue
            s = r - a
            slack[iid] = s
            wns = min(wns, s)
            if s < 0:
                tns += s
        if wns == float("inf"):
            wns = 0.0
        return STAResult(period_ps=self.period, arrival=self.arrival,
                         required=self.required, slack=slack,
                         wns_ps=wns, tns_ps=tns)
