"""The shared driven-load model.

Every engine that prices a cell's output load -- the from-scratch STA,
the incremental STA and the sizing / dual-Vth optimizers -- must agree
on *which* nets load a driver and on the summation order, or the same
move gets a different delay in different engines (the historical bug:
``timing/sta.py`` exempted macros from the auxiliary-pin skip while
``opt/sizing.py`` did not).  This module is the single source of truth:

* :func:`net_loads_driver` -- the predicate deciding whether a net's
  total capacitance loads its driver's delay model;
* :func:`driven_load` -- one instance's driven load, summed over its
  output nets in ascending net id, the same accumulation order as
  :func:`repro.timing.sta.run_sta`'s bulk load pass (so the two agree
  bit-for-bit, not just approximately).
"""

from __future__ import annotations

from ..netlist.core import Net, Netlist
from ..route.estimate import RoutingResult


def net_loads_driver(netlist: Netlist, net: Net) -> bool:
    """True when ``net``'s total capacitance loads its driver's delay.

    Clock nets are handled by CTS, port-driven nets have no driving
    instance, and auxiliary (non-pin-0) outputs of standard cells carry
    their own load -- but a macro's outputs all load the macro,
    whichever pin they leave from.
    """
    drv = net.driver
    if net.is_clock or drv.is_port:
        return False
    return drv.pin == 0 or netlist.instances[drv.inst].is_macro


def driven_load(netlist: Netlist, routing: RoutingResult,
                inst_id: int) -> float:
    """Total routed capacitance loading ``inst_id``'s delay model (fF).

    Sums ``total_cap_ff`` of the instance's load-bearing output nets in
    ascending net id -- bit-identical to the accumulation a full
    :func:`repro.timing.sta.run_sta` performs for the same instance.
    """
    total = 0.0
    for net in sorted(netlist.nets_of(inst_id), key=lambda n: n.id):
        if net.driver.is_port or net.driver.inst != inst_id:
            continue
        if not net_loads_driver(netlist, net):
            continue
        routed = routing.nets.get(net.id)
        if routed is not None:
            total += routed.total_cap_ff
    return total
