"""Block-level static timing analysis.

A first-order STA engine over the generated netlists: cell delays from
the library's linear delay model (intrinsic + drive resistance x load),
wire delays from per-sink Elmore estimates (including TSV / F2F via RC
for tier-crossing paths), and the standard forward arrival / backward
required propagation over the combinational DAG.

Paths are launched by flop outputs, macro outputs and input ports, and
captured at flop D pins, macro inputs and output ports.  Port *external
delays* model the chip-level context the paper derives with PrimeTime
(Section 2.2): the portion of the clock period consumed by inter-block
wiring outside this block.  Relaxing those budgets is precisely how 3D
stacking turns shorter chip-level wires into block-internal slack -- the
slack the power optimizer then converts into smaller and higher-Vth cells.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netlist.core import Netlist, PinRef
from ..route.estimate import RoutingResult
from ..tech.process import ProcessNode
from .load import net_loads_driver

#: setup time assumed at flop D pins (ps)
SETUP_PS = 30.0
#: setup time assumed at macro input pins (ps)
MACRO_SETUP_PS = 60.0
#: hold time assumed at capturing pins (ps)
HOLD_PS = 15.0


@dataclass
class TimingConfig:
    """STA context for one block."""

    clock_domain: str
    #: per-port external delay (ps); defaults to ``default_io_delay_ps``
    io_delays: Dict[str, float] = field(default_factory=dict)
    default_io_delay_ps: float = 0.0

    def io_delay(self, port_name: str) -> float:
        return self.io_delays.get(port_name, self.default_io_delay_ps)


@dataclass
class STAResult:
    """Slacks and arrivals after one STA run."""

    period_ps: float
    arrival: Dict[int, float]
    required: Dict[int, float]
    slack: Dict[int, float]
    wns_ps: float
    tns_ps: float

    def slack_of(self, inst_id: int) -> float:
        """Slack at an instance's output node (+inf if off any path)."""
        return self.slack.get(inst_id, float("inf"))

    @property
    def met(self) -> bool:
        return self.wns_ps >= 0.0


def _is_terminal_sink(netlist: Netlist, ref: PinRef) -> bool:
    """True if a sink endpoint captures a path (flop D / macro in / port)."""
    if ref.is_port:
        return True
    inst = netlist.instances[ref.inst]
    return inst.is_macro or inst.is_sequential


def run_sta(netlist: Netlist, routing: RoutingResult, process: ProcessNode,
            config: TimingConfig) -> STAResult:
    """Run forward/backward STA on a routed block.

    Returns per-instance-output slacks.  Instances not on any constrained
    path keep infinite slack.
    """
    period = process.clock_period_ps(config.clock_domain)

    # adjacency: driver instance -> [(sink inst, wire_delay)] for comb sinks
    succ: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    pred_count: Dict[int, int] = defaultdict(int)
    # terminal fanout: driver inst -> [(required_time_at_sink, wire_delay)]
    term_req: Dict[int, List[float]] = defaultdict(list)
    # source arrivals per instance (flop/macro launch); comb start at -inf
    port_fanout: Dict[str, List[Tuple[Optional[int], float, float]]] = \
        defaultdict(list)

    insts = netlist.instances

    # precompute every instance's driven load once (hot path); the
    # which-nets-load-a-driver rule is shared with the incremental STA
    # and the sizing engines via repro.timing.load
    _loads: Dict[int, float] = defaultdict(float)
    for net in netlist.nets.values():
        if not net_loads_driver(netlist, net):
            continue
        routed = routing.nets.get(net.id)
        if routed is not None:
            _loads[net.driver.inst] += routed.total_cap_ff

    def load_of(inst_id: int) -> float:
        return _loads[inst_id]

    for net in netlist.nets.values():
        if net.is_clock:
            continue
        routed = routing.nets.get(net.id)
        if routed is None:
            continue
        wire_delay = {s.ref.key(): routed.sink_wire_delay_ps(s)
                      for s in routed.sinks}
        drv = net.driver
        for sink in net.sinks:
            wd = wire_delay.get(sink.key(), 0.0)
            if _is_terminal_sink(netlist, sink):
                if sink.is_port:
                    if netlist.ports[sink.port].false_path:
                        continue
                    req = period - config.io_delay(sink.port)
                elif insts[sink.inst].is_macro:
                    req = period - MACRO_SETUP_PS
                else:
                    req = period - SETUP_PS
                if drv.is_port:
                    port_fanout[drv.port].append((None, wd, req))
                else:
                    term_req[drv.inst].append(req - wd)
            else:
                if drv.is_port:
                    port_fanout[drv.port].append((sink.inst, wd, 0.0))
                else:
                    succ[drv.inst].append((sink.inst, wd))
                    pred_count[sink.inst] += 1

    arrival: Dict[int, float] = {}
    ready = deque()
    launch_arrival: Dict[int, float] = {}

    for inst in insts.values():
        if inst.is_macro:
            launch_arrival[inst.id] = inst.master.intrinsic_delay_ps
        elif inst.is_sequential:
            launch_arrival[inst.id] = inst.master.delay_ps(load_of(inst.id))

    # input-port arrivals feed their comb sinks as extra preds handled now
    port_arrival_in: Dict[Tuple[int, float], float] = {}
    extra_arrival: Dict[int, float] = defaultdict(lambda: float("-inf"))
    for pname, fans in port_fanout.items():
        a0 = config.io_delay(pname)
        for sink_inst, wd, _req in fans:
            if sink_inst is not None:
                extra_arrival[sink_inst] = max(extra_arrival[sink_inst],
                                               a0 + wd)

    # Kahn topological propagation over combinational nodes
    comb_in: Dict[int, float] = defaultdict(lambda: float("-inf"))
    for iid, a in extra_arrival.items():
        comb_in[iid] = a
    for inst in insts.values():
        if inst.is_macro or inst.is_sequential:
            arrival[inst.id] = launch_arrival[inst.id]
            ready.append(inst.id)
        elif pred_count[inst.id] == 0:
            base = comb_in[inst.id]
            if base == float("-inf"):
                base = 0.0  # undriven comb cell (dangling input rescue)
            arrival[inst.id] = base + inst.master.delay_ps(load_of(inst.id))
            ready.append(inst.id)

    remaining = dict(pred_count)
    processed = set()
    while ready:
        iid = ready.popleft()
        if iid in processed:
            continue
        processed.add(iid)
        a = arrival[iid]
        for sink, wd in succ[iid]:
            comb_in[sink] = max(comb_in[sink], a + wd)
            remaining[sink] -= 1
            if remaining[sink] == 0:
                inst = insts[sink]
                arrival[sink] = comb_in[sink] + \
                    inst.master.delay_ps(load_of(sink))
                ready.append(sink)

    # any leftover (cycle safety): assign using current comb_in
    for inst in insts.values():
        if inst.id not in arrival:
            base = comb_in[inst.id]
            if base == float("-inf"):
                base = 0.0
            arrival[inst.id] = base + (
                inst.master.intrinsic_delay_ps if inst.is_macro
                else inst.master.delay_ps(load_of(inst.id)))

    # ---- backward pass ---------------------------------------------------
    required: Dict[int, float] = {}
    order = sorted(processed | set(arrival),
                   key=lambda i: arrival[i], reverse=True)
    INF = float("inf")
    req_map: Dict[int, float] = defaultdict(lambda: INF)
    for iid, reqs in term_req.items():
        req_map[iid] = min([req_map[iid]] + reqs)
    # propagate requirements backward in reverse topological (by arrival)
    for iid in order:
        r = req_map[iid]
        inst = insts[iid]
        for sink, wd in succ[iid]:
            sink_inst = insts[sink]
            r_sink = req_map[sink]
            if r_sink < INF:
                r = min(r, r_sink - sink_inst.master.delay_ps(
                    load_of(sink)) - wd)
        req_map[iid] = r
        required[iid] = r

    slack: Dict[int, float] = {}
    wns = INF
    tns = 0.0
    for iid, a in arrival.items():
        r = required.get(iid, INF)
        if r >= INF:
            continue
        s = r - a
        slack[iid] = s
        if s < wns:
            wns = s
        if s < 0:
            tns += s
    if wns == INF:
        wns = 0.0
    return STAResult(period_ps=period, arrival=arrival, required=required,
                     slack=slack, wns_ps=wns, tns_ps=tns)
