"""Block-level static timing analysis.

A first-order STA engine over the generated netlists: cell delays from
the library's linear delay model (intrinsic + drive resistance x load),
wire delays from per-sink Elmore estimates (including TSV / F2F via RC
for tier-crossing paths), and the standard forward arrival / backward
required propagation over the combinational DAG.

Paths are launched by flop outputs, macro outputs and input ports, and
captured at flop D pins, macro inputs and output ports.  Port *external
delays* model the chip-level context the paper derives with PrimeTime
(Section 2.2): the portion of the clock period consumed by inter-block
wiring outside this block.  Relaxing those budgets is precisely how 3D
stacking turns shorter chip-level wires into block-internal slack -- the
slack the power optimizer then converts into smaller and higher-Vth cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..netlist.core import Netlist, PinRef
from ..route.estimate import RoutingResult
from ..tech.process import ProcessNode

#: setup time assumed at flop D pins (ps)
SETUP_PS = 30.0
#: setup time assumed at macro input pins (ps)
MACRO_SETUP_PS = 60.0
#: hold time assumed at capturing pins (ps)
HOLD_PS = 15.0


@dataclass
class TimingConfig:
    """STA context for one block."""

    clock_domain: str
    #: per-port external delay (ps); defaults to ``default_io_delay_ps``
    io_delays: Dict[str, float] = field(default_factory=dict)
    default_io_delay_ps: float = 0.0

    def io_delay(self, port_name: str) -> float:
        return self.io_delays.get(port_name, self.default_io_delay_ps)


@dataclass
class STAResult:
    """Slacks and arrivals after one STA run."""

    period_ps: float
    arrival: Dict[int, float]
    required: Dict[int, float]
    slack: Dict[int, float]
    wns_ps: float
    tns_ps: float

    def slack_of(self, inst_id: int) -> float:
        """Slack at an instance's output node (+inf if off any path)."""
        return self.slack.get(inst_id, float("inf"))

    @property
    def met(self) -> bool:
        return self.wns_ps >= 0.0


def _is_terminal_sink(netlist: Netlist, ref: PinRef) -> bool:
    """True if a sink endpoint captures a path (flop D / macro in / port)."""
    if ref.is_port:
        return True
    inst = netlist.instances[ref.inst]
    return inst.is_macro or inst.is_sequential


def run_sta(netlist: Netlist, routing: RoutingResult, process: ProcessNode,
            config: TimingConfig) -> STAResult:
    """Run forward/backward STA on a routed block.

    Returns per-instance-output slacks.  Instances not on any constrained
    path keep infinite slack.

    Dispatches to the levelized array engine
    (:func:`repro.timing.graph.run_sta_array`), which produces the same
    ``STAResult`` -- values and dict orders -- as the scalar reference
    walk in :mod:`repro.timing.scalar`.  Set ``REPRO_STA_SCALAR=1`` to
    force the scalar path (parity harnesses and debugging).
    """
    from . import scalar
    if scalar.use_scalar():
        return scalar.run_sta(netlist, routing, process, config)
    from .graph import run_sta_array
    return run_sta_array(netlist, routing, process, config)
