"""Signal-integrity (crosstalk) guardbanding.

Adjacent wires couple: when an aggressor switches against a victim, the
victim's effective capacitance doubles over the coupled span (the Miller
effect), slowing it; quiet neighbors help.  Detailed SI analysis needs
real track assignments, but the *congestion* of a region is an excellent
proxy for how much of a net's sidewall faces active neighbors -- so this
module derates wire delays from the block router's usage maps:

* each net's route is priced with a coupling factor that grows with the
  average track utilization along its corridor;
* the derated routing plugs straight into :func:`repro.timing.sta.run_sta`,
  giving an SI-aware sign-off (and a measurable optimism gap for the
  plain analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..netlist.core import Netlist
from ..route.block_router import BlockRouter
from ..route.estimate import RoutingResult


@dataclass
class SiConfig:
    """Crosstalk model parameters."""

    #: fraction of wire capacitance that is sidewall coupling at 100%
    #: track utilization
    coupling_fraction: float = 0.45
    #: Miller factor for switching aggressors (worst case 2.0)
    miller_factor: float = 1.8
    #: probability a neighbor switches in the aligning window
    aggressor_activity: float = 0.3


@dataclass
class SiReport:
    """Summary of one SI derating pass."""

    nets_derated: int
    worst_factor: float
    mean_factor: float


def coupling_factor(utilization: float, config: SiConfig) -> float:
    """Delay derate for a net routed at the given track utilization."""
    u = min(max(utilization, 0.0), 1.5)
    extra = (config.coupling_fraction * u *
             config.aggressor_activity * (config.miller_factor - 1.0))
    return 1.0 + extra


def derate_routing(netlist: Netlist, routing: RoutingResult,
                   router: BlockRouter,
                   config: Optional[SiConfig] = None
                   ) -> Tuple[RoutingResult, SiReport]:
    """Produce an SI-derated copy of a routing result.

    Args:
        netlist: the placed netlist (for endpoint positions).
        routing: the base (SI-oblivious) routing.
        router: the block router whose usage maps supply congestion.
        config: crosstalk model.

    Returns:
        (derated routing, summary).  Wire capacitance and per-sink path
        lengths are scaled by the corridor's coupling factor, so both
        delay and net power see the crosstalk penalty.

    Dispatches to a batched implementation (endpoint gcells, corridor
    bounding boxes and layer classes computed as flat arrays over every
    net at once); the scalar per-net loop lives in
    :mod:`repro.timing.scalar` behind ``REPRO_STA_SCALAR=1``.
    """
    from . import scalar
    if scalar.use_scalar():
        return scalar.derate_routing(netlist, routing, router, config)
    return _derate_routing_batch(netlist, routing, router, config)


def _derate_routing_batch(netlist: Netlist, routing: RoutingResult,
                          router: BlockRouter,
                          config: Optional[SiConfig] = None
                          ) -> Tuple[RoutingResult, SiReport]:
    """Array-path :func:`derate_routing` (same result, faster prep).

    The per-net corridor ``usage.mean()`` keeps numpy's own pairwise
    reduction (identical in both paths); everything feeding it --
    endpoint gcell indices, per-net bounding boxes, layer classes -- is
    vectorized over the flat endpoint list.
    """
    from ..route.estimate import INTERMEDIATE_LIMIT_UM, LOCAL_LIMIT_UM

    config = config or SiConfig()
    out = RoutingResult()

    # flat endpoint gather over nets present in both views, net-major
    keep = []
    xs: list = []
    ys: list = []
    starts = [0]
    for routed in routing.nets.values():
        net = netlist.nets.get(routed.net_id)
        if net is None:
            continue
        for ref in net.endpoints():
            x, y, _ = netlist.endpoint_position(ref)
            xs.append(x)
            ys.append(y)
        keep.append(routed)
        starts.append(len(xs))
    n = len(keep)
    if n == 0:
        return out, SiReport(nets_derated=0, worst_factor=1.0,
                             mean_factor=1.0)

    xs_a = np.asarray(xs, dtype=np.float64)
    ys_a = np.asarray(ys, dtype=np.float64)
    st = np.asarray(starts, dtype=np.int64)
    # BlockRouter.gcell, vectorized: int(clip((p - origin) / g, 0, n-1))
    ix = np.clip((xs_a - router.outline.x0) / router.g, 0,
                 router.nx - 1).astype(np.int64)
    iy = np.clip((ys_a - router.outline.y0) / router.g, 0,
                 router.ny - 1).astype(np.int64)
    i0 = np.minimum.reduceat(ix, st[:-1])
    i1 = np.maximum.reduceat(ix, st[:-1])
    j0 = np.minimum.reduceat(iy, st[:-1])
    j1 = np.maximum.reduceat(iy, st[:-1])
    # _class_for(max(length, 1e-6), max_metal) over all nets at once
    lengths = np.maximum(
        np.asarray([r.length_um for r in keep], dtype=np.float64), 1e-6)
    if router.max_metal < 7:
        cls = np.where(lengths < LOCAL_LIMIT_UM, 0, 1)
    else:
        cls = np.where(lengths < LOCAL_LIMIT_UM, 0,
                       np.where(lengths < INTERMEDIATE_LIMIT_UM, 1, 2))

    factors = []
    cls_l = cls.tolist()
    i0_l = i0.tolist()
    i1_l = i1.tolist()
    j0_l = j0.tolist()
    j1_l = j1.tolist()
    for idx, routed in enumerate(keep):
        c = cls_l[idx]
        cap = max(router.capacity[c], 1e-6)
        usage = router.usage[c][i0_l[idx]:i1_l[idx] + 1,
                                j0_l[idx]:j1_l[idx] + 1]
        util = float(usage.mean()) / cap if usage.size else 0.0
        k = coupling_factor(util, config)
        factors.append(k)
        out.nets[routed.net_id] = replace(
            routed,
            c_per_um=routed.c_per_um * k,
            wire_cap_ff=routed.wire_cap_ff * k,
            sinks=[replace(s, path_len_um=s.path_len_um * k ** 0.5)
                   for s in routed.sinks])
    report = SiReport(
        nets_derated=len(factors),
        worst_factor=max(factors, default=1.0),
        mean_factor=float(np.mean(factors)) if factors else 1.0)
    return out, report
