"""Signal-integrity (crosstalk) guardbanding.

Adjacent wires couple: when an aggressor switches against a victim, the
victim's effective capacitance doubles over the coupled span (the Miller
effect), slowing it; quiet neighbors help.  Detailed SI analysis needs
real track assignments, but the *congestion* of a region is an excellent
proxy for how much of a net's sidewall faces active neighbors -- so this
module derates wire delays from the block router's usage maps:

* each net's route is priced with a coupling factor that grows with the
  average track utilization along its corridor;
* the derated routing plugs straight into :func:`repro.timing.sta.run_sta`,
  giving an SI-aware sign-off (and a measurable optimism gap for the
  plain analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..netlist.core import Netlist
from ..route.block_router import BlockRouter, _class_for
from ..route.estimate import RoutedNet, RoutingResult, SinkPath


@dataclass
class SiConfig:
    """Crosstalk model parameters."""

    #: fraction of wire capacitance that is sidewall coupling at 100%
    #: track utilization
    coupling_fraction: float = 0.45
    #: Miller factor for switching aggressors (worst case 2.0)
    miller_factor: float = 1.8
    #: probability a neighbor switches in the aligning window
    aggressor_activity: float = 0.3


@dataclass
class SiReport:
    """Summary of one SI derating pass."""

    nets_derated: int
    worst_factor: float
    mean_factor: float


def coupling_factor(utilization: float, config: SiConfig) -> float:
    """Delay derate for a net routed at the given track utilization."""
    u = min(max(utilization, 0.0), 1.5)
    extra = (config.coupling_fraction * u *
             config.aggressor_activity * (config.miller_factor - 1.0))
    return 1.0 + extra


def derate_routing(netlist: Netlist, routing: RoutingResult,
                   router: BlockRouter,
                   config: Optional[SiConfig] = None
                   ) -> Tuple[RoutingResult, SiReport]:
    """Produce an SI-derated copy of a routing result.

    Args:
        netlist: the placed netlist (for endpoint positions).
        routing: the base (SI-oblivious) routing.
        router: the block router whose usage maps supply congestion.
        config: crosstalk model.

    Returns:
        (derated routing, summary).  Wire capacitance and per-sink path
        lengths are scaled by the corridor's coupling factor, so both
        delay and net power see the crosstalk penalty.
    """
    config = config or SiConfig()
    out = RoutingResult()
    factors = []
    for routed in routing.nets.values():
        net = netlist.nets.get(routed.net_id)
        if net is None:
            continue
        cls = _class_for(max(routed.length_um, 1e-6), router.max_metal)
        cap = max(router.capacity[cls], 1e-6)
        # average utilization over the net's bounding corridor
        cells = []
        for ref in net.endpoints():
            x, y, _ = netlist.endpoint_position(ref)
            cells.append(router.gcell(x, y))
        i0 = min(c[0] for c in cells)
        i1 = max(c[0] for c in cells)
        j0 = min(c[1] for c in cells)
        j1 = max(c[1] for c in cells)
        usage = router.usage[cls][i0:i1 + 1, j0:j1 + 1]
        util = float(usage.mean()) / cap if usage.size else 0.0
        k = coupling_factor(util, config)
        factors.append(k)
        out.nets[routed.net_id] = RoutedNet(
            net_id=routed.net_id,
            length_um=routed.length_um,
            r_per_um=routed.r_per_um,
            c_per_um=routed.c_per_um * k,
            wire_cap_ff=routed.wire_cap_ff * k,
            via=routed.via,
            sinks=[SinkPath(ref=s.ref,
                            path_len_um=s.path_len_um * k ** 0.5,
                            through_via=s.through_via,
                            pin_cap_ff=s.pin_cap_ff)
                   for s in routed.sinks],
            is_long=routed.is_long)
    report = SiReport(
        nets_derated=len(factors),
        worst_factor=max(factors, default=1.0),
        mean_factor=float(np.mean(factors)) if factors else 1.0)
    return out, report
