"""Compact thermal model for the 2-tier stack (the paper's future work).

The paper's conclusion defers thermal analysis of the bonding styles to
future work; this module provides it at the same abstraction level as
the rest of the study.  A standard compact resistive model:

* each tier is a tile grid with lateral silicon conduction;
* the tier nearest the heat sink loses heat vertically through silicon
  + TIM; the far tier must conduct through the *bond layer* first;
* the bond layer's conductance improves with 3D via density -- TSVs are
  copper thermal pipes, so a heavily-TSVed F2B stack conducts better
  than an F2F stack whose vias are tiny bond pads.  This reproduces the
  known 3D-IC result: stacking roughly doubles power density (hotter),
  folding reduces total power (cooler), and via farms pull the far
  tier's temperature down.

Units: power in µW (matching :mod:`repro.power`), temperatures in °C,
conductances in µW/°C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve

from ..place.grid import Rect

#: thermal conductivity of silicon, W/(m K)
K_SILICON = 120.0
#: thermal conductivity of the inter-tier dielectric bond, W/(m K)
K_BOND = 1.2
#: thermal conductivity of copper (TSV / F2F via fill), W/(m K)
K_COPPER = 400.0


@dataclass
class ThermalConfig:
    """Stack geometry and boundary conditions."""

    tiles: int = 16
    ambient_c: float = 45.0
    #: silicon thickness of the tier next to the heat sink (um)
    near_die_um: float = 300.0
    #: thinned silicon thickness of the far tier (um)
    far_die_um: float = 30.0
    #: bond/adhesive layer thickness between tiers (um)
    bond_um: float = 10.0
    #: sink + TIM resistance, K per (W/cm^2) equivalent; smaller = better
    sink_resistance_cm2k_w: float = 0.4


@dataclass
class ThermalResult:
    """Temperatures after the steady-state solve."""

    temperature_c: Dict[int, np.ndarray]
    max_c: float
    avg_c: float

    def tier_max(self, die: int) -> float:
        return float(self.temperature_c[die].max())

    def tier_avg(self, die: int) -> float:
        return float(self.temperature_c[die].mean())


def _conductance_w_per_k(k: float, area_um2: float,
                         length_um: float) -> float:
    """G = k * A / L, converted to uW/K from um geometry."""
    area_m2 = area_um2 * 1e-12
    length_m = max(length_um, 1e-3) * 1e-6
    return k * area_m2 / length_m * 1e6  # W/K -> uW/K


def solve_stack(outline: Rect,
                power_maps: Dict[int, np.ndarray],
                via_area_um2: float = 0.0,
                config: Optional[ThermalConfig] = None) -> ThermalResult:
    """Steady-state temperatures of a 1- or 2-tier stack.

    Args:
        outline: chip outline (shared by the tiers).
        power_maps: die index -> (tiles x tiles) power map in uW.  A
            single entry solves the 2D case.
        via_area_um2: total copper cross-section of the 3D vias; it
            shunts the bond layer's thermal resistance.
        config: geometry and boundary conditions.

    Returns:
        Per-tier temperature maps plus summary statistics.
    """
    config = config or ThermalConfig()
    n = config.tiles
    dies = sorted(power_maps)
    n_dies = len(dies)
    if n_dies not in (1, 2):
        raise ValueError("solve_stack handles 1 or 2 tiers")
    for die, pm in power_maps.items():
        if pm.shape != (n, n):
            raise ValueError(f"power map of tier {die} must be "
                             f"{n}x{n}, got {pm.shape}")

    tile_w = outline.width / n
    tile_h = outline.height / n
    tile_area = tile_w * tile_h

    # vertical conductances (per tile)
    # die 0 is next to the heat sink (the paper's die bottom / package
    # orientation is symmetric for this comparison)
    sink_r_k_per_w = config.sink_resistance_cm2k_w / (tile_area * 1e-8)
    g_sink = 1e6 / max(sink_r_k_per_w, 1e-12)  # uW/K
    g_die0 = _conductance_w_per_k(K_SILICON, tile_area,
                                  config.near_die_um)
    g_sink_path = 1.0 / (1.0 / g_sink + 1.0 / g_die0)
    if n_dies == 2:
        g_bond_diel = _conductance_w_per_k(K_BOND, tile_area,
                                           config.bond_um)
        g_bond_via = _conductance_w_per_k(
            K_COPPER, via_area_um2 / (n * n), config.bond_um)
        g_bond = g_bond_diel + g_bond_via
    # lateral conductance within a tier
    g_lat = {}
    for i, die in enumerate(dies):
        thick = config.near_die_um if i == 0 else config.far_die_um
        g_lat[die] = _conductance_w_per_k(
            K_SILICON, tile_h * thick, tile_w)

    def node(die_idx: int, i: int, j: int) -> int:
        return die_idx * n * n + i * n + j

    size = n_dies * n * n
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    diag = np.zeros(size)
    rhs = np.zeros(size)

    def couple(a: int, b: int, g: float) -> None:
        diag[a] += g
        diag[b] += g
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-g, -g))

    for d_idx, die in enumerate(dies):
        pm = power_maps[die]
        for i in range(n):
            for j in range(n):
                a = node(d_idx, i, j)
                rhs[a] += pm[i, j]
                if i + 1 < n:
                    couple(a, node(d_idx, i + 1, j), g_lat[die])
                if j + 1 < n:
                    couple(a, node(d_idx, i, j + 1), g_lat[die])
                if d_idx == 0:
                    # to ambient through silicon + sink
                    diag[a] += g_sink_path
                    rhs[a] += g_sink_path * config.ambient_c
                elif d_idx == 1:
                    couple(a, node(0, i, j), g_bond)

    rows.extend(range(size))
    cols.extend(range(size))
    vals.extend(diag.tolist())
    mat = coo_matrix((vals, (rows, cols)), shape=(size, size)).tocsr()
    temps = spsolve(mat, rhs)

    result: Dict[int, np.ndarray] = {}
    for d_idx, die in enumerate(dies):
        result[die] = temps[d_idx * n * n:(d_idx + 1) * n * n].reshape(
            (n, n))
    all_t = np.concatenate([t.ravel() for t in result.values()])
    return ThermalResult(temperature_c=result,
                         max_c=float(all_t.max()),
                         avg_c=float(all_t.mean()))


def chip_power_maps(chip, tiles: int = 16) -> Tuple[Rect,
                                                    Dict[int, np.ndarray],
                                                    float]:
    """Build per-tier power maps from a :class:`ChipDesign`.

    Each block's power is spread uniformly over its floorplan rectangle
    on its tier; folded blocks contribute half per tier.  Returns the
    outline, the maps, and the total 3D-via copper cross-section.
    """
    from ..floorplan.t2_floorplans import BOTH_DIES
    fp = chip.floorplan
    outline = Rect(0.0, 0.0, fp.width, fp.height)
    n_dies = max(fp.n_dies, 1)
    maps = {d: np.zeros((tiles, tiles)) for d in range(n_dies)}
    tile_w = fp.width / tiles
    tile_h = fp.height / tiles

    for name, rect in fp.positions.items():
        design = chip.block_of(name)
        power = design.power.total_uw
        die = fp.die_of[name]
        targets = list(range(n_dies)) if die == BOTH_DIES else [die]
        share = power / len(targets)
        i0 = int(np.clip(rect.x0 / tile_w, 0, tiles - 1))
        i1 = int(np.clip((rect.x1 - 1e-9) / tile_w, 0, tiles - 1))
        j0 = int(np.clip(rect.y0 / tile_h, 0, tiles - 1))
        j1 = int(np.clip((rect.y1 - 1e-9) / tile_h, 0, tiles - 1))
        n_tiles = (i1 - i0 + 1) * (j1 - j0 + 1)
        for d in targets:
            for i in range(i0, i1 + 1):
                for j in range(j0, j1 + 1):
                    maps[d][i, j] += share / n_tiles

    # spread the chip-level wiring/repeater power uniformly
    block_power = sum(chip.block_of(nm).power.total_uw *
                      (1 if fp.die_of[nm] != BOTH_DIES else 1)
                      for nm in fp.positions)
    rest = max(0.0, chip.power.total_uw - block_power)
    for d in range(n_dies):
        maps[d] += rest / n_dies / (tiles * tiles)

    via_area = 0.0
    if chip.config.is_3d:
        # approximate copper cross-section per 3D connection
        via_d = 3.0 if chip.config.bonding == "F2B" else 0.8
        via_area = chip.n_3d_connections * math.pi * (via_d / 2) ** 2
    return outline, maps, via_area


def analyze_chip_thermal(chip, config: Optional[ThermalConfig] = None,
                         tiles: int = 16) -> ThermalResult:
    """End-to-end: power maps from a chip design, then the solve."""
    config = config or ThermalConfig(tiles=tiles)
    outline, maps, via_area = chip_power_maps(chip, tiles=config.tiles)
    return solve_stack(outline, maps, via_area_um2=via_area,
                       config=config)
