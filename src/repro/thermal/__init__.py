"""Compact thermal analysis of the 2-tier stack (paper future work)."""

from .model import (ThermalConfig, ThermalResult, analyze_chip_thermal,
                    chip_power_maps, solve_stack)

__all__ = ["ThermalConfig", "ThermalResult", "analyze_chip_thermal",
           "chip_power_maps", "solve_stack"]
