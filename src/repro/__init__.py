"""repro: reproduction of "On Enhancing Power Benefits in 3D ICs: Block
Folding and Bonding Styles Perspective" (Jung et al., DAC 2014).

The package builds the paper's entire design environment in pure Python --
technology models, netlist generation, mixed-size 2D/3D placement, routing
estimation, static timing, power analysis and optimization -- and, on top
of it, the paper's contributions: 3D floorplanning, block folding, bonding
style studies, and the F2F via placer.

Quick start::

    from repro import make_process
    from repro.core import FlowConfig, run_block_flow
    process = make_process()
    result = run_block_flow("ccx", FlowConfig(), process)
    print(result.power.total_uw)

See ``examples/`` for complete studies and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from .tech import ProcessNode, make_process

__version__ = "1.0.0"


def __getattr__(name):
    # convenience top-level access to the main flow entry points without
    # importing the heavy subpackages at import time
    if name in ("FlowConfig", "FoldSpec", "run_block_flow",
                "ChipConfig", "build_chip", "build_signed_off_chip",
                "explore_design_space", "DesignCache"):
        from . import core
        return getattr(core, name)
    if name in ("EXPERIMENTS", "run_experiment", "ExperimentOptions",
                "UnknownExperimentError"):
        from . import analysis
        return getattr(analysis, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "make_process", "ProcessNode", "__version__",
    "FlowConfig", "FoldSpec", "run_block_flow", "ChipConfig",
    "build_chip", "build_signed_off_chip", "explore_design_space",
    "DesignCache", "EXPERIMENTS", "run_experiment", "ExperimentOptions",
    "UnknownExperimentError",
]
