"""Incremental ECO engine: typed moves on a finished design.

See ``docs/eco.md`` for the architecture and the parity guarantees.
"""

from .driver import (EcoClosureReport, EcoConfig, EcoRound,
                     close_timing, derive_design, plan_timing_moves)
from .moves import (BufferInsert, BufferRemove, Displace, EcoError,
                    EcoMove, Resize, VthSwap, move_key)
from .session import EcoApplyReport, EcoSession

__all__ = [
    "BufferInsert", "BufferRemove", "Displace", "EcoApplyReport",
    "EcoClosureReport", "EcoConfig", "EcoError", "EcoMove", "EcoRound",
    "EcoSession", "Resize", "VthSwap", "close_timing", "derive_design",
    "move_key", "plan_timing_moves",
]
