"""The typed ECO move vocabulary.

An ECO (engineering change order) edits a *finished* design in place --
no re-synthesis, no fresh placement.  The vocabulary here covers the
post-route edits the paper's flow would see in practice:

* :class:`Resize` -- swap a cell to another drive strength;
* :class:`VthSwap` -- swap a cell's threshold flavor (RVT/HVT);
* :class:`BufferInsert` -- repeater a long or overloaded net (the
  plan/apply split of :mod:`repro.opt.buffering` decides chain vs
  fanout form);
* :class:`BufferRemove` -- delete a repeater and heal the wiring
  through it;
* :class:`Displace` -- move a cell, optionally re-legalizing it into
  its row neighborhood.

Moves are frozen dataclasses so batches hash and compare -- the closure
driver fingerprints planned move sets with :func:`move_key` to detect
oscillation (the same set planned twice means the engine is undoing its
own work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


class EcoError(ValueError):
    """An ECO move batch failed validation; nothing was applied."""


@dataclass(frozen=True)
class Resize:
    """Swap ``inst_id`` to the drive-``drive`` variant of its master."""

    inst_id: int
    drive: int


@dataclass(frozen=True)
class VthSwap:
    """Swap ``inst_id`` to the ``vth`` flavor of its master."""

    inst_id: int
    vth: str


@dataclass(frozen=True)
class BufferInsert:
    """Buffer net ``net_id`` (chain or fanout split, per the planner).

    A no-op (applied count 0) when the net no longer triggers the
    buffering rules -- e.g. it was already repaired by a prior move.
    """

    net_id: int
    drive: int = 4


@dataclass(frozen=True)
class BufferRemove:
    """Remove buffer ``inst_id``; its output net is rewired to the
    buffer's own driver and the now-dangling input net is deleted."""

    inst_id: int


@dataclass(frozen=True)
class Displace:
    """Move ``inst_id`` to ``(x, y)``; ``legalize`` snaps it to a legal
    row slot near the target (needs the session's outline)."""

    inst_id: int
    x: float
    y: float
    legalize: bool = False


EcoMove = Union[Resize, VthSwap, BufferInsert, BufferRemove, Displace]


def move_key(move: EcoMove) -> Tuple:
    """A hashable fingerprint of one move (kind + target + payload)."""
    kind = type(move).__name__
    if isinstance(move, Resize):
        return (kind, move.inst_id, move.drive)
    if isinstance(move, VthSwap):
        return (kind, move.inst_id, move.vth)
    if isinstance(move, BufferInsert):
        return (kind, move.net_id, move.drive)
    if isinstance(move, BufferRemove):
        return (kind, move.inst_id)
    if isinstance(move, Displace):
        return (kind, move.inst_id, move.x, move.y, move.legalize)
    raise EcoError(f"unknown ECO move type: {kind}")
