"""The ECO session: incremental edits on a finished design.

A session owns a netlist + routing + timing + clock-tree view and
applies :mod:`repro.eco.moves` batches to them.  It runs in one of two
modes with *bit-identical* results:

* **incremental** (default) -- only the nets incident to an edit are
  re-routed (through the design's captured
  :class:`repro.route.estimate.RouteContext`), the live
  :class:`repro.timing.incremental.IncrementalSTA` graph is patched
  instead of rebuilt, and the clock tree replays untouched bisection
  subtrees from the :class:`repro.cts.incremental.IncrementalCTS` memo;
* **full recompute** -- every edit triggers a whole-block re-route, a
  fresh ``run_sta`` and a from-scratch CTS.

The parity harness (``tests/test_eco_properties.py``) holds the two
modes byte-equal over random move batches; ``benchmarks/eco_smoke.py``
holds the incremental mode to its reuse targets.

Batches are validated up front against the pre-batch state and nothing
is mutated when validation rejects a move (:class:`EcoError`), so a
failed ``apply`` leaves the session untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cts.incremental import IncrementalCTS
from ..cts.tree import CTSResult
from ..netlist.core import Net, Netlist, PinRef
from ..obs.metrics import metrics
from ..opt.buffering import (BufferingConfig, apply_buffer_plan,
                             plan_net_buffering)
from ..place.grid import Rect
from ..place.legalize import legalize_new_cells
from ..route.estimate import RoutedNet, RouteContext, RoutingResult
from ..tech.cells import CellMaster
from ..tech.process import ProcessNode
from ..timing.incremental import IncrementalSTA
from ..timing.sta import STAResult, TimingConfig, run_sta
from .moves import (BufferInsert, BufferRemove, Displace, EcoError,
                    EcoMove, Resize, VthSwap)


@dataclass
class EcoApplyReport:
    """What one :meth:`EcoSession.apply` batch did."""

    requested: int
    applied: int
    swaps: int = 0
    buffers_added: int = 0
    buffers_removed: int = 0
    displaced: int = 0


class EcoSession:
    """Applies typed ECO moves to a design, incrementally or fully.

    Args:
        netlist: the design netlist (mutated in place -- clone first
            for what-if work, see :meth:`from_design`).
        routing: the routing view to keep current (mutated in place).
        process: technology node.
        timing: clock domain + I/O budgets the design was signed off
            against.
        route_ctx: the per-net route context captured by the flow.
        outline: block outline; enables row legalization of inserted /
            displaced cells.
        obstructions: macro keep-outs for legalization.
        sta_snapshot: the design's sign-off :class:`STAResult`; when
            given (incremental mode) the timing graph is adopted from
            it instead of re-running STA -- ``sta_full_rebuilds`` stays
            at zero.
        full_recompute: disable every incremental path (parity /
            baseline mode).
        legalize_buffers: snap freshly inserted buffers into legal row
            slots (needs ``outline``).
    """

    def __init__(self, netlist: Netlist, routing: RoutingResult,
                 process: ProcessNode, timing: TimingConfig,
                 route_ctx: RouteContext, *,
                 outline: Optional[Rect] = None,
                 obstructions: Sequence[Rect] = (),
                 sta_snapshot: Optional[STAResult] = None,
                 full_recompute: bool = False,
                 legalize_buffers: bool = True,
                 cts_leaf_size: int = 12) -> None:
        self.netlist = netlist
        self.routing = routing
        self.process = process
        self.timing = timing
        self.ctx = route_ctx
        self.outline = outline
        self.obstructions = tuple(obstructions)
        self.full_recompute = full_recompute
        self.legalize_buffers = legalize_buffers
        #: deterministic session-local work tallies (the process-global
        #: metrics registry is disabled when tracing is off, so reuse
        #: assertions read these instead)
        self.stats: Dict[str, int] = {
            "moves_requested": 0, "moves_applied": 0, "swaps": 0,
            "buffers_added": 0, "buffers_removed": 0, "displaced": 0,
            "nets_rerouted": 0, "full_reroutes": 0,
            "sta_full_rebuilds": 0,
        }
        self._sta_cache: Optional[STAResult] = None
        self.view: Optional[IncrementalSTA] = None
        if not full_recompute:
            if sta_snapshot is not None:
                self.view = IncrementalSTA.from_snapshot(
                    netlist, routing, process, timing, sta_snapshot)
            else:
                self.view = IncrementalSTA(netlist, routing, process,
                                           timing)
                self.stats["sta_full_rebuilds"] += 1
        self.cts = IncrementalCTS(netlist, process,
                                  leaf_size=cts_leaf_size)
        metrics().counter("eco.sessions").inc()

    @classmethod
    def from_design(cls, design, process: ProcessNode, *,
                    timing: Optional[TimingConfig] = None,
                    clone: bool = True,
                    full_recompute: bool = False,
                    legalize_buffers: bool = True) -> "EcoSession":
        """Open a session on a finished :class:`BlockDesign`.

        ``clone=True`` (default) deep-copies the netlist and routing so
        the base design stays untouched -- the what-if / neighboring
        scenario mode.  ``clone=False`` edits the design's own state.

        The design must carry a route context (``design.route_ctx``),
        which the flow attaches whenever the sign-off routing came from
        the estimator (``detailed_route=False``).
        """
        ctx = getattr(design, "route_ctx", None)
        if ctx is None:
            raise EcoError(
                f"design {design.name!r} has no route context -- ECO "
                "sessions need the estimator's routing (re-run the "
                "flow with detailed_route=False)")
        if timing is None:
            from ..designgen.t2 import block_type_by_name
            try:
                bt = block_type_by_name(design.name)
            except KeyError as exc:
                raise EcoError(
                    f"unknown block type {design.name!r}; pass an "
                    "explicit TimingConfig") from exc
            timing = TimingConfig(
                clock_domain=bt.logic.clock_domain,
                default_io_delay_ps=design.config.io_budget_ps)
        netlist = design.netlist.clone() if clone else design.netlist
        routing = design.routing.copy() if clone else design.routing
        return cls(netlist, routing, process, timing, ctx,
                   outline=design.outline,
                   sta_snapshot=design.sta,
                   full_recompute=full_recompute,
                   legalize_buffers=legalize_buffers)

    # -- timing / clock-tree views ------------------------------------

    def sta(self) -> STAResult:
        """A frozen STA snapshot of the current state."""
        if self.view is not None:
            return self.view.to_result()
        if self._sta_cache is None:
            self._sta_cache = run_sta(self.netlist, self.routing,
                                      self.process, self.timing)
            self.stats["sta_full_rebuilds"] += 1
        return self._sta_cache

    def cts_result(self) -> CTSResult:
        """The current clock tree (memoized subtree rebuilds)."""
        return self.cts.result()

    def retarget(self, timing: TimingConfig) -> None:
        """Swap the I/O timing context (neighboring-scenario derive)."""
        self.timing = timing
        if self.view is not None:
            self.view.retarget(timing)
        self._sta_cache = None

    # -- move application ---------------------------------------------

    def apply(self, moves: Iterable[EcoMove]) -> EcoApplyReport:
        """Validate then apply one move batch.

        Validation runs against the pre-batch state; an invalid move
        raises :class:`EcoError` before anything mutates.  Consecutive
        master swaps (resize / Vth) are flushed as one re-time batch;
        structural moves apply in order, each bringing routing, timing
        and the clock tree current before the next decision point.
        """
        batch = list(moves)
        self._validate(batch)
        report = EcoApplyReport(requested=len(batch), applied=0)
        swaps: List[EcoMove] = []
        for move in batch:
            if isinstance(move, (Resize, VthSwap)):
                swaps.append(move)
                continue
            self._flush_swaps(swaps, report)
            if isinstance(move, BufferInsert):
                added = self._apply_buffer_insert(move)
                report.buffers_added += added
                report.applied += 1 if added else 0
            elif isinstance(move, BufferRemove):
                report.buffers_removed += self._apply_buffer_remove(move)
                report.applied += 1
            elif isinstance(move, Displace):
                report.displaced += self._apply_displace(move)
                report.applied += 1
        self._flush_swaps(swaps, report)
        self.stats["moves_requested"] += report.requested
        self.stats["moves_applied"] += report.applied
        self.stats["swaps"] += report.swaps
        self.stats["buffers_added"] += report.buffers_added
        self.stats["buffers_removed"] += report.buffers_removed
        self.stats["displaced"] += report.displaced
        if report.applied:
            self.cts.invalidate()
        metrics().counter("eco.moves_applied").inc(report.applied)
        return report

    # -- validation ---------------------------------------------------

    def _validate(self, batch: Sequence[EcoMove]) -> None:
        lib = self.process.library
        pending: Dict[int, CellMaster] = {}
        for move in batch:
            if isinstance(move, (Resize, VthSwap)):
                inst = self.netlist.instances.get(move.inst_id)
                if inst is None:
                    raise EcoError(f"{move}: no such instance")
                if inst.is_macro:
                    raise EcoError(f"{move}: cannot swap a macro")
                base = pending.get(move.inst_id, inst.master)
                try:
                    if isinstance(move, Resize):
                        pending[move.inst_id] = lib.variant(
                            base, drive=move.drive)
                    else:
                        pending[move.inst_id] = lib.variant(
                            base, vth=move.vth)
                except KeyError as exc:
                    raise EcoError(
                        f"{move}: no library variant") from exc
            elif isinstance(move, BufferInsert):
                net = self.netlist.nets.get(move.net_id)
                if net is None:
                    raise EcoError(f"{move}: no such net")
                if net.is_clock:
                    raise EcoError(f"{move}: cannot buffer a clock net")
                if move.net_id not in self.routing.nets:
                    raise EcoError(f"{move}: net is not routed")
                try:
                    lib.buffer(move.drive)
                except KeyError as exc:
                    raise EcoError(
                        f"{move}: no drive-{move.drive} buffer") from exc
            elif isinstance(move, BufferRemove):
                self._check_buffer_remove(move)
            elif isinstance(move, Displace):
                inst = self.netlist.instances.get(move.inst_id)
                if inst is None:
                    raise EcoError(f"{move}: no such instance")
                if inst.is_macro or inst.fixed:
                    raise EcoError(
                        f"{move}: cannot displace a macro/fixed cell")
                if move.legalize and self.outline is None:
                    raise EcoError(
                        f"{move}: session has no outline to legalize in")
            else:
                raise EcoError(f"unknown ECO move: {move!r}")

    def _check_buffer_remove(self, move: BufferRemove) -> None:
        inst = self.netlist.instances.get(move.inst_id)
        if inst is None:
            raise EcoError(f"{move}: no such instance")
        if not inst.is_buffer:
            raise EcoError(f"{move}: {inst.name} is not a buffer")
        out = self.netlist.output_net_of(move.inst_id)
        if out is None:
            raise EcoError(f"{move}: buffer drives nothing")
        if out.is_clock:
            raise EcoError(f"{move}: clock buffers belong to CTS")
        ins = [n for n in self.netlist.nets_of(move.inst_id)
               if n.id != out.id]
        if len(ins) != 1:
            raise EcoError(f"{move}: expected exactly one input net")
        innet = ins[0]
        if innet.is_clock:
            raise EcoError(f"{move}: input net is a clock")
        if len(innet.sinks) != 1 or innet.sinks[0].is_port or \
                innet.sinks[0].inst != move.inst_id:
            raise EcoError(
                f"{move}: input net {innet.name} feeds other loads")

    # -- application helpers ------------------------------------------

    def _reroute(self, net: Net) -> RoutedNet:
        self.stats["nets_rerouted"] += 1
        return self.ctx.route_net(self.netlist, net)

    def _full_recompute_now(self) -> None:
        self.routing = self.ctx.route_block(self.netlist)
        self.stats["full_reroutes"] += 1
        self.stats["nets_rerouted"] += len(self.routing.nets)
        self._sta_cache = None

    def _flush_swaps(self, swaps: List[EcoMove],
                     report: EcoApplyReport) -> None:
        if not swaps:
            return
        lib = self.process.library
        pending: Dict[int, CellMaster] = {}
        resolved: List[Tuple[int, CellMaster]] = []
        for m in swaps:
            inst = self.netlist.instances[m.inst_id]
            base = pending.get(m.inst_id, inst.master)
            if isinstance(m, Resize):
                new = lib.variant(base, drive=m.drive)
            else:
                new = lib.variant(base, vth=m.vth)
            pending[m.inst_id] = new
            resolved.append((m.inst_id, new))
        swaps.clear()
        if self.view is not None:
            n = self.view.swap_masters(resolved)
        else:
            n = 0
            for iid, master in resolved:
                if self.netlist.instances[iid].master is master:
                    continue
                self.netlist.replace_master(iid, master)
                n += 1
            if n:
                self._full_recompute_now()
        report.swaps += n
        report.applied += n

    def _legalize(self, cells: List, exclude: Iterable[int]) -> None:
        if self.outline is None:
            return
        skip = set(exclude)
        placed = [c for c in self.netlist.cells if c.id not in skip]
        legalize_new_cells(cells, placed, self.outline,
                           obstructions=self.obstructions)

    def _apply_buffer_insert(self, move: BufferInsert) -> int:
        routed = self.routing.nets.get(move.net_id)
        if routed is None:
            # net deleted by an earlier move in this batch
            return 0
        cfg = BufferingConfig(buffer_drive=move.drive)
        plan = plan_net_buffering(self.netlist, routed,
                                  self.process.library, cfg)
        if plan is None:
            return 0
        res = apply_buffer_plan(self.netlist, [plan])
        if self.legalize_buffers and res.new_inst_ids:
            self._legalize(
                [self.netlist.instances[i] for i in res.new_inst_ids],
                exclude=res.new_inst_ids)
        if self.view is not None:
            changed = self.routing.update_instances(
                self.netlist, res.new_inst_ids, reroute=self._reroute)
            self.view.patch_topology((), changed)
        else:
            self._full_recompute_now()
        return res.added

    def _apply_buffer_remove(self, move: BufferRemove) -> int:
        iid = move.inst_id
        out = self.netlist.output_net_of(iid)
        innet = [n for n in self.netlist.nets_of(iid)
                 if n.id != out.id][0]
        drv = innet.driver
        self.netlist.rewire_driver(
            out.id, PinRef(inst=drv.inst, port=drv.port, pin=drv.pin))
        self.netlist.remove_net(innet.id)
        self.netlist.remove_instance(iid)
        if self.view is not None:
            changed = self.routing.refresh_nets(
                self.netlist, [innet.id, out.id], reroute=self._reroute)
            upstream = [] if drv.is_port else [drv.inst]
            self.view.patch_topology(upstream, changed,
                                     removed_insts=[iid])
        else:
            self._full_recompute_now()
        return 1

    def _apply_displace(self, move: Displace) -> int:
        inst = self.netlist.instances[move.inst_id]
        inst.x, inst.y = move.x, move.y
        if move.legalize:
            self._legalize([inst], exclude=[inst.id])
        touched = sorted(n.id for n in self.netlist.nets_of(inst.id)
                         if not n.is_clock)
        if self.view is not None:
            changed = self.routing.refresh_nets(self.netlist, touched,
                                                reroute=self._reroute)
            self.view.apply_routing_update(changed)
        else:
            self._full_recompute_now()
        return 1
