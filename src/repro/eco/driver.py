"""Timing-closure ECO driver and neighboring-scenario derivation.

:func:`close_timing` iterates plan/apply ECO rounds against a live
:class:`repro.eco.session.EcoSession` until the slack target holds (or
the engine detects it is stuck): each round plans upsizes on the worst
negative-slack cells plus repeater insertion on failing long nets,
applies them, and re-times incrementally.  The loop fingerprints every
planned move set -- planning the *same* set twice means the engine is
undoing its own work (oscillation), and ``stall_rounds`` rounds without
WNS improvement means the vocabulary is exhausted for this design.

:func:`derive_design` is the scenario-sweep entry point: given a
finished :class:`BlockDesign` and a *neighboring* flow config (same
block, same folding/bonding/seed -- only the I/O budget, dual-Vth knob
or ECO knob may differ), it clones the design state, retargets the
incremental timing view, closes timing and replays the dual-Vth power
stage, returning a full sign-off design without re-running generation,
placement, routing or a from-scratch STA.  This is what lets the
experiment service sweep Fig. 8-style budget curves at a fraction of
the cost of independent flow runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, List, Optional, Tuple

from ..faults.inject import fault_point
from ..obs import trace
from ..obs.metrics import metrics
from ..opt.buffering import BufferingConfig, plan_net_buffering
from ..opt.dualvth import (DualVthConfig, plan_hvt_swaps,
                           plan_rvt_restores)
from ..timing.sta import STAResult, TimingConfig
from .moves import BufferInsert, EcoMove, Resize, VthSwap, move_key
from .session import EcoError, EcoSession

#: a planner maps (session, sta snapshot, config) to a move batch
Planner = Callable[[EcoSession, STAResult, "EcoConfig"], List[EcoMove]]


@dataclass(frozen=True)
class EcoConfig:
    """Knobs of the timing-closure ECO loop."""

    #: stop once WNS is at least this (ps)
    target_wns_ps: float = 0.0
    max_rounds: int = 4
    #: upsizes planned per round
    max_moves_per_round: int = 64
    #: nets repeatered per round
    max_buffer_nets_per_round: int = 8
    buffer_drive: int = 4
    upsize: bool = True
    buffer_insert: bool = True
    #: rounds without WNS improvement before declaring a stall
    stall_rounds: int = 2
    #: run the session with every incremental path disabled
    full_recompute: bool = False
    legalize_buffers: bool = True


@dataclass
class EcoRound:
    """One plan/apply round of the closure loop."""

    index: int
    planned: int
    applied: int
    wns_before_ps: float
    wns_after_ps: float


@dataclass
class EcoClosureReport:
    """Outcome of one :func:`close_timing` run.

    ``status`` is one of ``"met"`` (target reached), ``"oscillating"``
    (a planned move set repeated), ``"stalled"`` (no WNS improvement
    for ``stall_rounds`` rounds), ``"exhausted"`` (nothing left to
    plan/apply) or ``"max_rounds"``.
    """

    status: str
    wns_ps: float
    target_wns_ps: float
    rounds: List[EcoRound] = field(default_factory=list)
    #: copy of the session's deterministic work tallies at return time
    #: (``nets_rerouted``, ``sta_full_rebuilds``, ...) -- what the
    #: reuse assertions in ``benchmarks/eco_smoke.py`` read
    session_stats: dict = field(default_factory=dict)

    @property
    def moves_applied(self) -> int:
        return sum(r.applied for r in self.rounds)


def plan_timing_moves(session: EcoSession, sta: STAResult,
                      config: "EcoConfig") -> List[EcoMove]:
    """The default round planner: worst-slack upsizes + net repeaters.

    Deterministic -- candidates sort on (slack, id) and the move caps
    are taken in that order, so identical session states always plan
    identical batches (which is what makes the oscillation fingerprint
    meaningful).
    """
    lib = session.process.library
    moves: List[EcoMove] = []
    if config.upsize:
        cands = sorted(
            (s, iid) for iid, s in sta.slack.items()
            if s < config.target_wns_ps
            and iid in session.netlist.instances)
        for s, iid in cands:
            if len(moves) >= config.max_moves_per_round:
                break
            inst = session.netlist.instances[iid]
            if inst.is_macro:
                continue
            up = lib.upsize(inst.master)
            if up is None:
                continue
            moves.append(Resize(inst_id=iid, drive=up.drive))
    if config.buffer_insert:
        bcfg = BufferingConfig(buffer_drive=config.buffer_drive)
        picked = 0
        for routed in session.routing.nets.values():
            if picked >= config.max_buffer_nets_per_round:
                break
            net = session.netlist.nets.get(routed.net_id)
            if net is None or net.is_clock or net.driver.is_port:
                continue
            if sta.slack.get(net.driver.inst,
                             0.0) >= config.target_wns_ps:
                continue
            if plan_net_buffering(session.netlist, routed, lib,
                                  bcfg) is None:
                continue
            moves.append(BufferInsert(net_id=net.id,
                                      drive=config.buffer_drive))
            picked += 1
    return moves


def close_timing(session: EcoSession,
                 config: Optional[EcoConfig] = None,
                 planner: Optional[Planner] = None) -> EcoClosureReport:
    """Iterate plan/apply ECO rounds until the slack target holds."""
    config = config or EcoConfig()
    plan = planner or plan_timing_moves
    rounds: List[EcoRound] = []
    seen_batches = set()
    status = "max_rounds"
    stall = 0
    with trace.span("eco.close", target_wns_ps=config.target_wns_ps):
        for i in range(max(1, config.max_rounds)):
            fault_point("eco")
            sta = session.sta()
            before = sta.wns_ps
            if before >= config.target_wns_ps:
                status = "met"
                break
            moves = plan(session, sta, config)
            if not moves:
                status = "exhausted"
                break
            sig = frozenset(move_key(m) for m in moves)
            if sig in seen_batches:
                status = "oscillating"
                break
            seen_batches.add(sig)
            with trace.span("eco.round", round=i, planned=len(moves)):
                report = session.apply(moves)
            after = session.sta().wns_ps
            rounds.append(EcoRound(index=i, planned=len(moves),
                                   applied=report.applied,
                                   wns_before_ps=before,
                                   wns_after_ps=after))
            if report.applied == 0:
                status = "exhausted"
                break
            if after <= before:
                stall += 1
                if stall >= config.stall_rounds:
                    status = "stalled"
                    break
            else:
                stall = 0
    final = session.sta().wns_ps
    if final >= config.target_wns_ps:
        status = "met"
    metrics().counter("eco.rounds").inc(len(rounds))
    return EcoClosureReport(status=status, wns_ps=final,
                            target_wns_ps=config.target_wns_ps,
                            rounds=rounds,
                            session_stats=dict(session.stats))


#: FlowConfig fields a derived scenario may change
_DERIVABLE = ("io_budget_ps", "dual_vth", "eco")


def derive_design(base, config, process) -> Tuple[object,
                                                  EcoClosureReport]:
    """Derive a neighboring scenario's sign-off design via ECO.

    Args:
        base: the finished :class:`repro.core.flow.BlockDesign` to
            derive from (left untouched -- the session clones).
        config: the neighboring :class:`repro.core.flow.FlowConfig`;
            may differ from ``base.config`` only in ``io_budget_ps``,
            ``dual_vth`` and ``eco``.
        process: technology node.

    Returns:
        ``(design, closure_report)`` -- a full :class:`BlockDesign`
        whose metrics are sign-off quality for the new config.
    """
    from ..core.flow import BlockDesign, FlowConfig
    from ..opt.dualvth import hvt_fraction
    from ..power.analysis import analyze_power

    if not isinstance(config, FlowConfig):
        raise EcoError("derive_design needs a FlowConfig")
    for f in fields(FlowConfig):
        if f.name in _DERIVABLE:
            continue
        if getattr(base.config, f.name) != getattr(config, f.name):
            raise EcoError(
                f"cannot derive across {f.name!r}: neighboring "
                f"scenarios may differ only in {_DERIVABLE}")

    eco_cfg = config.eco or EcoConfig()
    session = EcoSession.from_design(
        base, process, clone=True,
        full_recompute=eco_cfg.full_recompute,
        legalize_buffers=eco_cfg.legalize_buffers)
    if config.io_budget_ps != base.config.io_budget_ps:
        session.retarget(TimingConfig(
            clock_domain=session.timing.clock_domain,
            default_io_delay_ps=config.io_budget_ps))
    closure = close_timing(session, eco_cfg)

    lib = process.library
    if config.dual_vth and not base.config.dual_vth:
        # replay the flow's power stage on the derived state
        for _chunk in range(3):
            swaps = plan_hvt_swaps(session.netlist, session.routing,
                                   session.sta(), lib, DualVthConfig())
            if not swaps:
                break
            session.apply([VthSwap(inst_id=iid, vth=m.vth)
                           for iid, m in swaps])
        restores = plan_rvt_restores(session.netlist, session.sta(),
                                     lib)
        if restores:
            session.apply([VthSwap(inst_id=iid, vth=m.vth)
                           for iid, m in restores])
        # the swaps consumed slack; mirror the flow's final timing
        # recovery so a power move never ships a violation
        recovery = close_timing(session, eco_cfg)
        closure = EcoClosureReport(
            status=recovery.status, wns_ps=recovery.wns_ps,
            target_wns_ps=eco_cfg.target_wns_ps,
            rounds=closure.rounds + recovery.rounds,
            session_stats=dict(session.stats))

    cts = session.cts_result()
    sta = session.sta()
    power = analyze_power(session.netlist, session.routing, process,
                          session.timing.clock_domain, cts=cts)
    design = BlockDesign(
        name=base.name,
        config=config,
        netlist=session.netlist,
        outline=base.outline,
        footprint_um2=base.outline.area,
        wirelength_um=session.routing.total_wirelength_um +
        cts.wirelength_um,
        n_cells=session.netlist.num_cells,
        n_buffers=session.netlist.num_buffers + cts.n_buffers,
        n_vias=base.n_vias - base.cts.via_crossings +
        cts.via_crossings,
        tsv_area_um2=base.tsv_area_um2,
        long_wires=session.routing.long_wire_count,
        hvt_fraction=hvt_fraction(session.netlist),
        power=power,
        sta=sta,
        cts=cts,
        routing=session.routing,
        fold_result=base.fold_result,
        generated=base.generated,
        route_ctx=session.ctx,
    )
    metrics().counter("eco.derived_designs").inc()
    return design, closure
