"""Deterministic fault injection for chaos-testing the flow.

The package has two halves:

* :mod:`repro.faults.plan` -- the *what*: a :class:`FaultPlan` is a
  frozen, picklable list of :class:`FaultSpec` entries (raise / hang /
  slow / corrupt) keyed by task id, stage name and attempt number.
  Plans parse from the ``REPRO_FAULTS`` environment variable, print
  back to the same grammar, and can be generated deterministically from
  a seed (:meth:`FaultPlan.seeded`) -- the same seed always replays the
  identical fault sequence.
* :mod:`repro.faults.inject` -- the *where*: tiny hooks
  (:func:`fault_point`, :func:`corrupt_point`) that the flow's stage
  boundaries and the design cache's disk loads call.  With no active
  plan the hooks are a single ``None`` check -- the injected-fault
  code paths are inert and the production numbers are byte-identical.

Every injected fault is recorded as a ``fault.injected`` span and a
``faults.injected`` metrics counter, so chaos runs are observable with
the same tooling as healthy ones.
"""

from .inject import (FaultContext, InjectedCrash, InjectedFault,
                     InjectedHang,
                     active_plan, clear, corrupt_point, fault_point,
                     injection_log, install, installed, reset,
                     task_context)
from .plan import (DEFAULT_HANG_S, DEFAULT_SLOW_S, FAULT_KINDS,
                   FaultPlan, FaultPlanError, FaultSpec)

__all__ = [
    "DEFAULT_HANG_S",
    "DEFAULT_SLOW_S",
    "FAULT_KINDS",
    "FaultContext",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "active_plan",
    "clear",
    "corrupt_point",
    "fault_point",
    "injection_log",
    "install",
    "installed",
    "reset",
    "task_context",
]
