"""Fault-injection hooks: where an active plan actually bites.

The flow calls two tiny hooks:

* :func:`fault_point` at stage boundaries (``generate`` / ``place`` /
  ``optimize`` / ``detailed_route`` / ``power``) and at the engine's
  per-attempt ``task`` boundary -- fires ``raise`` / ``hang`` /
  ``slow`` / ``crash`` specs;
* :func:`corrupt_point` just before the design cache reads a disk
  entry -- a matching ``corrupt`` spec overwrites the entry with
  seeded garbage (or truncates it), proving the cache's
  corruption-tolerant load path end to end.

With no active plan both hooks reduce to one ``None`` check, so the
production path is inert: zero ``faults.*`` metric increments, zero
spans, byte-identical outputs.  A plan activates either through the
``REPRO_FAULTS`` environment variable (parsed lazily, once per
process -- spawned workers inherit it) or programmatically via
:func:`install` / :func:`installed`.

Hooks fire *once* per (spec, task, attempt): a ``stage=*`` raise
kills the first stage it meets and stays quiet afterwards, and a
retried attempt re-matches from scratch -- which is what makes
``attempt=1`` faults recoverable and ``attempt=0`` faults permanent.
Every injection is recorded in a process-local log
(:func:`injection_log`), as a ``fault.injected`` span and as
``faults.injected`` (plus per-kind) counters; pool workers ship those
back to the parent with the rest of their observability payload.
"""

from __future__ import annotations

import contextvars
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..obs import trace
from ..obs.metrics import metrics
from .plan import FaultPlan, FaultSpec


class InjectedFault(RuntimeError):
    """An injected ``raise`` fault (deliberate, deterministic)."""


class InjectedHang(RuntimeError):
    """A cooperative hang that ran past the task deadline.

    Raised only when the hook's context carries a deadline (the serial
    engine sets one); in a pool worker the hang simply sleeps and the
    supervisor kills the process from outside.
    """


class InjectedCrash(RuntimeError):
    """An injected hard crash.

    A supervised worker that sees this exits immediately without
    sending anything back -- the realistic crashed-worker signature
    (detected by exit code, replaced by the supervisor).  The serial
    engine degrades it to a plain task failure.
    """


@dataclass(frozen=True)
class FaultContext:
    """Coordinates of the currently running task attempt."""

    task: str = ""
    attempt: int = 1
    #: ``time.monotonic()`` deadline for cooperative hang faults
    deadline: Optional[float] = None


_DEFAULT_CTX = FaultContext()
_CTX: contextvars.ContextVar[FaultContext] = \
    contextvars.ContextVar("repro_fault_ctx", default=_DEFAULT_CTX)

#: sentinel: the environment has not been consulted yet
_UNSET = object()
_ACTIVE: Any = _UNSET
#: (spec index, task, attempt) triples that already fired
_FIRED: set = set()
#: every injection this process performed, in order
_LOG: List[Dict[str, Any]] = []


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, if any.

    On first call (per process) the ``REPRO_FAULTS`` environment
    variable is parsed; afterwards the cached result (or whatever
    :func:`install` put in place) is returned.
    """
    global _ACTIVE
    if _ACTIVE is _UNSET:
        text = os.environ.get("REPRO_FAULTS", "").strip()
        _ACTIVE = FaultPlan.parse(text) if text else None
    return _ACTIVE


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Activate ``plan`` (``None`` deactivates); returns the previous
    plan.  Resets the fire-once bookkeeping and the injection log."""
    global _ACTIVE
    previous = _ACTIVE if _ACTIVE is not _UNSET else None
    _ACTIVE = plan
    _FIRED.clear()
    _LOG.clear()
    return previous


def clear() -> None:
    """Deactivate fault injection (the environment is not re-read)."""
    install(None)


def reset() -> None:
    """Forget everything, including the cached environment parse (the
    next :func:`active_plan` call re-reads ``REPRO_FAULTS``)."""
    global _ACTIVE
    _ACTIVE = _UNSET
    _FIRED.clear()
    _LOG.clear()


@contextmanager
def installed(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Temporarily activate ``plan`` (restores the previous one)."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def injection_log() -> List[Dict[str, Any]]:
    """The injections this process performed (oldest first)."""
    return list(_LOG)


@contextmanager
def task_context(task: str, attempt: int = 1,
                 deadline: Optional[float] = None) -> Iterator[FaultContext]:
    """Scope the (task, attempt, deadline) coordinates for the hooks."""
    ctx = FaultContext(task=task, attempt=attempt, deadline=deadline)
    token = _CTX.set(ctx)
    try:
        yield ctx
    finally:
        _CTX.reset(token)


def current_context() -> FaultContext:
    """The innermost task context (a default, empty one outside any)."""
    return _CTX.get()


def _record(spec: FaultSpec, index: int, ctx: FaultContext,
            stage: str) -> None:
    entry = {"kind": spec.kind, "spec": index, "task": ctx.task,
             "stage": stage, "attempt": ctx.attempt}
    _LOG.append(entry)
    metrics().counter("faults.injected").inc()
    metrics().counter(f"faults.injected.{spec.kind}").inc()
    with trace.span("fault.injected", kind=spec.kind, task=ctx.task,
                    stage=stage, attempt=ctx.attempt, spec=index):
        pass


def _hang(seconds: float, deadline: Optional[float]) -> None:
    end = time.monotonic() + seconds
    while True:
        now = time.monotonic()
        if deadline is not None and now >= deadline:
            raise InjectedHang(
                f"injected hang exceeded the task deadline "
                f"({seconds:g}s hang)")
        if now >= end:
            return
        step = end - now
        if deadline is not None:
            step = min(step, deadline - now)
        time.sleep(min(0.02, max(step, 0.0)))


def fault_point(stage: str) -> None:
    """Stage-boundary hook: fire matching raise/hang/slow specs.

    A no-op (one ``None`` check) when no plan is active.

    Raises:
        InjectedFault: for a matching ``raise`` spec.
        InjectedHang: for a ``hang`` spec once the context deadline
            passes (cooperative timeout; serial engine only).
    """
    plan = active_plan()
    if plan is None:
        return
    ctx = current_context()
    for index, spec in plan.match(ctx.task, stage, ctx.attempt):
        if spec.kind == "corrupt":
            continue  # corrupt specs fire at corrupt_point only
        key = (index, ctx.task, ctx.attempt)
        if key in _FIRED:
            continue
        _FIRED.add(key)
        _record(spec, index, ctx, stage)
        if spec.kind == "raise":
            raise InjectedFault(
                f"injected fault at {ctx.task or '<task>'}/{stage} "
                f"(attempt {ctx.attempt})")
        if spec.kind == "crash":
            raise InjectedCrash(
                f"injected crash at {ctx.task or '<task>'}/{stage} "
                f"(attempt {ctx.attempt})")
        if spec.kind == "slow":
            time.sleep(spec.seconds)
        elif spec.kind == "hang":
            _hang(spec.seconds, ctx.deadline)


def corrupt_point(path: Union[str, Path]) -> bool:
    """Cache-load hook: a matching ``corrupt`` spec garbles ``path``.

    Called with the entry's path just before the cache reads it; the
    stage name the specs match against is ``cache.load``.  Half the
    time (seeded by the plan) the file is truncated mid-byte, half the
    time it is overwritten with garbage -- both must be swallowed by
    the loader's corruption tolerance.  Returns whether a corruption
    was performed.  A no-op when no plan is active or the file does
    not exist (a cold entry cannot be corrupted).
    """
    plan = active_plan()
    if plan is None:
        return False
    ctx = current_context()
    corrupted = False
    for index, spec in plan.match(ctx.task, "cache.load", ctx.attempt):
        if spec.kind != "corrupt":
            continue
        key = (index, ctx.task, ctx.attempt)
        if key in _FIRED:
            continue
        p = Path(path)
        if not p.exists():
            continue  # nothing to corrupt yet; keep the spec armed
        _FIRED.add(key)
        _record(spec, index, ctx, "cache.load")
        rng = random.Random(
            f"repro-corrupt:{plan.seed}:{index}:{ctx.task}:{ctx.attempt}")
        try:
            if rng.random() < 0.5:
                size = p.stat().st_size
                with open(p, "r+b") as f:
                    f.truncate(max(1, size // 2))
            else:
                garbage = bytes(rng.randrange(256) for _ in range(64))
                with open(p, "wb") as f:
                    f.write(garbage)
            corrupted = True
        except OSError:
            pass
    return corrupted
