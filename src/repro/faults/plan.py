"""Fault plans: what to break, where, and on which attempt.

A :class:`FaultSpec` names one fault: a *kind* plus the coordinates it
fires at -- task id (experiment id or grid-point label), stage name
(``generate`` / ``place`` / ``optimize`` / ``power`` / ``task`` /
``cache.load``) and attempt number.  Task and stage are ``fnmatch``
patterns, so ``task=fig*`` or ``stage=*`` sweep whole families.  A
:class:`FaultPlan` bundles specs with the seed that (optionally)
generated them; matching is a pure function of ``(task, stage,
attempt)``, which is what makes a chaos run replayable: the same plan
against the same request injects the identical fault sequence.

The plan grammar (``REPRO_FAULTS``) is a ``;``-separated list of
specs, each a kind followed by ``key=value`` fields::

    REPRO_FAULTS="raise task=fig6 stage=optimize attempt=1; \
                  slow task=* stage=place seconds=0.05"

Fields: ``task`` (default ``*``), ``stage`` (default ``*``),
``attempt`` (default ``1``; ``0`` fires on *every* attempt, making the
fault unrecoverable), ``seconds`` (hang/slow duration).
:meth:`FaultPlan.to_text` prints the same grammar back, so plans
round-trip through the environment and across spawned workers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import List, Optional, Sequence, Tuple

#: the supported fault kinds
FAULT_KINDS = ("raise", "hang", "slow", "corrupt", "crash")

#: default hang length -- "forever" at task scale; a hung worker is
#: expected to be killed by the engine's timeout, not to wake up
DEFAULT_HANG_S = 3600.0
#: default slow-stage delay
DEFAULT_SLOW_S = 0.05


class FaultPlanError(ValueError):
    """A fault-plan string that does not parse."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind + the (task, stage, attempt) it fires at.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        task: ``fnmatch`` pattern on the task id (experiment id).
        stage: ``fnmatch`` pattern on the hook's stage name.
        attempt: 1-based attempt that triggers the fault; ``0`` means
            every attempt (the fault is unrecoverable by retrying).
        seconds: duration for ``hang``/``slow`` kinds.
    """

    kind: str
    task: str = "*"
    stage: str = "*"
    attempt: int = 1
    seconds: float = DEFAULT_SLOW_S

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}")
        if self.attempt < 0:
            raise FaultPlanError("attempt must be >= 0 "
                                 f"(got {self.attempt})")
        if self.seconds < 0:
            raise FaultPlanError("seconds must be >= 0 "
                                 f"(got {self.seconds})")

    def matches(self, task: str, stage: str, attempt: int) -> bool:
        """Does this spec fire at (task, stage, attempt)?"""
        if self.attempt and attempt != self.attempt:
            return False
        return (fnmatchcase(task, self.task)
                and fnmatchcase(stage, self.stage))

    def to_text(self) -> str:
        """The spec in ``REPRO_FAULTS`` grammar."""
        parts = [self.kind, f"task={self.task}", f"stage={self.stage}",
                 f"attempt={self.attempt}"]
        if self.kind in ("hang", "slow"):
            parts.append(f"seconds={self.seconds:g}")
        return " ".join(parts)


def _parse_spec(text: str) -> FaultSpec:
    tokens = text.split()
    kind = tokens[0]
    kwargs = {}
    for tok in tokens[1:]:
        if "=" not in tok:
            raise FaultPlanError(
                f"expected key=value, got {tok!r} in {text!r}")
        key, _, value = tok.partition("=")
        if key in ("task", "stage"):
            kwargs[key] = value
        elif key == "attempt":
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise FaultPlanError(
                    f"attempt must be an integer, got {value!r}") from None
        elif key == "seconds":
            try:
                kwargs[key] = float(value)
            except ValueError:
                raise FaultPlanError(
                    f"seconds must be a number, got {value!r}") from None
        else:
            raise FaultPlanError(
                f"unknown fault field {key!r} in {text!r}; "
                f"fields: task, stage, attempt, seconds")
    if kind == "hang" and "seconds" not in kwargs:
        kwargs["seconds"] = DEFAULT_HANG_S
    return FaultSpec(kind=kind, **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs plus the seed that derives any
    randomness (corruption bytes, generated specs)."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __len__(self) -> int:
        return len(self.specs)

    def match(self, task: str, stage: str,
              attempt: int) -> List[Tuple[int, FaultSpec]]:
        """Specs firing at (task, stage, attempt), with their indices.

        The index is the spec's position in the plan -- stable across
        processes, it keys the fire-once bookkeeping and the seeded
        corruption bytes.
        """
        return [(i, s) for i, s in enumerate(self.specs)
                if s.matches(task, stage, attempt)]

    def to_text(self) -> str:
        """The whole plan in ``REPRO_FAULTS`` grammar (round-trips
        through :meth:`parse`)."""
        return "; ".join(s.to_text() for s in self.specs)

    @staticmethod
    def parse(text: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar into a plan.

        Raises:
            FaultPlanError: on unknown kinds, malformed fields or
                unparseable numbers.
        """
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if chunk:
                specs.append(_parse_spec(chunk))
        return FaultPlan(specs=tuple(specs), seed=seed)

    @staticmethod
    def seeded(seed: int,
               tasks: Optional[Sequence[str]] = None,
               n_faults: Optional[int] = None,
               kinds: Sequence[str] = ("raise", "slow", "hang",
                                       "corrupt")) -> "FaultPlan":
        """Generate a deterministic chaos plan from a seed.

        The same ``(seed, tasks)`` always yields the identical plan
        (string-seeded :class:`random.Random` is stable across
        processes and hash randomization).  The plan always contains
        at least one ``raise`` at the engine-level ``task`` stage on
        attempt 1, so a chaos run against any task set is guaranteed
        to inject (and recover from, given one retry) at least one
        fault.

        Args:
            seed: plan seed; recorded on the plan for replay.
            tasks: concrete task ids to aim at (default: ``*``).
            n_faults: number of extra random specs (default 2-3,
                seed-derived).
            kinds: the fault kinds the generator may pick from.
        """
        rng = random.Random(f"repro-fault-plan:{seed}")
        pool = list(tasks) if tasks else ["*"]
        stages = ("generate", "place", "optimize", "power", "task")
        n = n_faults if n_faults is not None else 2 + rng.randrange(2)
        specs: List[FaultSpec] = [
            FaultSpec(kind="raise", task=rng.choice(pool), stage="task",
                      attempt=1)]
        for _ in range(n):
            kind = rng.choice(list(kinds))
            task = rng.choice(pool)
            if kind == "corrupt":
                specs.append(FaultSpec(kind="corrupt", task=task,
                                       stage="cache.load", attempt=1))
            elif kind == "hang":
                specs.append(FaultSpec(kind="hang", task=task,
                                       stage=rng.choice(stages),
                                       attempt=1,
                                       seconds=DEFAULT_HANG_S))
            else:
                attempt = 0 if rng.random() < 0.15 else 1
                seconds = (round(0.01 + rng.random() * 0.05, 3)
                           if kind == "slow" else DEFAULT_SLOW_S)
                specs.append(FaultSpec(kind=kind, task=task,
                                       stage=rng.choice(stages),
                                       attempt=attempt, seconds=seconds))
        return FaultPlan(specs=tuple(specs), seed=seed)
