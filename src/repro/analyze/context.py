"""What the code analyzer looks at: one parsed Python module.

A :class:`CodeContext` is the code-analysis twin of
:class:`repro.lint.context.LintContext`: a bundle the rule deck
inspects, with ``name`` / ``has()`` so the shared
:func:`repro.lint.runner.run_rules` loop drives both checkers.  The
``name`` is the path relative to the analysis root
(``repro/core/flow.py``), which is also the stable prefix of every
violation's ``obj``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .astutil import ImportMap, scope_map


class SourceError(ValueError):
    """A module that could not be read or parsed."""


@dataclass
class CodeContext:
    """One module under analysis.  All derived fields are prebuilt."""

    name: str
    path: str
    source: str
    tree: Optional[ast.Module] = None
    imports: Optional[ImportMap] = None
    #: node -> enclosing function/class qualname (for stable ``obj``s)
    scopes: Dict[ast.AST, str] = field(default_factory=dict)

    def has(self, names: Tuple[str, ...]) -> bool:
        """True when every named artifact is present (runner protocol)."""
        return all(getattr(self, n, None) is not None for n in names)

    def scope_of(self, node: ast.AST) -> str:
        """Enclosing scope qualname of a node (``"<module>"`` top)."""
        return self.scopes.get(node, "<module>")

    def obj_of(self, node: ast.AST) -> str:
        """The violation ``obj`` for a node: ``<name>::<scope>``.

        Scope-based (not line-based) so committed waivers survive
        unrelated edits to the same file.
        """
        return f"{self.name}::{self.scope_of(node)}"

    def where(self, node: ast.AST) -> str:
        """Human-readable location for messages: ``<name>:<line>``."""
        return f"{self.name}:{getattr(node, 'lineno', 0)}"


def context_for_source(source: str, name: str = "<memory>",
                       path: str = "<memory>") -> CodeContext:
    """Parse one module's source text into an analysis context."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise SourceError(f"{name}: {exc}") from exc
    return CodeContext(name=name, path=path, source=source, tree=tree,
                       imports=ImportMap(tree), scopes=scope_map(tree))


def context_for_file(path: Union[str, Path],
                     root: Optional[Union[str, Path]] = None
                     ) -> CodeContext:
    """Read and parse one source file.

    ``root`` anchors the context name: with ``root=src/`` the file
    ``src/repro/core/flow.py`` is named ``repro/core/flow.py``.
    """
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise SourceError(f"{p}: {exc}") from exc
    if root is not None:
        try:
            name = p.relative_to(Path(root)).as_posix()
        except ValueError:
            name = p.as_posix()
    else:
        name = p.as_posix()
    return context_for_source(source, name=name, path=str(p))
