"""Determinism deck (DET): code patterns that break byte-reproducibility.

The repo's cache keys, golden fixtures and parallel==serial parity all
assume that identical ``(code, seed, scale)`` produces identical bytes.
These rules flag the code patterns that silently break that assumption:
process-global RNGs, hash-salted iteration orders, filesystem
enumeration orders, and wall-clock / process-identity values leaking
into serialized output.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from ..lint.framework import ERROR, Rule, rule
from .context import CodeContext
from .taint import TaintSpec, find_leaks

#: the code-analysis deck's own registry (kept apart from the
#: design-data deck so ``repro lint`` and ``repro analyze`` stay
#: independently runnable)
CODE_REGISTRY: Dict[str, Rule] = {}


def code_rule(rule_id: str, title: str, severity: str = ERROR):
    """Register a code-analysis rule (requires a parsed ``tree``)."""
    return rule(rule_id, title, severity, requires=("tree",),
                registry=CODE_REGISTRY)


# ---------------------------------------------------------------------------
# DET001/DET002: process-global RNGs
# ---------------------------------------------------------------------------

#: ``random`` module attributes that are fine to touch directly
_RANDOM_OK = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

#: ``numpy.random`` attributes that are part of the seeded Generator API
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence",
                           "BitGenerator", "PCG64", "Philox", "MT19937",
                           "SFC64"})


@code_rule("DET001", "process-global random module call")
def det001_global_random(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """Calls like ``random.random()`` / ``random.shuffle()`` draw from
    the process-global RNG: results depend on call order across the
    whole program, so seeding cannot be threaded per task.  Use a
    ``random.Random(seed)`` instance (string seeds are stable across
    processes)."""
    assert ctx.tree is not None and ctx.imports is not None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.imports.call_target(node)
        if target and target.startswith("random.") \
                and target.count(".") == 1 \
                and target.split(".")[1] not in _RANDOM_OK:
            yield (f"{ctx.where(node)}: {target}() uses the "
                   f"process-global RNG; use random.Random(seed)",
                   ctx.obj_of(node))


@code_rule("DET002", "legacy numpy.random global-state call")
def det002_numpy_random(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """``np.random.rand()`` and friends mutate numpy's hidden global
    ``RandomState``; per-flow seeding requires
    ``np.random.default_rng(seed)`` generators."""
    assert ctx.tree is not None and ctx.imports is not None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.imports.call_target(node)
        if target and target.startswith("numpy.random.") \
                and target.split(".")[2] not in _NP_RANDOM_OK:
            yield (f"{ctx.where(node)}: {target}() uses numpy's global "
                   f"RandomState; use numpy.random.default_rng(seed)",
                   ctx.obj_of(node))


# ---------------------------------------------------------------------------
# DET003/DET004/DET007: taint walks into serialization sinks
# ---------------------------------------------------------------------------

_WALL_CLOCK = TaintSpec(source_calls={
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.monotonic": "time.monotonic()",
    "time.perf_counter": "time.perf_counter()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.date.today": "date.today()",
})

_IDENTITY = TaintSpec(source_calls={
    "id": "id()",
    "object.__hash__": "object.__hash__()",
})

_ENVIRONMENT = TaintSpec(
    source_calls={
        "os.getpid": "os.getpid()",
        "os.getcwd": "os.getcwd()",
        "socket.gethostname": "gethostname()",
        "platform.node": "platform.node()",
    },
    source_attrs={"os.environ": "os.environ"},
)


def _leak_messages(ctx: CodeContext, spec: TaintSpec, what: str
                   ) -> Iterator[Tuple[str, str]]:
    for node, label, sink in find_leaks(ctx, spec):
        yield (f"{ctx.where(node)}: {what} value from {label} reaches "
               f"the {sink} (cache keys / serialized results must "
               f"depend only on code, seed and scale)",
               ctx.obj_of(node))


@code_rule("DET003", "wall-clock value reaches serialized output")
def det003_wall_clock_leak(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """``time.time()``-family values flowing into ``json.dump(s)``
    arguments or ``*_key`` / ``*_to_dict`` returns make output bytes
    differ between identical runs.  Timings belong in span attributes
    or explicitly non-deterministic timing files."""
    yield from _leak_messages(ctx, _WALL_CLOCK, "wall-clock")


@code_rule("DET004", "object identity reaches serialized output")
def det004_identity_leak(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """``id(obj)`` / ``object.__hash__(obj)`` are memory addresses:
    different every process.  Using them in membership sets is fine;
    serializing them (or keying caches on them) is not."""
    yield from _leak_messages(ctx, _IDENTITY, "object-identity")


@code_rule("DET007", "process environment reaches serialized output")
def det007_environment_leak(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """``os.getpid()`` / ``os.environ`` / hostnames flowing into
    serialized results tie output bytes to the host and process, which
    breaks the shared cache tier across machines."""
    yield from _leak_messages(ctx, _ENVIRONMENT, "host/process")


# ---------------------------------------------------------------------------
# DET005/DET006: unordered iteration
# ---------------------------------------------------------------------------

def _is_set_expr(node: ast.AST, imports) -> bool:
    """Is this expression a set/frozenset with no imposed order?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = imports.call_target(node)
        if target in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra keeps the unordered type
        return _is_set_expr(node.left, imports) or \
            _is_set_expr(node.right, imports)
    return False


#: filesystem enumerations whose order is OS/insertion dependent
_FS_ENUM_TAILS = ("listdir", "iterdir", "glob", "rglob", "iglob",
                  "scandir")


def _is_fs_enum(node: ast.AST, imports) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = imports.call_target(node) or ""
    return target.rsplit(".", 1)[-1] in _FS_ENUM_TAILS


def _iteration_sites(ctx: CodeContext) -> Iterator[ast.AST]:
    """Expressions whose elements are consumed in iteration order."""
    assert ctx.tree is not None
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, ast.comprehension):
            yield node.iter
        elif isinstance(node, ast.Call):
            target = ctx.imports.call_target(node) if ctx.imports else None
            if target in ("list", "tuple", "enumerate") and node.args:
                yield node.args[0]
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" and node.args:
                yield node.args[0]


@code_rule("DET005", "iteration over an unsorted set")
def det005_set_iteration(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """Iterating a ``set``/``frozenset`` (or materializing one with
    ``list()``/``join()``) exposes hash order, which is salted per
    process for strings.  Wrap the set in ``sorted()`` before any
    order-sensitive consumption."""
    assert ctx.imports is not None
    for it in _iteration_sites(ctx):
        if _is_set_expr(it, ctx.imports):
            yield (f"{ctx.where(it)}: iteration over an unsorted "
                   f"set/frozenset; wrap in sorted() to fix the order",
                   ctx.obj_of(it))


@code_rule("DET006", "iteration over unsorted directory listing")
def det006_fs_iteration(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """``os.listdir()`` / ``Path.glob()`` / ``iterdir()`` return
    entries in OS order, which differs across filesystems.  Any
    consumer whose result can reach reports or goldens must
    ``sorted()`` the listing first."""
    assert ctx.imports is not None
    for it in _iteration_sites(ctx):
        if _is_fs_enum(it, ctx.imports):
            yield (f"{ctx.where(it)}: iteration over an unsorted "
                   f"directory listing; wrap in sorted()",
                   ctx.obj_of(it))
