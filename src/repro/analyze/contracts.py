"""Flow-contract deck (FLW): invariants of the experiment/flow API.

The experiment registry, the flow pipeline and the chaos layer each
have a contract that is easy to break silently: a runner that forgets
to thread ``seed=`` still runs (with the default seed, corrupting
sweeps); a flow stage without a ``fault_point`` is invisible to chaos
tests; a mutated ``ExperimentOptions`` defeats the frozen-dataclass
guarantee the cache key depends on.  These rules pin each contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from .astutil import (decorator_call, first_str_arg, keyword_arg,
                      qualname)
from .context import CodeContext
from .determinism import code_rule
from .taint import walk_local

#: config constructors that must be seeded explicitly inside runners
_SEEDED_CTORS = frozenset({"FlowConfig", "ChipConfig"})

#: helpers that must receive the runner's ``cache`` (kw or positional)
_CACHED_HELPERS = frozenset({"build_chip", "_flow", "compare_bonding",
                             "spc_folding_study",
                             "bonding_power_sweep"})

#: flow stages that the chaos layer must be able to interrupt
_CHAOS_STAGES = frozenset({"generate", "place", "optimize",
                           "detailed_route", "power"})


def _experiment_runners(ctx: CodeContext
                        ) -> Iterator[Tuple[ast.FunctionDef, Optional[str]]]:
    """Every ``@experiment(...)``-decorated function and its id."""
    assert ctx.tree is not None and ctx.imports is not None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        dec = decorator_call(node, "experiment", ctx.imports)
        if dec is not None:
            yield node, first_str_arg(dec)


@code_rule("FLW001", "experiment runner with a non-standard signature")
def flw001_runner_signature(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """A registered runner is called as ``fn(opts)`` by the dispatcher
    and by every worker process; extra parameters, defaults or
    ``*args`` mean some path constructs options the cache key never
    sees."""
    for fn, _ in _experiment_runners(ctx):
        a = fn.args
        bad = (len(a.args) != 1 or a.posonlyargs or a.kwonlyargs
               or a.defaults or a.kw_defaults or a.vararg or a.kwarg)
        if bad:
            yield (f"{ctx.where(fn)}: @experiment runner {fn.name}() "
                   f"must take exactly one options parameter",
                   ctx.obj_of(fn))


@code_rule("FLW002", "experiment runner drops seed= or cache")
def flw002_threading(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """Inside a runner, every ``FlowConfig``/``ChipConfig`` must be
    built with an explicit ``seed=`` and every flow/chip helper must be
    handed the runner's ``cache`` -- otherwise the run silently uses
    the default seed (corrupting sweeps) or rebuilds every block
    (defeating warm reruns and parallel==serial parity checks)."""
    assert ctx.imports is not None
    for fn, _ in _experiment_runners(ctx):
        for node in walk_local(fn):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.call_target(node) or ""
            tail = target.rsplit(".", 1)[-1]
            if tail in _SEEDED_CTORS and keyword_arg(node, "seed") is None:
                yield (f"{ctx.where(node)}: {tail}(...) inside "
                       f"@experiment runner {fn.name}() has no seed= "
                       f"keyword; thread opts.seed through",
                       ctx.obj_of(node))
            elif tail in _CACHED_HELPERS:
                refs_cache = any(
                    isinstance(n, ast.Name) and n.id == "cache"
                    for arg in (list(node.args)
                                + [kw.value for kw in node.keywords])
                    for n in ast.walk(arg))
                if not refs_cache:
                    yield (f"{ctx.where(node)}: {tail}(...) inside "
                           f"@experiment runner {fn.name}() does not "
                           f"pass the runner's cache; thread "
                           f"opts.cache through",
                           ctx.obj_of(node))


@code_rule("FLW003", "ExperimentOptions mutated")
def flw003_options_mutation(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """``ExperimentOptions`` is a frozen dataclass because the cache
    key and the worker task tuple are derived from it; writing through
    the freeze (``object.__setattr__`` / ``setattr``) desynchronizes
    the run from its own cache key."""
    assert ctx.tree is not None and ctx.imports is not None
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, ast.FunctionDef):
            continue
        opt_names: Set[str] = {"opts"}
        for arg in fn.args.args + fn.args.kwonlyargs:
            ann = arg.annotation
            if ann is not None and "ExperimentOptions" in ast.dump(ann):
                opt_names.add(arg.arg)
        for node in walk_local(fn):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for t in targets:
                if isinstance(t, ast.Attribute) \
                        and isinstance(t.value, ast.Name) \
                        and t.value.id in opt_names:
                    yield (f"{ctx.where(node)}: assignment to "
                           f"{t.value.id}.{t.attr} mutates frozen "
                           f"ExperimentOptions; use dataclasses."
                           f"replace()",
                           ctx.obj_of(node))
            if isinstance(node, ast.Call):
                target = ctx.imports.call_target(node) or ""
                if target in ("setattr", "object.__setattr__") \
                        and node.args \
                        and isinstance(node.args[0], ast.Name) \
                        and node.args[0].id in opt_names:
                    yield (f"{ctx.where(node)}: {target}() on "
                           f"{node.args[0].id} mutates frozen "
                           f"ExperimentOptions; use dataclasses."
                           f"replace()",
                           ctx.obj_of(node))


@code_rule("FLW004", "result id differs from registered experiment id")
def flw004_result_id(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """The ``ExperimentResult`` a runner returns must carry the id it
    was registered under -- reports, goldens and the JSON dump are all
    keyed by ``result.experiment_id``, so a mismatch orphans the run's
    output."""
    assert ctx.imports is not None
    for fn, reg_id in _experiment_runners(ctx):
        if reg_id is None:
            continue
        for node in walk_local(fn):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.call_target(node) or ""
            if target.rsplit(".", 1)[-1] != "ExperimentResult":
                continue
            built = first_str_arg(node)
            if built is None:
                eid = keyword_arg(node, "experiment_id")
                if isinstance(eid, ast.Constant) \
                        and isinstance(eid.value, str):
                    built = eid.value
            if built is not None and built != reg_id:
                yield (f"{ctx.where(node)}: ExperimentResult id "
                       f"{built!r} differs from registered id "
                       f"{reg_id!r}",
                       ctx.obj_of(node))


# ---------------------------------------------------------------------------
# FLW005: span <-> fault_point pairing at flow stage boundaries
# ---------------------------------------------------------------------------

def _span_name(item: ast.withitem, ctx: CodeContext) -> Optional[str]:
    """Literal span name of a ``with trace.span("...")`` item."""
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return None
    target = ctx.imports.call_target(expr) or "" if ctx.imports else ""
    if target.rsplit(".", 1)[-1] != "span":
        return None
    return first_str_arg(expr)


def _fault_stage(node: ast.AST, ctx: CodeContext) -> Optional[str]:
    """Literal stage of a ``fault_point("...")`` call."""
    if not isinstance(node, ast.Call):
        return None
    target = ctx.imports.call_target(node) or "" if ctx.imports else ""
    if target.rsplit(".", 1)[-1] != "fault_point":
        return None
    return first_str_arg(node)


@code_rule("FLW005", "flow stage missing its span/fault_point pair")
def flw005_stage_boundary(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """Every flow stage boundary must carry *both* halves of the
    observability/chaos contract: a ``flow.*`` span with no
    ``fault_point`` inside is a stage chaos tests cannot interrupt; a
    stage ``fault_point`` outside any span produces injected faults
    that no trace attributes."""
    assert ctx.tree is not None
    covered: Set[int] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.With):
            continue
        names = [_span_name(item, ctx) for item in node.items]
        in_span = any(n is not None for n in names)
        has_fp = any(_fault_stage(sub, ctx) is not None
                     for stmt in node.body for sub in ast.walk(stmt))
        if in_span:
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    covered.add(id(sub))
        for n in names:
            if n is not None and n.startswith("flow.") and not has_fp:
                yield (f"{ctx.where(node)}: span {n!r} marks a flow "
                       f"stage but contains no fault_point(); the "
                       f"chaos layer cannot reach this stage",
                       ctx.obj_of(node))
    for node in ast.walk(ctx.tree):
        stage = _fault_stage(node, ctx)
        if stage in _CHAOS_STAGES and id(node) not in covered:
            yield (f"{ctx.where(node)}: fault_point({stage!r}) is not "
                   f"inside any trace span; injected faults here are "
                   f"invisible to traces",
                   ctx.obj_of(node))
