"""Observability-hygiene deck (OBS): span/metric names by registry.

Span and counter names are load-bearing: CI smoke jobs assert on them,
trace exports group by them, and a typo ships a metric nobody reads.
The generated registry (:mod:`repro.obs.names`, maintained with
``repro analyze --write-names``) is the single source of truth; these
rules hold every call site to it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .astutil import literal_names
from .context import CodeContext
from .determinism import code_rule

#: metric-emitting attribute names -> registry kind
_METRIC_ATTRS = {"counter": "counter", "gauge": "gauge",
                 "histogram": "histogram"}


def _names_registry():
    from ..obs import names
    return names


def _registered(kind: str) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(exact names, f-string prefixes) registered for a kind."""
    reg = _names_registry()
    if kind == "span":
        return reg.SPAN_NAMES, reg.SPAN_PREFIXES
    if kind == "counter":
        return reg.CTR_NAMES, reg.CTR_PREFIXES
    if kind == "gauge":
        return reg.GAUGE_NAMES, ()
    return reg.HIST_NAMES, ()


def _name_sites(ctx: CodeContext) -> Iterator[Tuple[ast.Call, str]]:
    """Every ``(call, kind)`` that emits a span or metric name.

    ``self.counter(...)`` receivers are skipped: those are the metrics
    registry's own internals re-emitting already-validated names.
    """
    assert ctx.tree is not None and ctx.imports is not None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        recv = node.func.value
        if isinstance(recv, ast.Name) and recv.id == "self":
            continue
        if attr == "span":
            yield node, "span"
        elif attr in _METRIC_ATTRS:
            yield node, _METRIC_ATTRS[attr]


def _check_site(ctx: CodeContext, node: ast.Call, kind: str,
                want_literal: bool) -> Iterator[Tuple[str, str]]:
    literals, prefix = literal_names(node.args[0])
    exact, prefixes = _registered(kind)
    if want_literal:
        for lit in literals:
            if lit not in exact:
                yield (f"{ctx.where(node)}: {kind} name {lit!r} is not "
                       f"in the generated registry (repro.obs.names); "
                       f"run `repro analyze --write-names` after "
                       f"adding it intentionally",
                       ctx.obj_of(node))
    elif prefix is not None:
        if not prefix or not any(prefix.startswith(p) or p == prefix
                                 for p in prefixes):
            shown = prefix or "<no literal prefix>"
            yield (f"{ctx.where(node)}: dynamic {kind} name with "
                   f"prefix {shown!r} matches no registered prefix; "
                   f"dynamic names need a registered `<prefix>*` "
                   f"family",
                   ctx.obj_of(node))


@code_rule("OBS001", "span name missing from the generated registry")
def obs001_span_names(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """Every literal ``trace.span("...")`` name must appear in
    :mod:`repro.obs.names`; otherwise trace-based CI asserts and
    export groupings silently miss it."""
    for node, kind in _name_sites(ctx):
        if kind == "span":
            yield from _check_site(ctx, node, kind, want_literal=True)


@code_rule("OBS002", "metric name missing from the generated registry")
def obs002_metric_names(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """Every literal counter/gauge/histogram name must appear in
    :mod:`repro.obs.names` so dashboards and smoke asserts can import
    the constant instead of repeating the string."""
    for node, kind in _name_sites(ctx):
        if kind != "span":
            yield from _check_site(ctx, node, kind, want_literal=True)


@code_rule("OBS003", "dynamic span/metric name with unregistered prefix")
def obs003_dynamic_names(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """An f-string name is fine only when its literal prefix matches a
    registered ``<prefix>*`` family (``faults.injected.*``); a dynamic
    name outside every family is unbounded cardinality no consumer
    knows about.  Bare-variable forwarding (``tracer.span(name)``) is
    out of scope."""
    for node, kind in _name_sites(ctx):
        yield from _check_site(ctx, node, kind, want_literal=False)
