"""Static code analyzer for the repo's own Python source.

The code-level twin of :mod:`repro.lint`: where lint audits flow
*artifacts* (netlists, placements, chips), this package audits the
*code that produces them* -- with stdlib ``ast`` only -- for the
properties the whole repro pipeline depends on:

* **determinism** (``DET``): process-global RNGs, hash/filesystem
  iteration order, wall-clock / identity / environment values leaking
  into cache keys or serialized results;
* **concurrency** (``CON``): spawn-safety of everything handed to the
  parallel engine -- importable worker callables, no shared-global
  mutation in worker code, no fork-unsafe module-scope resources;
* **flow contracts** (``FLW``): ``@experiment`` runners thread
  ``seed=``/``cache``, results carry their registered id, frozen
  options stay frozen, every flow stage pairs its span with a
  ``fault_point``;
* **observability hygiene** (``OBS``): span/metric names come from the
  generated registry (:mod:`repro.obs.names`).

It reuses the lint framework's severity/waiver/report machinery with
its own rule registry, so reports render and waive identically.  See
``docs/static-analysis.md`` for the catalog, and ``python -m repro
analyze`` for the CLI.  Importing this package registers the deck.
"""

from ..lint.framework import (LintConfig, LintError, LintReport,
                              Violation, Waiver)
from .astutil import ImportMap, literal_names, qualname, scope_map
from .context import (CodeContext, SourceError, context_for_file,
                      context_for_source)
from .determinism import CODE_REGISTRY, code_rule
from . import concurrency  # noqa: F401  (rule registration)
from . import contracts    # noqa: F401  (rule registration)
from . import hygiene      # noqa: F401  (rule registration)
from .namesgen import check_names, collect_inventory, write_names
from .runner import (DEFAULT_WAIVERS, WaiverSyntaxError, analyze_file,
                     analyze_paths, analyze_source, assert_self_clean,
                     default_config, load_waivers, self_report,
                     source_root)
from .taint import TaintSpec, find_leaks

__all__ = [
    "CODE_REGISTRY", "code_rule",
    "CodeContext", "SourceError", "context_for_file",
    "context_for_source",
    "ImportMap", "qualname", "scope_map", "literal_names",
    "TaintSpec", "find_leaks",
    "analyze_file", "analyze_source", "analyze_paths", "self_report",
    "assert_self_clean", "default_config", "load_waivers",
    "source_root", "DEFAULT_WAIVERS", "WaiverSyntaxError",
    "check_names", "collect_inventory", "write_names",
    "LintConfig", "LintError", "LintReport", "Violation", "Waiver",
]
