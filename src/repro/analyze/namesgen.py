"""Generator for the span/metric name registry (:mod:`repro.obs.names`).

The registry is *derived from the code*: this module scans every
``trace.span("...")`` / ``counter("...")`` / ``gauge`` / ``histogram``
call site under ``src/repro`` -- with exactly the same detection the
OBS rules use -- and renders a deterministic Python module of
constants.  The workflow is::

    # after intentionally adding/renaming a span or metric
    python -m repro analyze --write-names
    # CI verifies the committed file is fresh
    python -m repro analyze --check-names

Because collector and checker share one detection, a freshly generated
registry always passes OBS001-OBS003; the rules then catch *drift*
(names added without regenerating, typos diverging from the committed
registry).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .context import CodeContext, SourceError, context_for_file

#: constant-name prefix per kind in the generated module
_CONST_PREFIX = {"span": "SPAN", "counter": "CTR", "gauge": "GAUGE",
                 "histogram": "HIST"}

_HEADER = '''"""Generated registry of span and metric names.  DO NOT EDIT.

Every span/counter/gauge/histogram name emitted anywhere under
``src/repro`` -- regenerate with ``python -m repro analyze
--write-names`` after intentionally adding or renaming one, and CI
runs ``--check-names`` to keep this file fresh.  Import the constants
instead of repeating the strings:

    from repro.obs.names import SPAN_FLOW_PLACE, CTR_CACHE_MISSES

``*_PREFIXES`` lists the registered dynamic-name families: an f-string
name is legal when its literal prefix falls under one of them.
"""
'''


class NameInventory:
    """Every span/metric name and dynamic-name prefix in a source tree."""

    def __init__(self) -> None:
        self.names: Dict[str, Set[str]] = {
            "span": set(), "counter": set(), "gauge": set(),
            "histogram": set()}
        self.prefixes: Dict[str, Set[str]] = {"span": set(),
                                              "counter": set()}

    def collect_module(self, ctx: CodeContext) -> None:
        # local import: hygiene imports the determinism deck, and the
        # generator must stay importable before names.py first exists
        from .hygiene import _name_sites
        from .astutil import literal_names
        for node, kind in _name_sites(ctx):
            literals, prefix = literal_names(node.args[0])
            for lit in literals:
                self.names[kind].add(lit)
            if prefix and kind in self.prefixes:
                self.prefixes[kind].add(prefix)

    def render(self) -> str:
        """The registry module's deterministic source text."""
        lines: List[str] = [_HEADER]
        for kind in ("span", "counter", "gauge", "histogram"):
            prefix = _CONST_PREFIX[kind]
            names = sorted(self.names[kind])
            if names:
                lines.append("")
                for n in names:
                    lines.append(f'{_const_name(prefix, n)} = "{n}"')
            lines.append("")
            if names:
                lines.append(f"{prefix}_NAMES = (")
                for n in names:
                    lines.append(f"    {_const_name(prefix, n)},")
                lines.append(")")
            else:
                lines.append(f"{prefix}_NAMES = ()")
            if kind in self.prefixes:
                pres = sorted(self.prefixes[kind])
                if pres:
                    lines.append(f"{prefix}_PREFIXES = (")
                    for p in pres:
                        lines.append(f'    "{p}",')
                    lines.append(")")
                else:
                    lines.append(f"{prefix}_PREFIXES = ()")
        lines.append("")
        return "\n".join(lines)


def _const_name(prefix: str, name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return f"{prefix}_{cleaned.upper()}"


def _source_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def names_path(root: Optional[Path] = None) -> Path:
    """Where the generated registry lives."""
    return (root or _source_root()) / "obs" / "names.py"


def collect_inventory(root: Optional[Path] = None) -> NameInventory:
    """Scan every module under ``root`` (default: the repro package)."""
    base = root or _source_root()
    inv = NameInventory()
    skip = names_path(base).resolve()
    for path in sorted(base.rglob("*.py")):
        if path.resolve() == skip:
            continue
        try:
            ctx = context_for_file(path, root=base.parent)
        except SourceError:
            continue
        inv.collect_module(ctx)
    return inv


def write_names(root: Optional[Path] = None) -> Tuple[Path, bool]:
    """(Re)generate the registry; returns ``(path, changed)``."""
    path = names_path(root)
    text = collect_inventory(root).render()
    old = path.read_text(encoding="utf-8") if path.exists() else None
    if old == text:
        return path, False
    path.write_text(text, encoding="utf-8")
    return path, True


def check_names(root: Optional[Path] = None) -> Tuple[Path, bool]:
    """Is the committed registry byte-identical to a fresh render?"""
    path = names_path(root)
    text = collect_inventory(root).render()
    old = path.read_text(encoding="utf-8") if path.exists() else None
    return path, old == text


def _parse_ok(text: str) -> bool:  # pragma: no cover - debug helper
    try:
        ast.parse(text)
        return True
    except SyntaxError:
        return False
