"""Entry points: run the code-analysis deck over source trees.

Mirrors :mod:`repro.lint.runner` one layer up: contexts are parsed
modules instead of design artifacts, the deck is the code registry,
and the waiver file is a committed text file whose every line carries
a justification.  ``self_report()`` is the CI gate -- the repo must
analyze itself clean.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from ..lint.framework import LintConfig, LintReport, Waiver
from ..lint.runner import assert_clean, run_rules
from ..obs.metrics import metrics
from .context import CodeContext, SourceError, context_for_file
from .determinism import CODE_REGISTRY

#: the committed self-analysis waiver file (shipped with the package)
DEFAULT_WAIVERS = Path(__file__).resolve().parent / "waivers.txt"


class WaiverSyntaxError(ValueError):
    """A waiver file line that does not parse."""


def load_waivers(path: Union[str, Path]) -> List[Waiver]:
    """Parse a waiver file into :class:`~repro.lint.framework.Waiver`\\ s.

    One waiver per line::

        DET006 repro/core/cache.py::clear_disk -- deletes every entry;
            order is irrelevant

    ``#`` starts a comment; rule id and obj pattern are fnmatch
    patterns; everything after ``--`` is the mandatory justification.
    """
    waivers: List[Waiver] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        head, sep, reason = line.partition("--")
        parts = head.split()
        if len(parts) != 2 or not sep or not reason.strip():
            raise WaiverSyntaxError(
                f"{path}:{lineno}: expected "
                f"'RULE_ID obj-pattern -- reason', got {raw.strip()!r}")
        waivers.append(Waiver(rule_id=parts[0], obj=parts[1],
                              reason=reason.strip()))
    return waivers


def default_config(waiver_paths: Optional[Sequence[Union[str, Path]]]
                   = None,
                   use_default_waivers: bool = True,
                   disabled: Sequence[str] = ()) -> LintConfig:
    """The analyzer config: committed waivers plus any extra files."""
    waivers: List[Waiver] = []
    if use_default_waivers and DEFAULT_WAIVERS.exists():
        waivers.extend(load_waivers(DEFAULT_WAIVERS))
    for p in waiver_paths or ():
        waivers.extend(load_waivers(p))
    return LintConfig(disabled=tuple(disabled), waivers=waivers)


def source_root() -> Path:
    """The installed ``repro`` package directory (self-analysis root)."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(paths: Iterable[Union[str, Path]]
                      ) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        else:
            yield p


def analyze_file(path: Union[str, Path],
                 config: Optional[LintConfig] = None,
                 rules: Optional[Sequence[str]] = None,
                 root: Optional[Union[str, Path]] = None) -> LintReport:
    """Run the code deck over one source file."""
    ctx = context_for_file(path, root=root)
    return run_rules(ctx, config=config, rules=rules,
                     registry=CODE_REGISTRY)


def analyze_source(source: str, name: str = "<memory>",
                   config: Optional[LintConfig] = None,
                   rules: Optional[Sequence[str]] = None) -> LintReport:
    """Run the code deck over in-memory source (tests, tooling)."""
    from .context import context_for_source
    ctx = context_for_source(source, name=name)
    return run_rules(ctx, config=config, rules=rules,
                     registry=CODE_REGISTRY)


def analyze_paths(paths: Optional[Iterable[Union[str, Path]]] = None,
                  config: Optional[LintConfig] = None,
                  rules: Optional[Sequence[str]] = None,
                  root: Optional[Union[str, Path]] = None) -> LintReport:
    """Run the code deck over a source tree and merge the reports.

    With no ``paths`` this analyzes the installed ``repro`` package
    itself -- the self-gate.  Unparseable files surface as an ``ERROR``
    violation (rule id ``PARSE``) rather than aborting the sweep.
    """
    if paths is None:
        base = source_root()
        paths = [base]
        root = root if root is not None else base.parent
    total = LintReport()
    for path in iter_source_files(paths):
        try:
            report = analyze_file(path, config=config, rules=rules,
                                  root=root)
        except SourceError as exc:
            report = LintReport(contexts=[str(path)])
            from ..lint.framework import ERROR, Violation
            report.violations.append(Violation(
                rule_id="PARSE", severity=ERROR, message=str(exc),
                obj=f"{path}::<module>", context=str(path)))
        total.merge(report)
    m = metrics()
    m.counter("analyze.runs").inc()
    for kind, n in total.counts().items():
        if n:
            m.counter(f"analyze.findings.{kind}").inc(n)
    return total.sort()


def self_report(waiver_paths: Optional[Sequence[Union[str, Path]]]
                = None,
                use_default_waivers: bool = True,
                rules: Optional[Sequence[str]] = None) -> LintReport:
    """Analyze the ``repro`` package against the committed waivers."""
    config = default_config(waiver_paths,
                            use_default_waivers=use_default_waivers)
    return analyze_paths(config=config, rules=rules)


def assert_self_clean() -> LintReport:
    """The CI gate: raise unless the repo analyzes itself clean."""
    return assert_clean(self_report(), stage="analyze")
