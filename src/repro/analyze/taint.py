"""Lightweight intraprocedural taint walk: nondeterministic sources
flowing into serialization/cache-key sinks.

The determinism deck's hardest failure mode is not *calling*
``time.time()`` -- spans and progress prints do that legitimately --
but letting such a value reach bytes that are compared across runs:
a content-hash cache key, a ``*_to_dict`` result, a ``json.dumps``
argument.  This walk is deliberately simple and local:

* *sources* are calls (``time.time()``, ``id(...)``) or attribute
  reads (``os.environ``) from a per-rule :class:`TaintSpec`;
* taint propagates through assignments, tuple unpacking, ``for``
  targets, f-strings and arithmetic -- a fixpoint over the function
  body;
* ``Compare`` nodes *stop* taint (``id(p) in front`` is a membership
  test, not a leak), as do a few value-erasing builtins (``len`` ...);
* *sinks* are ``json.dump(s)`` arguments, arguments to calls whose
  name looks like a key/serialize helper, and return values of
  functions named like one.

Intraprocedural means cross-function flows are invisible; the point is
catching the single-function patterns that actually corrupt cache keys
and golden bytes, with zero false positives on comparisons.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set, Tuple

from .astutil import ImportMap, qualname
from .context import CodeContext

#: call targets whose result erases value-level taint
_UNTAINT_CALLS = frozenset({"len", "bool", "isinstance", "any", "all"})

#: function-name suffixes treated as serialization/key sinks
_SINK_NAME_SUFFIXES = ("_key", "to_dict", "as_dict", "to_json", "_dict",
                       "_json", "serialize")

#: call targets that serialize their arguments directly
_JSON_SINKS = frozenset({"json.dump", "json.dumps"})


def is_sink_name(name: str) -> bool:
    """Does a function name look like a key/serialization helper?"""
    return name == "key" or name.endswith(_SINK_NAME_SUFFIXES)


@dataclass(frozen=True)
class TaintSpec:
    """One rule's source definition: canonical qualname -> label."""

    #: call targets (``time.time`` -> ``"time.time()"``)
    source_calls: Dict[str, str] = field(default_factory=dict)
    #: attribute/name reads (``os.environ`` -> ``"os.environ"``)
    source_attrs: Dict[str, str] = field(default_factory=dict)


class _Walk:
    """Taint state for one function body."""

    def __init__(self, spec: TaintSpec, imports: ImportMap) -> None:
        self.spec = spec
        self.imports = imports
        self.tainted: Dict[str, str] = {}

    # -- expression-level taint ------------------------------------------

    def expr_label(self, node: ast.AST) -> Optional[str]:
        """The source label carried by this expression, if any."""
        for n in self._walk_pruned(node):
            if isinstance(n, ast.Call):
                target = self.imports.call_target(n)
                if target in self.spec.source_calls:
                    return self.spec.source_calls[target]
            if isinstance(n, (ast.Attribute, ast.Name)):
                target = self.imports.resolve(qualname(n))
                if target in self.spec.source_attrs:
                    return self.spec.source_attrs[target]
            if isinstance(n, ast.Name) and n.id in self.tainted:
                return self.tainted[n.id]
        return None

    def _walk_pruned(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk an expression, skipping taint-stopping constructs."""
        if isinstance(node, ast.Compare):
            return
        if isinstance(node, ast.Call):
            target = self.imports.call_target(node)
            if target in _UNTAINT_CALLS:
                return
        yield node
        for child in ast.iter_child_nodes(node):
            yield from self._walk_pruned(child)

    # -- statement-level propagation -------------------------------------

    def _taint_target(self, target: ast.AST, label: str) -> bool:
        changed = False
        for n in ast.walk(target):
            if isinstance(n, ast.Name) and n.id not in self.tainted:
                self.tainted[n.id] = label
                changed = True
        return changed

    def propagate(self, fn: ast.FunctionDef) -> None:
        """Fixpoint assignment propagation over the function body."""
        for _ in range(10):
            changed = False
            for node in walk_local(fn):
                if isinstance(node, ast.Assign):
                    label = self.expr_label(node.value)
                    if label:
                        for t in node.targets:
                            changed |= self._taint_target(t, label)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    if node.value is not None:
                        label = self.expr_label(node.value)
                        if label:
                            changed |= self._taint_target(node.target,
                                                          label)
                elif isinstance(node, (ast.For, ast.comprehension)):
                    label = self.expr_label(node.iter)
                    if label:
                        changed |= self._taint_target(node.target, label)
            if not changed:
                break


def walk_local(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without entering nested function bodies."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def find_leaks(ctx: CodeContext, spec: TaintSpec
               ) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield ``(node, source_label, sink_description)`` leaks.

    Each function of the module is walked independently (the taint sets
    never cross function boundaries).
    """
    assert ctx.tree is not None and ctx.imports is not None
    seen: Set[int] = set()
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, ast.FunctionDef):
            continue
        walk = _Walk(spec, ctx.imports)
        walk.propagate(fn)
        returns_sink = is_sink_name(fn.name)
        for node in walk_local(fn):
            if isinstance(node, ast.Call):
                target = ctx.imports.call_target(node) or ""
                json_sink = target in _JSON_SINKS
                helper_sink = is_sink_name(target.rsplit(".", 1)[-1])
                if json_sink or helper_sink:
                    args = list(node.args) + \
                        [kw.value for kw in node.keywords]
                    for arg in args:
                        label = walk.expr_label(arg)
                        if label and id(node) not in seen:
                            seen.add(id(node))
                            yield (node, label,
                                   f"argument of {target}()")
            elif isinstance(node, ast.Return) and returns_sink \
                    and node.value is not None:
                label = walk.expr_label(node.value)
                if label and id(node) not in seen:
                    seen.add(id(node))
                    yield (node, label,
                           f"return value of {fn.name}()")
