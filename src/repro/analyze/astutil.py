"""Shared AST helpers for the code-analysis rule decks.

Everything here is stdlib-``ast`` only.  The helpers solve the three
problems every deck shares:

* *name normalization* -- ``import numpy as np`` must make
  ``np.random.rand`` comparable against ``numpy.random.rand``
  (:class:`ImportMap` + :func:`qualname`);
* *scope attribution* -- violations are reported against the enclosing
  function/class (``repro/core/cache.py::disk_entries``), which stays
  stable across edits, unlike line numbers (:func:`scope_map`);
* *literal extraction* -- span/metric names appear as plain string
  constants, as ``IfExp`` branches of constants, or as f-strings with a
  literal prefix (:func:`literal_names`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def qualname(node: ast.AST) -> Optional[str]:
    """Dotted name of a ``Name``/``Attribute`` chain, else ``None``.

    ``np.random.rand`` -> ``"np.random.rand"``; anything containing a
    call, subscript or literal yields ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Alias -> canonical dotted module/name map for one module.

    Built from the module's top-level (and function-local) import
    statements so rules can normalize ``np.random.rand`` to
    ``numpy.random.rand`` and ``from random import shuffle`` to
    ``random.shuffle``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.aliases[a.asname or a.name.split(".")[0]] = \
                        a.name if a.asname else a.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for a in node.names:
                    if a.name == "*":
                        continue
                    self.aliases[a.asname or a.name] = \
                        f"{node.module}.{a.name}"

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Canonical form of a dotted name under this module's aliases."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        canonical = self.aliases.get(head, head)
        return f"{canonical}.{rest}" if rest else canonical

    def call_target(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call's callee, if resolvable."""
        return self.resolve(qualname(call.func))


def scope_map(tree: ast.AST) -> Dict[ast.AST, str]:
    """Node -> enclosing scope qualname (``"<module>"`` at top level)."""
    scopes: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_scope = (child.name if scope == "<module>"
                               else f"{scope}.{child.name}")
            scopes[child] = child_scope
            visit(child, child_scope)

    scopes[tree] = "<module>"
    visit(tree, "<module>")
    return scopes


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (sync) function definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


def literal_names(node: ast.AST) -> Tuple[List[str], Optional[str]]:
    """Possible literal string values of a name expression.

    Returns ``(literals, dynamic_prefix)``:

    * a plain string constant yields ``(["x"], None)``;
    * an ``IfExp``/``BoolOp`` over constants yields every branch;
    * an f-string yields ``([], "literal.prefix.")`` -- the longest
      leading run of constant parts;
    * anything else (a bare variable, a call) yields ``([], None)``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value], None
    if isinstance(node, ast.IfExp):
        body, _ = literal_names(node.body)
        orelse, _ = literal_names(node.orelse)
        if body and orelse:
            return body + orelse, None
        return [], None
    if isinstance(node, ast.JoinedStr):
        prefix_parts: List[str] = []
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(part.value,
                                                            str):
                prefix_parts.append(part.value)
            else:
                break
        return [], "".join(prefix_parts)
    return [], None


def decorator_call(node: ast.FunctionDef, name: str,
                   imports: ImportMap) -> Optional[ast.Call]:
    """The decorator ``@name(...)`` applied to this function, if any.

    Matches both the bare name and any dotted path ending in it
    (``@experiment(...)`` / ``@experiments.experiment(...)``).
    """
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        target = imports.resolve(qualname(dec.func))
        if target is not None and (target == name
                                   or target.endswith(f".{name}")):
            return dec
    return None


def first_str_arg(call: ast.Call) -> Optional[str]:
    """The call's first positional argument when it is a str literal."""
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    return None


def contains_name(node: ast.AST, name: str) -> bool:
    """Does the expression tree mention ``Name(name)`` anywhere?"""
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(node))


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword argument ``name``, if present."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None
