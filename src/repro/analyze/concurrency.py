"""Concurrency deck (CON): spawn-safety of worker code.

The parallel engine runs every task in a fresh ``spawn`` process: the
child imports the module and unpickles ``(target, args)``.  That model
makes three things illegal that work fine serially -- non-importable
callables (lambdas, closures, bound methods), reliance on module
globals mutated elsewhere, and resources captured at import time that
do not survive a fork/spawn boundary.  These rules catch all three at
review time instead of as a ``PicklingError`` (or silent state
divergence) at run time.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .astutil import ImportMap, keyword_arg, qualname
from .context import CodeContext
from .determinism import code_rule

#: attribute names that hand a callable to a pool/executor
_SUBMIT_ATTRS = frozenset({"submit", "apply_async", "map_async",
                           "starmap", "starmap_async", "imap",
                           "imap_unordered"})

#: constructors that take a ``target=`` worker callable
_TARGET_CTORS = ("Process", "Thread")


def _worker_callables(ctx: CodeContext) -> Iterator[ast.expr]:
    """Every expression handed to a process/thread as its entry point."""
    assert ctx.tree is not None and ctx.imports is not None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.imports.call_target(node) or ""
        tail = target.rsplit(".", 1)[-1]
        if tail in _TARGET_CTORS:
            kw = keyword_arg(node, "target")
            if kw is not None:
                yield kw
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr in _SUBMIT_ATTRS and node.args:
            yield node.args[0]


def _module_functions(ctx: CodeContext) -> Tuple[Set[str], Set[str]]:
    """(top-level function names, nested/class-scope function names)."""
    assert ctx.tree is not None
    top: Set[str] = set()
    nested: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a function's own scope qualname equals its bare name
            # exactly when nothing encloses it
            if ctx.scope_of(node) == node.name:
                top.add(node.name)
            else:
                nested.add(node.name)
    return top, nested


def _unwrap_partial(node: ast.expr, imports: ImportMap) -> ast.expr:
    """``functools.partial(fn, ...)`` -> ``fn`` (recursively)."""
    while isinstance(node, ast.Call):
        target = imports.resolve(qualname(node.func)) or ""
        if target.rsplit(".", 1)[-1] == "partial" and node.args:
            node = node.args[0]
        else:
            break
    return node


@code_rule("CON001", "lambda submitted as worker callable")
def con001_lambda_worker(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """Lambdas cannot be pickled, so a spawn-based pool dies with a
    ``PicklingError`` the moment the task ships.  Define a module-level
    function instead."""
    assert ctx.imports is not None
    for cb in _worker_callables(ctx):
        cb = _unwrap_partial(cb, ctx.imports)
        if isinstance(cb, ast.Lambda):
            yield (f"{ctx.where(cb)}: lambda passed as a worker "
                   f"callable; spawn workers need an importable "
                   f"module-level function",
                   ctx.obj_of(cb))


@code_rule("CON002", "closure submitted as worker callable")
def con002_closure_worker(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """A function defined inside another function captures its
    enclosing frame and is not importable by a spawned child.  Hoist
    the worker to module level and pass its inputs as task args."""
    assert ctx.imports is not None
    top, nested = _module_functions(ctx)
    for cb in _worker_callables(ctx):
        cb = _unwrap_partial(cb, ctx.imports)
        if isinstance(cb, ast.Name) and cb.id in nested \
                and cb.id not in top:
            yield (f"{ctx.where(cb)}: nested function {cb.id}() passed "
                   f"as a worker callable; hoist it to module level",
                   ctx.obj_of(cb))


@code_rule("CON003", "bound method submitted as worker callable")
def con003_bound_method(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """``obj.method`` drags the whole instance through pickle into
    every worker -- slow at best, unpicklable or stale at worst.  Pass
    a module-level function plus the data it needs."""
    assert ctx.imports is not None
    for cb in _worker_callables(ctx):
        cb = _unwrap_partial(cb, ctx.imports)
        if not isinstance(cb, ast.Attribute):
            continue
        base = qualname(cb.value)
        # ``module.fn`` where the base is an imported module is fine
        if base is not None and base.split(".")[0] in ctx.imports.aliases:
            continue
        yield (f"{ctx.where(cb)}: bound method "
               f"{base or '<expr>'}.{cb.attr} passed as a worker "
               f"callable; use a module-level function",
               ctx.obj_of(cb))


# ---------------------------------------------------------------------------
# CON004: module-global mutation in worker-executed code
# ---------------------------------------------------------------------------

#: method calls that mutate their receiver in place
_MUTATING_METHODS = frozenset({"append", "extend", "add", "update",
                               "insert", "pop", "remove", "clear",
                               "setdefault", "popitem"})


def _module_level_names(ctx: CodeContext) -> Set[str]:
    """Names assigned at module scope (candidate shared state)."""
    assert ctx.tree is not None
    names: Set[str] = set()
    for node in ctx.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for t in targets:
            for n in ast.walk(t):
                if isinstance(n, ast.Name):
                    names.add(n.id)
    return names


def _worker_entry_closure(ctx: CodeContext) -> Dict[str, ast.FunctionDef]:
    """Worker entry functions plus their transitive in-module callees."""
    assert ctx.tree is not None and ctx.imports is not None
    by_name: Dict[str, ast.FunctionDef] = {
        f.name: f for f in ast.walk(ctx.tree)
        if isinstance(f, ast.FunctionDef)
        and ctx.scope_of(f) == f.name}
    roots: List[str] = []
    for cb in _worker_callables(ctx):
        cb = _unwrap_partial(cb, ctx.imports)
        if isinstance(cb, ast.Name) and cb.id in by_name:
            roots.append(cb.id)
    closure: Dict[str, ast.FunctionDef] = {}
    while roots:
        name = roots.pop()
        if name in closure:
            continue
        fn = by_name[name]
        closure[name] = fn
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in by_name:
                roots.append(node.func.id)
    return closure


def _global_mutations(fn: ast.FunctionDef, shared: Set[str]
                      ) -> Iterator[Tuple[ast.AST, str]]:
    """Statements in ``fn`` that mutate a module-level name."""
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(fn):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id in declared_global \
                    and t.id in shared:
                yield node, t.id
            elif isinstance(t, (ast.Subscript, ast.Attribute)):
                base = t.value
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in shared:
                    yield node, base.id
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATING_METHODS \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in shared:
            yield node, node.func.value.id


@code_rule("CON004", "module global mutated in worker-executed code")
def con004_global_mutation(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """Code reachable from a worker entry point that writes a
    module-level name only updates the *child's* copy -- the parent
    never sees it, and two workers never see each other.  Ship state
    back through the task result instead (or waive when the global is
    deliberately worker-local)."""
    shared = _module_level_names(ctx)
    if not shared:
        return
    for name, fn in sorted(_worker_entry_closure(ctx).items()):
        # names only ever touched inside this closure are worker-local
        # by construction only if waived; report every site and let the
        # waiver carry the justification
        for node, gname in _global_mutations(fn, shared):
            yield (f"{ctx.where(node)}: worker-executed {name}() "
                   f"mutates module global {gname!r}; workers cannot "
                   f"share in-process state",
                   ctx.obj_of(node))


# ---------------------------------------------------------------------------
# CON005: fork-unsafe module-scope resources
# ---------------------------------------------------------------------------

#: call targets that produce resources unsafe to create at import time
_FORK_UNSAFE_CALLS = frozenset({
    "open",
    "threading.Lock", "threading.RLock", "threading.Event",
    "threading.Condition", "threading.Semaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
    "multiprocessing.Queue",
    "sqlite3.connect",
    "socket.socket",
})


@code_rule("CON005", "fork-unsafe resource created at module scope")
def con005_module_resource(ctx: CodeContext) -> Iterator[Tuple[str, str]]:
    """File handles, locks, sockets and DB connections created at
    import time are either duplicated (fork) or re-created with
    different identity (spawn) in every worker; either way the parent's
    and children's copies silently diverge.  Create them lazily inside
    the owning function."""
    assert ctx.tree is not None and ctx.imports is not None
    for node in ctx.tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None or not isinstance(value, ast.Call):
            continue
        target = ctx.imports.call_target(value)
        if target in _FORK_UNSAFE_CALLS:
            yield (f"{ctx.where(value)}: {target}() creates a "
                   f"fork-unsafe resource at module scope; construct "
                   f"it inside the function that uses it",
                   ctx.obj_of(value))
