"""Hierarchical span tracing for the design flow.

A *span* is one timed region of the flow -- a flow stage, a chip build
phase, an experiment run, a cache lookup -- with a name, wall-clock
start/duration, a parent (spans nest), and free-form attributes (block
name, bonding style, fold mode, cache hit/miss).  Spans are recorded by
a :class:`Tracer`; the module-level default tracer is what the flow
code writes to, so instrumentation needs no plumbing::

    from repro.obs import trace

    with trace.span("flow.place", block="ccx") as sp:
        ...                      # timed work
        sp.set(n_vias=4)         # attach results as attributes

Design rules:

* ``span()`` **always** times -- ``Span.duration_ms`` is valid even
  when the tracer is disabled, so callers (``stage_times_ms`` /
  ``phase_times_ms`` views) never need to special-case tracing.
* Only *recording* is gated by ``Tracer.enabled`` (and by the
  ``REPRO_TRACE=0`` environment variable for whole-process off).
* Start times are epoch seconds (``time.time``), durations come from
  ``time.perf_counter`` -- epoch starts let traces from different
  worker processes merge into one coherent timeline.
* Spans are identified by ``(worker, span_id)``: ids are unique within
  one process, the worker pid disambiguates across a pool.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: the innermost open span of the current execution context
_CURRENT: contextvars.ContextVar[Optional["Span"]] = \
    contextvars.ContextVar("repro_obs_current_span", default=None)


@dataclass
class Span:
    """One timed, named, attributed region of the flow."""

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    #: epoch seconds at open (merge-friendly across processes)
    start_s: float
    #: wall-clock length; written when the ``with`` block exits
    duration_ms: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: recording process pid; disambiguates ids across pool workers
    worker: int = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (one trace-file line, sans the type tag)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "attrs": dict(self.attrs),
            "worker": self.worker,
        }

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "Span":
        """Rebuild a span from its :meth:`to_dict` form."""
        return Span(name=d["name"], span_id=d["span_id"],
                    parent_id=d.get("parent_id"), depth=d.get("depth", 0),
                    start_s=d.get("start_s", 0.0),
                    duration_ms=d.get("duration_ms", 0.0),
                    attrs=dict(d.get("attrs", {})),
                    worker=d.get("worker", 0))


class Tracer:
    """Collects finished spans, hierarchically, in open order.

    Args:
        enabled: record spans (timing happens regardless).
        max_spans: recording cap; beyond it spans are timed but dropped
            (``dropped`` counts them) so unbounded sweeps cannot exhaust
            memory.
    """

    def __init__(self, enabled: bool = True,
                 max_spans: int = 200_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self.spans)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the current context and time its body."""
        parent = _CURRENT.get()
        sp = Span(name=name, span_id=next(self._ids),
                  parent_id=parent.span_id if parent is not None else None,
                  depth=parent.depth + 1 if parent is not None else 0,
                  start_s=time.time(), attrs=dict(attrs),
                  worker=os.getpid())
        record = self.enabled
        if record:
            if len(self.spans) < self.max_spans:
                self.spans.append(sp)
            else:
                self.dropped += 1
        token = _CURRENT.set(sp)
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.duration_ms = (time.perf_counter() - t0) * 1e3
            _CURRENT.reset(token)

    def drain(self) -> List[Span]:
        """Return the recorded spans and clear the buffer."""
        spans, self.spans = self.spans, []
        return spans

    def clear(self) -> None:
        """Drop every recorded span and the drop counter."""
        self.spans = []
        self.dropped = 0


#: the process-wide default tracer; ``REPRO_TRACE=0`` starts it disabled
_TRACER = Tracer(enabled=os.environ.get("REPRO_TRACE", "1") != "0")


def get_tracer() -> Tracer:
    """The current process-wide tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _TRACER
    old, _TRACER = _TRACER, tracer
    return old


def span(name: str, **attrs: Any):
    """Open a span on the process-wide tracer (the usual entry point)."""
    return _TRACER.span(name, **attrs)


def current_span() -> Optional[Span]:
    """The innermost open span of this execution context, if any."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Temporarily install ``tracer`` as the process-wide tracer."""
    old = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(old)


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily stop the process-wide tracer from recording."""
    tracer = get_tracer()
    was = tracer.enabled
    tracer.enabled = False
    try:
        yield
    finally:
        tracer.enabled = was
