"""Trace export: JSONL files, reading them back, and summarizing.

The trace file is line-delimited JSON so it streams, appends and greps
naturally.  Line types, one JSON object per line:

* ``{"type": "meta", ...}``    -- one header line: schema version plus
  free-form run attributes (parallel, scale, seed, ...);
* ``{"type": "span", ...}``    -- one finished :class:`~repro.obs.trace.Span`
  (name, span_id, parent_id, depth, start_s, duration_ms, attrs, worker);
* ``{"type": "metrics", ...}`` -- one metrics snapshot (counters /
  gauges / histograms), usually the aggregated run total.

Spans from several worker processes share one file: ``start_s`` is
epoch-based so the merged timeline is coherent, and ``(worker,
span_id)`` keys parent/child links per process.

:func:`summarize_spans` rolls a span list up per name -- count, total,
mean, max and *self* time (total minus direct children) -- which is the
``python -m repro trace summarize`` view used to find the next hot
stage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .trace import Span

#: bumped when the line schema changes incompatibly
TRACE_SCHEMA = 1

SpanLike = Union[Span, Dict[str, Any]]


def _span_dict(sp: SpanLike) -> Dict[str, Any]:
    return sp.to_dict() if isinstance(sp, Span) else dict(sp)


def trace_lines(spans: Iterable[SpanLike],
                metrics: Optional[Dict[str, Any]] = None,
                meta: Optional[Dict[str, Any]] = None) -> List[str]:
    """The trace file's lines (without newlines), meta first."""
    header: Dict[str, Any] = {"type": "meta", "schema": TRACE_SCHEMA}
    header.update(meta or {})
    lines = [json.dumps(header, sort_keys=True)]
    for sp in spans:
        d = _span_dict(sp)
        d["type"] = "span"
        lines.append(json.dumps(d, sort_keys=True))
    if metrics is not None:
        lines.append(json.dumps({"type": "metrics", **metrics},
                                sort_keys=True))
    return lines


def write_trace(path: Union[str, Path], spans: Iterable[SpanLike],
                metrics: Optional[Dict[str, Any]] = None,
                meta: Optional[Dict[str, Any]] = None) -> Path:
    """Write a JSONL trace file; returns the path written."""
    path = Path(path)
    path.write_text(
        "\n".join(trace_lines(spans, metrics=metrics, meta=meta)) + "\n")
    return path


@dataclass
class TraceFile:
    """A parsed trace: header, spans, and the metrics snapshot."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    metrics: Optional[Dict[str, Any]] = None


def read_trace(path: Union[str, Path]) -> TraceFile:
    """Parse a JSONL trace file written by :func:`write_trace`."""
    out = TraceFile()
    for raw in Path(path).read_text().splitlines():
        raw = raw.strip()
        if not raw:
            continue
        obj = json.loads(raw)
        kind = obj.pop("type", "span")
        if kind == "meta":
            out.meta = obj
        elif kind == "metrics":
            out.metrics = obj
        elif kind == "span":
            out.spans.append(Span.from_dict(obj))
    return out


@dataclass
class SpanSummary:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_ms: float
    self_ms: float
    max_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


def summarize_spans(spans: Sequence[SpanLike]) -> List[SpanSummary]:
    """Roll spans up per name, ordered by total self time, descending.

    ``self_ms`` is each span's duration minus its *direct* children --
    the time actually spent in that stage rather than delegated -- so
    the top of the summary is the hot path.
    """
    dicts = [_span_dict(sp) for sp in spans]
    child_ms: Dict[Tuple[int, Any], float] = {}
    for d in dicts:
        if d.get("parent_id") is not None:
            key = (d.get("worker", 0), d["parent_id"])
            child_ms[key] = child_ms.get(key, 0.0) + d["duration_ms"]
    agg: Dict[str, SpanSummary] = {}
    for d in dicts:
        own = d["duration_ms"] - child_ms.get(
            (d.get("worker", 0), d["span_id"]), 0.0)
        s = agg.get(d["name"])
        if s is None:
            agg[d["name"]] = SpanSummary(
                name=d["name"], count=1, total_ms=d["duration_ms"],
                self_ms=max(own, 0.0), max_ms=d["duration_ms"])
        else:
            s.count += 1
            s.total_ms += d["duration_ms"]
            s.self_ms += max(own, 0.0)
            s.max_ms = max(s.max_ms, d["duration_ms"])
    return sorted(agg.values(), key=lambda s: (-s.self_ms, s.name))


def format_summary(summaries: Sequence[SpanSummary]) -> str:
    """Render span summaries as an aligned text table."""
    lines = [f"{'span':24s} {'count':>7s} {'total':>10s} {'self':>10s} "
             f"{'mean':>9s} {'max':>9s}"]
    for s in summaries:
        lines.append(f"{s.name:24s} {s.count:7,d} {s.total_ms:9.0f}ms "
                     f"{s.self_ms:9.0f}ms {s.mean_ms:8.0f}ms "
                     f"{s.max_ms:8.0f}ms")
    return "\n".join(lines)
