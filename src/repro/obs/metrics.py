"""Flow metrics: counters, gauges and histograms with merge semantics.

The registry captures the *work* the flow does -- cache hits and
misses, optimizer moves, buffer insertions, TSV/F2F via counts, lint
findings -- as named instruments:

* :class:`Counter` -- monotone totals (``cache.misses``);
* :class:`Gauge` -- last-value-wins readings (``bench.parallel``);
* :class:`Histogram` -- count/sum/min/max of observations
  (``opt.buffers_per_block``).

Everything is built around plain-dict *snapshots* so values cross
process boundaries cheaply:

* ``snapshot()`` freezes the registry;
* ``diff(base)`` subtracts an earlier snapshot -- a pool worker
  snapshots before a task, diffs after it, and ships only the task's
  own contribution (cumulative worker state never double-counts);
* ``merge_snapshots([...])`` folds many deltas into one total, which is
  how ``--parallel N`` runs aggregate to correct global numbers.

The module-level default registry (:func:`metrics`) is what the flow
code increments; tests swap it with :func:`use_registry`.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List

Snapshot = Dict[str, Dict[str, Any]]


class Counter:
    """A monotone counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """A last-value-wins reading."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """Count/sum/min/max summary of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": self.count, "sum": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0}


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on demand)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on demand)."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on demand)."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def reset(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A plain-dict freeze of every instrument's current value."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.summary()
                           for k, h in self._histograms.items()},
        }

    def diff(self, base: Snapshot) -> Snapshot:
        """This registry's change since ``base`` (an earlier snapshot).

        Counters and histogram count/sum subtract; histogram min/max and
        gauges keep their current values (min/max of the delta window is
        unrecoverable, current is the honest approximation).
        """
        now = self.snapshot()
        out: Snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
        base_c = base.get("counters", {})
        for k, v in now["counters"].items():
            d = v - base_c.get(k, 0.0)
            if d:
                out["counters"][k] = d
        out["gauges"] = dict(now["gauges"])
        base_h = base.get("histograms", {})
        for k, h in now["histograms"].items():
            b = base_h.get(k, {"count": 0, "sum": 0.0})
            if h["count"] - b["count"]:
                out["histograms"][k] = {
                    "count": h["count"] - b["count"],
                    "sum": h["sum"] - b["sum"],
                    "min": h["min"], "max": h["max"],
                }
        return out

    def merge_snapshot(self, snap: Snapshot) -> None:
        """Fold a snapshot (or delta) into this registry's instruments."""
        for k, v in snap.get("counters", {}).items():
            self.counter(k).inc(v)
        for k, v in snap.get("gauges", {}).items():
            self.gauge(k).set(v)
        for k, s in snap.get("histograms", {}).items():
            h = self.histogram(k)
            h.count += int(s.get("count", 0))
            h.total += s.get("sum", 0.0)
            if s.get("count", 0):
                h.min = min(h.min, s.get("min", math.inf))
                h.max = max(h.max, s.get("max", -math.inf))


def merge_snapshots(snaps: Iterable[Snapshot]) -> Snapshot:
    """Fold several snapshots/deltas into one combined snapshot."""
    acc = MetricsRegistry()
    for s in snaps:
        acc.merge_snapshot(s)
    return acc.snapshot()


def format_snapshot(snap: Snapshot) -> str:
    """Render a snapshot as an aligned, name-sorted text table."""
    lines: List[str] = []
    counters = snap.get("counters", {})
    if counters:
        lines.append(f"{'counter':36s} {'value':>12s}")
        for k in sorted(counters):
            lines.append(f"{k:36s} {counters[k]:12,.0f}")
    hists = snap.get("histograms", {})
    if hists:
        if lines:
            lines.append("")
        lines.append(f"{'histogram':36s} {'count':>8s} {'mean':>10s} "
                      f"{'min':>10s} {'max':>10s}")
        for k in sorted(hists):
            h = hists[k]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(f"{k:36s} {h['count']:8,d} {mean:10.1f} "
                          f"{h['min']:10.1f} {h['max']:10.1f}")
    gauges = snap.get("gauges", {})
    if gauges:
        if lines:
            lines.append("")
        lines.append(f"{'gauge':36s} {'value':>12s}")
        for k in sorted(gauges):
            lines.append(f"{k:36s} {gauges[k]:12,.2f}")
    return "\n".join(lines)


#: the process-wide default registry the flow code increments
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The current process-wide metrics registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _REGISTRY
    old, _REGISTRY = _REGISTRY, registry
    return old


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the process-wide registry."""
    old = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(old)
