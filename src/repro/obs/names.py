"""Generated registry of span and metric names.  DO NOT EDIT.

Every span/counter/gauge/histogram name emitted anywhere under
``src/repro`` -- regenerate with ``python -m repro analyze
--write-names`` after intentionally adding or renaming one, and CI
runs ``--check-names`` to keep this file fresh.  Import the constants
instead of repeating the strings:

    from repro.obs.names import SPAN_FLOW_PLACE, CTR_CACHE_MISSES

``*_PREFIXES`` lists the registered dynamic-name families: an f-string
name is legal when its literal prefix falls under one of them.
"""


SPAN_BENCH = "bench"
SPAN_CACHE_LOOKUP = "cache.lookup"
SPAN_CHIP = "chip"
SPAN_CHIP_AGGREGATE = "chip.aggregate"
SPAN_CHIP_ASSEMBLE = "chip.assemble"
SPAN_CHIP_BLOCKS = "chip.blocks"
SPAN_CHIP_BUDGET = "chip.budget"
SPAN_ECO_CLOSE = "eco.close"
SPAN_ECO_ROUND = "eco.round"
SPAN_EXPERIMENT = "experiment"
SPAN_FAULT_INJECTED = "fault.injected"
SPAN_FLOW = "flow"
SPAN_FLOW_DETAILED_ROUTE = "flow.detailed_route"
SPAN_FLOW_ECO = "flow.eco"
SPAN_FLOW_GENERATE = "flow.generate"
SPAN_FLOW_OPTIMIZE = "flow.optimize"
SPAN_FLOW_PLACE = "flow.place"
SPAN_FLOW_POWER = "flow.power"
SPAN_OPT_POWER_STAGE = "opt.power_stage"
SPAN_OPT_TIMING_STAGE = "opt.timing_stage"
SPAN_PLACE_BISTRATAL = "place.bistratal"
SPAN_PLACE_GLOBAL = "place.global"
SPAN_PLACE_LEGALIZE = "place.legalize"
SPAN_SERVICE_POINT = "service.point"
SPAN_SERVICE_REQUEST = "service.request"
SPAN_SERVICE_SHARD_DEATH = "service.shard_death"
SPAN_TASK_CRASH = "task.crash"
SPAN_TASK_GAVE_UP = "task.gave_up"
SPAN_TASK_RETRY = "task.retry"
SPAN_TASK_TIMEOUT = "task.timeout"

SPAN_NAMES = (
    SPAN_BENCH,
    SPAN_CACHE_LOOKUP,
    SPAN_CHIP,
    SPAN_CHIP_AGGREGATE,
    SPAN_CHIP_ASSEMBLE,
    SPAN_CHIP_BLOCKS,
    SPAN_CHIP_BUDGET,
    SPAN_ECO_CLOSE,
    SPAN_ECO_ROUND,
    SPAN_EXPERIMENT,
    SPAN_FAULT_INJECTED,
    SPAN_FLOW,
    SPAN_FLOW_DETAILED_ROUTE,
    SPAN_FLOW_ECO,
    SPAN_FLOW_GENERATE,
    SPAN_FLOW_OPTIMIZE,
    SPAN_FLOW_PLACE,
    SPAN_FLOW_POWER,
    SPAN_OPT_POWER_STAGE,
    SPAN_OPT_TIMING_STAGE,
    SPAN_PLACE_BISTRATAL,
    SPAN_PLACE_GLOBAL,
    SPAN_PLACE_LEGALIZE,
    SPAN_SERVICE_POINT,
    SPAN_SERVICE_REQUEST,
    SPAN_SERVICE_SHARD_DEATH,
    SPAN_TASK_CRASH,
    SPAN_TASK_GAVE_UP,
    SPAN_TASK_RETRY,
    SPAN_TASK_TIMEOUT,
)
SPAN_PREFIXES = ()

CTR_ANALYZE_RUNS = "analyze.runs"
CTR_CACHE_CORRUPT_DROPS = "cache.corrupt_drops"
CTR_CACHE_DISK_HITS = "cache.disk_hits"
CTR_CACHE_MEMORY_HITS = "cache.memory_hits"
CTR_CACHE_MISSES = "cache.misses"
CTR_CACHE_STORES = "cache.stores"
CTR_CHIP_3D_CONNECTIONS = "chip.3d_connections"
CTR_CHIP_BUILDS = "chip.builds"
CTR_CTS_SUBTREES_BUILT = "cts.subtrees_built"
CTR_CTS_SUBTREES_REUSED = "cts.subtrees_reused"
CTR_ECO_DERIVED_DESIGNS = "eco.derived_designs"
CTR_ECO_MOVES_APPLIED = "eco.moves_applied"
CTR_ECO_ROUNDS = "eco.rounds"
CTR_ECO_SESSIONS = "eco.sessions"
CTR_FAULTS_INJECTED = "faults.injected"
CTR_FLOW_VIAS_F2F = "flow.vias.f2f"
CTR_FLOW_VIAS_TSV = "flow.vias.tsv"
CTR_LINT_RUNS = "lint.runs"
CTR_OPT_BUFFERS_INSERTED = "opt.buffers_inserted"
CTR_OPT_CELLS_DOWNSIZED = "opt.cells_downsized"
CTR_OPT_CELLS_UPSIZED = "opt.cells_upsized"
CTR_OPT_FULL_REROUTES = "opt.full_reroutes"
CTR_OPT_HVT_SWAPS = "opt.hvt_swaps"
CTR_OPT_ROUNDS = "opt.rounds"
CTR_PLACE_CELLS_LEGALIZED = "place.cells_legalized"
CTR_PLACE_QP_SOLVES = "place.qp_solves"
CTR_PLACE_SPREAD_CALLS = "place.spread_calls"
CTR_ROUTE_NETS_EXTRACTED_BATCH = "route.nets_extracted_batch"
CTR_ROUTE_NETS_REEXTRACTED = "route.nets_reextracted"
CTR_ROUTE_NETS_REROUTED = "route.nets_rerouted"
CTR_SERVICE_CANCELLED = "service.cancelled"
CTR_SERVICE_COALESCED = "service.coalesced"
CTR_SERVICE_COMPUTED = "service.computed"
CTR_SERVICE_DISCONNECTS = "service.disconnects"
CTR_SERVICE_DROPPED = "service.dropped"
CTR_SERVICE_FAILED = "service.failed"
CTR_SERVICE_POINTS = "service.points"
CTR_SERVICE_REQUESTS = "service.requests"
CTR_SERVICE_RESULT_HITS = "service.result_hits"
CTR_SERVICE_SHARD_DEATHS = "service.shard_deaths"
CTR_SERVICE_STEALS = "service.steals"
CTR_STA_FULL_REBUILDS = "sta.full_rebuilds"
CTR_STA_INCREMENTAL_NODES = "sta.incremental_nodes"
CTR_STA_LEVELS = "sta.levels"
CTR_STA_SCALAR_FALLBACKS = "sta.scalar_fallbacks"
CTR_STA_TOPOLOGY_PATCHES = "sta.topology_patches"
CTR_STA_VECTOR_PASSES = "sta.vector_passes"
CTR_TASKS_CRASHED = "tasks.crashed"
CTR_TASKS_FAILED = "tasks.failed"
CTR_TASKS_RETRIED = "tasks.retried"
CTR_TASKS_TIMED_OUT = "tasks.timed_out"

CTR_NAMES = (
    CTR_ANALYZE_RUNS,
    CTR_CACHE_CORRUPT_DROPS,
    CTR_CACHE_DISK_HITS,
    CTR_CACHE_MEMORY_HITS,
    CTR_CACHE_MISSES,
    CTR_CACHE_STORES,
    CTR_CHIP_3D_CONNECTIONS,
    CTR_CHIP_BUILDS,
    CTR_CTS_SUBTREES_BUILT,
    CTR_CTS_SUBTREES_REUSED,
    CTR_ECO_DERIVED_DESIGNS,
    CTR_ECO_MOVES_APPLIED,
    CTR_ECO_ROUNDS,
    CTR_ECO_SESSIONS,
    CTR_FAULTS_INJECTED,
    CTR_FLOW_VIAS_F2F,
    CTR_FLOW_VIAS_TSV,
    CTR_LINT_RUNS,
    CTR_OPT_BUFFERS_INSERTED,
    CTR_OPT_CELLS_DOWNSIZED,
    CTR_OPT_CELLS_UPSIZED,
    CTR_OPT_FULL_REROUTES,
    CTR_OPT_HVT_SWAPS,
    CTR_OPT_ROUNDS,
    CTR_PLACE_CELLS_LEGALIZED,
    CTR_PLACE_QP_SOLVES,
    CTR_PLACE_SPREAD_CALLS,
    CTR_ROUTE_NETS_EXTRACTED_BATCH,
    CTR_ROUTE_NETS_REEXTRACTED,
    CTR_ROUTE_NETS_REROUTED,
    CTR_SERVICE_CANCELLED,
    CTR_SERVICE_COALESCED,
    CTR_SERVICE_COMPUTED,
    CTR_SERVICE_DISCONNECTS,
    CTR_SERVICE_DROPPED,
    CTR_SERVICE_FAILED,
    CTR_SERVICE_POINTS,
    CTR_SERVICE_REQUESTS,
    CTR_SERVICE_RESULT_HITS,
    CTR_SERVICE_SHARD_DEATHS,
    CTR_SERVICE_STEALS,
    CTR_STA_FULL_REBUILDS,
    CTR_STA_INCREMENTAL_NODES,
    CTR_STA_LEVELS,
    CTR_STA_SCALAR_FALLBACKS,
    CTR_STA_TOPOLOGY_PATCHES,
    CTR_STA_VECTOR_PASSES,
    CTR_TASKS_CRASHED,
    CTR_TASKS_FAILED,
    CTR_TASKS_RETRIED,
    CTR_TASKS_TIMED_OUT,
)
CTR_PREFIXES = (
    "analyze.findings.",
    "faults.injected.",
    "lint.findings.",
)

GAUGE_NAMES = ()

HIST_OPT_BUFFERS_PER_BLOCK = "opt.buffers_per_block"

HIST_NAMES = (
    HIST_OPT_BUFFERS_PER_BLOCK,
)
