"""Observability for the design flow: spans, metrics, trace export.

Three pieces, all dependency-free and safe to import from anywhere in
the package (``repro.obs`` imports nothing from the rest of ``repro``):

* :mod:`repro.obs.trace` -- hierarchical span tracing.  The flow wraps
  its stages (``flow.place``, ``chip.blocks``, ``experiment`` ...) in
  ``trace.span()`` context managers; the legacy ``stage_times_ms`` /
  ``phase_times_ms`` dicts are thin views over these spans.
* :mod:`repro.obs.metrics` -- counters/gauges/histograms for the work
  the flow does (cache hit rates, optimizer moves, via counts, lint
  findings), with snapshot/diff/merge semantics so parallel workers
  aggregate exactly.
* :mod:`repro.obs.export` -- JSONL trace files, reading them back, and
  the per-span-name hot-path summary behind
  ``python -m repro trace summarize``.

See ``docs/observability.md`` for the span/metric taxonomy and the
trace file schema.
"""

from . import trace
from .export import (SpanSummary, TraceFile, format_summary, read_trace,
                     summarize_spans, trace_lines, write_trace)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      format_snapshot, merge_snapshots, metrics,
                      set_registry, use_registry)
from .trace import (Span, Tracer, current_span, disabled, get_tracer,
                    set_tracer, span, use_tracer)

__all__ = [
    "trace", "Span", "Tracer", "span", "current_span", "get_tracer",
    "set_tracer", "use_tracer", "disabled",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "metrics",
    "set_registry", "use_registry", "merge_snapshots", "format_snapshot",
    "TraceFile", "SpanSummary", "read_trace", "write_trace",
    "trace_lines", "summarize_spans", "format_summary",
]
