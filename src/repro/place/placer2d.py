"""Mixed-size 2D block placement.

The block-level flow: compute a core outline from total area and target
utilization, place hard macros along the outline edges (cache-bank style),
carve macro holes into the density grid (paper Section 4.2), distribute
I/O ports over the boundary, then run quadratic global placement with
bound-to-bound weights followed by whitespace-aware spreading, iterated
with anchor feedback, and finally snap cells to rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist.core import Netlist
from ..obs import trace
from ..tech.cells import CELL_HEIGHT_UM
from . import scalar
from .grid import DensityGrid, Rect
from .quadratic import QPNet, QuadraticPlacer
from .spreading import spread


@dataclass
class PlacementConfig:
    """Knobs for the 2D placer."""

    utilization: float = 0.70
    aspect_ratio: float = 1.0
    qp_rounds: int = 2
    iterations: int = 2
    anchor_strength: float = 0.0025
    seed: int = 0
    place_ports: bool = True
    #: extra area (um^2) reserved in the outline, e.g. for TSV sites
    reserved_area_um2: float = 0.0
    #: cap on QP net weight for very high fanout nets
    max_qp_degree: int = 64
    #: carve macro areas out of the supply map (the paper's Section 4.2
    #: hole model); False reproduces the halo-prone baseline placers
    macro_holes: bool = True
    #: run the Tetris legalizer for a fully overlap-free placement
    #: (needed for DEF export; the metric pipeline tolerates the
    #: approximate row snap)
    full_legalize: bool = False


@dataclass
class PlacementResult:
    """Outcome of a block placement."""

    outline: Rect
    grid: DensityGrid
    hpwl_um: float
    overflow: float

    @property
    def footprint_um2(self) -> float:
        return self.outline.area


def compute_outline(netlist: Netlist, config: PlacementConfig) -> Rect:
    """Core outline sized for cells at utilization plus macros + reserve."""
    cell_area = netlist.total_cell_area()
    macro_area = netlist.total_macro_area()
    area = (cell_area / config.utilization + macro_area * 1.08 +
            config.reserved_area_um2)
    width = math.sqrt(area * config.aspect_ratio)
    height = area / width
    return Rect(0.0, 0.0, width, height)


def place_macros(netlist: Netlist, outline: Rect) -> List[Rect]:
    """Place all of a netlist's macros along the outline edges."""
    return place_macro_list(netlist.macros, outline)


def place_macro_list(insts, outline: Rect) -> List[Rect]:
    """Stack macros in columns along the left and right edges.

    Mirrors the usual cache-bank floorplan (and the paper's layouts where
    memory macros line the block edges with routing channels between
    them).  Returns the macro obstruction rectangles.
    """
    macros = sorted(insts, key=lambda m: -m.area_um2)
    rects: List[Rect] = []
    if not macros:
        return rects
    gap = 2.0  # routing channel between macros, um
    sides = [(outline.x0, 1.0), (outline.x1, -1.0)]  # (edge x, direction)
    side_idx = 0
    cursor_y = {0: outline.y0 + gap, 1: outline.y0 + gap}
    col_off = {0: 0.0, 1: 0.0}
    col_width = {0: 0.0, 1: 0.0}
    for inst in macros:
        w, h = inst.master.width_um, inst.master.height_um
        placed = False
        for _attempt in range(4):
            s = side_idx % 2
            if cursor_y[s] + h <= outline.y1:
                edge_x, direction = sides[s]
                x0 = edge_x + direction * col_off[s]
                if direction > 0:
                    rect = Rect(x0, cursor_y[s], x0 + w, cursor_y[s] + h)
                else:
                    rect = Rect(x0 - w, cursor_y[s], x0, cursor_y[s] + h)
                inst.x = 0.5 * (rect.x0 + rect.x1)
                inst.y = 0.5 * (rect.y0 + rect.y1)
                inst.fixed = True
                rects.append(rect)
                cursor_y[s] += h + gap
                col_width[s] = max(col_width[s], w)
                placed = True
                side_idx += 1
                break
            # column full: move inward and restart that side's column
            cursor_y[s] = outline.y0 + gap
            col_off[s] += col_width[s] + gap
            col_width[s] = 0.0
            side_idx += 1
        if not placed:
            # fall back to center placement; the grid hole still protects it
            inst.x = 0.5 * (outline.x0 + outline.x1)
            inst.y = 0.5 * (outline.y0 + outline.y1)
            inst.fixed = True
            rects.append(Rect(inst.x - w / 2, inst.y - h / 2,
                              inst.x + w / 2, inst.y + h / 2))
    return rects


def place_ports(netlist: Netlist, outline: Rect) -> None:
    """Distribute ports over the boundary: inputs left/top, outputs
    right/bottom, preserving name order (which follows cluster order, so
    port locality matches logic locality)."""
    ins = sorted((p for p in netlist.ports.values() if p.direction == "in"),
                 key=lambda p: p.name)
    outs = sorted((p for p in netlist.ports.values() if p.direction == "out"),
                  key=lambda p: p.name)

    def _spread(ports, edges) -> None:
        if not ports:
            return
        per_edge = int(math.ceil(len(ports) / len(edges)))
        k = 0
        for edge in edges:
            chunk = ports[k:k + per_edge]
            k += per_edge
            for t, port in enumerate(chunk):
                frac = (t + 0.5) / max(len(chunk), 1)
                if edge == "left":
                    port.x, port.y = outline.x0, outline.y0 + frac * outline.height
                elif edge == "right":
                    port.x, port.y = outline.x1, outline.y0 + frac * outline.height
                elif edge == "top":
                    port.x, port.y = outline.x0 + frac * outline.width, outline.y1
                else:
                    port.x, port.y = outline.x0 + frac * outline.width, outline.y0

    _spread(ins, ["left", "top"])
    _spread(outs, ["right", "bottom"])


def _build_qp_nets(netlist: Netlist, index_of: Dict[int, int],
                   config: PlacementConfig) -> List[QPNet]:
    nets: List[QPNet] = []
    for net in netlist.nets.values():
        if net.is_clock:
            continue  # clock topology is CTS's job, not placement's
        movable: List[int] = []
        fixed: List[Tuple[float, float]] = []
        seen = set()
        for ref in net.endpoints():
            if ref.is_port:
                p = netlist.ports[ref.port]
                fixed.append((p.x, p.y))
            else:
                inst = netlist.instances[ref.inst]
                if inst.fixed:
                    fixed.append((inst.x, inst.y))
                elif inst.id not in seen:
                    seen.add(inst.id)
                    movable.append(index_of[inst.id])
        degree = len(movable) + len(fixed)
        if degree < 2 or not movable:
            continue
        weight = 1.0 if degree <= config.max_qp_degree else \
            config.max_qp_degree / degree
        nets.append(QPNet(movable=movable, fixed=fixed, weight=weight))
    return nets


def hpwl(netlist: Netlist) -> float:
    """Total half-perimeter wirelength over all non-clock nets (um)."""
    total = 0.0
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        xs: List[float] = []
        ys: List[float] = []
        for ref in net.endpoints():
            x, y, _ = netlist.endpoint_position(ref)
            xs.append(x)
            ys.append(y)
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def run_global_place(netlist: Netlist, movable: List, outline: Rect,
                     config: PlacementConfig, rng: np.random.Generator,
                     spread_fn) -> Tuple[np.ndarray, np.ndarray]:
    """Shared QP + spreading loop for the 2D and 3D placers.

    ``spread_fn(xs, ys, areas)`` must return density-legal coordinates;
    the 2D placer spreads into one grid, the 3D placer per tier.
    """
    n = len(movable)
    index_of = {inst.id: k for k, inst in enumerate(movable)}
    qp_nets = _build_qp_nets(netlist, index_of, config)
    placer = QuadraticPlacer(n, qp_nets)
    cx = 0.5 * (outline.x0 + outline.x1)
    cy = 0.5 * (outline.y0 + outline.y1)
    xs = cx + rng.normal(0, 0.01 * outline.width, n)
    ys = cy + rng.normal(0, 0.01 * outline.height, n)
    areas = np.array([inst.area_um2 for inst in movable])

    with trace.span("place.global", cells=n, nets=len(qp_nets)):
        xs, ys = placer.solve(xs, ys, rounds=config.qp_rounds)
        anchor = config.anchor_strength
        for it in range(config.iterations):
            xs = np.clip(xs, outline.x0, outline.x1)
            ys = np.clip(ys, outline.y0, outline.y1)
            sx, sy = spread_fn(xs, ys, areas)
            if it == config.iterations - 1:
                xs, ys = sx, sy
                break
            xs, ys = placer.solve(sx, sy, anchors=(sx, sy, anchor),
                                  rounds=1)
            anchor *= 3.0
    return xs, ys


def snap_to_rows(movable: List, xs: np.ndarray, ys: np.ndarray,
                 outline: Rect) -> None:
    """Assign final coordinates, snapping y to standard-cell rows."""
    if scalar.use_scalar():
        scalar.snap_to_rows(movable, xs, ys, outline)
        return
    row0 = outline.y0 + CELL_HEIGHT_UM / 2
    # np.round and the scalar path's round() share half-to-even
    # semantics, so both snaps pick identical rows
    fx = np.clip(xs, outline.x0, outline.x1)
    rows = np.round((ys - row0) / CELL_HEIGHT_UM)
    fy = np.clip(row0 + rows * CELL_HEIGHT_UM, outline.y0, outline.y1)
    for k, inst in enumerate(movable):
        inst.x = float(fx[k])
        inst.y = float(fy[k])


def place_block_2d(netlist: Netlist, config: PlacementConfig,
                   outline: Optional[Rect] = None) -> PlacementResult:
    """Run the full mixed-size 2D placement on a block netlist.

    Mutates instance/port coordinates in place and returns the result
    summary.  When ``outline`` is supplied (e.g. by the 3D flow, which
    places both tiers in one shared outline), it is used as-is.
    """
    rng = np.random.default_rng(config.seed)
    if outline is None:
        outline = compute_outline(netlist, config)
    macro_rects = place_macros(netlist, outline)
    if config.place_ports:
        place_ports(netlist, outline)

    movable = [i for i in netlist.instances.values()
               if not i.is_macro and not i.fixed]
    n = len(movable)
    grid_bins = int(np.clip(n // 3, 64, 4096))
    grid = DensityGrid(outline, target_bins=grid_bins,
                       utilization=min(1.0, config.utilization + 0.15))
    if config.macro_holes:
        for rect in macro_rects:
            grid.add_obstruction(rect)

    if n == 0:
        return PlacementResult(outline, grid, hpwl(netlist), 0.0)

    def spread_fn(xs, ys, areas):
        return spread(grid, xs, ys, areas, rng)

    xs, ys = run_global_place(netlist, movable, outline, config, rng,
                              spread_fn)
    snap_to_rows(movable, xs, ys, outline)
    if config.full_legalize:
        from .legalize import legalize_cells
        legalize_cells(movable, outline, macro_rects)
    areas = np.array([inst.area_um2 for inst in movable])
    overflow = grid.overflow(xs, ys, areas)
    return PlacementResult(outline, grid, hpwl(netlist), overflow)
