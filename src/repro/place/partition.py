"""Fiduccia-Mattheyses bipartitioning for die assignment.

Block folding partitions one block's instances across the two tiers.  The
paper uses either *natural* partitions (PCX/CPX in the CCX, sub-banks in
the L2 data bank, FUB groups in the SPC) or min-cut partitions balancing
die area; this module provides the min-cut engine plus helpers to seed it
from region metadata, with per-instance locking for pre-assigned objects
(e.g. macros pinned to a tier).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from ..netlist.core import Netlist


@dataclass
class PartitionResult:
    """Outcome of bipartitioning: instance id -> die (0/1)."""

    assignment: Dict[int, int]
    cut_nets: int
    area: Dict[int, float]

    @property
    def balance(self) -> float:
        """Larger-side area fraction (0.5 = perfect balance)."""
        total = self.area[0] + self.area[1]
        if total == 0:
            return 0.5
        return max(self.area[0], self.area[1]) / total


def count_cut(netlist: Netlist, assignment: Dict[int, int]) -> int:
    """Number of non-clock nets with instances on both dies."""
    cut = 0
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        sides = {assignment[r.inst] for r in net.endpoints()
                 if not r.is_port and r.inst in assignment}
        if len(sides) > 1:
            cut += 1
    return cut


def _areas(netlist: Netlist, assignment: Dict[int, int]) -> Dict[int, float]:
    area = {0: 0.0, 1: 0.0}
    for iid, side in assignment.items():
        area[side] += netlist.instances[iid].area_um2
    return area


def fm_bipartition(netlist: Netlist,
                   initial: Optional[Dict[int, int]] = None,
                   locked: Optional[Set[int]] = None,
                   balance_tol: float = 0.10,
                   max_passes: int = 6,
                   seed: int = 0) -> PartitionResult:
    """Min-cut bipartition with area balance.

    Args:
        netlist: the block netlist (ports are ignored for cut counting).
        initial: optional starting assignment; unlisted instances are
            assigned round-robin by locality cluster, which is already a
            decent split for hierarchically local netlists.
        locked: instance ids that must keep their initial side.
        balance_tol: each side must hold within ``0.5 +/- tol`` of area.
        max_passes: FM pass limit.
        seed: tie-break randomness.

    Returns:
        The refined partition.
    """
    rng = np.random.default_rng(seed)
    insts = list(netlist.instances.values())
    assignment: Dict[int, int] = {}
    if initial:
        assignment.update(initial)
    # default: split the cluster space in half (locality-preserving)
    clusters = sorted({i.cluster for i in insts})
    half = set(clusters[: len(clusters) // 2])
    for inst in insts:
        if inst.id not in assignment:
            assignment[inst.id] = 0 if inst.cluster in half else 1
    locked = set(locked or ())

    total_area = sum(i.area_um2 for i in insts)
    lo = total_area * (0.5 - balance_tol)
    hi = total_area * (0.5 + balance_tol)

    # net -> movable instance ids (dedup); instance -> net ids
    net_members: Dict[int, List[int]] = {}
    inst_nets: Dict[int, List[int]] = defaultdict(list)
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        members = sorted({r.inst for r in net.endpoints() if not r.is_port})
        if len(members) < 2:
            continue
        net_members[net.id] = members
        for m in members:
            inst_nets[m].append(net.id)

    def side_counts(net_id: int) -> List[int]:
        counts = [0, 0]
        for m in net_members[net_id]:
            counts[assignment[m]] += 1
        return counts

    area = _areas(netlist, assignment)

    for _ in range(max_passes):
        counts = {nid: side_counts(nid) for nid in net_members}
        gains: Dict[int, int] = {}
        for inst in insts:
            if inst.id in locked:
                continue
            g = 0
            s = assignment[inst.id]
            for nid in inst_nets[inst.id]:
                c = counts[nid]
                if c[s] == 1 and c[1 - s] > 0:
                    g += 1  # moving uncuts the net
                elif c[1 - s] == 0:
                    g -= 1  # moving cuts the net
            gains[inst.id] = g

        moved: List[int] = []
        gain_trace: List[int] = []
        locked_pass: Set[int] = set(locked)
        cum = 0
        order_jitter = {iid: rng.random() for iid in gains}

        for _step in range(len(gains)):
            best_id, best_gain = None, None
            for iid, g in gains.items():
                if iid in locked_pass:
                    continue
                s = assignment[iid]
                a = netlist.instances[iid].area_um2
                if not (lo <= area[s] - a and area[1 - s] + a <= hi):
                    continue
                key = (g, order_jitter[iid])
                if best_gain is None or key > best_gain:
                    best_gain, best_id = key, iid
            if best_id is None:
                break
            g = gains[best_id]
            s = assignment[best_id]
            a = netlist.instances[best_id].area_um2
            assignment[best_id] = 1 - s
            area[s] -= a
            area[1 - s] += a
            locked_pass.add(best_id)
            cum += g
            moved.append(best_id)
            gain_trace.append(cum)
            # update gains of neighbors
            touched = set()
            for nid in inst_nets[best_id]:
                c = counts[nid]
                c[s] -= 1
                c[1 - s] += 1
                touched.update(net_members[nid])
            for t in touched:
                if t in locked_pass or t in locked or t not in gains:
                    continue
                g2 = 0
                st = assignment[t]
                for nid in inst_nets[t]:
                    c = counts[nid]
                    if c[st] == 1 and c[1 - st] > 0:
                        g2 += 1
                    elif c[1 - st] == 0:
                        g2 -= 1
                gains[t] = g2
            if len(moved) > 2 * len(gains):  # pragma: no cover - safety
                break

        if not gain_trace or max(gain_trace) <= 0:
            # revert the whole pass
            for iid in moved:
                s = assignment[iid]
                a = netlist.instances[iid].area_um2
                assignment[iid] = 1 - s
                area[s] -= a
                area[1 - s] += a
            break
        # keep the best prefix
        best_k = int(np.argmax(gain_trace)) + 1
        for iid in moved[best_k:]:
            s = assignment[iid]
            a = netlist.instances[iid].area_um2
            assignment[iid] = 1 - s
            area[s] -= a
            area[1 - s] += a

    return PartitionResult(assignment=assignment,
                           cut_nets=count_cut(netlist, assignment),
                           area=_areas(netlist, assignment))


def balanced_split(scores: np.ndarray, areas: np.ndarray,
                   pre_area: tuple = (0.0, 0.0)) -> np.ndarray:
    """Threshold continuous scores into two area-balanced sides.

    The analytical (bistratal) die assignment solves a continuous
    z in [0, 1] per movable cell and needs the discretization step: sort
    by score (stable, so equal scores keep input order), then cut the
    prefix whose side-0 area lands closest to half the total --
    including ``pre_area``, the area already pinned to each side (macros
    and other fixed objects).  Ties pick the smallest prefix.

    Args:
        scores: per-cell continuous side score (low -> side 0).
        areas: per-cell areas.
        pre_area: (side0, side1) area already committed.

    Returns:
        int array of 0/1 side assignments aligned with ``scores``.
    """
    n = len(scores)
    side = np.ones(n, dtype=np.int64)
    if n == 0:
        return side
    order = np.argsort(scores, kind="stable")
    cum = np.cumsum(areas[order])
    total = float(cum[-1]) + pre_area[0] + pre_area[1]
    # area0[k] = side-0 area when the k lowest-score cells go to side 0
    area0 = pre_area[0] + np.concatenate([[0.0], cum])
    k = int(np.argmin(np.abs(area0 - total / 2)))
    side[order[:k]] = 0
    return side


def partition_by_clusters(netlist: Netlist, die1_clusters: Iterable[int]
                          ) -> Dict[int, int]:
    """Assignment placing instances of the given clusters on die 1."""
    die1 = set(die1_clusters)
    return {i.id: (1 if i.cluster in die1 else 0)
            for i in netlist.instances.values()}
