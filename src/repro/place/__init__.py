"""Placement: density grid, quadratic engine, 2D/3D mixed-size placers."""

from .grid import DensityGrid, Rect
from .legalize import (LegalizeResult, check_overlaps, legalize_cells,
                       overlapping_pairs)
from .regions import region_bisect
from .partition import (PartitionResult, balanced_split, count_cut,
                        fm_bipartition, partition_by_clusters)
from .placer2d import (PlacementConfig, PlacementResult, compute_outline,
                       hpwl, place_block_2d, place_macros, place_ports)
from .placer3d import (Fold3DResult, ViaSite, clock_crossings,
                       crossing_nets, fold_place_3d)
from .quadratic import QPNet, QuadraticPlacer, b2b_weights

__all__ = [
    "DensityGrid", "Rect", "LegalizeResult", "check_overlaps",
    "legalize_cells", "overlapping_pairs", "region_bisect",
    "PartitionResult", "balanced_split", "count_cut", "fm_bipartition",
    "partition_by_clusters", "PlacementConfig", "PlacementResult",
    "compute_outline", "hpwl", "place_block_2d", "place_macros",
    "place_ports", "Fold3DResult", "ViaSite", "clock_crossings",
    "crossing_nets", "fold_place_3d", "QPNet", "QuadraticPlacer",
    "b2b_weights",
]
