"""Mixed-size two-tier (3D) placement for block folding.

Implements the paper's folding placement flow:

1. assign every instance to one of the two tiers (natural or min-cut
   partition, Section 4);
2. place *all* cells jointly in the folded outline assuming an ideal 3D
   interconnect of zero size (exactly the first step of the paper's F2F
   flow, Fig. 4a) -- tiers share x/y space, so the quadratic solve sees
   no penalty for crossing;
3. spread each tier into its own density grid (per-tier macro holes);
4. extract one 3D via per tier-crossing net and *legalize* it according
   to the bonding style: TSVs snap to a pitch grid that excludes macro
   regions and consume silicon area (growing the outline); F2F vias land
   at their ideal spot, over macros or cells, at a fine pitch.

The footprint, via positions and the resulting per-net detours are what
make F2B and F2F designs diverge downstream (Sections 5.2, Fig. 6/7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..netlist.core import Net, Netlist
from ..obs import trace
from ..tech.process import ProcessNode
from .grid import DensityGrid, Rect, first_containing
from .partition import balanced_split
from .placer2d import (PlacementConfig, hpwl, place_macro_list, place_ports,
                       run_global_place, snap_to_rows)
from .quadratic import QPNet, QuadraticPlacer
from .spreading import spread


@dataclass
class ViaSite:
    """One placed 3D via (TSV or F2F) serving a tier-crossing net."""

    net_id: int
    x: float
    y: float
    #: displacement from the ideal location caused by legalization (um)
    displacement_um: float = 0.0


@dataclass
class Fold3DResult:
    """Outcome of a two-tier fold placement."""

    outline: Rect
    bonding: str
    vias: List[ViaSite]
    #: total 3D connections including the clock crossing
    n_vias: int
    tsv_area_um2: float
    die_area: Dict[int, float]
    grids: Dict[int, DensityGrid]
    hpwl_um: float

    @property
    def footprint_um2(self) -> float:
        """Silicon footprint of one tier (both tiers share the outline)."""
        return self.outline.area

    def via_of_net(self, net_id: int) -> Optional[ViaSite]:
        for v in self.vias:
            if v.net_id == net_id:
                return v
        return None


def crossing_nets(netlist: Netlist) -> List[Net]:
    """Non-clock nets whose instances span both tiers."""
    out = []
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        dies = {netlist.instances[r.inst].die for r in net.endpoints()
                if not r.is_port}
        if len(dies) > 1:
            out.append(net)
    return out


def clock_crossings(netlist: Netlist) -> int:
    """3D vias needed by the clock: one per tier-crossing clock net."""
    count = 0
    for net in netlist.nets.values():
        if not net.is_clock:
            continue
        dies = {netlist.instances[r.inst].die for r in net.endpoints()
                if not r.is_port}
        if len(dies) > 1:
            count += 1
    return count


def _ideal_via_position(netlist: Netlist, net: Net) -> Tuple[float, float]:
    """Crossing point: midpoint of the per-tier pin centroids."""
    pos = {0: [], 1: []}
    for ref in net.endpoints():
        if ref.is_port:
            continue
        inst = netlist.instances[ref.inst]
        pos[inst.die].append((inst.x, inst.y))
    cx = []
    cy = []
    for die in (0, 1):
        if pos[die]:
            cx.append(sum(p[0] for p in pos[die]) / len(pos[die]))
            cy.append(sum(p[1] for p in pos[die]) / len(pos[die]))
    return sum(cx) / len(cx), sum(cy) / len(cy)


class _ViaLegalizer:
    """Snaps vias to a pitch grid, one net per site, avoiding keepouts."""

    def __init__(self, outline: Rect, pitch_um: float,
                 keepouts: List[Rect]) -> None:
        self.outline = outline
        self.pitch = max(pitch_um, 0.1)
        self.keepouts = keepouts
        self.nx = max(1, int(outline.width / self.pitch))
        self.ny = max(1, int(outline.height / self.pitch))
        self.occupied: Set[Tuple[int, int]] = set()

    def _site_center(self, i: int, j: int) -> Tuple[float, float]:
        return (self.outline.x0 + (i + 0.5) * self.pitch,
                self.outline.y0 + (j + 0.5) * self.pitch)

    def _legal(self, i: int, j: int) -> bool:
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            return False
        if (i, j) in self.occupied:
            return False
        x, y = self._site_center(i, j)
        return first_containing(self.keepouts, x, y) is None

    def snap(self, x: float, y: float) -> Tuple[float, float]:
        """The nearest free legal site (spiral search)."""
        i0 = int((x - self.outline.x0) / self.pitch)
        j0 = int((y - self.outline.y0) / self.pitch)
        if self._legal(i0, j0):
            self.occupied.add((i0, j0))
            return self._site_center(i0, j0)
        for radius in range(1, max(self.nx, self.ny) + 1):
            best = None
            for di in range(-radius, radius + 1):
                for dj in (-radius, radius):
                    for i, j in ((i0 + di, j0 + dj), (i0 + dj, j0 + di)):
                        if self._legal(i, j):
                            cx, cy = self._site_center(i, j)
                            d = (cx - x) ** 2 + (cy - y) ** 2
                            if best is None or d < best[0]:
                                best = (d, i, j)
            if best is not None:
                _, i, j = best
                self.occupied.add((i, j))
                return self._site_center(i, j)
        return x, y  # pragma: no cover - grid exhausted


def fold_place_3d(netlist: Netlist, process: ProcessNode,
                  assignment: Dict[int, int], bonding: str,
                  config: Optional[PlacementConfig] = None,
                  region_of: Optional[Dict[int, Optional[str]]] = None,
                  mode: str = "fold") -> Fold3DResult:
    """Place a folded block on two tiers.

    Args:
        netlist: the block netlist; instance coordinates and ``die``
            attributes are written in place.
        process: technology (supplies the TSV / F2F via parameters).
        assignment: instance id -> tier from the partitioner.
        bonding: ``"F2B"`` or ``"F2F"``.
        config: placement knobs (defaults applied when omitted).
        region_of: optional instance id -> region name.  When given, each
            region becomes its own place-and-route rectangle per tier
            (the paper's FUB floorplan, Section 4.5): a folded region's
            halves land in aligned rectangles of half the area, which is
            what actually shortens its internal wires.
        mode: ``"fold"`` uses the partitioner's die assignment as-is
            (the paper's flow); ``"bistratal"`` additionally refines the
            movable cells' tiers analytically -- a continuous z per cell
            minimizes the bistratal quadratic wirelength (the two tiers
            as coupled planes, with a bonding-dependent via-cost anchor)
            before an area-balanced rounding, following the analytical
            die-to-die formulation of PAPERS.md.

    Returns:
        The fold placement result with legalized via sites.
    """
    config = config or PlacementConfig()
    rng = np.random.default_rng(config.seed)
    via = process.via_for(bonding)
    if mode not in ("fold", "bistratal"):
        raise ValueError(f"unknown fold placement mode: {mode!r}")

    for iid, die in assignment.items():
        netlist.instances[iid].die = die
    if mode == "bistratal":
        _bistratal_assign(netlist, config,
                          via_penalty=1.0 if via.occupies_silicon else 0.25)

    cross = crossing_nets(netlist)
    n_signal_vias = len(cross)

    # per-tier area requirement
    die_cell = {0: 0.0, 1: 0.0}
    die_macro = {0: 0.0, 1: 0.0}
    for inst in netlist.instances.values():
        if inst.is_macro:
            die_macro[inst.die] += inst.area_um2
        else:
            die_cell[inst.die] += inst.area_um2
    die_area = {d: die_cell[d] / config.utilization + die_macro[d] * 1.08
                for d in (0, 1)}
    base = max(die_area[0], die_area[1])
    tsv_area = n_signal_vias * via.area_um2 if via.occupies_silicon else 0.0
    area = base + tsv_area
    width = math.sqrt(area * config.aspect_ratio)
    outline = Rect(0.0, 0.0, width, area / width)

    # per-tier macro placement and density grids
    grids: Dict[int, DensityGrid] = {}
    macro_rects: Dict[int, List[Rect]] = {}
    for die in (0, 1):
        die_macros = [i for i in netlist.instances.values()
                      if i.is_macro and i.die == die]
        macro_rects[die] = place_macro_list(die_macros, outline)
        n_cells = sum(1 for i in netlist.instances.values()
                      if not i.is_macro and i.die == die)
        grid = DensityGrid(outline,
                           target_bins=int(np.clip(n_cells // 3, 64, 4096)),
                           utilization=min(1.0, config.utilization + 0.15))
        for rect in macro_rects[die]:
            grid.add_obstruction(rect)
        grids[die] = grid

    if config.place_ports:
        place_ports(netlist, outline)
        _assign_port_dies(netlist)

    movable = [i for i in netlist.instances.values()
               if not i.is_macro and not i.fixed]
    if movable:
        die_of = np.array([inst.die for inst in movable])

        def spread_die(xs, ys, areas, out_x, out_y, die) -> None:
            mask = die_of == die
            if mask.any():
                sx, sy = spread(grids[die], xs[mask], ys[mask],
                                areas[mask], rng)
                out_x[mask], out_y[mask] = sx, sy

        def spread_regions(xs, ys, areas, out_x, out_y) -> None:
            """Region floorplan in the spirit of the paper's Fig. 3.

            Two-pass bisection: *folded* regions (cells on both tiers)
            first claim shared projection rectangles -- their halves land
            in the same rectangle on both tiers, so the halved area
            genuinely shortens their internal wires and cross-tier nets
            become near-vertical.  The leftover rectangle is then carved
            independently per tier among that tier's unfolded regions
            (which may overlap across tiers, as separate dies do).
            """
            from .regions import region_bisect
            groups: Dict[str, Dict[int, List[int]]] = {}
            for k, inst in enumerate(movable):
                name = region_of.get(inst.id) or "_unregioned"
                groups.setdefault(name, {0: [], 1: []})[inst.die].append(k)

            def centroid(idxs):
                arr = np.asarray(idxs)
                w = areas[arr]
                return (float(np.average(xs[arr], weights=w)),
                        float(np.average(ys[arr], weights=w)))

            def demand(idxs):
                return float(areas[np.asarray(idxs)].sum()) / \
                    config.utilization

            folded = {n for n, pd in groups.items() if pd[0] and pd[1]}
            # per-tier full bisection (folded regions use their shared,
            # both-tier centroid so the two tiers agree on placement)
            shared_cent = {n: centroid(groups[n][0] + groups[n][1])
                           for n in folded}
            per_die_rects: Dict[int, Dict[str, Rect]] = {0: {}, 1: {}}
            for die in (0, 1):
                items = []
                for name, pd in groups.items():
                    if not pd[die]:
                        continue
                    c = shared_cent.get(name) or centroid(pd[die])
                    items.append((name, demand(pd[die]), *c))
                per_die_rects[die] = region_bisect(outline, items)
            # force-align folded regions: both tiers use tier-0's rect,
            # so their halves stack and their internal wires shorten
            for name in folded:
                rect0 = per_die_rects[0].get(name)
                if rect0 is not None:
                    per_die_rects[1][name] = rect0

            for name, pd in groups.items():
                for die in (0, 1):
                    idxs = pd[die]
                    if not idxs:
                        continue
                    rect = per_die_rects[die].get(name) or outline
                    arr = np.asarray(idxs)
                    grid = DensityGrid(
                        rect,
                        target_bins=int(np.clip(len(arr) // 3, 16, 1024)),
                        utilization=min(1.0, config.utilization + 0.15))
                    for m in grids[die].obstructions:
                        if m.overlaps(rect):
                            grid.add_obstruction(m)
                    sx, sy = spread(grid, xs[arr], ys[arr], areas[arr],
                                    rng)
                    out_x[arr], out_y[arr] = sx, sy

        def spread_fn(xs, ys, areas):
            ox, oy = xs.copy(), ys.copy()
            if region_of is not None:
                spread_regions(xs, ys, areas, ox, oy)
            else:
                for die in (0, 1):
                    spread_die(xs, ys, areas, ox, oy, die)
            return ox, oy

        xs, ys = run_global_place(netlist, movable, outline, config, rng,
                                  spread_fn)
        snap_to_rows(movable, xs, ys, outline)

    # --- via extraction & legalization ---------------------------------
    if via.occupies_silicon:
        keepouts = macro_rects[0] + macro_rects[1]
    else:
        keepouts = []  # F2F vias may sit over macros and cells
    legalizer = _ViaLegalizer(outline, via.pitch_um, keepouts)
    vias: List[ViaSite] = []
    for net in sorted(cross, key=lambda n: n.id):
        ix, iy = _ideal_via_position(netlist, net)
        ix, iy = outline.clamp(ix, iy)
        x, y = legalizer.snap(ix, iy)
        vias.append(ViaSite(net_id=net.id, x=x, y=y,
                            displacement_um=math.hypot(x - ix, y - iy)))

    n_vias = n_signal_vias + clock_crossings(netlist)
    return Fold3DResult(outline=outline, bonding=bonding.upper(), vias=vias,
                        n_vias=n_vias, tsv_area_um2=tsv_area,
                        die_area=die_area, grids=grids, hpwl_um=hpwl(netlist))


def _bistratal_assign(netlist: Netlist, config: PlacementConfig,
                      via_penalty: float) -> None:
    """Analytical die-to-die refinement of the movable cells' tiers.

    Treats the tier coordinate as a continuous z in [0, 1] and minimizes
    the same B2B quadratic objective the x/y placer uses, with nets
    coupling the two planes: macros and other fixed instances enter as
    fixed endpoints at their assigned tier, so connectivity pulls each
    movable cell toward the tier holding its neighbors.  An anchor
    toward the seed partition models the via cost -- stronger for
    silicon-consuming TSVs (``via_penalty`` 1.0) than for F2F pads
    (0.25), which is exactly the asymmetry that lets F2F designs afford
    more crossings.  The continuous solution is rounded by an
    area-balanced threshold (:func:`~repro.place.partition.balanced_split`).

    Macros and fixed instances keep their partitioner tiers; only
    movable standard cells are refined, in place.
    """
    movable = [i for i in netlist.instances.values()
               if not i.is_macro and not i.fixed]
    if not movable:
        return
    index_of = {inst.id: k for k, inst in enumerate(movable)}
    znets: List[QPNet] = []
    for net in netlist.nets.values():
        if net.is_clock:
            continue
        members: List[int] = []
        fixed: List[Tuple[float, float]] = []
        seen: Set[int] = set()
        for ref in net.endpoints():
            if ref.is_port:
                continue  # ports get a tier only after assignment
            inst = netlist.instances[ref.inst]
            if inst.is_macro or inst.fixed:
                z = float(inst.die)
                fixed.append((z, z))
            elif inst.id not in seen:
                seen.add(inst.id)
                members.append(index_of[inst.id])
        degree = len(members) + len(fixed)
        if degree < 2 or not members:
            continue
        weight = 1.0 if degree <= config.max_qp_degree else \
            config.max_qp_degree / degree
        znets.append(QPNet(movable=members, fixed=fixed, weight=weight))

    with trace.span("place.bistratal", cells=len(movable),
                    nets=len(znets)):
        z0 = np.array([float(inst.die) for inst in movable])
        placer = QuadraticPlacer(len(movable), znets)
        z = placer.solve1d(z0, anchors=(z0, 0.02 * via_penalty), rounds=2)
        pre = {0: 0.0, 1: 0.0}
        for inst in netlist.instances.values():
            if inst.is_macro or inst.fixed:
                pre[inst.die] += inst.area_um2
        areas = np.array([inst.area_um2 for inst in movable])
        side = balanced_split(z, areas, pre_area=(pre[0], pre[1]))
        for inst, die in zip(movable, side):
            inst.die = int(die)


def _assign_port_dies(netlist: Netlist) -> None:
    """Each port lives on the tier holding most of its connections."""
    for name, port in netlist.ports.items():
        votes = {0: 0, 1: 0}
        for net in netlist.nets_of_port(name):
            for ref in net.endpoints():
                if not ref.is_port:
                    votes[netlist.instances[ref.inst].die] += 1
        port.die = 0 if votes[0] >= votes[1] else 1
