"""Quadratic global placement (bound-to-bound net model).

Solves the classic force-directed formulation used by Kraftwerk2 (paper
reference [7]) and the mixed-size 3D placer of reference [6]: wirelength
is approximated by a quadratic form whose minimum is found by solving two
sparse SPD linear systems (x and y separate).  Fixed objects -- ports,
macro pins, spreading anchors -- enter the right-hand side.

The bound-to-bound (B2B) weights are refreshed from the previous solution
so that the quadratic form approximates HPWL rather than squared star
length; two or three refresh rounds are ample for this model's scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve


@dataclass
class QPNet:
    """A net as seen by the quadratic solver.

    ``movable`` holds indices into the movable-cell arrays; ``fixed``
    holds (x, y) coordinates of fixed endpoints (ports, macro pins, via
    sites).  ``weight`` multiplies the net's contribution.
    """

    movable: List[int]
    fixed: List[Tuple[float, float]]
    weight: float = 1.0

    @property
    def degree(self) -> int:
        return len(self.movable) + len(self.fixed)


class QuadraticPlacer:
    """Minimizes B2B quadratic wirelength for movable points."""

    def __init__(self, n_movable: int, nets: Sequence[QPNet]) -> None:
        self.n = n_movable
        self.nets = [net for net in nets if net.degree >= 2
                     and len(net.movable) >= 1]

    def solve(self, x0: np.ndarray, y0: np.ndarray,
              anchors: Optional[Tuple[np.ndarray, np.ndarray, float]] = None,
              rounds: int = 2) -> Tuple[np.ndarray, np.ndarray]:
        """Return placed (x, y) starting from ``(x0, y0)``.

        Args:
            x0, y0: initial coordinates (used for the first B2B weights).
            anchors: optional (ax, ay, strength) pseudo-net pulling every
                movable cell toward its anchor -- the standard spreading
                feedback force.
            rounds: B2B reweighting rounds.
        """
        x, y = x0.copy(), y0.copy()
        for _ in range(max(1, rounds)):
            x = self._solve_axis(x, axis=0, anchors=anchors)
            y = self._solve_axis(y, axis=1, anchors=anchors)
        return x, y

    def _solve_axis(self, coords: np.ndarray, axis: int,
                    anchors) -> np.ndarray:
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        rhs = np.zeros(self.n)
        diag = np.zeros(self.n)

        def add_pair(i: Optional[int], pi: float, j: Optional[int],
                     pj: float, w: float) -> None:
            """Connect endpoint i (movable or fixed) to j with weight w."""
            if i is not None and j is not None:
                diag[i] += w
                diag[j] += w
                rows.append(i); cols.append(j); vals.append(-w)
                rows.append(j); cols.append(i); vals.append(-w)
            elif i is not None:
                diag[i] += w
                rhs[i] += w * pj
            elif j is not None:
                diag[j] += w
                rhs[j] += w * pi

        for net in self.nets:
            pts: List[Tuple[Optional[int], float]] = []
            for m in net.movable:
                pts.append((m, coords[m]))
            for fx in net.fixed:
                pts.append((None, fx[axis]))
            p = len(pts)
            if p < 2:
                continue
            if p == 2:
                (i, pi), (j, pj) = pts
                w = net.weight * self._b2b_weight(pi, pj, p)
                add_pair(i, pi, j, pj, w)
                continue
            # B2B: connect min and max endpoints to each other and to all
            # interior endpoints with weight 2 / ((p-1) * span-part).
            order = sorted(range(p), key=lambda k: pts[k][1])
            lo, hi = order[0], order[-1]
            for k in range(p):
                if k == lo:
                    continue
                i, pi = pts[lo]
                j, pj = pts[k]
                w = net.weight * self._b2b_weight(pi, pj, p)
                add_pair(i, pi, j, pj, w)
            for k in range(p):
                if k in (lo, hi):
                    continue
                i, pi = pts[hi]
                j, pj = pts[k]
                w = net.weight * self._b2b_weight(pi, pj, p)
                add_pair(i, pi, j, pj, w)

        if anchors is not None:
            ax, ay, strength = anchors
            target = ax if axis == 0 else ay
            diag += strength
            rhs += strength * target

        # tiny regularization keeps the system SPD even for isolated cells
        diag += 1e-6
        rows.extend(range(self.n))
        cols.extend(range(self.n))
        vals.extend(diag.tolist())
        mat = coo_matrix((vals, (rows, cols)), shape=(self.n, self.n)).tocsr()
        return spsolve(mat, rhs)

    @staticmethod
    def _b2b_weight(pi: float, pj: float, degree: int) -> float:
        span = abs(pi - pj)
        return 2.0 / (max(degree - 1, 1) * max(span, 1.0))
