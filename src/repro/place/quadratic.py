"""Quadratic global placement (bound-to-bound net model).

Solves the classic force-directed formulation used by Kraftwerk2 (paper
reference [7]) and the mixed-size 3D placer of reference [6]: wirelength
is approximated by a quadratic form whose minimum is found by solving two
sparse SPD linear systems (x and y separate).  Fixed objects -- ports,
macro pins, spreading anchors -- enter the right-hand side.

The bound-to-bound (B2B) weights are refreshed from the previous solution
so that the quadratic form approximates HPWL rather than squared star
length; two or three refresh rounds are ample for this model's scale.

The system is assembled in one shot from flat pin arrays: per-net lo/hi
endpoints come from ``np.minimum.reduceat``/``np.maximum.reduceat``, pair
weights from one vectorized formula, and the Laplacian triplets plus the
diagonal/rhs accumulation are emitted in exactly the order the legacy
per-pin loop produced them, so both paths build bit-identical systems
(``np.add.at`` is unbuffered and processes indices sequentially, and
scipy's duplicate summation only depends on the per-coordinate emission
order).  The legacy loop survives in :mod:`~repro.place.scalar` behind
``REPRO_PLACE_SCALAR=1`` for the parity harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve

from ..obs.metrics import metrics
from . import scalar


@dataclass
class QPNet:
    """A net as seen by the quadratic solver.

    ``movable`` holds indices into the movable-cell arrays; ``fixed``
    holds (x, y) coordinates of fixed endpoints (ports, macro pins, via
    sites).  ``weight`` multiplies the net's contribution.
    """

    movable: List[int]
    fixed: List[Tuple[float, float]]
    weight: float = 1.0

    @property
    def degree(self) -> int:
        return len(self.movable) + len(self.fixed)


def b2b_weights(pa: np.ndarray, pb: np.ndarray,
                degree: np.ndarray) -> np.ndarray:
    """Vectorized B2B pair weights.

    Bit-identical to :meth:`QuadraticPlacer._b2b_weight` applied
    elementwise: the integer degree converts to float exactly, and both
    paths evaluate ``2.0 / (max(degree-1, 1) * max(|pa-pb|, 1.0))`` in
    the same operation order.
    """
    md = np.maximum(np.asarray(degree) - 1, 1).astype(np.float64)
    ms = np.maximum(np.abs(pa - pb), 1.0)
    return 2.0 / (md * ms)


class _FlatNets:
    """Net structure flattened to arrays for one-shot assembly.

    Pin layout matches the legacy loop's ``pts`` list: per net, movable
    endpoints first (in list order) then fixed endpoints -- the lo/hi
    tie-breaks and the per-pair emission order depend on it.
    """

    def __init__(self, nets: Sequence[QPNet]) -> None:
        nn = len(nets)
        self.weight = np.fromiter((net.weight for net in nets),
                                  dtype=np.float64, count=nn)
        self.deg = np.fromiter((net.degree for net in nets),
                               dtype=np.int64, count=nn)
        pin_idx: List[int] = []
        fx: List[float] = []
        fy: List[float] = []
        for net in nets:
            pin_idx.extend(net.movable)
            fx.extend([0.0] * len(net.movable))
            fy.extend([0.0] * len(net.movable))
            for gx, gy in net.fixed:
                pin_idx.append(-1)
                fx.append(gx)
                fy.append(gy)
        #: movable index per pin, -1 for fixed endpoints
        self.pin_idx = np.array(pin_idx, dtype=np.int64)
        #: fixed-endpoint coordinate per axis (0.0 at movable pins)
        self.fixed = (np.array(fx, dtype=np.float64),
                      np.array(fy, dtype=np.float64))
        self.total = int(self.deg.sum())
        self.start = np.zeros(nn, dtype=np.int64)
        if nn > 1:
            np.cumsum(self.deg[:-1], out=self.start[1:])
        self.pin_net = np.repeat(np.arange(nn, dtype=np.int64), self.deg)
        self.local = (np.arange(self.total, dtype=np.int64) -
                      self.start[self.pin_net])
        mov_mask = self.pin_idx >= 0
        self.mov_pos = np.flatnonzero(mov_mask)
        self.mov_idx = self.pin_idx[self.mov_pos]
        # a net of degree p emits (p-1) lo pairs + (p-2) hi pairs; the
        # p == 2 case collapses to the single lo pair (2p-3 == 1)
        npair = 2 * self.deg - 3
        self.pair_start = np.zeros(nn, dtype=np.int64)
        if nn > 1:
            np.cumsum(npair[:-1], out=self.pair_start[1:])
        self.n_pairs = int(npair.sum())
        self.pair_net = np.repeat(np.arange(nn, dtype=np.int64), npair)


class QuadraticPlacer:
    """Minimizes B2B quadratic wirelength for movable points."""

    def __init__(self, n_movable: int, nets: Sequence[QPNet]) -> None:
        self.n = n_movable
        self.nets = [net for net in nets if net.degree >= 2
                     and len(net.movable) >= 1]
        self._flat: Optional[_FlatNets] = None

    def solve(self, x0: np.ndarray, y0: np.ndarray,
              anchors: Optional[Tuple[np.ndarray, np.ndarray, float]] = None,
              rounds: int = 2) -> Tuple[np.ndarray, np.ndarray]:
        """Return placed (x, y) starting from ``(x0, y0)``.

        Args:
            x0, y0: initial coordinates (used for the first B2B weights).
            anchors: optional (ax, ay, strength) pseudo-net pulling every
                movable cell toward its anchor -- the standard spreading
                feedback force.
            rounds: B2B reweighting rounds.
        """
        x, y = x0.copy(), y0.copy()
        for _ in range(max(1, rounds)):
            x = self._solve_axis(x, axis=0, anchors=anchors)
            y = self._solve_axis(y, axis=1, anchors=anchors)
        return x, y

    def solve1d(self, c0: np.ndarray,
                anchors: Optional[Tuple[np.ndarray, float]] = None,
                rounds: int = 1) -> np.ndarray:
        """B2B solve along a single axis (the bistratal z solve).

        Fixed endpoints contribute their x-slot coordinate; callers build
        the :class:`QPNet` list with ``fixed=[(z, z)]`` entries.
        """
        c = c0.copy()
        anch3 = None
        if anchors is not None:
            target, strength = anchors
            anch3 = (target, target, strength)
        for _ in range(max(1, rounds)):
            c = self._solve_axis(c, axis=0, anchors=anch3)
        return c

    def _solve_axis(self, coords: np.ndarray, axis: int,
                    anchors) -> np.ndarray:
        if scalar.use_scalar():
            return scalar.solve_axis(self, coords, axis, anchors)
        metrics().counter("place.qp_solves").inc()
        mat, rhs = self._assemble_axis(coords, axis, anchors)
        return spsolve(mat, rhs)

    def _assemble_axis(self, coords: np.ndarray, axis: int,
                       anchors) -> Tuple[coo_matrix, np.ndarray]:
        """Batched one-shot build of the B2B system for one axis."""
        f = self._flat
        if f is None:
            f = self._flat = _FlatNets(self.nets)
        n = self.n
        rhs = np.zeros(n)
        diag = np.zeros(n)

        if f.n_pairs:
            pc = f.fixed[axis].copy()
            pc[f.mov_pos] = coords[f.mov_idx]
            posn = np.arange(f.total, dtype=np.int64)
            # lo = first pin attaining the net min, hi = last attaining
            # the max -- the stable-sort semantics of the legacy loop
            minv = np.minimum.reduceat(pc, f.start)
            maxv = np.maximum.reduceat(pc, f.start)
            lo_g = np.minimum.reduceat(
                np.where(pc == minv[f.pin_net], posn, f.total), f.start)
            hi_g = np.maximum.reduceat(
                np.where(pc == maxv[f.pin_net], posn, -1), f.start)
            lo_loc = lo_g - f.start
            hi_loc = hi_g - f.start
            lo_pin = lo_g[f.pin_net]
            hi_pin = hi_g[f.pin_net]
            # slot arithmetic places every pair at its legacy stream
            # position: net-major, lo-phase then hi-phase, pins in order
            m1 = posn != lo_pin
            slot1 = (f.pair_start[f.pin_net] + f.local -
                     (f.local > lo_loc[f.pin_net]))
            m2 = m1 & (posn != hi_pin)
            slot2 = (f.pair_start[f.pin_net] + f.deg[f.pin_net] - 1 +
                     f.local - (f.local > lo_loc[f.pin_net]) -
                     (f.local > hi_loc[f.pin_net]))
            a_pos = np.empty(f.n_pairs, dtype=np.int64)
            b_pos = np.empty(f.n_pairs, dtype=np.int64)
            a_pos[slot1[m1]] = lo_pin[m1]
            b_pos[slot1[m1]] = posn[m1]
            a_pos[slot2[m2]] = hi_pin[m2]
            b_pos[slot2[m2]] = posn[m2]

            ai = f.pin_idx[a_pos]
            bi = f.pin_idx[b_pos]
            ac = pc[a_pos]
            bc = pc[b_pos]
            w = f.weight[f.pair_net] * b2b_weights(ac, bc,
                                                   f.deg[f.pair_net])
            amov = ai >= 0
            bmov = bi >= 0

            # off-diagonals: (a, b, -w) then (b, a, -w) per pair --
            # scipy's duplicate summation follows this emission order
            rows2 = np.empty(2 * f.n_pairs, dtype=np.int64)
            cols2 = np.empty(2 * f.n_pairs, dtype=np.int64)
            rows2[0::2] = ai
            cols2[0::2] = bi
            rows2[1::2] = bi
            cols2[1::2] = ai
            keep = np.repeat(amov & bmov, 2)
            orows = rows2[keep]
            ocols = cols2[keep]
            ovals = np.repeat(-w, 2)[keep]

            # diag/rhs: np.add.at is unbuffered, so feeding it the pair
            # stream (a slot before b slot) reproduces the legacy
            # per-entry accumulation order, hence the exact float sums
            d_idx = np.empty(2 * f.n_pairs, dtype=np.int64)
            d_idx[0::2] = np.where(amov, ai, -1)
            d_idx[1::2] = np.where(bmov, bi, -1)
            d_keep = d_idx >= 0
            np.add.at(diag, d_idx[d_keep], np.repeat(w, 2)[d_keep])

            r_idx = np.empty(2 * f.n_pairs, dtype=np.int64)
            r_val = np.empty(2 * f.n_pairs)
            r_idx[0::2] = np.where(amov & ~bmov, ai, -1)
            r_val[0::2] = w * bc
            r_idx[1::2] = np.where(bmov & ~amov, bi, -1)
            r_val[1::2] = w * ac
            r_keep = r_idx >= 0
            np.add.at(rhs, r_idx[r_keep], r_val[r_keep])
        else:
            orows = np.empty(0, dtype=np.int64)
            ocols = np.empty(0, dtype=np.int64)
            ovals = np.empty(0)

        if anchors is not None:
            ax, ay, strength = anchors
            target = ax if axis == 0 else ay
            diag += strength
            rhs += strength * target

        # tiny regularization keeps the system SPD even for isolated cells
        diag += 1e-6
        rows = np.concatenate([orows, np.arange(n, dtype=np.int64)])
        cols = np.concatenate([ocols, np.arange(n, dtype=np.int64)])
        vals = np.concatenate([ovals, diag])
        mat = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        return mat, rhs

    @staticmethod
    def _b2b_weight(pi: float, pj: float, degree: int) -> float:
        span = abs(pi - pj)
        return 2.0 / (max(degree - 1, 1) * max(span, 1.0))
