"""Region floorplanning by recursive area bisection.

Second-level folding (paper Section 4.5) operates on *functional unit
blocks* inside the SPARC core: each FUB is a place-and-route region of
its own, so folding a FUB genuinely halves the span of its internal
wires.  This module carves a die outline into one rectangle per region,
proportionally to region area and guided by the regions' quadratic-
placement centroids (so connected regions stay adjacent -- the job the
paper's FUB floorplan does by hand in Fig. 3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .grid import Rect

#: (key, area demand, centroid x, centroid y)
RegionItem = Tuple[str, float, float, float]


def region_bisect(outline: Rect,
                  items: Sequence[RegionItem]) -> Dict[str, Rect]:
    """Partition ``outline`` into per-region rectangles.

    Recursively splits the outline along its longer axis; items are
    ordered by centroid along that axis and divided so sub-outline areas
    match the item-area split.  Every region receives a rectangle whose
    area is proportional to its demand, positioned near its centroid.

    Args:
        outline: the die outline to carve.
        items: regions with positive area demand.

    Returns:
        region key -> rectangle.
    """
    out: Dict[str, Rect] = {}
    work = [it for it in items if it[1] > 0]

    def recurse(rect: Rect, group: List[RegionItem]) -> None:
        if not group:
            return
        if len(group) == 1:
            out[group[0][0]] = rect
            return
        horizontal = rect.width >= rect.height
        group = sorted(group, key=lambda it: it[2] if horizontal else it[3])
        # choose the split index closest to half the area (first-wins
        # on ties, like a strict-< scan)
        cum = np.cumsum([it[1] for it in group])
        total = float(cum[-1])
        best_k = int(np.argmin(np.abs(cum[:-1] - total / 2.0))) + 1
        left = group[:best_k]
        right = group[best_k:]
        frac = sum(it[1] for it in left) / total
        if horizontal:
            mid = rect.x0 + frac * rect.width
            recurse(Rect(rect.x0, rect.y0, mid, rect.y1), left)
            recurse(Rect(mid, rect.y0, rect.x1, rect.y1), right)
        else:
            mid = rect.y0 + frac * rect.height
            recurse(Rect(rect.x0, rect.y0, rect.x1, mid), left)
            recurse(Rect(rect.x0, mid, rect.x1, rect.y1), right)

    recurse(outline, list(work))
    return out
