"""Tetris row legalization.

The spreading stage leaves cells approximately density-legal but still
overlapping; this pass produces a fully overlap-free placement the way
the classic Tetris/Abacus legalizers do:

1. build standard-cell rows across the core area, split into *segments*
   by macro obstructions;
2. process cells in x order; each cell tries nearby rows and takes the
   position of minimum displacement, packing left-to-right against the
   cells already legalized in that segment.

The result keeps the global placement's structure (displacement is the
quality metric) while guaranteeing non-overlap -- which the DEF export
and the macro keep-out checks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.core import Instance
from ..tech.cells import CELL_HEIGHT_UM
from .grid import GEOM_TOL_UM, Rect, spans_overlap


@dataclass
class RowSegment:
    """A contiguous placeable span within one cell row."""

    y: float
    x0: float
    x1: float
    #: x coordinate where the next cell will be packed
    cursor: float = field(init=False)

    def __post_init__(self) -> None:
        self.cursor = self.x0

    @property
    def free(self) -> float:
        return self.x1 - self.cursor


@dataclass
class LegalizeResult:
    """Summary of one legalization run."""

    placed: int
    failed: int
    total_displacement_um: float
    max_displacement_um: float

    @property
    def avg_displacement_um(self) -> float:
        return self.total_displacement_um / self.placed if self.placed \
            else 0.0


def build_rows(outline: Rect, obstructions: Sequence[Rect],
               row_height: float = CELL_HEIGHT_UM) -> List[RowSegment]:
    """Cut the outline into rows, splitting at macro obstructions."""
    segments: List[RowSegment] = []
    n_rows = max(1, int(outline.height / row_height))
    for r in range(n_rows):
        y0 = outline.y0 + r * row_height
        y1 = y0 + row_height
        y_mid = 0.5 * (y0 + y1)
        # collect blocked x intervals for this row
        blocked: List[Tuple[float, float]] = []
        for o in obstructions:
            if o.y0 < y1 and o.y1 > y0:
                blocked.append((max(o.x0, outline.x0),
                                min(o.x1, outline.x1)))
        blocked.sort()
        cursor = outline.x0
        for b0, b1 in blocked:
            if b0 > cursor:
                segments.append(RowSegment(y=y_mid, x0=cursor, x1=b0))
            cursor = max(cursor, b1)
        if cursor < outline.x1:
            segments.append(RowSegment(y=y_mid, x0=cursor,
                                       x1=outline.x1))
    return segments


def legalize_cells(cells: Sequence[Instance], outline: Rect,
                   obstructions: Sequence[Rect] = (),
                   row_height: float = CELL_HEIGHT_UM,
                   max_row_search: int = 12) -> LegalizeResult:
    """Tetris-legalize ``cells`` in place.

    Args:
        cells: movable standard cells (macros must be in
            ``obstructions`` instead).
        outline: the core area.
        obstructions: macro rectangles (rows are split around them).
        row_height: standard-cell row pitch.
        max_row_search: how many rows above/below the target to try.

    Returns:
        Displacement statistics; cells that found no segment (core
        overfull) keep their input position and count as ``failed``.
    """
    segments = build_rows(outline, obstructions, row_height)
    if not segments:
        return LegalizeResult(0, len(cells), 0.0, 0.0)
    rows: Dict[float, List[RowSegment]] = {}
    for seg in segments:
        rows.setdefault(round(seg.y, 3), []).append(seg)
    row_ys = sorted(rows)

    order = sorted(cells, key=lambda c: c.x)
    placed = 0
    failed = 0
    total_disp = 0.0
    max_disp = 0.0

    for cell in order:
        width = cell.width_um
        # candidate rows by distance from the cell's y
        target_idx = min(range(len(row_ys)),
                         key=lambda i, y=cell.y: abs(row_ys[i] - y))
        best: Optional[Tuple[float, RowSegment, float]] = None
        for offset in range(max_row_search + 1):
            for idx in {target_idx - offset, target_idx + offset}:
                if not (0 <= idx < len(row_ys)):
                    continue
                y = row_ys[idx]
                dy = abs(y - cell.y)
                if best is not None and dy >= best[0]:
                    continue
                for seg in rows[y]:
                    if seg.free < width:
                        continue
                    x = min(max(cell.x, seg.cursor), seg.x1 - width)
                    if x < seg.cursor:
                        continue
                    disp = abs(x - cell.x) + dy
                    if best is None or disp < best[0]:
                        best = (disp, seg, x)
            if best is not None and offset > 2:
                break  # a nearby row already works
        if best is None:
            failed += 1
            continue
        disp, seg, x = best
        cell.x = x  # left-edge semantics within the segment
        cell.y = seg.y
        seg.cursor = x + width
        placed += 1
        total_disp += disp
        max_disp = max(max_disp, disp)

    return LegalizeResult(placed=placed, failed=failed,
                          total_displacement_um=total_disp,
                          max_displacement_um=max_disp)


def overlapping_pairs(cells: Sequence[Instance],
                      row_height: float = CELL_HEIGHT_UM,
                      x_is_center: bool = False
                      ) -> List[Tuple[Instance, Instance]]:
    """Adjacent same-row cell pairs whose x spans overlap.

    Cells are bucketed into rows by their y coordinate and compared
    against their right neighbor with the shared
    :func:`~repro.place.grid.spans_overlap` predicate -- the same
    tolerance the legalizer and the lint checker use, so the two can
    never disagree about what counts as an overlap.

    Args:
        cells: placed standard cells.
        row_height: row pitch (used only for bucketing keys).
        x_is_center: interpret ``x`` as the cell center (global-place /
            row-snap convention) instead of the left edge (legalizer
            convention).
    """
    by_row: Dict[float, List[Instance]] = {}
    for c in cells:
        by_row.setdefault(round(c.y, 3), []).append(c)
    pairs: List[Tuple[Instance, Instance]] = []
    for row_cells in by_row.values():
        row_cells.sort(key=lambda c: c.x)
        for a, b in zip(row_cells, row_cells[1:]):
            if x_is_center:
                a0, a1 = a.x - a.width_um / 2, a.x + a.width_um / 2
                b0, b1 = b.x - b.width_um / 2, b.x + b.width_um / 2
            else:
                a0, a1 = a.x, a.x + a.width_um
                b0, b1 = b.x, b.x + b.width_um
            if spans_overlap(a0, a1, b0, b1, tol=GEOM_TOL_UM):
                pairs.append((a, b))
    return pairs


def check_overlaps(cells: Sequence[Instance],
                   row_height: float = CELL_HEIGHT_UM) -> int:
    """Count pairwise overlaps among legalized cells (same row only)."""
    return len(overlapping_pairs(cells, row_height))
