"""Tetris row legalization.

The spreading stage leaves cells approximately density-legal but still
overlapping; this pass produces a fully overlap-free placement the way
the classic Tetris/Abacus legalizers do:

1. build standard-cell rows across the core area, split into *segments*
   by macro obstructions;
2. assign cells to row segments (nearest row first, probing farther rows
   only when capacity runs out), then pack each segment in one batched
   scan: the prefix-max recurrence ``pos = cwe + max.accumulate(d - cwe)``
   resolves all left-to-right pushes at once and a suffix-sum clamp keeps
   every cell inside the segment.

The result keeps the global placement's structure (displacement is the
quality metric) while guaranteeing non-overlap -- which the DEF export
and the macro keep-out checks rely on.  The legacy per-cell search is
preserved in :mod:`~repro.place.scalar` behind ``REPRO_PLACE_SCALAR=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..netlist.core import Instance
from ..obs import trace
from ..obs.metrics import metrics
from ..tech.cells import CELL_HEIGHT_UM
from . import scalar
from .grid import GEOM_TOL_UM, Rect


@dataclass
class RowSegment:
    """A contiguous placeable span within one cell row."""

    y: float
    x0: float
    x1: float
    #: x coordinate where the next cell will be packed
    cursor: float = field(init=False)

    def __post_init__(self) -> None:
        self.cursor = self.x0

    @property
    def free(self) -> float:
        return self.x1 - self.cursor

    @property
    def capacity(self) -> float:
        return self.x1 - self.x0


@dataclass
class LegalizeResult:
    """Summary of one legalization run."""

    placed: int
    failed: int
    total_displacement_um: float
    max_displacement_um: float

    @property
    def avg_displacement_um(self) -> float:
        return self.total_displacement_um / self.placed if self.placed \
            else 0.0


def build_rows(outline: Rect, obstructions: Sequence[Rect],
               row_height: float = CELL_HEIGHT_UM) -> List[RowSegment]:
    """Cut the outline into rows, splitting at macro obstructions."""
    segments: List[RowSegment] = []
    n_rows = max(1, int(outline.height / row_height))
    for r in range(n_rows):
        y0 = outline.y0 + r * row_height
        y1 = y0 + row_height
        y_mid = 0.5 * (y0 + y1)
        # collect blocked x intervals for this row
        blocked: List[Tuple[float, float]] = []
        for o in obstructions:
            if o.y0 < y1 and o.y1 > y0:
                blocked.append((max(o.x0, outline.x0),
                                min(o.x1, outline.x1)))
        blocked.sort()
        cursor = outline.x0
        for b0, b1 in blocked:
            if b0 > cursor:
                segments.append(RowSegment(y=y_mid, x0=cursor, x1=b0))
            cursor = max(cursor, b1)
        if cursor < outline.x1:
            segments.append(RowSegment(y=y_mid, x0=cursor,
                                       x1=outline.x1))
    return segments


def legalize_cells(cells: Sequence[Instance], outline: Rect,
                   obstructions: Sequence[Rect] = (),
                   row_height: float = CELL_HEIGHT_UM,
                   max_row_search: int = 12) -> LegalizeResult:
    """Tetris-legalize ``cells`` in place.

    Args:
        cells: movable standard cells (macros must be in
            ``obstructions`` instead).
        outline: the core area.
        obstructions: macro rectangles (rows are split around them).
        row_height: standard-cell row pitch.
        max_row_search: how many rows above/below the target to try.

    Returns:
        Displacement statistics; cells that found no segment (core
        overfull) keep their input position and count as ``failed``.
    """
    if scalar.use_scalar():
        return scalar.legalize_cells(cells, outline, obstructions,
                                     row_height, max_row_search)
    with trace.span("place.legalize", cells=len(cells)):
        return _legalize_batched(cells, outline, obstructions,
                                 row_height, max_row_search)


def _legalize_batched(cells: Sequence[Instance], outline: Rect,
                      obstructions: Sequence[Rect], row_height: float,
                      max_row_search: int) -> LegalizeResult:
    segments = build_rows(outline, obstructions, row_height)
    if not segments:
        return LegalizeResult(0, len(cells), 0.0, 0.0)
    n = len(cells)
    if n == 0:
        return LegalizeResult(0, 0, 0.0, 0.0)

    # group segments into rows; per-row segment ids sorted by x0
    rows: Dict[float, List[int]] = {}
    for sid, seg in enumerate(segments):
        rows.setdefault(round(seg.y, 3), []).append(sid)
    row_ys = sorted(rows)
    n_rows = len(row_ys)
    row_segs = [sorted(rows[y], key=lambda sid: segments[sid].x0)
                for y in row_ys]
    ry = np.array(row_ys)
    seg_free = np.array([seg.capacity for seg in segments])
    seg_x0 = np.array([seg.x0 for seg in segments])

    cx = np.array([c.x for c in cells])
    cy = np.array([c.y for c in cells])
    cw = np.array([c.width_um for c in cells])

    # nearest row per cell; midpoint ties pick the lower row, like the
    # legacy first-minimum scan
    if n_rows > 1:
        mids = 0.5 * (ry[:-1] + ry[1:])
        target = np.searchsorted(mids, cy, side="left")
    else:
        target = np.zeros(n, dtype=np.int64)

    assigned_of: Dict[int, List[int]] = {}

    def assign_row(row: int, ids: np.ndarray) -> np.ndarray:
        """Greedy-fill one row; returns the ids that did not fit."""
        ids = ids[np.argsort(cx[ids], kind="stable")]
        sids = row_segs[row]
        # nearest segment per cell (by x distance to the segment span)
        if len(sids) > 1:
            x0s = seg_x0[sids]
            si = np.clip(np.searchsorted(x0s, cx[ids], side="right") - 1,
                         0, len(sids) - 1)
            x1s = np.array([segments[s].x1 for s in sids])
            d_here = np.maximum(cx[ids] - x1s[si], 0.0)
            nxt = np.minimum(si + 1, len(sids) - 1)
            d_next = np.maximum(x0s[nxt] - cx[ids], 0.0)
            si = np.where((nxt != si) & (d_next < d_here), nxt, si)
        else:
            si = np.zeros(len(ids), dtype=np.int64)
        leftover: List[np.ndarray] = []
        # left-to-right: each segment takes its own cells plus spill
        # from the left, largest prefix that fits its remaining space
        for k, sid in enumerate(sids):
            want = ids[si == k]
            if leftover:
                want = np.concatenate([leftover.pop(), want])
            if len(want) == 0:
                continue
            cum = np.cumsum(cw[want])
            take = int(np.searchsorted(cum, seg_free[sid], side="right"))
            got, spill = want[:take], want[take:]
            if len(got):
                seg_free[sid] -= float(cum[len(got) - 1])
                assigned_of.setdefault(sid, []).extend(got.tolist())
            if len(spill):
                leftover.append(spill)
        if not leftover:
            return np.empty(0, dtype=np.int64)
        # right-to-left backfill into whatever space remains
        rest = leftover[0]
        for sid in reversed(sids):
            if len(rest) == 0:
                break
            cum = np.cumsum(cw[rest])
            take = int(np.searchsorted(cum, seg_free[sid], side="right"))
            got, rest = rest[:take], rest[take:]
            if len(got):
                seg_free[sid] -= float(cum[len(got) - 1])
                assigned_of.setdefault(sid, []).extend(got.tolist())
        return rest

    def try_assign(cand: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Try candidate rows for ``ids``; returns the leftovers."""
        valid = (cand >= 0) & (cand < n_rows)
        rejected = [ids[~valid]]
        tryable = ids[valid]
        cand_rows = cand[valid]
        for row in np.unique(cand_rows):
            rej = assign_row(int(row), tryable[cand_rows == row])
            if len(rej):
                rejected.append(rej)
        return np.sort(np.concatenate(rejected))

    def row_choices(ids: np.ndarray,
                    offset: int) -> Tuple[np.ndarray, np.ndarray]:
        """Closer-first candidate rows at ``target +/- offset``."""
        lo = target[ids] - offset
        hi = target[ids] + offset
        d_lo = np.where(lo >= 0,
                        np.abs(ry[np.clip(lo, 0, n_rows - 1)] - cy[ids]),
                        np.inf)
        d_hi = np.where(hi < n_rows,
                        np.abs(ry[np.clip(hi, 0, n_rows - 1)] - cy[ids]),
                        np.inf)
        closer_lo = d_lo <= d_hi
        return (np.where(closer_lo, lo, hi), np.where(closer_lo, hi, lo))

    pending = np.arange(n)
    for offset in range(max_row_search + 1):
        if len(pending) == 0:
            break
        if offset == 0:
            pending = try_assign(target[pending], pending)
            continue
        first, _ = row_choices(pending, offset)
        pending = try_assign(first, pending)
        if len(pending) == 0:
            break
        # the same-offset second choice for the cells that missed
        _, second = row_choices(pending, offset)
        pending = try_assign(second, pending)

    # batched per-segment pack: prefix-max forward push, suffix clamp
    placed = 0
    total_disp = 0.0
    max_disp = 0.0
    for sid, id_list in sorted(assigned_of.items()):
        seg = segments[sid]
        ids = np.array(id_list)
        ids = ids[np.argsort(cx[ids], kind="stable")]
        w = cw[ids]
        d = np.clip(cx[ids], seg.x0, seg.x1 - w)
        cwe = np.concatenate([[0.0], np.cumsum(w)[:-1]])
        pos = cwe + np.maximum.accumulate(d - cwe)
        # rightmost feasible start so cells k..end still fit the segment
        suffix = np.cumsum(w[::-1])[::-1]
        final = np.minimum(pos, seg.x1 - suffix)
        disp = np.abs(final - cx[ids]) + np.abs(seg.y - cy[ids])
        for k, cid in enumerate(ids):
            cells[cid].x = float(final[k])
            cells[cid].y = seg.y
        seg.cursor = float(final[-1] + w[-1])
        placed += len(ids)
        total_disp += float(disp.sum())
        max_disp = max(max_disp, float(disp.max()))

    failed = n - placed
    metrics().counter("place.cells_legalized").inc(placed)
    return LegalizeResult(placed=placed, failed=failed,
                          total_displacement_um=total_disp,
                          max_displacement_um=max_disp)


def legalize_new_cells(new_cells: Sequence[Instance],
                       placed: Sequence[Instance], outline: Rect,
                       obstructions: Sequence[Rect] = (),
                       row_height: float = CELL_HEIGHT_UM,
                       max_row_search: int = 4) -> LegalizeResult:
    """Legalize only ``new_cells`` against an already-placed block.

    The incremental counterpart of :func:`legalize_cells` for ECO
    buffer insertion: instead of re-running the row scan over the whole
    block, the outline is clipped to the *touched row band* (the new
    cells' target rows plus the probe margin), every existing cell
    whose row lands in the band becomes an obstruction, and the batched
    kernel runs over just the new cells.  Rows keep their global y
    coordinates (the band is clipped on row boundaries), so a cell
    legalized incrementally sits on exactly the grid a full pass would
    use.

    Args:
        new_cells: the freshly inserted cells (mutated in place).
        placed: the block's existing cells (never moved).
        outline: the full core area.
        obstructions: macro rectangles.
        row_height: standard-cell row pitch.
        max_row_search: probe margin around each target row.

    Returns:
        Displacement statistics for the new cells only.
    """
    if not new_cells:
        return LegalizeResult(0, 0, 0.0, 0.0)
    n_rows = max(1, int(outline.height / row_height))

    def row_of(y: float) -> int:
        r = int((y - outline.y0) // row_height)
        return min(max(r, 0), n_rows - 1)

    targets = [row_of(c.y) for c in new_cells]
    r_lo = max(0, min(targets) - max_row_search)
    r_hi = min(n_rows - 1, max(targets) + max_row_search)
    band = Rect(outline.x0, outline.y0 + r_lo * row_height,
                outline.x1, outline.y0 + (r_hi + 1) * row_height)
    blocks: List[Rect] = [o for o in obstructions
                          if o.y0 < band.y1 and o.y1 > band.y0]
    half = row_height / 2.0
    for c in placed:
        if c.y + half > band.y0 and c.y - half < band.y1:
            blocks.append(Rect(c.x, c.y - half, c.x + c.width_um,
                               c.y + half))
    return legalize_cells(new_cells, band, blocks, row_height,
                          max_row_search)


def overlapping_pairs(cells: Sequence[Instance],
                      row_height: float = CELL_HEIGHT_UM,
                      x_is_center: bool = False
                      ) -> List[Tuple[Instance, Instance]]:
    """All same-row cell pairs whose x spans overlap.

    Cells are bucketed into rows by their y coordinate; within a row a
    sorted sweep finds *every* overlapping pair (the legacy scan in
    :mod:`~repro.place.scalar` only compared adjacent neighbors and
    missed overlaps spanned by wide cells).  Candidate pairs are
    confirmed with exactly the
    :func:`~repro.place.grid.interval_overlap` arithmetic the legalizer
    and the lint checker use, so the tools cannot disagree about what
    counts as an overlap.

    Args:
        cells: placed standard cells.
        row_height: row pitch (used only for bucketing keys).
        x_is_center: interpret ``x`` as the cell center (global-place /
            row-snap convention) instead of the left edge (legalizer
            convention).
    """
    if scalar.use_scalar():
        return scalar.overlapping_pairs(cells, row_height, x_is_center)
    n = len(cells)
    if n < 2:
        return []
    x = np.array([c.x for c in cells])
    y = np.array([c.y for c in cells])
    w = np.array([c.width_um for c in cells])
    if x_is_center:
        s = x - w / 2
        e = x + w / 2
    else:
        s = x
        e = x + w
    # bucket rows exactly like the legacy scan (round to nm), then fold
    # the row id into the sort key so one global sweep handles all rows:
    # each row occupies its own key band of width > any in-row span
    _, row = np.unique(np.round(y, 3), return_inverse=True)
    base = float(np.min(s))
    stride = float(np.max(e)) - base + 1.0
    key_s = row * stride + (s - base)
    key_e = row * stride + (e - base)
    o = np.lexsort((s, row))
    key_s, key_e, s, e = key_s[o], key_e[o], s[o], e[o]
    # candidate right partners: every j > i whose start precedes cell
    # i's end (same row by key-band construction; superset of the > tol
    # test, confirmed below)
    jmax = np.searchsorted(key_s, key_e, side="left") - 1
    cnt = np.maximum(jmax - np.arange(n), 0)
    total = int(cnt.sum())
    if total == 0:
        return []
    ii = np.repeat(np.arange(n), cnt)
    start = np.concatenate([[0], np.cumsum(cnt)[:-1]])
    jj = np.arange(total) - np.repeat(start, cnt) + ii + 1
    # same expression as interval_overlap: min(a1,b1) - max(a0,b0)
    keep = (np.minimum(e[ii], e[jj]) -
            np.maximum(s[ii], s[jj])) > GEOM_TOL_UM
    return [(cells[a], cells[b]) for a, b in zip(o[ii[keep]], o[jj[keep]])]


def check_overlaps(cells: Sequence[Instance],
                   row_height: float = CELL_HEIGHT_UM) -> int:
    """Count pairwise overlaps among legalized cells (same row only)."""
    return len(overlapping_pairs(cells, row_height))
