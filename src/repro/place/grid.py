"""Supply/demand density grid with macro *holes*.

The paper's Section 4.2 observes that treating a hard macro as a large
cell (pure demand) leaves halo whitespace around it, and that reducing the
macro's demand (the Kraftwerk2 tactic) still fails for very large macros
such as memory banks.  Their fix -- adopted here literally -- is to zero
*both* the supply and the demand of the grid regions a macro occupies:
the macro becomes a hole in the supply/demand map, and standard-cell
spreading simply flows around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

#: geometric slack (um) below which an overlap does not count.  Every
#: overlap / containment decision in the placer, the legalizer and the
#: lint checker goes through the predicates below with this tolerance,
#: so the tools cannot disagree about what "overlapping" or "inside a
#: macro hole" means.
GEOM_TOL_UM = 1e-6


def interval_overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    """Signed 1D overlap of ``[a0, a1]`` and ``[b0, b1]``.

    Positive = overlap length, negative = gap width, zero = abutting.
    """
    return min(a1, b1) - max(a0, b0)


def spans_overlap(a0: float, a1: float, b0: float, b1: float,
                  tol: float = GEOM_TOL_UM) -> bool:
    """True when two 1D spans overlap by more than ``tol``."""
    return interval_overlap(a0, a1, b0, b1) > tol


def first_containing(rects: Iterable["Rect"], x: float,
                     y: float) -> Optional["Rect"]:
    """The first rectangle containing point ``(x, y)``, or ``None``.

    This is *the* "inside a macro hole" predicate: the density grid, the
    3D-via legalizer and the lint checker all call it.
    """
    for r in rects:
        if r.contains(x, y):
            return r
    return None


@dataclass
class Rect:
    """An axis-aligned rectangle (micrometres)."""

    x0: float
    y0: float
    x1: float
    y1: float

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return max(0.0, self.width) * max(0.0, self.height)

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def clamp(self, x: float, y: float,
              margin: float = 0.0) -> Tuple[float, float]:
        """The nearest point inside the rectangle (minus ``margin``)."""
        return (min(max(x, self.x0 + margin), self.x1 - margin),
                min(max(y, self.y0 + margin), self.y1 - margin))

    def overlaps(self, other: "Rect") -> bool:
        return not (other.x0 >= self.x1 or other.x1 <= self.x0 or
                    other.y0 >= self.y1 or other.y1 <= self.y0)


class DensityGrid:
    """A uniform bin grid over a placement region.

    Each bin carries a *supply* (placeable area).  Bins fully or partially
    covered by macro obstructions lose the covered fraction of their
    supply; per the paper's hole model, cells are never assigned demand
    inside obstructions either.
    """

    def __init__(self, region: Rect, target_bins: int = 256,
                 utilization: float = 1.0) -> None:
        if region.area <= 0:
            raise ValueError("placement region must have positive area")
        self.region = region
        aspect = region.width / region.height
        ny = max(2, int(round((target_bins / max(aspect, 1e-9)) ** 0.5)))
        nx = max(2, int(round(ny * aspect)))
        self.nx, self.ny = nx, ny
        self.bin_w = region.width / nx
        self.bin_h = region.height / ny
        self.supply = np.full((nx, ny),
                              self.bin_w * self.bin_h * utilization)
        self._obstructions: List[Rect] = []

    def add_obstruction(self, rect: Rect) -> None:
        """Remove the covered area from bin supply (macro hole)."""
        self._obstructions.append(rect)
        i0 = max(0, int((rect.x0 - self.region.x0) / self.bin_w))
        i1 = min(self.nx - 1, int((rect.x1 - self.region.x0) / self.bin_w))
        j0 = max(0, int((rect.y0 - self.region.y0) / self.bin_h))
        j1 = min(self.ny - 1, int((rect.y1 - self.region.y0) / self.bin_h))
        if i1 < i0 or j1 < j0:
            return
        bx0 = self.region.x0 + np.arange(i0, i1 + 1) * self.bin_w
        by0 = self.region.y0 + np.arange(j0, j1 + 1) * self.bin_h
        wx = np.minimum(bx0 + self.bin_w, rect.x1) - np.maximum(bx0, rect.x0)
        wy = np.minimum(by0 + self.bin_h, rect.y1) - np.maximum(by0, rect.y0)
        cover = np.maximum(0.0, wx)[:, None] * np.maximum(0.0, wy)[None, :]
        patch = self.supply[i0:i1 + 1, j0:j1 + 1]
        np.maximum(0.0, patch - cover, out=patch)

    @property
    def obstructions(self) -> List[Rect]:
        return list(self._obstructions)

    def total_supply(self) -> float:
        """Total placeable area after holes (um^2)."""
        return float(self.supply.sum())

    def bin_of(self, x: float, y: float) -> Tuple[int, int]:
        """Bin indices containing a point (clamped to the grid)."""
        i = int(np.clip((x - self.region.x0) / self.bin_w, 0, self.nx - 1))
        j = int(np.clip((y - self.region.y0) / self.bin_h, 0, self.ny - 1))
        return i, j

    def bin_center(self, i: int, j: int) -> Tuple[float, float]:
        return (self.region.x0 + (i + 0.5) * self.bin_w,
                self.region.y0 + (j + 0.5) * self.bin_h)

    def in_obstruction(self, x: float, y: float) -> bool:
        """True if a point lies inside any macro hole."""
        return first_containing(self._obstructions, x, y) is not None

    def demand_map(self, xs: np.ndarray, ys: np.ndarray,
                   areas: np.ndarray) -> np.ndarray:
        """Accumulate cell areas into bins (point model)."""
        demand = np.zeros((self.nx, self.ny))
        ii = np.clip(((xs - self.region.x0) / self.bin_w).astype(int),
                     0, self.nx - 1)
        jj = np.clip(((ys - self.region.y0) / self.bin_h).astype(int),
                     0, self.ny - 1)
        np.add.at(demand, (ii, jj), areas)
        return demand

    def overflow(self, xs: np.ndarray, ys: np.ndarray,
                 areas: np.ndarray) -> float:
        """Total demand exceeding supply, normalized by total area."""
        demand = self.demand_map(xs, ys, areas)
        over = np.maximum(0.0, demand - self.supply).sum()
        total = areas.sum()
        return float(over / total) if total > 0 else 0.0
