"""Legacy instance-at-a-time placement kernels (parity reference).

The default placement path is the batched numpy implementation in
:mod:`~repro.place.quadratic`, :mod:`~repro.place.spreading` and
:mod:`~repro.place.legalize`.  This module preserves the original
scalar (per-pin / per-cell Python loop) kernels **unchanged** so the
parity/QoR harness (``tests/test_place_parity.py``) and the bench gate
(``benchmarks/place_smoke.py``) can compare the two:

* set ``REPRO_PLACE_SCALAR=1`` in the environment to route every
  dispatching kernel through the scalar reference;
* the flag is read at *call* time, so tests can flip it per-case with
  ``monkeypatch.setenv``.

The scalar path is a test/bench instrument only -- it is not part of
the production flow and is never selected implicitly.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.core import Instance
from ..tech.cells import CELL_HEIGHT_UM
from .grid import GEOM_TOL_UM, DensityGrid, Rect, spans_overlap

#: environment variable selecting the legacy scalar kernels
SCALAR_ENV = "REPRO_PLACE_SCALAR"


def use_scalar() -> bool:
    """True when the legacy scalar placement kernels are requested."""
    return os.environ.get(SCALAR_ENV, "") == "1"


# ---------------------------------------------------------------------------
# quadratic: per-pin B2B assembly (original QuadraticPlacer._solve_axis)
# ---------------------------------------------------------------------------

def solve_axis(placer, coords: np.ndarray, axis: int,
               anchors) -> np.ndarray:
    """One scalar B2B axis solve over ``placer.nets`` (legacy loop)."""
    from scipy.sparse.linalg import spsolve

    mat, rhs = assemble_axis(placer, coords, axis, anchors)
    return spsolve(mat, rhs)


def assemble_axis(placer, coords: np.ndarray, axis: int, anchors):
    """Build the legacy B2B system (matrix, rhs) for one axis.

    Split from :func:`solve_axis` so the bench gate can time system
    assembly -- the kernel the batched path replaces -- without the
    shared SuperLU factorization.
    """
    from scipy.sparse import coo_matrix

    n = placer.n
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs = np.zeros(n)
    diag = np.zeros(n)

    def add_pair(i: Optional[int], pi: float, j: Optional[int],
                 pj: float, w: float) -> None:
        if i is not None and j is not None:
            diag[i] += w
            diag[j] += w
            rows.append(i); cols.append(j); vals.append(-w)
            rows.append(j); cols.append(i); vals.append(-w)
        elif i is not None:
            diag[i] += w
            rhs[i] += w * pj
        elif j is not None:
            diag[j] += w
            rhs[j] += w * pi

    for net in placer.nets:
        pts: List[Tuple[Optional[int], float]] = []
        for m in net.movable:
            pts.append((m, coords[m]))
        for fx in net.fixed:
            pts.append((None, fx[axis]))
        p = len(pts)
        if p < 2:
            continue
        if p == 2:
            (i, pi), (j, pj) = pts
            w = net.weight * b2b_weight(pi, pj, p)
            add_pair(i, pi, j, pj, w)
            continue
        order = sorted(range(p), key=lambda k: pts[k][1])
        lo, hi = order[0], order[-1]
        for k in range(p):
            if k == lo:
                continue
            i, pi = pts[lo]
            j, pj = pts[k]
            w = net.weight * b2b_weight(pi, pj, p)
            add_pair(i, pi, j, pj, w)
        for k in range(p):
            if k in (lo, hi):
                continue
            i, pi = pts[hi]
            j, pj = pts[k]
            w = net.weight * b2b_weight(pi, pj, p)
            add_pair(i, pi, j, pj, w)

    if anchors is not None:
        ax, ay, strength = anchors
        target = ax if axis == 0 else ay
        diag += strength
        rhs += strength * target

    diag += 1e-6
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag.tolist())
    mat = coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    return mat, rhs


def b2b_weight(pi: float, pj: float, degree: int) -> float:
    """The scalar B2B weight formula (shared with the vectorized path)."""
    span = abs(pi - pj)
    return 2.0 / (max(degree - 1, 1) * max(span, 1.0))


# ---------------------------------------------------------------------------
# spreading: per-bin supply scan + per-cell leaf placement (original spread)
# ---------------------------------------------------------------------------

def supply_in(grid: DensityGrid, rect: Rect) -> float:
    """Placeable area inside ``rect`` (legacy per-bin loop)."""
    total = 0.0
    i0 = max(0, int((rect.x0 - grid.region.x0) / grid.bin_w))
    i1 = min(grid.nx - 1, int((rect.x1 - grid.region.x0) / grid.bin_w - 1e-9))
    j0 = max(0, int((rect.y0 - grid.region.y0) / grid.bin_h))
    j1 = min(grid.ny - 1, int((rect.y1 - grid.region.y0) / grid.bin_h - 1e-9))
    bin_area = grid.bin_w * grid.bin_h
    for i in range(i0, i1 + 1):
        bx0 = grid.region.x0 + i * grid.bin_w
        for j in range(j0, j1 + 1):
            by0 = grid.region.y0 + j * grid.bin_h
            cover = Rect(max(bx0, rect.x0), max(by0, rect.y0),
                         min(bx0 + grid.bin_w, rect.x1),
                         min(by0 + grid.bin_h, rect.y1)).area
            if cover > 0:
                total += grid.supply[i, j] * (cover / bin_area)
    return total


def spread(grid: DensityGrid, xs: np.ndarray, ys: np.ndarray,
           areas: np.ndarray, rng: np.random.Generator,
           leaf_cells: int = 6) -> Tuple[np.ndarray, np.ndarray]:
    """Legacy recursive-bisection spreading (per-cell leaf loop)."""
    from .spreading import _nearest_free

    n = len(xs)
    out_x = xs.copy()
    out_y = ys.copy()
    if n == 0:
        return out_x, out_y

    def place_leaf(idx: np.ndarray, rect: Rect) -> None:
        k = len(idx)
        if k == 0:
            return
        cols = max(1, int(np.ceil(np.sqrt(k * max(rect.width, 1e-6) /
                                          max(rect.height, 1e-6)))))
        rows_n = int(np.ceil(k / cols))
        order = idx[np.lexsort((ys[idx], xs[idx]))]
        for slot, cell in enumerate(order):
            ci, rj = slot % cols, slot // cols
            px = rect.x0 + (ci + 0.5) * rect.width / cols
            py = rect.y0 + (rj + 0.5) * rect.height / max(rows_n, 1)
            if grid.in_obstruction(px, py):
                px, py = _nearest_free(grid, px, py)
            out_x[cell] = px
            out_y[cell] = py

    def recurse(idx: np.ndarray, rect: Rect, depth: int) -> None:
        if len(idx) <= leaf_cells or depth > 40:
            place_leaf(idx, rect)
            return
        horizontal = rect.width >= rect.height
        if horizontal:
            coords = xs[idx]
        else:
            coords = ys[idx]
        mid = 0.5 * ((rect.x0 + rect.x1) if horizontal
                     else (rect.y0 + rect.y1))
        if horizontal:
            r1 = Rect(rect.x0, rect.y0, mid, rect.y1)
            r2 = Rect(mid, rect.y0, rect.x1, rect.y1)
        else:
            r1 = Rect(rect.x0, rect.y0, rect.x1, mid)
            r2 = Rect(rect.x0, mid, rect.x1, rect.y1)
        s1 = supply_in(grid, r1)
        s2 = supply_in(grid, r2)
        total_supply = s1 + s2
        if total_supply <= 0:
            place_leaf(idx, rect)
            return
        order = idx[np.argsort(coords, kind="stable")]
        cum = np.cumsum(areas[order])
        target = cum[-1] * (s1 / total_supply)
        split = int(np.searchsorted(cum, target))
        split = max(0, min(len(order), split))
        recurse(order[:split], r1, depth + 1)
        recurse(order[split:], r2, depth + 1)

    recurse(np.arange(n), grid.region, 0)
    return out_x, out_y


# ---------------------------------------------------------------------------
# legalize: per-cell segment search + adjacent-only overlap scan
# ---------------------------------------------------------------------------

def legalize_cells(cells: Sequence[Instance], outline: Rect,
                   obstructions: Sequence[Rect] = (),
                   row_height: float = CELL_HEIGHT_UM,
                   max_row_search: int = 12):
    """Legacy Tetris legalization (per-cell min-displacement search)."""
    from .legalize import LegalizeResult, RowSegment, build_rows

    segments = build_rows(outline, obstructions, row_height)
    if not segments:
        return LegalizeResult(0, len(cells), 0.0, 0.0)
    rows: Dict[float, List[RowSegment]] = {}
    for seg in segments:
        rows.setdefault(round(seg.y, 3), []).append(seg)
    row_ys = sorted(rows)

    order = sorted(cells, key=lambda c: c.x)
    placed = 0
    failed = 0
    total_disp = 0.0
    max_disp = 0.0

    for cell in order:
        width = cell.width_um
        target_idx = min(range(len(row_ys)),
                         key=lambda i, y=cell.y: abs(row_ys[i] - y))
        best: Optional[Tuple[float, RowSegment, float]] = None
        for offset in range(max_row_search + 1):
            for idx in {target_idx - offset, target_idx + offset}:
                if not (0 <= idx < len(row_ys)):
                    continue
                y = row_ys[idx]
                dy = abs(y - cell.y)
                if best is not None and dy >= best[0]:
                    continue
                for seg in rows[y]:
                    if seg.free < width:
                        continue
                    x = min(max(cell.x, seg.cursor), seg.x1 - width)
                    if x < seg.cursor:
                        continue
                    disp = abs(x - cell.x) + dy
                    if best is None or disp < best[0]:
                        best = (disp, seg, x)
            if best is not None and offset > 2:
                break
        if best is None:
            failed += 1
            continue
        disp, seg, x = best
        cell.x = x
        cell.y = seg.y
        seg.cursor = x + width
        placed += 1
        total_disp += disp
        max_disp = max(max_disp, disp)

    return LegalizeResult(placed=placed, failed=failed,
                          total_displacement_um=total_disp,
                          max_displacement_um=max_disp)


def overlapping_pairs(cells: Sequence[Instance],
                      row_height: float = CELL_HEIGHT_UM,
                      x_is_center: bool = False
                      ) -> List[Tuple[Instance, Instance]]:
    """Legacy adjacent-neighbor overlap scan.

    Only compares each cell against its immediate right neighbor, so a
    wide cell spanning several neighbors under-reports its overlaps --
    the vectorized sweep in :mod:`~repro.place.legalize` fixes that.
    Kept verbatim as the parity reference.
    """
    by_row: Dict[float, List[Instance]] = {}
    for c in cells:
        by_row.setdefault(round(c.y, 3), []).append(c)
    pairs: List[Tuple[Instance, Instance]] = []
    for row_cells in by_row.values():
        row_cells.sort(key=lambda c: c.x)
        for a, b in zip(row_cells, row_cells[1:]):
            if x_is_center:
                a0, a1 = a.x - a.width_um / 2, a.x + a.width_um / 2
                b0, b1 = b.x - b.width_um / 2, b.x + b.width_um / 2
            else:
                a0, a1 = a.x, a.x + a.width_um
                b0, b1 = b.x, b.x + b.width_um
            if spans_overlap(a0, a1, b0, b1, tol=GEOM_TOL_UM):
                pairs.append((a, b))
    return pairs


# ---------------------------------------------------------------------------
# row snap: per-cell coordinate assignment (original snap_to_rows)
# ---------------------------------------------------------------------------

def snap_to_rows(movable: List, xs: np.ndarray, ys: np.ndarray,
                 outline: Rect) -> None:
    """Legacy per-cell row snap."""
    row0 = outline.y0 + CELL_HEIGHT_UM / 2
    for k, inst in enumerate(movable):
        inst.x = float(np.clip(xs[k], outline.x0, outline.x1))
        row = round((ys[k] - row0) / CELL_HEIGHT_UM)
        inst.y = float(np.clip(row0 + row * CELL_HEIGHT_UM,
                               outline.y0, outline.y1))
