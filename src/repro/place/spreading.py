"""Whitespace-aware cell spreading by recursive bisection.

Takes the overlapping quadratic solution and redistributes cells so that
no region demands more area than it supplies, while preserving the
relative cell order (which carries the wirelength optimization).  The
region supply comes from the :class:`~repro.place.grid.DensityGrid`, so
macro holes are respected automatically -- cells flow around memory
macros instead of piling against them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .grid import DensityGrid, Rect


def _supply_in(grid: DensityGrid, rect: Rect) -> float:
    """Placeable area inside ``rect`` (fractional bin coverage)."""
    total = 0.0
    i0 = max(0, int((rect.x0 - grid.region.x0) / grid.bin_w))
    i1 = min(grid.nx - 1, int((rect.x1 - grid.region.x0) / grid.bin_w - 1e-9))
    j0 = max(0, int((rect.y0 - grid.region.y0) / grid.bin_h))
    j1 = min(grid.ny - 1, int((rect.y1 - grid.region.y0) / grid.bin_h - 1e-9))
    bin_area = grid.bin_w * grid.bin_h
    for i in range(i0, i1 + 1):
        bx0 = grid.region.x0 + i * grid.bin_w
        for j in range(j0, j1 + 1):
            by0 = grid.region.y0 + j * grid.bin_h
            cover = Rect(max(bx0, rect.x0), max(by0, rect.y0),
                         min(bx0 + grid.bin_w, rect.x1),
                         min(by0 + grid.bin_h, rect.y1)).area
            if cover > 0:
                total += grid.supply[i, j] * (cover / bin_area)
    return total


def spread(grid: DensityGrid, xs: np.ndarray, ys: np.ndarray,
           areas: np.ndarray, rng: np.random.Generator,
           leaf_cells: int = 6) -> Tuple[np.ndarray, np.ndarray]:
    """Spread cells into the grid's free area.

    Args:
        grid: density grid with macro holes already carved out.
        xs, ys: global-placement coordinates (not modified).
        areas: cell areas.
        rng: randomness for intra-leaf jitter.
        leaf_cells: stop recursing below this many cells per region.

    Returns:
        New (x, y) arrays with approximately legal density.
    """
    n = len(xs)
    out_x = xs.copy()
    out_y = ys.copy()
    if n == 0:
        return out_x, out_y

    def place_leaf(idx: np.ndarray, rect: Rect) -> None:
        k = len(idx)
        if k == 0:
            return
        # lay cells on a small sub-grid inside the leaf, preserving the
        # x-then-y order of the global placement
        cols = max(1, int(np.ceil(np.sqrt(k * max(rect.width, 1e-6) /
                                          max(rect.height, 1e-6)))))
        rows_n = int(np.ceil(k / cols))
        order = idx[np.lexsort((ys[idx], xs[idx]))]
        for slot, cell in enumerate(order):
            ci, rj = slot % cols, slot // cols
            px = rect.x0 + (ci + 0.5) * rect.width / cols
            py = rect.y0 + (rj + 0.5) * rect.height / max(rows_n, 1)
            if grid.in_obstruction(px, py):
                px, py = _nearest_free(grid, px, py)
            out_x[cell] = px
            out_y[cell] = py

    def recurse(idx: np.ndarray, rect: Rect, depth: int) -> None:
        if len(idx) <= leaf_cells or depth > 40:
            place_leaf(idx, rect)
            return
        horizontal = rect.width >= rect.height
        if horizontal:
            mid_lo, mid_hi = rect.x0, rect.x1
            coords = xs[idx]
        else:
            mid_lo, mid_hi = rect.y0, rect.y1
            coords = ys[idx]
        mid = 0.5 * (mid_lo + mid_hi)
        if horizontal:
            r1 = Rect(rect.x0, rect.y0, mid, rect.y1)
            r2 = Rect(mid, rect.y0, rect.x1, rect.y1)
        else:
            r1 = Rect(rect.x0, rect.y0, rect.x1, mid)
            r2 = Rect(rect.x0, mid, rect.x1, rect.y1)
        s1 = _supply_in(grid, r1)
        s2 = _supply_in(grid, r2)
        total_supply = s1 + s2
        if total_supply <= 0:
            place_leaf(idx, rect)
            return
        # split the cell list so area ratio tracks supply ratio
        order = idx[np.argsort(coords, kind="stable")]
        cum = np.cumsum(areas[order])
        target = cum[-1] * (s1 / total_supply)
        split = int(np.searchsorted(cum, target))
        split = max(0, min(len(order), split))
        recurse(order[:split], r1, depth + 1)
        recurse(order[split:], r2, depth + 1)

    recurse(np.arange(n), grid.region, 0)
    return out_x, out_y


def _nearest_free(grid: DensityGrid, x: float, y: float) -> Tuple[float, float]:
    """Closest bin center with positive supply (spiral search)."""
    i, j = grid.bin_of(x, y)
    if grid.supply[i, j] > 0:
        return x, y
    for radius in range(1, max(grid.nx, grid.ny)):
        best = None
        for di in range(-radius, radius + 1):
            for dj in (-radius, radius):
                for ii, jj in ((i + di, j + dj), (i + dj, j + di)):
                    if 0 <= ii < grid.nx and 0 <= jj < grid.ny and \
                            grid.supply[ii, jj] > 0:
                        cx, cy = grid.bin_center(ii, jj)
                        d = (cx - x) ** 2 + (cy - y) ** 2
                        if best is None or d < best[0]:
                            best = (d, cx, cy)
        if best is not None:
            return best[1], best[2]
    return x, y
