"""Whitespace-aware cell spreading by recursive bisection.

Takes the overlapping quadratic solution and redistributes cells so that
no region demands more area than it supplies, while preserving the
relative cell order (which carries the wirelength optimization).  The
region supply comes from the :class:`~repro.place.grid.DensityGrid`, so
macro holes are respected automatically -- cells flow around memory
macros instead of piling against them.

Two batched kernels carry the cost: region supply queries answer in
O(1) from prefix-sum tables (:class:`_SupplyAccel`), and all leaf
regions place their cells in one vectorized pass after the recursion
has only *partitioned* the index set.  The legacy per-bin/per-cell
loops survive in :mod:`~repro.place.scalar` behind
``REPRO_PLACE_SCALAR=1``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..obs.metrics import metrics
from . import scalar
from .grid import DensityGrid, Rect


class _SupplyAccel:
    """O(1) fractional-coverage supply sums from prefix tables.

    ``supply_in`` decomposes a query rectangle into up to nine pieces:
    four partially covered corner bins, four edge strips (one partial
    axis), and the fully covered interior.  Corners read the supply map
    directly, edge strips read 1D prefix sums, and the interior reads
    the 2D summed-area table -- a constant ~20 flops per query instead
    of a slice reduction.
    """

    def __init__(self, grid: DensityGrid) -> None:
        self.grid = grid
        s = grid.supply
        # stored as nested Python lists: the queries below index single
        # elements, where list access avoids numpy scalar boxing
        row = np.cumsum(s, axis=1)
        #: per-column prefix along y: row[i][j] = sum(s[i, :j+1])
        self.row = row.tolist()
        #: per-row prefix along x: col[i][j] = sum(s[:i+1, j])
        self.col = np.cumsum(s, axis=0).tolist()
        #: inclusive 2D summed-area table
        self.sat = np.cumsum(row, axis=0).tolist()
        self.supply = s.tolist()
        # scalars hoisted out of the per-query hot path
        self.rx0 = grid.region.x0
        self.ry0 = grid.region.y0
        self.bw = grid.bin_w
        self.bh = grid.bin_h
        self.imax = grid.nx - 1
        self.jmax = grid.ny - 1

    def supply_in(self, x0: float, y0: float, x1: float,
                  y1: float) -> float:
        """Placeable area inside the rect (fractional bin coverage)."""
        rx0, ry0, bw, bh = self.rx0, self.ry0, self.bw, self.bh
        i0 = max(0, int((x0 - rx0) / bw))
        i1 = min(self.imax, int((x1 - rx0) / bw - 1e-9))
        j0 = max(0, int((y0 - ry0) / bh))
        j1 = min(self.jmax, int((y1 - ry0) / bh - 1e-9))
        if i1 < i0 or j1 < j0:
            return 0.0
        bx0 = rx0 + i0 * bw
        bx1 = rx0 + i1 * bw
        by0 = ry0 + j0 * bh
        by1 = ry0 + j1 * bh
        wx0 = max(0.0, min(bx0 + bw, x1) - max(bx0, x0))
        wx1 = max(0.0, min(bx1 + bw, x1) - max(bx1, x0))
        wy0 = max(0.0, min(by0 + bh, y1) - max(by0, y0))
        wy1 = max(0.0, min(by1 + bh, y1) - max(by1, y0))
        total = wx0 * self._strip(i0, j0, j1, wy0, wy1)
        if i0 != i1:
            total += wx1 * self._strip(i1, j0, j1, wy0, wy1)
            if i1 - i0 > 1:
                # interior columns are fully covered along x
                col, sat = self.col, self.sat
                ca, cb = col[i0], col[i1 - 1]
                if j0 == j1:
                    mid = (cb[j0] - ca[j0]) * wy0
                else:
                    mid = ((cb[j0] - ca[j0]) * wy0 +
                           (cb[j1] - ca[j1]) * wy1)
                    if j1 - j0 > 1:
                        ta, tb = sat[i0], sat[i1 - 1]
                        mid += bh * (tb[j1 - 1] - ta[j1 - 1] -
                                     tb[j0] + ta[j0])
                total += bw * mid
        return total / (bw * bh)

    def _strip(self, i: int, j0: int, j1: int, wy0: float,
               wy1: float) -> float:
        # sum_j s[i][j] * wy_j for one (partial) column i
        si = self.supply[i]
        if j0 == j1:
            return si[j0] * wy0
        acc = si[j0] * wy0 + si[j1] * wy1
        if j1 - j0 > 1:
            ri = self.row[i]
            acc += self.bh * (ri[j1 - 1] - ri[j0])
        return acc


def _supply_in(grid: DensityGrid, rect: Rect) -> float:
    """One-shot supply query (tests / callers without an accel table)."""
    return _SupplyAccel(grid).supply_in(rect.x0, rect.y0, rect.x1,
                                        rect.y1)


def spread(grid: DensityGrid, xs: np.ndarray, ys: np.ndarray,
           areas: np.ndarray, rng: np.random.Generator,
           leaf_cells: int = 6) -> Tuple[np.ndarray, np.ndarray]:
    """Spread cells into the grid's free area.

    Args:
        grid: density grid with macro holes already carved out.
        xs, ys: global-placement coordinates (not modified).
        areas: cell areas.
        rng: randomness for intra-leaf jitter.
        leaf_cells: stop recursing below this many cells per region.

    Returns:
        New (x, y) arrays with approximately legal density.
    """
    if scalar.use_scalar():
        return scalar.spread(grid, xs, ys, areas, rng,
                             leaf_cells=leaf_cells)
    metrics().counter("place.spread_calls").inc()
    n = len(xs)
    out_x = xs.copy()
    out_y = ys.copy()
    if n == 0:
        return out_x, out_y
    accel = _SupplyAccel(grid)
    leaves: List[Tuple[np.ndarray, float, float, float, float]] = []

    # the recursion carries plain float bounds (no Rect allocation on
    # the hot path) and only *partitions* the index set; the leaves
    # place their cells afterwards in one batched pass
    def recurse(idx: np.ndarray, x0: float, y0: float, x1: float,
                y1: float, depth: int) -> None:
        if len(idx) <= leaf_cells or depth > 40:
            leaves.append((idx, x0, y0, x1, y1))
            return
        if x1 - x0 >= y1 - y0:
            mid = 0.5 * (x0 + x1)
            coords = xs[idx]
            b1 = (x0, y0, mid, y1)
            b2 = (mid, y0, x1, y1)
        else:
            mid = 0.5 * (y0 + y1)
            coords = ys[idx]
            b1 = (x0, y0, x1, mid)
            b2 = (x0, mid, x1, y1)
        s1 = accel.supply_in(*b1)
        s2 = accel.supply_in(*b2)
        total_supply = s1 + s2
        if total_supply <= 0:
            leaves.append((idx, x0, y0, x1, y1))
            return
        # split the cell list so area ratio tracks supply ratio
        order = idx[coords.argsort(kind="stable")]
        cum = areas[order].cumsum()
        target = cum[-1] * (s1 / total_supply)
        split = int(cum.searchsorted(target))
        split = max(0, min(len(order), split))
        recurse(order[:split], *b1, depth + 1)
        recurse(order[split:], *b2, depth + 1)

    region = grid.region
    recurse(np.arange(n), region.x0, region.y0, region.x1, region.y1, 0)
    _place_leaves(grid, leaves, xs, ys, out_x, out_y)
    return out_x, out_y


def _place_leaves(grid: DensityGrid, leaves, xs: np.ndarray,
                  ys: np.ndarray, out_x: np.ndarray,
                  out_y: np.ndarray) -> None:
    """Lay out every leaf's cells on sub-grids in one vectorized pass.

    Per leaf the slot geometry matches the legacy ``place_leaf`` exactly
    (same cols/rows formulas, same elementwise arithmetic), and the
    x-then-y cell ordering comes from one global lexsort keyed by leaf
    id -- stability makes the within-leaf order identical to a per-leaf
    sort.
    """
    leaves = [lf for lf in leaves if len(lf[0])]
    if not leaves:
        return
    k_arr = np.array([len(lf[0]) for lf in leaves], dtype=np.int64)
    rx0 = np.array([lf[1] for lf in leaves])
    ry0 = np.array([lf[2] for lf in leaves])
    w = np.array([lf[3] for lf in leaves]) - rx0
    h = np.array([lf[4] for lf in leaves]) - ry0
    # aspect clamp only guards the cols formula; slot coordinates use
    # the raw extents, exactly like the scalar path
    cols = np.maximum(1, np.ceil(np.sqrt(
        k_arr * np.maximum(w, 1e-6) / np.maximum(h, 1e-6)
    )).astype(np.int64))
    rows_n = np.ceil(k_arr / cols).astype(np.int64)

    total = int(k_arr.sum())
    leaf_of = np.repeat(np.arange(len(leaves), dtype=np.int64), k_arr)
    start = np.zeros(len(leaves), dtype=np.int64)
    np.cumsum(k_arr[:-1], out=start[1:])
    slot = np.arange(total, dtype=np.int64) - start[leaf_of]
    ci = slot % cols[leaf_of]
    rj = slot // cols[leaf_of]
    px = rx0[leaf_of] + (ci + 0.5) * w[leaf_of] / cols[leaf_of]
    py = ry0[leaf_of] + (rj + 0.5) * h[leaf_of] / \
        np.maximum(rows_n, 1)[leaf_of]

    idx_all = np.concatenate([lf[0] for lf in leaves])
    # stable sort: leaf first, then x, then y -- within one leaf this is
    # exactly the legacy per-leaf lexsort((ys, xs))
    order = idx_all[np.lexsort((ys[idx_all], xs[idx_all], leaf_of))]
    if grid.obstructions:
        bad = np.flatnonzero(_in_any_obstruction(grid, px, py))
        for b in bad:
            px[b], py[b] = _nearest_free(grid, px[b], py[b])
    out_x[order] = px
    out_y[order] = py


def _in_any_obstruction(grid: DensityGrid, px: np.ndarray,
                        py: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`DensityGrid.in_obstruction` over point arrays."""
    mask = np.zeros(len(px), dtype=bool)
    for o in grid.obstructions:
        mask |= ((px >= o.x0) & (px <= o.x1) &
                 (py >= o.y0) & (py <= o.y1))
    return mask


def _nearest_free(grid: DensityGrid, x: float, y: float) -> Tuple[float, float]:
    """Closest bin center with positive supply (spiral search)."""
    i, j = grid.bin_of(x, y)
    if grid.supply[i, j] > 0:
        return x, y
    for radius in range(1, max(grid.nx, grid.ny)):
        best = None
        for di in range(-radius, radius + 1):
            for dj in (-radius, radius):
                for ii, jj in ((i + di, j + dj), (i + dj, j + di)):
                    if 0 <= ii < grid.nx and 0 <= jj < grid.ny and \
                            grid.supply[ii, jj] > 0:
                        cx, cy = grid.bin_center(ii, jj)
                        d = (cx - x) ** 2 + (cy - y) ** 2
                        if best is None or d < best[0]:
                            best = (d, cx, cy)
        if best is not None:
            return best[1], best[2]
    return x, y
