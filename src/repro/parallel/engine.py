"""Process-pool experiment engine.

The paper's artifacts are eleven independent tables/figures; the
design-space explorer walks an independent grid of chip configurations.
Both are embarrassingly parallel, so this module fans them out across
``multiprocessing`` workers:

* each worker builds its own :class:`~repro.tech.process.ProcessNode`
  and :class:`~repro.core.cache.DesignCache` (pointing every worker at
  one shared ``cache_dir`` makes warm reruns near-free -- disk writes
  are atomic, so concurrent workers can share the directory safely);
* tasks carry an explicit ``(experiment id, scale, seed)`` triple, so
  scheduling order cannot influence the numbers: a parallel run is
  byte-identical (after key-sorted serialization) to the serial run;
* workers return plain dictionaries (via
  :func:`~repro.analysis.experiments.result_to_dict`), never live
  design objects, keeping the pickles small and the results
  backend-agnostic;
* observability survives the pool: each task ships back its recorded
  spans, its metrics *delta* (snapshot-before / diff-after, so a
  worker's cumulative state never double-counts) and its cache-stat
  delta; the parent merges everything into one coherent timeline and
  one aggregated :attr:`BenchReport.cache_stats` -- parallel hit rates
  are real numbers, not ``None``.

The default start method is ``spawn``: workers import a fresh
interpreter instead of forking accumulated parent state, which keeps
runs reproducible no matter what the parent process did before.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.experiments import (EXPERIMENTS, ExperimentOptions,
                                    result_to_dict, run_experiment)
from ..core.cache import DesignCache
from ..obs import export, trace
from ..obs.metrics import metrics
from ..tech.process import make_process

#: worker-local state built once per pool worker by the initializer
_WORKER: Dict[str, Any] = {}


def _init_worker(cache_dir: Optional[str]) -> None:
    _WORKER["process"] = make_process()
    _WORKER["cache"] = DesignCache(cache_dir=cache_dir)


#: the additive CacheStats fields (``hit_rate`` is derived, recomputed
#: after aggregation)
_CACHE_FIELDS = ("hits", "disk_hits", "misses", "stores", "evictions",
                 "corrupt_drops")


def _cache_delta(after: Dict[str, float],
                 before: Dict[str, float]) -> Dict[str, float]:
    """One task's contribution to a worker's cumulative cache stats."""
    return {k: after.get(k, 0) - before.get(k, 0) for k in _CACHE_FIELDS}


def _aggregate_cache(deltas: Iterable[Dict[str, float]]
                     ) -> Dict[str, float]:
    """Fold per-task cache-stat deltas into one stats dict."""
    total: Dict[str, float] = {k: 0 for k in _CACHE_FIELDS}
    for d in deltas:
        for k in _CACHE_FIELDS:
            total[k] += d.get(k, 0)
    lookups = total["hits"] + total["disk_hits"] + total["misses"]
    total["hit_rate"] = ((total["hits"] + total["disk_hits"]) / lookups
                         if lookups else 0.0)
    return total


@dataclass
class ExperimentRun:
    """One experiment's outcome plus its wall-clock cost."""

    experiment_id: str
    wall_s: float
    all_passed: bool
    result: Dict[str, Any]


@dataclass
class BenchReport:
    """The full bench run: per-experiment results and timings."""

    runs: List[ExperimentRun]
    total_wall_s: float
    parallel: int
    scale: float
    seed: int
    #: aggregated across the whole run -- serial *and* parallel (worker
    #: deltas are summed back; ``None`` only for empty runs)
    cache_stats: Optional[Dict[str, float]] = None
    #: per-task cache-stat deltas, request order (parallel runs)
    worker_cache_stats: List[Dict[str, float]] = field(default_factory=list)
    #: every span recorded during the run (dict form; workers merged in)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: metrics snapshot of the run (this run's delta, workers merged in)
    metrics: Optional[Dict[str, Any]] = None

    @property
    def all_passed(self) -> bool:
        return all(r.all_passed for r in self.runs)

    def results_dict(self) -> Dict[str, Any]:
        """Experiment id -> serialized result (timings excluded, so the
        bytes are comparable across serial/parallel and cold/warm)."""
        return {r.experiment_id: r.result for r in self.runs}

    def results_json(self, indent: int = 2) -> str:
        return json.dumps(self.results_dict(), sort_keys=True,
                          indent=indent)

    def timing_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "parallel": self.parallel,
            "scale": self.scale,
            "seed": self.seed,
            "total_wall_s": self.total_wall_s,
            "experiments": {r.experiment_id: r.wall_s for r in self.runs},
        }
        if self.cache_stats is not None:
            out["cache"] = self.cache_stats
        return out

    def timing_json(self, indent: int = 2) -> str:
        return json.dumps(self.timing_dict(), sort_keys=True,
                          indent=indent)

    def summary(self) -> str:
        lines = [f"{'experiment':10s} {'checks':>6s} {'wall':>8s}"]
        for r in self.runs:
            mark = "PASS" if r.all_passed else "FAIL"
            lines.append(f"{r.experiment_id:10s} {mark:>6s} "
                         f"{r.wall_s:7.2f}s")
        mode = (f"{self.parallel} workers" if self.parallel > 1
                else "serial")
        lines.append(f"{'total':10s} {'':6s} {self.total_wall_s:7.2f}s "
                     f"({mode})")
        if self.cache_stats is not None:
            cs = self.cache_stats
            lines.append(f"cache: {cs['hits']:.0f} memory hits, "
                         f"{cs['disk_hits']:.0f} disk hits, "
                         f"{cs['misses']:.0f} misses "
                         f"({cs['hit_rate']:.0%} hit rate)")
        return "\n".join(lines)

    def write_trace(self, path: Union[str, Path],
                    meta: Optional[Dict[str, Any]] = None) -> Path:
        """Write this run's merged trace (spans + metrics) as JSONL."""
        header: Dict[str, Any] = {
            "parallel": self.parallel,
            "scale": self.scale,
            "seed": self.seed,
            "total_wall_s": self.total_wall_s,
            "experiments": [r.experiment_id for r in self.runs],
        }
        header.update(meta or {})
        return export.write_trace(path, self.spans, metrics=self.metrics,
                                  meta=header)


def _run_one(task: Tuple[str, float, int]) -> Tuple[ExperimentRun, Dict]:
    """Pool worker body: run one experiment against worker-local state.

    Ships back, besides the serialized result, this *task's* spans and
    its cache/metrics deltas -- the worker state is cumulative across
    the tasks it happens to receive, so only before/after differences
    aggregate correctly in the parent.
    """
    experiment_id, scale, seed = task
    tracer = trace.get_tracer()
    n_spans = len(tracer.spans)
    metrics_before = metrics().snapshot()
    cache_before = _WORKER["cache"].stats.as_dict()
    t0 = time.perf_counter()
    result = run_experiment(experiment_id, ExperimentOptions(
        process=_WORKER["process"], scale=scale, seed=seed,
        cache=_WORKER["cache"]))
    run = ExperimentRun(experiment_id=experiment_id,
                        wall_s=time.perf_counter() - t0,
                        all_passed=result.all_passed,
                        result=result_to_dict(result))
    payload = {
        "cache": _cache_delta(_WORKER["cache"].stats.as_dict(),
                              cache_before),
        "spans": [sp.to_dict() for sp in tracer.spans[n_spans:]],
        "metrics": metrics().diff(metrics_before),
    }
    return run, payload


def run_experiments(ids: Optional[Iterable[str]] = None,
                    parallel: int = 0,
                    scale: float = 1.0,
                    seed: int = 1,
                    cache_dir: Optional[str] = None,
                    process=None,
                    mp_context: str = "spawn") -> BenchReport:
    """Run a set of registered experiments, serially or in a pool.

    Args:
        ids: experiment ids (default: the whole registry, in registry
            order -- the output order is always the request order, not
            completion order).
        parallel: worker count; ``0``/``1`` runs serially in-process.
        scale: model-scale multiplier for every experiment.
        seed: generation/placement seed for every experiment.
        cache_dir: optional persistent design-cache directory, shared
            by all workers.
        process: technology node for the serial path (workers always
            build their own).
        mp_context: multiprocessing start method.

    Returns:
        A :class:`BenchReport`; ``results_json()`` is byte-identical
        across serial and parallel runs of the same request.  The
        report also carries the run's merged spans and metrics
        (:meth:`BenchReport.write_trace` exports them), which never
        enter ``results_json()``.
    """
    ids = list(ids) if ids is not None else list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiment ids: {', '.join(unknown)}; "
                         f"known: {', '.join(EXPERIMENTS)}")
    tasks = [(eid, scale, seed) for eid in ids]
    tracer = trace.get_tracer()
    n_spans = len(tracer.spans)
    metrics_before = metrics().snapshot()
    t0 = time.perf_counter()
    worker_stats: List[Dict[str, float]] = []
    if parallel > 1 and len(ids) > 1:
        with trace.span("bench", parallel=parallel, scale=scale,
                        seed=seed, n_experiments=len(ids)):
            ctx = multiprocessing.get_context(mp_context)
            with ctx.Pool(processes=min(parallel, len(ids)),
                          initializer=_init_worker,
                          initargs=(cache_dir,)) as pool:
                pairs = pool.map(_run_one, tasks)
        runs = [run for run, _ in pairs]
        payloads = [payload for _, payload in pairs]
        worker_stats = [p["cache"] for p in payloads]
        cache_stats = _aggregate_cache(worker_stats)
        # fold worker metric deltas into the parent registry so the
        # run's diff below covers the whole pool
        for p in payloads:
            metrics().merge_snapshot(p["metrics"])
        worker_spans = [d for p in payloads for d in p["spans"]]
    else:
        proc = process if process is not None else make_process()
        cache = DesignCache(cache_dir=cache_dir)
        runs = []
        with trace.span("bench", parallel=1, scale=scale, seed=seed,
                        n_experiments=len(ids)):
            for eid, s, sd in tasks:
                t1 = time.perf_counter()
                result = run_experiment(eid, ExperimentOptions(
                    process=proc, scale=s, seed=sd, cache=cache))
                runs.append(ExperimentRun(
                    experiment_id=eid,
                    wall_s=time.perf_counter() - t1,
                    all_passed=result.all_passed,
                    result=result_to_dict(result)))
        cache_stats = cache.stats.as_dict()
        worker_spans = []
    spans = [sp.to_dict() for sp in tracer.spans[n_spans:]] + worker_spans
    return BenchReport(runs=runs,
                       total_wall_s=time.perf_counter() - t0,
                       parallel=max(parallel, 1) if len(ids) > 1 else 1,
                       scale=scale, seed=seed,
                       cache_stats=cache_stats,
                       worker_cache_stats=worker_stats,
                       spans=spans,
                       metrics=metrics().diff(metrics_before))


# ---------------------------------------------------------------------------
# Design-space exploration fan-out
# ---------------------------------------------------------------------------

def _run_point(task: Tuple[str, bool, float, int]):
    """Pool worker body: evaluate one design-space grid point."""
    from ..core.explore import evaluate_point
    style, dual_vth, scale, seed = task
    return evaluate_point(_WORKER["process"], style, dual_vth,
                          scale=scale, seed=seed,
                          cache=_WORKER["cache"])


def explore_points(grid: Sequence[Tuple[str, bool]],
                   scale: float = 0.7,
                   seed: int = 1,
                   parallel: int = 2,
                   cache_dir: Optional[str] = None,
                   mp_context: str = "spawn") -> List:
    """Evaluate design-space grid points across a worker pool.

    Returns :class:`~repro.core.explore.DesignPoint` objects in grid
    order (identical to the serial explorer's output for the same seed).
    """
    tasks = [(style, dual_vth, scale, seed) for style, dual_vth in grid]
    ctx = multiprocessing.get_context(mp_context)
    with ctx.Pool(processes=min(max(parallel, 1), max(len(tasks), 1)),
                  initializer=_init_worker,
                  initargs=(cache_dir,)) as pool:
        return pool.map(_run_point, tasks)
